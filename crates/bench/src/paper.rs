//! The paper's published numbers, embedded for side-by-side comparison.
//!
//! Sources: Tables II, III and IV of Cecilia et al. 2011 (execution times
//! in milliseconds on the Tesla C1060 / Tesla M2050), plus the headline
//! speed-up figures quoted in the text for Figures 4 and 5. `NaN` marks
//! cells the paper does not report (Table III/IV stop at pr1002).

/// Instance names in table column order.
pub const INSTANCES: [&str; 7] = ["att48", "kroC100", "a280", "pcb442", "d657", "pr1002", "pr2392"];

/// Instance sizes, aligned with [`INSTANCES`].
pub const SIZES: [usize; 7] = [48, 100, 280, 442, 657, 1002, 2392];

/// Table II row labels (tour construction, Tesla C1060).
pub const TABLE2_ROWS: [&str; 8] = [
    "1. Baseline Version",
    "2. Choice Kernel",
    "3. Without CURAND",
    "4. NNList",
    "5. NNList + Shared Memory",
    "6. NNList + Shared&Texture Memory",
    "7. Increasing Data Parallelism",
    "8. Data Parallelism + Texture Memory",
];

/// Table II values in ms (8 versions x 7 instances, Tesla C1060).
pub const TABLE2_MS: [[f64; 7]; 8] = [
    [13.14, 56.89, 497.93, 1201.52, 2770.32, 6181.0, 63357.7],
    [4.83, 17.56, 135.15, 334.28, 659.05, 1912.59, 18582.9],
    [4.5, 15.78, 119.65, 296.31, 630.01, 1624.05, 15514.9],
    [2.36, 6.39, 33.08, 72.79, 143.36, 338.88, 2312.98],
    [1.81, 4.42, 21.42, 44.26, 84.15, 203.15, 2450.52],
    [1.35, 3.51, 16.97, 38.39, 75.07, 178.3, 2105.77],
    [0.36, 0.93, 13.89, 37.18, 125.17, 419.53, 5525.76],
    [0.34, 0.91, 12.12, 36.57, 123.17, 417.72, 5461.06],
];

/// "Total speed-up attained" row of Table II (version 1 / version 8).
pub const TABLE2_SPEEDUP: [f64; 7] = [38.09, 62.83, 41.09, 32.86, 22.49, 14.8, 11.6];

/// Table III/IV row labels (pheromone update).
pub const TABLE34_ROWS: [&str; 5] = [
    "1. Atomic Ins. + Shared Memory",
    "2. Atomic Ins.",
    "3. Instruction & Thread Reduction",
    "4. Scatter to Gather + Tilling",
    "5. Scatter to Gather",
];

/// Table III values in ms (5 versions x 6 instances, Tesla C1060; the
/// paper stops at pr1002).
pub const TABLE3_MS: [[f64; 6]; 5] = [
    [0.15, 0.35, 1.76, 3.45, 7.44, 17.45],
    [0.16, 0.36, 1.99, 3.74, 7.74, 18.23],
    [1.18, 3.8, 103.77, 496.44, 2304.54, 12345.4],
    [1.03, 5.83, 242.02, 1489.88, 7092.57, 37499.2],
    [2.01, 11.3, 489.91, 3022.85, 14460.4, 200201.0],
];

/// "Total slow-down incurred" row of Table III (version 5 / version 1).
pub const TABLE3_SLOWDOWN: [f64; 6] = [12.73, 31.42, 278.7, 875.29, 1944.23, 11471.59];

/// Table IV values in ms (Tesla M2050).
pub const TABLE4_MS: [[f64; 6]; 5] = [
    [0.04, 0.09, 0.43, 0.79, 1.85, 4.22],
    [0.04, 0.09, 0.45, 0.88, 1.98, 4.37],
    [0.83, 2.76, 88.25, 501.32, 2302.37, 12449.9],
    [0.8, 4.45, 219.8, 1362.32, 6316.75, 33571.0],
    [0.66, 4.5, 264.38, 1555.03, 7537.1, 40977.3],
];

/// "Total slow-downs attained" row of Table IV.
pub const TABLE4_SLOWDOWN: [f64; 6] = [17.3, 50.73, 587.96, 1737.95, 3859.52, 9478.68];

/// Figure 4(a) headline: NN-list tour-construction speed-up peaks
/// (C1060, M2050), peaking near pr1002, CPU faster on the smallest sizes.
pub const FIG4A_PEAK: (f64, f64) = (2.65, 3.0);

/// Figure 4(b) headline: data-parallel speed-up vs the fully probabilistic
/// sequential code.
pub const FIG4B_PEAK: (f64, f64) = (22.0, 29.0);

/// Figure 5 headline: pheromone-update speed-up of the best kernel.
pub const FIG5_PEAK: (f64, f64) = (3.87, 18.77);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_speedup_row_is_consistent_with_the_cells() {
        for c in 0..7 {
            let ratio = TABLE2_MS[0][c] / TABLE2_MS[7][c];
            let published = TABLE2_SPEEDUP[c];
            let rel = (ratio - published).abs() / published;
            assert!(rel < 0.02, "col {c}: {ratio:.2} vs {published}");
        }
    }

    #[test]
    fn table3_slowdown_row_is_consistent_with_the_cells() {
        for c in 0..6 {
            let ratio = TABLE3_MS[4][c] / TABLE3_MS[0][c];
            let published = TABLE3_SLOWDOWN[c];
            let rel = (ratio - published).abs() / published;
            assert!(rel < 0.06, "col {c}: {ratio:.2} vs {published}");
        }
    }

    #[test]
    fn paper_orderings_hold_within_the_published_data() {
        // Successive tour optimisations improve every instance (rows 1-4).
        for rows in TABLE2_MS.windows(2).take(3) {
            for (faster, slower) in rows[1].iter().zip(rows[0].iter()) {
                assert!(faster < slower);
            }
        }
        // Data parallelism wins below pcb442, loses above (the crossover).
        assert!(TABLE2_MS[7][0] < TABLE2_MS[5][0]);
        assert!(TABLE2_MS[7][1] < TABLE2_MS[5][1]);
        assert!(TABLE2_MS[7][5] > TABLE2_MS[5][5]);
        // Atomics beat every scatter variant everywhere.
        for c in 0..6 {
            assert!(TABLE3_MS[0][c] < TABLE3_MS[2][c]);
            assert!(TABLE4_MS[0][c] < TABLE4_MS[2][c]);
        }
    }
}
