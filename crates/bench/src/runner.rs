//! Experiment implementations — one function per table / figure.
//!
//! Every function returns a [`TableData`] whose measured cells come from
//! the SIMT simulator (GPU side) or the operation-counting CPU model
//! (sequential side), aligned with the paper's published values where the
//! paper prints them.
//!
//! Large launches are *block-sampled* (deterministic, evenly spaced
//! blocks, extrapolated counters — see `aco_simt::launch`); the sampling
//! thresholds live in [`sim_mode_for`] and are validated by the
//! cross-checking integration tests at small sizes.

use std::sync::Mutex;

use aco_core::cpu::ant_system::model as cpu_model;
use aco_core::cpu::{AntSystem, CpuModel, OpCounter, TourPolicy};
use aco_core::gpu::{run_pheromone, run_tour, ColonyBuffers, PheromoneStrategy, TourStrategy};
use aco_core::params::AcoParams;
use aco_core::quality::{cpu_quality, gpu_quality};
use aco_simt::rng::PmRng;
use aco_simt::{DeviceSpec, GlobalMem, SimMode};
use aco_tsp::{Tour, TspInstance};

use crate::paper;
use crate::table::TableData;

/// Fidelity policy for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModePolicy {
    /// Pick per instance size (full below 128 cities, sampled above).
    Auto,
    /// Force full-fidelity simulation everywhere (slow on pr1002+).
    Full,
    /// Force a fixed block-sample count.
    Sample(u32),
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Skip paper instances with more cities than this.
    pub max_n: usize,
    /// Fidelity policy.
    pub mode: ModePolicy,
    /// Worker threads for independent cells.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { max_n: 2392, mode: ModePolicy::Auto, threads: 4 }
    }
}

/// The simulation mode [`ModePolicy::Auto`] picks for an instance size.
pub fn sim_mode_for(policy: ModePolicy, n: usize) -> SimMode {
    match policy {
        ModePolicy::Full => SimMode::Full,
        ModePolicy::Sample(k) => SimMode::SampleBlocks(k),
        ModePolicy::Auto => {
            if n <= 128 {
                SimMode::Full
            } else if n <= 442 {
                SimMode::SampleBlocks(4)
            } else {
                SimMode::SampleBlocks(2)
            }
        }
    }
}

/// ACO parameters the paper's evaluation uses: `m = n`, `NN = 30`,
/// `alpha = 1`, `beta = 2`, `rho = 0.5`.
pub fn paper_params() -> AcoParams {
    AcoParams::default().nn(30).seed(0x2011)
}

fn instances_upto(max_n: usize) -> Vec<TspInstance> {
    aco_tsp::paper_instances().into_iter().filter(|i| i.n() <= max_n).collect()
}

/// One deferred table cell: returns `(row, col, value)` when run.
type CellJob<'a> = Box<dyn FnOnce() -> (usize, usize, f64) + Send + 'a>;

/// Run `jobs` across worker threads. Jobs may borrow from the caller
/// (scoped threads).
fn parallel_cells<'a>(jobs: Vec<CellJob<'a>>, threads: usize) -> Vec<(usize, usize, f64)> {
    let threads = threads.max(1);
    let jobs = Mutex::new(jobs);
    let out = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = { jobs.lock().expect("queue lock").pop() };
                match job {
                    Some(j) => {
                        let cell = j();
                        out.lock().expect("result lock").push(cell);
                    }
                    None => break,
                }
            });
        }
    });
    out.into_inner().expect("threads joined")
}

/// Table I: the device models (no measurement — printed for completeness
/// and pinned against the paper by `aco_simt::device` unit tests).
pub fn table1() -> String {
    let mut out = String::from("Table I: CUDA and hardware features (device models)\n");
    for dev in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()] {
        out.push_str(&format!(
            "  {}: {} SMs x {} cores @ {} MHz, {} max threads/block, {} threads/SM, \
             {} KB shared/SM, {}K registers/SM, {} GB/s, float atomics: {}\n",
            dev.name,
            dev.sm_count,
            dev.cores_per_sm,
            dev.clock_mhz,
            dev.max_threads_per_block,
            dev.max_threads_per_sm,
            dev.shared_mem_per_sm / 1024,
            dev.registers_per_sm / 1024,
            dev.mem_bandwidth_gbps,
            if dev.native_float_atomics { "native" } else { "CAS-emulated" },
        ));
    }
    out
}

/// Table II: tour-construction times, all 8 strategies x paper instances.
pub fn table2(dev: &DeviceSpec, cfg: &RunConfig) -> TableData {
    let instances = instances_upto(cfg.max_n);
    let params = paper_params();

    let mut jobs: Vec<CellJob<'_>> = Vec::new();
    for (r, strategy) in TourStrategy::ALL.into_iter().enumerate() {
        for (c, inst) in instances.iter().enumerate() {
            let dev = dev.clone();
            let params = params.clone();
            let mode = sim_mode_for(cfg.mode, inst.n());
            jobs.push(Box::new(move || {
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, inst, &params);
                let run = run_tour(
                    &dev,
                    &mut gm,
                    bufs,
                    strategy,
                    params.alpha,
                    params.beta,
                    params.seed,
                    0,
                    mode,
                )
                .expect("paper-size launches are valid");
                (r, c, run.total_ms())
            }));
        }
    }

    let mut values = vec![vec![f64::NAN; instances.len()]; 8];
    for (r, c, v) in parallel_cells(jobs, cfg.threads) {
        values[r][c] = v;
    }
    // Append the "Total speed-up attained" row (v1 / v8), as in the paper.
    let speedup: Vec<f64> = (0..instances.len()).map(|c| values[0][c] / values[7][c]).collect();
    values.push(speedup);

    let ncols = instances.len();
    let mut paper_vals: Vec<Vec<f64>> =
        paper::TABLE2_MS.iter().map(|row| row[..ncols].to_vec()).collect();
    paper_vals.push(paper::TABLE2_SPEEDUP[..ncols].to_vec());

    let mut rows: Vec<String> = paper::TABLE2_ROWS.iter().map(|s| s.to_string()).collect();
    rows.push("Total speed-up attained".to_string());

    TableData {
        title: format!("Table II: tour construction, {} — measured (paper)", dev.name),
        unit: "ms per iteration".into(),
        rows,
        cols: instances.iter().map(|i| i.name().to_string()).collect(),
        values,
        paper: Some(paper_vals),
    }
}

/// Shared implementation of Tables III (C1060) and IV (M2050): pheromone
/// update over host-built random tours (the update cost is
/// tour-content-insensitive; only edge positions matter).
fn table34(
    dev: &DeviceSpec,
    cfg: &RunConfig,
    paper_ms: &[[f64; 6]; 5],
    slowdown: &[f64; 6],
    title: &str,
) -> TableData {
    // The paper's pheromone tables stop at pr1002.
    let instances: Vec<TspInstance> =
        instances_upto(cfg.max_n.min(1002)).into_iter().take(6).collect();
    let params = paper_params();

    let mut jobs: Vec<CellJob<'_>> = Vec::new();
    for (r, strategy) in PheromoneStrategy::ALL.into_iter().enumerate() {
        for (c, inst) in instances.iter().enumerate() {
            let dev = dev.clone();
            let params = params.clone();
            let mode = sim_mode_for(cfg.mode, inst.n());
            jobs.push(Box::new(move || {
                let n = inst.n();
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, inst, &params);
                // Host-built tours, one per ant, deterministic.
                let tours: Vec<Tour> = (0..params.ants_for(n))
                    .map(|a| {
                        let mut pm = PmRng::new(PmRng::thread_seed(77, a as u64));
                        let mut order: Vec<u32> = (0..n as u32).collect();
                        for i in (1..n).rev() {
                            let j = (pm.next_f64() * (i + 1) as f64) as usize;
                            order.swap(i, j);
                        }
                        Tour::new_unchecked(order)
                    })
                    .collect();
                bufs.upload_tours(&mut gm, &tours, inst.matrix());
                let run = run_pheromone(&dev, &mut gm, bufs, strategy, params.rho, mode)
                    .expect("paper-size launches are valid");
                (r, c, run.time.total_ms)
            }));
        }
    }

    let mut values = vec![vec![f64::NAN; instances.len()]; 5];
    for (r, c, v) in parallel_cells(jobs, cfg.threads) {
        values[r][c] = v;
    }
    let slow: Vec<f64> = (0..instances.len()).map(|c| values[4][c] / values[0][c]).collect();
    values.push(slow);

    let ncols = instances.len();
    let mut paper_vals: Vec<Vec<f64>> = paper_ms.iter().map(|row| row[..ncols].to_vec()).collect();
    paper_vals.push(slowdown[..ncols].to_vec());
    let mut rows: Vec<String> = paper::TABLE34_ROWS.iter().map(|s| s.to_string()).collect();
    rows.push("Total slow-down incurred".to_string());

    TableData {
        title: title.to_string(),
        unit: "ms per update".into(),
        rows,
        cols: instances.iter().map(|i| i.name().to_string()).collect(),
        values,
        paper: Some(paper_vals),
    }
}

/// Table III: pheromone update on the Tesla C1060.
pub fn table3(cfg: &RunConfig) -> TableData {
    table34(
        &DeviceSpec::tesla_c1060(),
        cfg,
        &paper::TABLE3_MS,
        &paper::TABLE3_SLOWDOWN,
        "Table III: pheromone update, Tesla C1060 — measured (paper)",
    )
}

/// Table IV: pheromone update on the Tesla M2050.
pub fn table4(cfg: &RunConfig) -> TableData {
    table34(
        &DeviceSpec::tesla_m2050(),
        cfg,
        &paper::TABLE4_MS,
        &paper::TABLE4_SLOWDOWN,
        "Table IV: pheromone update, Tesla M2050 — measured (paper)",
    )
}

/// CPU-side counters for one construction phase, measured on a few ants
/// and scaled to the full colony (ants are statistically identical).
/// Includes the per-iteration `choice_info` recomputation, mirroring what
/// the GPU rows of Table II include.
pub fn cpu_tour_ms(inst: &TspInstance, params: &AcoParams, policy: TourPolicy) -> f64 {
    let n = inst.n();
    let m = params.ants_for(n);
    let model = CpuModel::default();
    let mut counters = cpu_model::choice_counters(n);

    // Physically measure a handful of ants, scale to m.
    let aco = AntSystem::new(inst, params.clone());
    let sample = if n <= 442 { 8.min(m) } else { 2 };
    let mut tour_c = OpCounter::default();
    for a in 0..sample {
        let mut rng = PmRng::new(PmRng::thread_seed(params.seed, a as u64));
        let _ = aco.construct_one(&mut rng, policy, &mut tour_c);
    }
    let scale = m as f64 / sample as f64;
    let scaled = OpCounter {
        alu: (tour_c.alu as f64 * scale) as u64,
        flops: (tour_c.flops as f64 * scale) as u64,
        pow_calls: (tour_c.pow_calls as f64 * scale) as u64,
        loads: (tour_c.loads as f64 * scale) as u64,
        stores: (tour_c.stores as f64 * scale) as u64,
        rng: (tour_c.rng as f64 * scale) as u64,
        branches: (tour_c.branches as f64 * scale) as u64,
    };
    counters.merge(&scaled);
    model.time_ms(&counters)
}

/// Figure 4(a)/(b) generator: tour-construction speed-up (CPU / GPU) per
/// instance on both devices.
fn fig4(
    cfg: &RunConfig,
    policy: TourPolicy,
    strategy: TourStrategy,
    title: &str,
    peak: (f64, f64),
) -> TableData {
    let instances = instances_upto(cfg.max_n);
    let params = paper_params();

    // CPU reference times (modeled from measured counters).
    let cpu_ms: Vec<f64> =
        instances.iter().map(|inst| cpu_tour_ms(inst, &params, policy)).collect();

    let devices = [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()];
    let mut jobs: Vec<CellJob<'_>> = Vec::new();
    for (r, dev) in devices.iter().enumerate() {
        for (c, inst) in instances.iter().enumerate() {
            let dev = dev.clone();
            let params = params.clone();
            let mode = sim_mode_for(cfg.mode, inst.n());
            jobs.push(Box::new(move || {
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, inst, &params);
                let run = run_tour(
                    &dev,
                    &mut gm,
                    bufs,
                    strategy,
                    params.alpha,
                    params.beta,
                    params.seed,
                    0,
                    mode,
                )
                .expect("paper-size launches are valid");
                (r, c, run.total_ms())
            }));
        }
    }

    let mut gpu_ms = vec![vec![f64::NAN; instances.len()]; 2];
    for (r, c, v) in parallel_cells(jobs, cfg.threads) {
        gpu_ms[r][c] = v;
    }
    let values: Vec<Vec<f64>> =
        (0..2).map(|r| (0..instances.len()).map(|c| cpu_ms[c] / gpu_ms[r][c]).collect()).collect();

    TableData {
        title: format!("{title} — paper peaks: {}x (C1060), {}x (M2050)", peak.0, peak.1),
        unit: "speed-up factor (sequential CPU time / GPU time; >1 = GPU wins)".into(),
        rows: vec!["Tesla C1060".into(), "Tesla M2050".into()],
        cols: instances.iter().map(|i| i.name().to_string()).collect(),
        values,
        paper: None,
    }
}

/// Figure 4(a): NN-list construction speed-up.
pub fn fig4a(cfg: &RunConfig) -> TableData {
    fig4(
        cfg,
        TourPolicy::NearestNeighborList,
        TourStrategy::NNListSharedTex,
        "Figure 4(a): tour construction speed-up, NN list (NN = 30)",
        paper::FIG4A_PEAK,
    )
}

/// Figure 4(b): fully probabilistic, data-parallel kernel speed-up.
pub fn fig4b(cfg: &RunConfig) -> TableData {
    fig4(
        cfg,
        TourPolicy::FullProbabilistic,
        TourStrategy::DataParallelTex,
        "Figure 4(b): tour construction speed-up, fully probabilistic",
        paper::FIG4B_PEAK,
    )
}

/// Figure 5: pheromone-update speed-up of the best kernel (atomic +
/// shared) over the sequential update.
pub fn fig5(cfg: &RunConfig) -> TableData {
    let instances = instances_upto(cfg.max_n);
    let params = paper_params();
    let model = CpuModel::default();
    let cpu_ms: Vec<f64> = instances
        .iter()
        .map(|i| model.time_ms(&cpu_model::update_counters(i.n(), params.ants_for(i.n()))))
        .collect();

    let devices = [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()];
    let mut jobs: Vec<CellJob<'_>> = Vec::new();
    for (r, dev) in devices.iter().enumerate() {
        for (c, inst) in instances.iter().enumerate() {
            let dev = dev.clone();
            let params = params.clone();
            let mode = sim_mode_for(cfg.mode, inst.n());
            jobs.push(Box::new(move || {
                let n = inst.n();
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, inst, &params);
                let tours: Vec<Tour> = (0..params.ants_for(n))
                    .map(|a| {
                        let mut pm = PmRng::new(PmRng::thread_seed(99, a as u64));
                        let mut order: Vec<u32> = (0..n as u32).collect();
                        for i in (1..n).rev() {
                            let j = (pm.next_f64() * (i + 1) as f64) as usize;
                            order.swap(i, j);
                        }
                        Tour::new_unchecked(order)
                    })
                    .collect();
                bufs.upload_tours(&mut gm, &tours, inst.matrix());
                let run = run_pheromone(
                    &dev,
                    &mut gm,
                    bufs,
                    PheromoneStrategy::AtomicShared,
                    params.rho,
                    mode,
                )
                .expect("paper-size launches are valid");
                (r, c, run.time.total_ms)
            }));
        }
    }

    let mut gpu_ms = vec![vec![f64::NAN; instances.len()]; 2];
    for (r, c, v) in parallel_cells(jobs, cfg.threads) {
        gpu_ms[r][c] = v;
    }
    let values: Vec<Vec<f64>> =
        (0..2).map(|r| (0..instances.len()).map(|c| cpu_ms[c] / gpu_ms[r][c]).collect()).collect();

    TableData {
        title: format!(
            "Figure 5: pheromone update speed-up — paper peaks: {}x (C1060), {}x (M2050)",
            paper::FIG5_PEAK.0,
            paper::FIG5_PEAK.1
        ),
        unit: "speed-up factor (sequential CPU time / GPU time; >1 = GPU wins)".into(),
        rows: vec!["Tesla C1060".into(), "Tesla M2050".into()],
        cols: instances.iter().map(|i| i.name().to_string()).collect(),
        values,
        paper: None,
    }
}

/// Ablation: the data-parallel kernel's thread-block layout. The paper
/// asserts an "empirically demonstrated optimum thread block layout";
/// this sweep shows where the optimum sits in the model (reduction depth
/// vs occupancy vs tile count trade-off).
pub fn ablation_block(cfg: &RunConfig) -> TableData {
    use aco_core::gpu::tour::DataParallelTourKernel;
    let instances: Vec<TspInstance> =
        instances_upto(cfg.max_n.min(1002)).into_iter().filter(|i| i.n() >= 100).collect();
    let params = paper_params();
    let blocks = [32u32, 64, 128, 256, 512];
    let dev = DeviceSpec::tesla_c1060();

    let mut jobs: Vec<CellJob<'_>> = Vec::new();
    for (r, &block) in blocks.iter().enumerate() {
        for (c, inst) in instances.iter().enumerate() {
            let dev = dev.clone();
            let params = params.clone();
            let mode = sim_mode_for(cfg.mode, inst.n());
            jobs.push(Box::new(move || {
                // Tile count caps at 32 (bit-packed tabu): skip infeasible
                // combinations.
                if inst.n().div_ceil(block as usize) > 32 {
                    return (r, c, f64::NAN);
                }
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, inst, &params);
                let ck = aco_core::gpu::choice::ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
                aco_simt::launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full)
                    .expect("choice kernel fits");
                let k = DataParallelTourKernel {
                    bufs,
                    texture: true,
                    seed: params.seed,
                    iteration: 0,
                    block_override: Some(block),
                };
                let run = aco_simt::launch(&dev, &k.config(), &k, &mut gm, mode)
                    .expect("paper-size launches are valid");
                (r, c, run.time.total_ms)
            }));
        }
    }
    let mut values = vec![vec![f64::NAN; instances.len()]; blocks.len()];
    for (r, c, v) in parallel_cells(jobs, cfg.threads) {
        values[r][c] = v;
    }
    TableData {
        title: "Ablation: data-parallel thread-block layout (Tesla C1060)".into(),
        unit: "ms per construction (texture variant)".into(),
        rows: blocks.iter().map(|b| format!("{b} threads/block")).collect(),
        cols: instances.iter().map(|i| i.name().to_string()).collect(),
        values,
        paper: None,
    }
}

/// Ablation: candidate-list depth for the NN-list kernel (the paper fixes
/// NN = 30, citing 15–40 as the usual range).
pub fn ablation_nn(cfg: &RunConfig) -> TableData {
    let instances: Vec<TspInstance> =
        instances_upto(cfg.max_n.min(1002)).into_iter().filter(|i| i.n() >= 100).collect();
    let depths = [10usize, 20, 30, 40];
    let dev = DeviceSpec::tesla_c1060();

    let mut jobs: Vec<CellJob<'_>> = Vec::new();
    for (r, &nn) in depths.iter().enumerate() {
        for (c, inst) in instances.iter().enumerate() {
            let dev = dev.clone();
            let mode = sim_mode_for(cfg.mode, inst.n());
            jobs.push(Box::new(move || {
                let params = paper_params().nn(nn);
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, inst, &params);
                let run = run_tour(
                    &dev,
                    &mut gm,
                    bufs,
                    TourStrategy::NNListSharedTex,
                    params.alpha,
                    params.beta,
                    params.seed,
                    0,
                    mode,
                )
                .expect("paper-size launches are valid");
                (r, c, run.total_ms())
            }));
        }
    }
    let mut values = vec![vec![f64::NAN; instances.len()]; depths.len()];
    for (r, c, v) in parallel_cells(jobs, cfg.threads) {
        values[r][c] = v;
    }
    TableData {
        title: "Ablation: candidate-list depth for the NN-list kernel (Tesla C1060)".into(),
        unit: "ms per construction (version 6)".into(),
        rows: depths.iter().map(|d| format!("NN = {d}")).collect(),
        cols: instances.iter().map(|i| i.name().to_string()).collect(),
        values,
        paper: None,
    }
}

/// Solution-quality comparison (the paper's "results are similar" claim):
/// mean best tour over several seeds, CPU AS vs two GPU strategies.
pub fn quality(cfg: &RunConfig) -> TableData {
    let instances: Vec<TspInstance> = instances_upto(cfg.max_n.min(100));
    let params = AcoParams::default().nn(20);
    let seeds = [1u64, 2, 3, 4, 5];
    let iters = 25;
    let dev = DeviceSpec::tesla_m2050();

    let mut rows = Vec::new();
    let mut values = Vec::new();
    let mut cols = Vec::new();
    for inst in &instances {
        cols.push(inst.name().to_string());
    }

    let cpu: Vec<f64> = instances
        .iter()
        .map(|i| cpu_quality(i, &params, TourPolicy::NearestNeighborList, iters, &seeds).mean)
        .collect();
    rows.push("CPU Ant System (NN list)".into());
    values.push(cpu.clone());

    let gpu_nn: Vec<f64> = instances
        .iter()
        .map(|i| {
            gpu_quality(
                i,
                &params,
                &dev,
                TourStrategy::NNList,
                PheromoneStrategy::AtomicShared,
                iters,
                &seeds,
            )
            .mean
        })
        .collect();
    rows.push("GPU task NN list".into());
    values.push(gpu_nn);

    let gpu_dp: Vec<f64> = instances
        .iter()
        .map(|i| {
            gpu_quality(
                i,
                &params,
                &dev,
                TourStrategy::DataParallelTex,
                PheromoneStrategy::AtomicShared,
                iters,
                &seeds,
            )
            .mean
        })
        .collect();
    rows.push("GPU data parallel".into());
    values.push(gpu_dp);

    TableData {
        title: "Solution quality: mean best tour length (5 seeds, 25 iterations)".into(),
        unit: "tour length (lower is better)".into(),
        rows,
        cols,
        values,
        paper: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RunConfig {
        RunConfig { max_n: 100, mode: ModePolicy::Auto, threads: 2 }
    }

    #[test]
    fn table2_small_reproduces_row_ordering() {
        let t = table2(&DeviceSpec::tesla_c1060(), &small_cfg());
        assert_eq!(t.rows.len(), 9);
        assert_eq!(t.cols, vec!["att48", "kroC100"]);
        for c in 0..2 {
            assert!(t.values[1][c] < t.values[0][c], "choice kernel helps (col {c})");
            assert!(t.values[2][c] < t.values[1][c], "device RNG helps (col {c})");
            assert!(t.values[3][c] < t.values[2][c], "NN list helps (col {c})");
            // Data parallelism wins on small instances (the paper's claim).
            assert!(t.values[7][c] < t.values[5][c], "DP beats task NN (col {c})");
            // Total speed-up row is v1/v8.
            let ratio = t.values[0][c] / t.values[7][c];
            assert!((t.values[8][c] - ratio).abs() < 1e-9);
            assert!(t.values[8][c] > 5.0, "total speed-up should be large");
        }
    }

    #[test]
    fn table3_small_reproduces_row_ordering() {
        let t = table3(&small_cfg());
        for c in 0..2 {
            assert!(t.values[0][c] <= t.values[1][c] * 1.05, "shared <= plain atomics");
            assert!(t.values[1][c] < t.values[2][c], "atomics beat reduction");
            assert!(t.values[2][c] < t.values[3][c], "reduction beats tiled scatter");
            assert!(t.values[3][c] < t.values[4][c], "tiling beats plain scatter");
            assert!(t.values[5][c] > 5.0, "slow-down factor is large");
        }
    }

    #[test]
    fn table4_atomics_faster_than_table3() {
        let t3 = table3(&small_cfg());
        let t4 = table4(&small_cfg());
        for c in 0..2 {
            assert!(t4.values[0][c] < t3.values[0][c], "Fermi native atomics beat GT200 emulation");
        }
    }

    #[test]
    fn fig5_speedup_grows_with_n() {
        let cfg = RunConfig { max_n: 442, mode: ModePolicy::Auto, threads: 4 };
        let t = fig5(&cfg);
        // Paper: "a linear speed-up along with the problem size".
        for r in 0..2 {
            assert!(
                t.values[r][3] > t.values[r][0],
                "row {r}: speed-up must grow from att48 to pcb442"
            );
        }
        // M2050 > C1060 (native atomics), as in Figure 5.
        assert!(t.values[1][3] > t.values[0][3]);
    }

    #[test]
    fn cpu_tour_ms_scales_superlinearly() {
        let params = paper_params();
        let insts = instances_upto(280);
        let a = cpu_tour_ms(&insts[0], &params, TourPolicy::FullProbabilistic);
        let b = cpu_tour_ms(&insts[2], &params, TourPolicy::FullProbabilistic);
        // n grows ~5.8x from 48 to 280; full construction is ~cubic.
        assert!(b > 20.0 * a, "expected superlinear growth: {a} -> {b}");
    }
}
