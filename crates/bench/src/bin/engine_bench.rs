//! Engine throughput benchmark → `BENCH_engine.json`.
//!
//! ```text
//! engine_bench [--jobs N] [--workers W] [--n CITIES] [--iters I] [--out FILE]
//! ```
//!
//! Submits a fixed, seeded batch of solve jobs to the engine at several
//! worker counts and records wall-clock throughput plus cache
//! effectiveness. The JSON output is append-friendly for tracking the
//! perf trajectory across PRs: one object with a `runs` array, one entry
//! per worker count.

use std::sync::Arc;
use std::time::Instant;

use aco_core::cpu::TourPolicy;
use aco_core::AcoParams;
use aco_engine::{Backend, Engine, EngineConfig, SolveRequest};

struct Args {
    jobs: usize,
    workers: Vec<usize>,
    n: usize,
    iters: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Args {
    let mut args =
        Args { jobs: 16, workers: vec![1, 2, 4], n: 48, iters: 5, out: "BENCH_engine.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--jobs" => args.jobs = next("--jobs").parse().expect("--jobs N"),
            "--workers" => {
                args.workers = next("--workers")
                    .split(',')
                    .map(|w| w.parse().expect("--workers W1,W2,..."))
                    .collect();
            }
            "--n" => args.n = next("--n").parse().expect("--n CITIES"),
            "--iters" => args.iters = next("--iters").parse().expect("--iters I"),
            "--out" => args.out = next("--out").into(),
            other => {
                eprintln!(
                    "unknown arg {other}\nusage: engine_bench [--jobs N] [--workers W1,W2] \
                     [--n CITIES] [--iters I] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The benchmark batch: a seed sweep over three backends on two shared
/// instances, so the artifact cache is exercised the way real parameter
/// studies exercise it.
fn batch(jobs: usize, n: usize, iters: usize) -> Vec<SolveRequest> {
    let a = Arc::new(aco_tsp::uniform_random("bench-a", n, 1000.0, 0xBE));
    let b = Arc::new(aco_tsp::uniform_random("bench-b", n + n / 2, 1000.0, 0xEF));
    let params = AcoParams::default().nn(15.min(n - 1)).ants(n.min(32));
    (0..jobs)
        .map(|j| {
            let inst = if j % 2 == 0 { Arc::clone(&a) } else { Arc::clone(&b) };
            let backend = match j % 3 {
                0 => Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
                1 => Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 4 },
                _ => Backend::Auto,
            };
            SolveRequest::new(inst, params.clone())
                .backend(backend)
                .iterations(iters)
                .seed(j as u64)
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let mut runs = Vec::new();

    for &workers in &args.workers {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        // Instance generation (O(n^2) matrices) stays outside the timed
        // region; wall_ms measures engine throughput only.
        let reqs = batch(args.jobs, args.n, args.iters);
        let t0 = Instant::now();
        let reports = engine.run_batch(reqs);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let ok = reports.iter().filter(|r| r.is_ok()).count();
        let best: u64 = reports
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|rep| rep.best_len))
            .min()
            .unwrap_or(0);
        let stats = engine.cache_stats();
        println!(
            "workers {workers}: {ok}/{} jobs in {wall_ms:.1} ms ({:.1} jobs/s), best {best}, \
             cache {}h/{}m",
            args.jobs,
            ok as f64 / (wall_ms / 1e3),
            stats.artifact_hits,
            stats.artifact_misses,
        );
        runs.push(format!(
            "    {{\"workers\": {workers}, \"jobs\": {}, \"ok\": {ok}, \"wall_ms\": {wall_ms:.3}, \
             \"jobs_per_sec\": {:.3}, \"best\": {best}, \"artifact_hits\": {}, \
             \"artifact_misses\": {}, \"decision_hits\": {}, \"decision_misses\": {}}}",
            args.jobs,
            ok as f64 / (wall_ms / 1e3),
            stats.artifact_hits,
            stats.artifact_misses,
            stats.decision_hits,
            stats.decision_misses,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"engine_batch\",\n  \"jobs\": {},\n  \"n\": {},\n  \"iterations\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        args.jobs,
        args.n,
        args.iters,
        runs.join(",\n")
    );
    match std::fs::write(&args.out, &json) {
        Ok(()) => println!("-> {}", args.out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", args.out.display());
            std::process::exit(1);
        }
    }
}
