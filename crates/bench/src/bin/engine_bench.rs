//! Engine throughput benchmark → `BENCH_engine.json`.
//!
//! ```text
//! engine_bench [--jobs N] [--workers W1,W2] [--n CITIES] [--iters I]
//!              [--label S] [--append] [--out FILE]
//! engine_bench --check FILE [--tolerance T]
//! ```
//!
//! Submits a fixed, seeded batch of solve jobs to the engine at several
//! worker counts and records wall-clock throughput plus cache
//! effectiveness. The JSON artifact holds a **history**: one entry per
//! PR (label + batch shape + per-worker-count runs), so the perf
//! trajectory across PRs stays in the file. `--append` keeps existing
//! entries (the legacy single-entry format is converted in place);
//! without it the file is replaced by a one-entry history.
//!
//! `--check` is the CI regression gate: it re-runs the **last** history
//! entry's batch at 1 worker and fails (exit 1) if fresh throughput
//! drops more than `--tolerance` (default 0.20) below that entry's
//! 1-worker run. Same-machine comparisons are meaningful; cross-machine
//! ones are advisory — which is why the gate re-measures instead of
//! trusting absolute numbers.

use std::sync::Arc;
use std::time::Instant;

use aco_bench::json::Json;
use aco_core::cpu::TourPolicy;
use aco_core::gpu::{PheromoneStrategy, TourStrategy};
use aco_core::AcoParams;
use aco_engine::{
    Backend, DeviceProfile, DynamicsConfig, Engine, EngineConfig, Failover, FaultPlan, GpuDevice,
    JournalConfig, LocalSearch, LsScope, RetryPolicy, SolveRequest, WindowConfig,
};

/// Submit→first-progress-event latency (ms): how long after `submit`
/// a caller's `JobHandle::progress()` stream delivers its first
/// iteration-best event on an otherwise idle 1-worker engine. The
/// artifact cache is warmed first, so this prices the lifecycle path
/// (queue → schedule → first colony iteration → event), not NN-list
/// construction. Minimum of five samples (latency floors, like all
/// latency benches, are min-stable).
fn measure_first_event_ms(n: usize, iters: usize) -> f64 {
    let engine = Engine::new(EngineConfig::with_workers(1));
    let inst = Arc::new(aco_tsp::uniform_random("bench-latency", n, 1000.0, 0xA1));
    let params = AcoParams::default().nn(15.min(n - 1)).ants(n.min(32));
    let req = |seed: u64| {
        SolveRequest::new(Arc::clone(&inst), params.clone())
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(iters)
            .seed(seed)
    };
    engine.submit(req(0)).wait().expect("warm-up job");
    (1..=5)
        .map(|s| {
            let t0 = Instant::now();
            let h = engine.submit(req(s));
            h.progress().next().expect("job emits progress");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            h.wait().expect("job finishes");
            ms
        })
        .fold(f64::INFINITY, f64::min)
}

struct Args {
    jobs: usize,
    workers: Vec<usize>,
    n: usize,
    iters: usize,
    label: String,
    append: bool,
    check: Option<std::path::PathBuf>,
    tolerance: f64,
    out: std::path::PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 12,
        workers: vec![1, 2, 4],
        n: 48,
        iters: 5,
        label: "dev".into(),
        append: false,
        check: None,
        tolerance: 0.20,
        out: "BENCH_engine.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--jobs" => args.jobs = next("--jobs").parse().expect("--jobs N"),
            "--workers" => {
                args.workers = next("--workers")
                    .split(',')
                    .map(|w| w.parse().expect("--workers W1,W2,..."))
                    .collect();
            }
            "--n" => args.n = next("--n").parse().expect("--n CITIES"),
            "--iters" => args.iters = next("--iters").parse().expect("--iters I"),
            "--label" => {
                args.label = next("--label");
                // Labels are interpolated into the JSON artifact; keep
                // them to characters that need no escaping.
                if args.label.is_empty()
                    || !args.label.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
                {
                    eprintln!("--label must be non-empty [A-Za-z0-9._-]: {:?}", args.label);
                    std::process::exit(2);
                }
            }
            "--append" => args.append = true,
            "--check" => args.check = Some(next("--check").into()),
            "--tolerance" => args.tolerance = next("--tolerance").parse().expect("--tolerance T"),
            "--out" => args.out = next("--out").into(),
            other => {
                eprintln!(
                    "unknown arg {other}\nusage: engine_bench [--jobs N] [--workers W1,W2] \
                     [--n CITIES] [--iters I] [--label S] [--append] [--out FILE]\n       \
                     engine_bench --check FILE [--tolerance T]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The benchmark batch: a seed sweep over three backends on two shared
/// instances, so the artifact cache is exercised the way real parameter
/// studies exercise it.
fn batch(jobs: usize, n: usize, iters: usize) -> Vec<SolveRequest> {
    let a = Arc::new(aco_tsp::uniform_random("bench-a", n, 1000.0, 0xBE));
    let b = Arc::new(aco_tsp::uniform_random("bench-b", n + n / 2, 1000.0, 0xEF));
    let params = AcoParams::default().nn(15.min(n - 1)).ants(n.min(32));
    (0..jobs)
        .map(|j| {
            let inst = if j % 2 == 0 { Arc::clone(&a) } else { Arc::clone(&b) };
            let backend = match j % 3 {
                0 => Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
                1 => Backend::CpuParallel { policy: TourPolicy::NearestNeighborList, threads: 4 },
                _ => Backend::Auto,
            };
            SolveRequest::new(inst, params.clone())
                .backend(backend)
                .iterations(iters)
                .seed(j as u64)
        })
        .collect()
}

#[derive(Debug, Clone)]
struct RunRec {
    workers: usize,
    jobs: usize,
    ok: usize,
    wall_ms: f64,
    jobs_per_sec: f64,
    best: u64,
    artifact_hits: u64,
    artifact_misses: u64,
    decision_hits: u64,
    decision_misses: u64,
    /// Cache-pressure counters (0 in pre-PR-4 entries, which did not
    /// record them).
    artifact_evictions: u64,
    decision_evictions: u64,
}

/// Per-device utilisation of the GPU sharding run.
#[derive(Debug, Clone)]
struct DeviceRec {
    name: String,
    model: String,
    jobs: u64,
    busy_ms: f64,
    /// `busy_ms / wall_ms` of the sharding run (can exceed 1 only with
    /// more workers than devices; on this 1-worker run it is ≤ 1).
    util: f64,
    max_depth: usize,
    assigned_ms: f64,
}

/// The PR-4 device-pool section of a history entry: a 12-job explicit
/// GPU batch sharded over a 4-device pool (2 × C1060, 2 × M2050), with
/// per-device utilisation and peak run-queue depth.
#[derive(Debug, Clone)]
struct DevicesRec {
    pool: usize,
    jobs: usize,
    wall_ms: f64,
    devices_used: usize,
    per_device: Vec<DeviceRec>,
}

/// The PR-5 local-search section of a history entry: the same seeded
/// batch solved twice — construction only vs per-iteration `TwoOptNn` on
/// the iteration best — recording the quality / throughput pair and the
/// summed `local_search_improvement` telemetry.
#[derive(Debug, Clone)]
struct LocalSearchRec {
    strategy: String,
    scope: String,
    jobs: usize,
    off_wall_ms: f64,
    off_best: u64,
    on_wall_ms: f64,
    on_best: u64,
    improvement: u64,
}

/// The PR-6 observability-overhead section: the same seeded batch run
/// with observability off and on (the default), 1 worker, recording the
/// throughput pair. The `--check` gate treats overhead as **advisory**
/// (warn beyond 5%, never fail): single-run wall clocks on a 1-core
/// container are too noisy for a hard sub-5% gate.
#[derive(Debug, Clone)]
struct ObsOverheadRec {
    jobs: usize,
    off_jobs_per_sec: f64,
    on_jobs_per_sec: f64,
    /// `(off/on − 1) × 100`: percentage throughput lost to observability.
    overhead_pct: f64,
}

/// The PR-10 serving section: the same seeded batch run with the
/// observability endpoint off and on (rolling windows + journal + a live
/// idle HTTP server + its sampler thread), 1 worker. Serving is strictly
/// read-only, so both runs do identical solve work; the delta prices the
/// sampler's periodic snapshot bridging plus the idle endpoint threads.
/// The `--check` gate treats it as **advisory** (warn beyond 5%, never
/// fail), like every wall-clock pair on the 1-core container.
#[derive(Debug, Clone)]
struct ObsServeRec {
    jobs: usize,
    off_jobs_per_sec: f64,
    on_jobs_per_sec: f64,
    /// `(off/on − 1) × 100`: percentage throughput lost to idle serving.
    overhead_pct: f64,
}

/// The PR-9 search-dynamics section: the same seeded batch run with the
/// dynamics layer + event journal off and on, 1 worker. Dynamics adds an
/// O(n²) trail scan per iteration, so unlike the observability pair this
/// prices real extra work — the `--check` gate still treats it as
/// **advisory** (warn beyond 5%, never fail) because single-run 1-core
/// wall clocks cannot hard-gate at that resolution.
#[derive(Debug, Clone)]
struct DynamicsRec {
    jobs: usize,
    off_jobs_per_sec: f64,
    on_jobs_per_sec: f64,
    /// `(off/on − 1) × 100`: percentage throughput lost to dynamics +
    /// journal recording.
    overhead_pct: f64,
    /// Journal lines the on-run recorded (sanity: the sink saw the batch).
    journal_lines: u64,
}

/// The PR-7 fault-tolerance section: the same seeded GPU batch run
/// three ways — default engine, retry supervision armed but never
/// triggered (prices the supervision plumbing; the `--check` gate warns
/// beyond 5%, advisory like the observability pair), and a flaky-device
/// fault plan actually firing (recovery throughput, for the record).
#[derive(Debug, Clone)]
struct FaultsRec {
    jobs: usize,
    plain_jobs_per_sec: f64,
    supervised_jobs_per_sec: f64,
    /// `max(0, (plain/supervised − 1)) × 100`: throughput lost to idle
    /// retry supervision. Positive always means *regression*; runs where
    /// the supervised batch measured faster than plain (1-core wall-clock
    /// noise — the PR-7 entry recorded one as "-7.4% overhead") clamp to
    /// 0 instead of recording a negative "overhead".
    overhead_pct: f64,
    faulted_jobs_per_sec: f64,
    /// Jobs in the faulted run that needed more than one attempt.
    retried_jobs: u64,
}

/// The PR-8 batched local-search section: one explicit GPU job running
/// per-iteration `TwoOptNn` over **every** ant, with the engine's kernel
/// profiler counting per-family launches. The batched `two_opt_*_all`
/// family issues at most `pos + propose + select + apply = 4` launches
/// per round — `O(rounds)` total, independent of the colony size — and
/// the per-ant family must never appear (that would be the old
/// `O(m · rounds)` loop). Launch counts are deterministic, so the
/// `--check` gate enforces the bound hard, unlike the wall-clock
/// advisories.
#[derive(Debug, Clone)]
struct BatchedLsRec {
    ants: usize,
    iterations: usize,
    /// Total best-improvement rounds (= `two_opt_pos_all` launches).
    rounds: u64,
    /// Total `two_opt_*_all` launches (bounded by `4 × rounds`).
    batched_launches: u64,
    /// Per-ant `two_opt_*` launches (must stay 0 under `AllAnts`).
    per_ant_launches: u64,
    /// Device `or_opt` family launches from a second Or-opt job (the
    /// pre-PR-8 host-fallback path launched none).
    or_opt_launches: u64,
    wall_ms: f64,
}

#[derive(Debug, Clone)]
struct HistEntry {
    label: String,
    jobs: usize,
    n: usize,
    iterations: usize,
    host_cpus: usize,
    /// Submit→first-progress-event latency, ms (0 in pre-lifecycle
    /// entries, which had no progress streams).
    first_event_ms: f64,
    runs: Vec<RunRec>,
    /// Device-pool sharding telemetry (absent in pre-PR-4 entries).
    devices: Option<DevicesRec>,
    /// Local-search quality/throughput pair (absent in pre-PR-5 entries).
    local_search: Option<LocalSearchRec>,
    /// Observability on/off throughput pair (absent in pre-PR-6 entries).
    obs_overhead: Option<ObsOverheadRec>,
    /// Fault-tolerance throughput triple (absent in pre-PR-7 entries).
    faults: Option<FaultsRec>,
    /// Batched-LS launch accounting (absent in pre-PR-8 entries).
    batched_ls: Option<BatchedLsRec>,
    /// Search-dynamics on/off throughput pair (absent in pre-PR-9 entries).
    dynamics: Option<DynamicsRec>,
    /// Serving on/off throughput pair (absent in pre-PR-10 entries).
    obs_serve: Option<ObsServeRec>,
}

fn measure(workers: usize, jobs: usize, n: usize, iters: usize) -> RunRec {
    let engine = Engine::new(EngineConfig::with_workers(workers));
    // Instance generation (O(n^2) matrices) stays outside the timed
    // region; wall_ms measures engine throughput only.
    let reqs = batch(jobs, n, iters);
    let t0 = Instant::now();
    let reports = engine.run_batch(reqs);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let ok = reports.iter().filter(|r| r.is_ok()).count();
    let best: u64 =
        reports.iter().filter_map(|r| r.as_ref().ok().map(|rep| rep.best_len)).min().unwrap_or(0);
    let stats = engine.cache_stats();
    let rec = RunRec {
        workers,
        jobs,
        ok,
        wall_ms,
        jobs_per_sec: ok as f64 / (wall_ms / 1e3),
        best,
        artifact_hits: stats.artifact_hits,
        artifact_misses: stats.artifact_misses,
        decision_hits: stats.decision_hits,
        decision_misses: stats.decision_misses,
        artifact_evictions: stats.artifact_evictions,
        decision_evictions: stats.decision_evictions,
    };
    println!(
        "workers {workers}: {ok}/{jobs} jobs in {wall_ms:.1} ms ({:.1} jobs/s), best {best}, \
         cache {}h/{}m/{}e (decisions {}h/{}m/{}e)",
        rec.jobs_per_sec,
        rec.artifact_hits,
        rec.artifact_misses,
        rec.artifact_evictions,
        rec.decision_hits,
        rec.decision_misses,
        rec.decision_evictions,
    );
    rec
}

/// The device-pool sharding run: a 12-job explicit GPU batch (alternating
/// C1060/M2050 model jobs) on a 4-device pool, 1 worker (so the numbers
/// are stable on a 1-CPU container). Placement telemetry — per-device job
/// counts, peak run-queue depth, assigned backlog — is deterministic;
/// busy/utilisation are wall-clock observability.
fn measure_devices(n: usize, iters: usize) -> DevicesRec {
    let pool = vec![
        DeviceProfile::tesla_c1060("g0"),
        DeviceProfile::tesla_c1060("g1").sm_count(15),
        DeviceProfile::tesla_m2050("f0"),
        DeviceProfile::tesla_m2050("f1"),
    ];
    let pool_size = pool.len();
    let engine = Engine::new(EngineConfig::with_workers(1).devices(pool));
    let inst = Arc::new(aco_tsp::uniform_random("bench-gpu", n, 1000.0, 0xD0));
    let params = AcoParams::default().nn(15.min(n - 1)).ants(n.min(32));
    let jobs = 12;
    let t0 = Instant::now();
    let reports = engine.run_batch((0..jobs).map(|j| {
        let device = if j % 2 == 0 { GpuDevice::TeslaC1060 } else { GpuDevice::TeslaM2050 };
        SolveRequest::new(Arc::clone(&inst), params.clone())
            .backend(Backend::Gpu {
                device,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(iters)
            .seed(j as u64)
    }));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(reports.iter().all(|r| r.is_ok()), "GPU sharding batch must solve");
    let per_device: Vec<DeviceRec> = engine
        .device_stats()
        .into_iter()
        .map(|d| DeviceRec {
            name: d.name,
            model: d.model.label().to_string(),
            jobs: d.completed,
            busy_ms: d.busy_ms,
            util: if wall_ms > 0.0 { d.busy_ms / wall_ms } else { 0.0 },
            max_depth: d.peak_depth,
            assigned_ms: d.assigned_ms,
        })
        .collect();
    let devices_used = per_device.iter().filter(|d| d.jobs > 0).count();
    for d in &per_device {
        println!(
            "device {} ({}): {} jobs, busy {:.1} ms (util {:.2}), max depth {}, assigned {:.2} ms",
            d.name, d.model, d.jobs, d.busy_ms, d.util, d.max_depth, d.assigned_ms
        );
    }
    println!(
        "device pool: {jobs} GPU jobs sharded over {devices_used}/{pool_size} devices in \
         {wall_ms:.1} ms"
    );
    assert!(devices_used >= 2, "a 12-job GPU batch must actively share >= 2 devices");
    DevicesRec { pool: pool_size, jobs, wall_ms, devices_used, per_device }
}

/// The local-search pair: one seeded 8-job batch (6 CPU-sequential + 2
/// explicit-GPU jobs, so the `two_opt` kernel family is exercised) run
/// with local search off, then with per-iteration `TwoOptNn` on the
/// iteration best. 1 worker for stable wall numbers.
fn measure_local_search(n: usize, iters: usize) -> LocalSearchRec {
    let inst = Arc::new(aco_tsp::uniform_random("bench-ls", n, 1000.0, 0x15));
    let params = AcoParams::default().nn(15.min(n - 1)).ants(n.min(32));
    let jobs = 8;
    let batch = |ls: LocalSearch| {
        (0..jobs)
            .map(|j| {
                let backend = if j < 6 {
                    Backend::CpuSequential { policy: TourPolicy::NearestNeighborList }
                } else {
                    Backend::Gpu {
                        device: GpuDevice::TeslaM2050,
                        tour: TourStrategy::NNList,
                        pheromone: PheromoneStrategy::AtomicShared,
                    }
                };
                SolveRequest::new(Arc::clone(&inst), params.clone())
                    .backend(backend)
                    .iterations(iters)
                    .seed(j as u64)
                    .local_search(ls)
            })
            .collect::<Vec<_>>()
    };
    let run = |ls: LocalSearch| {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let t0 = Instant::now();
        let reports = engine.run_batch(batch(ls));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut best = u64::MAX;
        let mut improvement = 0u64;
        for r in &reports {
            let r = r.as_ref().expect("local-search batch must solve");
            best = best.min(r.best_len);
            improvement += r.local_search_improvement;
        }
        (wall_ms, best, improvement)
    };
    let (off_wall_ms, off_best, off_imp) = run(LocalSearch::None);
    assert_eq!(off_imp, 0, "no improvement without local search");
    let (on_wall_ms, on_best, improvement) = run(LocalSearch::TwoOptNn);
    // Per-iteration LS changes the pheromone trajectory, so neither
    // property is guaranteed for arbitrary --n/--iters shapes; record
    // the data point and warn instead of failing the run.
    if on_best > off_best {
        eprintln!(
            "warning: LS-on best {on_best} worse than LS-off {off_best} for this batch shape"
        );
    }
    if improvement == 0 {
        eprintln!("warning: iterated 2-opt reported no improvement for this batch shape");
    }
    let rec = LocalSearchRec {
        strategy: LocalSearch::TwoOptNn.label().to_string(),
        scope: "iter-best".to_string(),
        jobs,
        off_wall_ms,
        off_best,
        on_wall_ms,
        on_best,
        improvement,
    };
    println!(
        "local search ({} {}): best {} -> {} (improvement {}), wall {:.1} -> {:.1} ms",
        rec.strategy, rec.scope, off_best, on_best, improvement, off_wall_ms, on_wall_ms
    );
    rec
}

/// The observability on/off pair: the standard seeded batch at 1 worker,
/// solved once with the subsystem disabled and once enabled. Off runs
/// first so its cache is equally cold; determinism (pinned by
/// `tests/observability.rs`) guarantees both runs do identical solve
/// work, so the throughput delta isolates the recording overhead.
fn measure_obs_overhead(jobs: usize, n: usize, iters: usize) -> ObsOverheadRec {
    let run = |observe: bool| {
        let engine = Engine::new(EngineConfig::with_workers(1).observe(observe));
        let reqs = batch(jobs, n, iters);
        let t0 = Instant::now();
        let reports = engine.run_batch(reqs);
        let wall_s = t0.elapsed().as_secs_f64();
        let ok = reports.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, jobs, "observability batch must solve");
        ok as f64 / wall_s
    };
    let off_jobs_per_sec = run(false);
    let on_jobs_per_sec = run(true);
    let overhead_pct = if on_jobs_per_sec > 0.0 {
        (off_jobs_per_sec / on_jobs_per_sec - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "observability: {off_jobs_per_sec:.1} jobs/s off -> {on_jobs_per_sec:.1} jobs/s on \
         ({overhead_pct:+.1}% overhead)"
    );
    ObsOverheadRec { jobs, off_jobs_per_sec, on_jobs_per_sec, overhead_pct }
}

/// The dynamics on/off pair: the standard seeded batch at 1 worker,
/// solved once plain and once with dynamics tracking + the event journal
/// enabled. Off runs first so its cache is equally cold; the write-only
/// contract (pinned by `tests/dynamics.rs`) guarantees both runs do
/// identical solve work, so the delta isolates the per-iteration trail
/// scans plus journal recording.
fn measure_dynamics_overhead(jobs: usize, n: usize, iters: usize) -> DynamicsRec {
    let run = |dynamics: bool| {
        let mut config = EngineConfig::with_workers(1);
        if dynamics {
            config = config.dynamics(DynamicsConfig::default()).journal(JournalConfig::default());
        }
        let engine = Engine::new(config);
        let reqs = batch(jobs, n, iters);
        let t0 = Instant::now();
        let reports = engine.run_batch(reqs);
        let wall_s = t0.elapsed().as_secs_f64();
        let ok = reports.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, jobs, "dynamics batch must solve");
        let lines = engine.journal().map(|j| j.len() as u64 + j.evicted()).unwrap_or(0);
        (ok as f64 / wall_s, lines)
    };
    let (off_jobs_per_sec, _) = run(false);
    let (on_jobs_per_sec, journal_lines) = run(true);
    let overhead_pct = if on_jobs_per_sec > 0.0 {
        (off_jobs_per_sec / on_jobs_per_sec - 1.0) * 100.0
    } else {
        0.0
    };
    assert!(journal_lines > 0, "the journal must have recorded the batch");
    println!(
        "dynamics: {off_jobs_per_sec:.1} jobs/s off -> {on_jobs_per_sec:.1} jobs/s on \
         ({overhead_pct:+.1}% overhead, {journal_lines} journal lines)"
    );
    DynamicsRec { jobs, off_jobs_per_sec, on_jobs_per_sec, overhead_pct, journal_lines }
}

/// The serving on/off pair: the standard seeded batch at 1 worker,
/// solved once plain and once with the full read side live — rolling
/// windows, journal, and an idle `serve_observability` endpoint (sampler
/// thread ticking, no client traffic). Off runs first so its cache is
/// equally cold; serving is read-only (pinned by `tests/obs_serve.rs`),
/// so the delta isolates the sampler + endpoint cost.
fn measure_obs_serve(jobs: usize, n: usize, iters: usize) -> ObsServeRec {
    let run = |serve: bool| {
        let mut config = EngineConfig::with_workers(1);
        if serve {
            config = config
                .windows(WindowConfig::default().bucket_ms(100))
                .journal(JournalConfig::default());
        }
        let engine = Engine::new(config);
        let server =
            serve.then(|| engine.serve_observability("127.0.0.1:0").expect("bind endpoint"));
        let reqs = batch(jobs, n, iters);
        let t0 = Instant::now();
        let reports = engine.run_batch(reqs);
        let wall_s = t0.elapsed().as_secs_f64();
        drop(server); // graceful shutdown, outside the timed region's use
        let ok = reports.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, jobs, "serving batch must solve");
        ok as f64 / wall_s
    };
    let off_jobs_per_sec = run(false);
    let on_jobs_per_sec = run(true);
    let overhead_pct = if on_jobs_per_sec > 0.0 {
        (off_jobs_per_sec / on_jobs_per_sec - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "obs serve: {off_jobs_per_sec:.1} jobs/s off -> {on_jobs_per_sec:.1} jobs/s serving idle \
         ({overhead_pct:+.1}% overhead)"
    );
    ObsServeRec { jobs, off_jobs_per_sec, on_jobs_per_sec, overhead_pct }
}

/// The fault-tolerance triple: an explicit GPU batch on a twin-device
/// pool run (1) on the default engine, (2) with retry supervision armed
/// but no faults to trigger it, and (3) under a flaky-device plan with
/// healthy-device failover actually recovering jobs.
fn measure_faults(n: usize, iters: usize) -> FaultsRec {
    let jobs = 8;
    let run = |plan: Option<FaultPlan>, retry: RetryPolicy| {
        let pool =
            vec![DeviceProfile::tesla_c1060("g0"), DeviceProfile::tesla_c1060("g1").sm_count(15)];
        let mut config = EngineConfig::with_workers(1).devices(pool);
        if let Some(plan) = plan {
            config = config.faults(plan);
        }
        let engine = Engine::new(config);
        let inst = Arc::new(aco_tsp::uniform_random("bench-faults", n, 1000.0, 0xF7));
        let params = AcoParams::default().nn(15.min(n - 1)).ants(n.min(32));
        let t0 = Instant::now();
        let reports = engine.run_batch((0..jobs).map(|j| {
            SolveRequest::new(Arc::clone(&inst), params.clone())
                .backend(Backend::Gpu {
                    device: GpuDevice::TeslaC1060,
                    tour: TourStrategy::NNList,
                    pheromone: PheromoneStrategy::AtomicShared,
                })
                .iterations(iters)
                .seed(j as u64)
                .retry(retry)
        }));
        let wall_s = t0.elapsed().as_secs_f64();
        let ok = reports.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, jobs, "fault-bench batch must solve");
        let retried =
            reports.iter().filter_map(|r| r.as_ref().ok()).filter(|r| r.attempts > 1).count()
                as u64;
        engine.pool().assert_no_slot_leaks();
        (ok as f64 / wall_s, retried)
    };
    let supervised_policy = RetryPolicy::retries(2).failover(Failover::CpuFallback);
    let (plain_jobs_per_sec, _) = run(None, RetryPolicy::none());
    let (supervised_jobs_per_sec, _) = run(None, supervised_policy);
    let (faulted_jobs_per_sec, retried_jobs) =
        run(Some(FaultPlan::new(0xF7).flaky_device(0, 0.35)), supervised_policy);
    // Overhead is a *regression* measure: positive = supervised slower.
    // A supervised run that measures faster than plain is 1-core noise,
    // not negative overhead — report it as such and record 0.
    let raw_pct = if supervised_jobs_per_sec > 0.0 {
        (plain_jobs_per_sec / supervised_jobs_per_sec - 1.0) * 100.0
    } else {
        0.0
    };
    let overhead_pct = raw_pct.max(0.0);
    if raw_pct < 0.0 {
        println!(
            "faults: {plain_jobs_per_sec:.1} jobs/s plain -> {supervised_jobs_per_sec:.1} jobs/s \
             supervised (supervised measured faster; overhead 0.0%, delta {raw_pct:.1}% is noise), \
             {faulted_jobs_per_sec:.1} jobs/s under faults ({retried_jobs} jobs retried)"
        );
    } else {
        println!(
            "faults: {plain_jobs_per_sec:.1} jobs/s plain -> {supervised_jobs_per_sec:.1} jobs/s \
             supervised ({overhead_pct:.1}% overhead), {faulted_jobs_per_sec:.1} jobs/s under \
             faults ({retried_jobs} jobs retried)"
        );
    }
    FaultsRec {
        jobs,
        plain_jobs_per_sec,
        supervised_jobs_per_sec,
        overhead_pct,
        faulted_jobs_per_sec,
        retried_jobs,
    }
}

/// The batched-LS launch-accounting run: one all-ants `TwoOptNn` GPU
/// job plus one all-ants `OrOpt` GPU job on a fresh 1-worker engine
/// (observability on — its kernel profiler is the counter), then the
/// per-family launch totals from `Engine::metrics()`.
fn measure_batched_ls(n: usize, iters: usize) -> BatchedLsRec {
    let engine = Engine::new(EngineConfig::with_workers(1));
    let inst = Arc::new(aco_tsp::uniform_random("bench-batch-ls", n, 1000.0, 0xB8));
    let ants = n.min(32);
    let params = AcoParams::default().nn(15.min(n - 1)).ants(ants);
    let req = |ls: LocalSearch, seed: u64| {
        SolveRequest::new(Arc::clone(&inst), params.clone())
            .backend(Backend::Gpu {
                device: GpuDevice::TeslaM2050,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            })
            .iterations(iters)
            .seed(seed)
            .local_search(ls)
            .local_search_scope(LsScope::AllAnts)
    };
    let t0 = Instant::now();
    let reports = engine.run_batch(vec![req(LocalSearch::TwoOptNn, 1), req(LocalSearch::OrOpt, 2)]);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(reports.iter().all(|r| r.is_ok()), "batched-LS jobs must solve");
    let mut rounds = 0u64;
    let mut batched_launches = 0u64;
    let mut per_ant_launches = 0u64;
    let mut or_opt_launches = 0u64;
    for fam in engine.metrics().kernels {
        if fam.family == "two_opt_pos_all" {
            rounds = fam.invocations;
        }
        if fam.family.starts_with("two_opt") && fam.family.ends_with("_all") {
            batched_launches += fam.invocations;
        } else if fam.family.starts_with("two_opt") {
            per_ant_launches += fam.invocations;
        } else if fam.family.starts_with("or_opt") {
            or_opt_launches += fam.invocations;
        }
    }
    let rec = BatchedLsRec {
        ants,
        iterations: iters,
        rounds,
        batched_launches,
        per_ant_launches,
        or_opt_launches,
        wall_ms,
    };
    println!(
        "batched ls: {} rounds -> {} batched launches (bound {}), {} per-ant, {} or_opt, \
         {:.1} ms",
        rec.rounds,
        rec.batched_launches,
        4 * rec.rounds,
        rec.per_ant_launches,
        rec.or_opt_launches,
        rec.wall_ms
    );
    rec
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

// --- JSON (de)serialisation of the history ---------------------------------

fn render_run(r: &RunRec) -> String {
    format!(
        "      {{\"workers\": {}, \"jobs\": {}, \"ok\": {}, \"wall_ms\": {:.3}, \
         \"jobs_per_sec\": {:.3}, \"best\": {}, \"artifact_hits\": {}, \"artifact_misses\": {}, \
         \"decision_hits\": {}, \"decision_misses\": {}, \"artifact_evictions\": {}, \
         \"decision_evictions\": {}}}",
        r.workers,
        r.jobs,
        r.ok,
        r.wall_ms,
        r.jobs_per_sec,
        r.best,
        r.artifact_hits,
        r.artifact_misses,
        r.decision_hits,
        r.decision_misses,
        r.artifact_evictions,
        r.decision_evictions,
    )
}

fn render_device(d: &DeviceRec) -> String {
    format!(
        "          {{\"name\": \"{}\", \"model\": \"{}\", \"jobs\": {}, \"busy_ms\": {:.3}, \
         \"util\": {:.3}, \"max_depth\": {}, \"assigned_ms\": {:.3}}}",
        d.name, d.model, d.jobs, d.busy_ms, d.util, d.max_depth, d.assigned_ms
    )
}

fn render_devices(d: &DevicesRec) -> String {
    let per: Vec<String> = d.per_device.iter().map(render_device).collect();
    format!(
        "      {{\n        \"pool\": {},\n        \"jobs\": {},\n        \"wall_ms\": {:.3},\n        \
         \"devices_used\": {},\n        \"per_device\": [\n{}\n        ]\n      }}",
        d.pool,
        d.jobs,
        d.wall_ms,
        d.devices_used,
        per.join(",\n")
    )
}

fn render_local_search(l: &LocalSearchRec) -> String {
    format!(
        "      {{\"strategy\": \"{}\", \"scope\": \"{}\", \"jobs\": {}, \
         \"off_wall_ms\": {:.3}, \"off_best\": {}, \"on_wall_ms\": {:.3}, \"on_best\": {}, \
         \"improvement\": {}}}",
        l.strategy,
        l.scope,
        l.jobs,
        l.off_wall_ms,
        l.off_best,
        l.on_wall_ms,
        l.on_best,
        l.improvement
    )
}

fn render_obs_overhead(o: &ObsOverheadRec) -> String {
    format!(
        "      {{\"jobs\": {}, \"off_jobs_per_sec\": {:.3}, \"on_jobs_per_sec\": {:.3}, \
         \"overhead_pct\": {:.3}}}",
        o.jobs, o.off_jobs_per_sec, o.on_jobs_per_sec, o.overhead_pct
    )
}

fn render_obs_serve(s: &ObsServeRec) -> String {
    format!(
        "      {{\"jobs\": {}, \"off_jobs_per_sec\": {:.3}, \"on_jobs_per_sec\": {:.3}, \
         \"overhead_pct\": {:.3}}}",
        s.jobs, s.off_jobs_per_sec, s.on_jobs_per_sec, s.overhead_pct
    )
}

fn render_dynamics(d: &DynamicsRec) -> String {
    format!(
        "      {{\"jobs\": {}, \"off_jobs_per_sec\": {:.3}, \"on_jobs_per_sec\": {:.3}, \
         \"overhead_pct\": {:.3}, \"journal_lines\": {}}}",
        d.jobs, d.off_jobs_per_sec, d.on_jobs_per_sec, d.overhead_pct, d.journal_lines
    )
}

fn render_faults(f: &FaultsRec) -> String {
    format!(
        "      {{\"jobs\": {}, \"plain_jobs_per_sec\": {:.3}, \"supervised_jobs_per_sec\": {:.3}, \
         \"overhead_pct\": {:.3}, \"faulted_jobs_per_sec\": {:.3}, \"retried_jobs\": {}}}",
        f.jobs,
        f.plain_jobs_per_sec,
        f.supervised_jobs_per_sec,
        f.overhead_pct,
        f.faulted_jobs_per_sec,
        f.retried_jobs
    )
}

fn render_batched_ls(b: &BatchedLsRec) -> String {
    format!(
        "      {{\"ants\": {}, \"iterations\": {}, \"rounds\": {}, \"batched_launches\": {}, \
         \"per_ant_launches\": {}, \"or_opt_launches\": {}, \"wall_ms\": {:.3}}}",
        b.ants,
        b.iterations,
        b.rounds,
        b.batched_launches,
        b.per_ant_launches,
        b.or_opt_launches,
        b.wall_ms
    )
}

fn render_entry(e: &HistEntry) -> String {
    let runs: Vec<String> = e.runs.iter().map(render_run).collect();
    let devices = match &e.devices {
        Some(d) => format!(",\n      \"devices\":\n{}", render_devices(d)),
        None => String::new(),
    };
    let local_search = match &e.local_search {
        Some(l) => format!(",\n      \"local_search\":\n{}", render_local_search(l)),
        None => String::new(),
    };
    let obs_overhead = match &e.obs_overhead {
        Some(o) => format!(",\n      \"obs_overhead\":\n{}", render_obs_overhead(o)),
        None => String::new(),
    };
    let faults = match &e.faults {
        Some(f) => format!(",\n      \"faults\":\n{}", render_faults(f)),
        None => String::new(),
    };
    let batched_ls = match &e.batched_ls {
        Some(b) => format!(",\n      \"batched_ls\":\n{}", render_batched_ls(b)),
        None => String::new(),
    };
    let dynamics = match &e.dynamics {
        Some(d) => format!(",\n      \"dynamics\":\n{}", render_dynamics(d)),
        None => String::new(),
    };
    let obs_serve = match &e.obs_serve {
        Some(s) => format!(",\n      \"obs_serve\":\n{}", render_obs_serve(s)),
        None => String::new(),
    };
    format!(
        "    {{\n      \"label\": \"{}\",\n      \"jobs\": {},\n      \"n\": {},\n      \
         \"iterations\": {},\n      \"host_cpus\": {},\n      \"first_event_ms\": {:.3},\n      \
         \"runs\": [\n{}\n      ]{}{}{}{}{}{}{}\n    }}",
        e.label,
        e.jobs,
        e.n,
        e.iterations,
        e.host_cpus,
        e.first_event_ms,
        runs.join(",\n"),
        devices,
        local_search,
        obs_overhead,
        faults,
        batched_ls,
        dynamics,
        obs_serve
    )
}

fn render_history(entries: &[HistEntry]) -> String {
    let body: Vec<String> = entries.iter().map(render_entry).collect();
    format!("{{\n  \"bench\": \"engine_batch\",\n  \"history\": [\n{}\n  ]\n}}\n", body.join(",\n"))
}

fn uint(v: Option<&Json>) -> u64 {
    v.and_then(Json::num).unwrap_or(0.0) as u64
}

fn parse_run(v: &Json) -> RunRec {
    RunRec {
        workers: uint(v.get("workers")) as usize,
        jobs: uint(v.get("jobs")) as usize,
        ok: uint(v.get("ok")) as usize,
        wall_ms: v.get("wall_ms").and_then(Json::num).unwrap_or(0.0),
        jobs_per_sec: v.get("jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        best: uint(v.get("best")),
        artifact_hits: uint(v.get("artifact_hits")),
        artifact_misses: uint(v.get("artifact_misses")),
        decision_hits: uint(v.get("decision_hits")),
        decision_misses: uint(v.get("decision_misses")),
        artifact_evictions: uint(v.get("artifact_evictions")),
        decision_evictions: uint(v.get("decision_evictions")),
    }
}

fn parse_device(v: &Json) -> DeviceRec {
    DeviceRec {
        name: v.get("name").and_then(Json::str).unwrap_or("?").to_string(),
        model: v.get("model").and_then(Json::str).unwrap_or("?").to_string(),
        jobs: uint(v.get("jobs")),
        busy_ms: v.get("busy_ms").and_then(Json::num).unwrap_or(0.0),
        util: v.get("util").and_then(Json::num).unwrap_or(0.0),
        max_depth: uint(v.get("max_depth")) as usize,
        assigned_ms: v.get("assigned_ms").and_then(Json::num).unwrap_or(0.0),
    }
}

fn parse_devices(v: &Json) -> DevicesRec {
    DevicesRec {
        pool: uint(v.get("pool")) as usize,
        jobs: uint(v.get("jobs")) as usize,
        wall_ms: v.get("wall_ms").and_then(Json::num).unwrap_or(0.0),
        devices_used: uint(v.get("devices_used")) as usize,
        per_device: v
            .get("per_device")
            .and_then(Json::arr)
            .unwrap_or(&[])
            .iter()
            .map(parse_device)
            .collect(),
    }
}

fn parse_local_search(v: &Json) -> LocalSearchRec {
    LocalSearchRec {
        strategy: v.get("strategy").and_then(Json::str).unwrap_or("?").to_string(),
        scope: v.get("scope").and_then(Json::str).unwrap_or("?").to_string(),
        jobs: uint(v.get("jobs")) as usize,
        off_wall_ms: v.get("off_wall_ms").and_then(Json::num).unwrap_or(0.0),
        off_best: uint(v.get("off_best")),
        on_wall_ms: v.get("on_wall_ms").and_then(Json::num).unwrap_or(0.0),
        on_best: uint(v.get("on_best")),
        improvement: uint(v.get("improvement")),
    }
}

fn parse_obs_overhead(v: &Json) -> ObsOverheadRec {
    ObsOverheadRec {
        jobs: uint(v.get("jobs")) as usize,
        off_jobs_per_sec: v.get("off_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        on_jobs_per_sec: v.get("on_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        overhead_pct: v.get("overhead_pct").and_then(Json::num).unwrap_or(0.0),
    }
}

fn parse_faults(v: &Json) -> FaultsRec {
    FaultsRec {
        jobs: uint(v.get("jobs")) as usize,
        plain_jobs_per_sec: v.get("plain_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        supervised_jobs_per_sec: v
            .get("supervised_jobs_per_sec")
            .and_then(Json::num)
            .unwrap_or(0.0),
        overhead_pct: v.get("overhead_pct").and_then(Json::num).unwrap_or(0.0),
        faulted_jobs_per_sec: v.get("faulted_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        retried_jobs: uint(v.get("retried_jobs")),
    }
}

fn parse_obs_serve(v: &Json) -> ObsServeRec {
    ObsServeRec {
        jobs: uint(v.get("jobs")) as usize,
        off_jobs_per_sec: v.get("off_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        on_jobs_per_sec: v.get("on_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        overhead_pct: v.get("overhead_pct").and_then(Json::num).unwrap_or(0.0),
    }
}

fn parse_dynamics(v: &Json) -> DynamicsRec {
    DynamicsRec {
        jobs: uint(v.get("jobs")) as usize,
        off_jobs_per_sec: v.get("off_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        on_jobs_per_sec: v.get("on_jobs_per_sec").and_then(Json::num).unwrap_or(0.0),
        overhead_pct: v.get("overhead_pct").and_then(Json::num).unwrap_or(0.0),
        journal_lines: uint(v.get("journal_lines")),
    }
}

fn parse_batched_ls(v: &Json) -> BatchedLsRec {
    BatchedLsRec {
        ants: uint(v.get("ants")) as usize,
        iterations: uint(v.get("iterations")) as usize,
        rounds: uint(v.get("rounds")),
        batched_launches: uint(v.get("batched_launches")),
        per_ant_launches: uint(v.get("per_ant_launches")),
        or_opt_launches: uint(v.get("or_opt_launches")),
        wall_ms: v.get("wall_ms").and_then(Json::num).unwrap_or(0.0),
    }
}

fn parse_entry(v: &Json, fallback_label: &str) -> HistEntry {
    HistEntry {
        label: v.get("label").and_then(Json::str).unwrap_or(fallback_label).to_string(),
        jobs: uint(v.get("jobs")) as usize,
        n: uint(v.get("n")) as usize,
        iterations: uint(v.get("iterations")) as usize,
        host_cpus: uint(v.get("host_cpus")) as usize,
        first_event_ms: v.get("first_event_ms").and_then(Json::num).unwrap_or(0.0),
        runs: v.get("runs").and_then(Json::arr).unwrap_or(&[]).iter().map(parse_run).collect(),
        devices: v.get("devices").map(parse_devices),
        local_search: v.get("local_search").map(parse_local_search),
        obs_overhead: v.get("obs_overhead").map(parse_obs_overhead),
        faults: v.get("faults").map(parse_faults),
        batched_ls: v.get("batched_ls").map(parse_batched_ls),
        dynamics: v.get("dynamics").map(parse_dynamics),
        obs_serve: v.get("obs_serve").map(parse_obs_serve),
    }
}

/// Read an artifact in either the history format or the legacy PR-1
/// single-entry format (top-level `runs`). `Ok(vec![])` means the file
/// does not exist; an unparseable or unrecognised file is an error so
/// callers never silently clobber accumulated history.
fn read_history(path: &std::path::Path) -> Result<Vec<HistEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("could not read {}: {e}", path.display())),
    };
    let doc = Json::parse(&text).map_err(|e| format!("could not parse {}: {e}", path.display()))?;
    if let Some(hist) = doc.get("history").and_then(Json::arr) {
        return Ok(hist.iter().map(|e| parse_entry(e, "unlabeled")).collect());
    }
    if doc.get("runs").is_some() {
        return Ok(vec![parse_entry(&doc, "PR-1")]);
    }
    Err(format!("{} has neither 'history' nor 'runs'", path.display()))
}

/// `--check`: re-run the last committed entry's batch at 1 worker and
/// compare throughput. Exit 1 on regression beyond the tolerance.
fn check(path: &std::path::Path, tolerance: f64) -> ! {
    let history = read_history(path).unwrap_or_else(|e| {
        eprintln!("check: {e}");
        std::process::exit(2);
    });
    let Some(last) = history.last() else {
        eprintln!("check: no usable history in {}", path.display());
        std::process::exit(2);
    };
    let Some(baseline) = last.runs.iter().find(|r| r.workers == 1) else {
        eprintln!("check: entry '{}' has no 1-worker run", last.label);
        std::process::exit(2);
    };
    println!(
        "gate: entry '{}' ({} jobs, n={}, {} iters) baseline {:.3} jobs/s",
        last.label, last.jobs, last.n, last.iterations, baseline.jobs_per_sec
    );
    let fresh = measure(1, last.jobs, last.n, last.iterations);
    let floor = baseline.jobs_per_sec * (1.0 - tolerance);
    if fresh.ok != fresh.jobs {
        eprintln!("gate FAIL: {}/{} jobs succeeded", fresh.ok, fresh.jobs);
        std::process::exit(1);
    }
    if fresh.jobs_per_sec < floor {
        eprintln!(
            "gate FAIL: {:.3} jobs/s < floor {:.3} ({}% below baseline {:.3})",
            fresh.jobs_per_sec,
            floor,
            (tolerance * 100.0) as u32,
            baseline.jobs_per_sec
        );
        std::process::exit(1);
    }
    println!("gate OK: {:.3} jobs/s >= floor {:.3}", fresh.jobs_per_sec, floor);
    // Advisory observability gate: re-measure the on/off pair and warn —
    // never fail — beyond 5% overhead (1-core single-run wall clocks are
    // too noisy to hard-gate at that resolution).
    let obs = measure_obs_overhead(last.jobs, last.n, last.iterations);
    if obs.overhead_pct > 5.0 {
        eprintln!(
            "gate ADVISORY: observability overhead {:.1}% exceeds the 5% target \
             (off {:.3} -> on {:.3} jobs/s)",
            obs.overhead_pct, obs.off_jobs_per_sec, obs.on_jobs_per_sec
        );
    } else {
        println!("obs overhead advisory OK: {:+.1}% (target <= 5%)", obs.overhead_pct);
    }
    // Advisory search-dynamics gate: the dynamics + journal pair must
    // stay within 5% of plain throughput. Same warn-never-fail policy as
    // the observability pair — the trail scans are real work, but 1-core
    // single-run wall clocks cannot hard-gate at 5% resolution.
    let dynamics = measure_dynamics_overhead(last.jobs, last.n, last.iterations);
    if dynamics.overhead_pct > 5.0 {
        eprintln!(
            "gate ADVISORY: dynamics+journal overhead {:.1}% exceeds the 5% target \
             (off {:.3} -> on {:.3} jobs/s)",
            dynamics.overhead_pct, dynamics.off_jobs_per_sec, dynamics.on_jobs_per_sec
        );
    } else {
        println!("dynamics overhead advisory OK: {:+.1}% (target <= 5%)", dynamics.overhead_pct);
    }
    // Advisory serving gate: the full read side (windows + journal +
    // idle HTTP endpoint + sampler) must stay within 5% of plain
    // throughput. Warn — never fail — for the usual 1-core wall-clock
    // reason.
    let serve = measure_obs_serve(last.jobs, last.n, last.iterations);
    if serve.overhead_pct > 5.0 {
        eprintln!(
            "gate ADVISORY: idle-serving overhead {:.1}% exceeds the 5% target \
             (off {:.3} -> serving {:.3} jobs/s)",
            serve.overhead_pct, serve.off_jobs_per_sec, serve.on_jobs_per_sec
        );
    } else {
        println!("obs serve overhead advisory OK: {:+.1}% (target <= 5%)", serve.overhead_pct);
    }
    // Advisory retry-supervision gate, same rationale: warn — never
    // fail — and only on *positive* regressions (`overhead_pct` is
    // clamped at 0 when the supervised run measures faster, so a noisy
    // speedup can never read as overhead).
    let faults = measure_faults(last.n, last.iterations);
    if faults.overhead_pct > 5.0 {
        eprintln!(
            "gate ADVISORY: idle retry-supervision overhead {:.1}% exceeds the 5% target \
             (plain {:.3} -> supervised {:.3} jobs/s)",
            faults.overhead_pct, faults.plain_jobs_per_sec, faults.supervised_jobs_per_sec
        );
    } else {
        println!("faults overhead advisory OK: {:.1}% (target <= 5%)", faults.overhead_pct);
    }
    // Batched-LS launch accounting: kernel launch counts are
    // deterministic (no wall-clock noise), so the O(rounds) bound is a
    // *hard* gate — an all-ants pass that regresses to per-ant launches
    // or exceeds 4 launches/round fails CI.
    let batched = measure_batched_ls(last.n, last.iterations);
    let mut launch_fail = false;
    if batched.batched_launches > 4 * batched.rounds {
        eprintln!(
            "gate FAIL: {} batched LS launches exceed the O(rounds) bound 4 x {} rounds",
            batched.batched_launches, batched.rounds
        );
        launch_fail = true;
    }
    if batched.per_ant_launches > 0 {
        eprintln!(
            "gate FAIL: all-ants LS issued {} per-ant kernel launches (must batch)",
            batched.per_ant_launches
        );
        launch_fail = true;
    }
    if batched.or_opt_launches == 0 {
        eprintln!("gate FAIL: OrOpt job launched no device or_opt kernels (host fallback?)");
        launch_fail = true;
    }
    if launch_fail {
        std::process::exit(1);
    }
    println!(
        "batched LS gate OK: {} launches <= 4 x {} rounds, 0 per-ant, {} or_opt",
        batched.batched_launches, batched.rounds, batched.or_opt_launches
    );
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check {
        check(path, args.tolerance);
    }

    let runs: Vec<RunRec> =
        args.workers.iter().map(|&w| measure(w, args.jobs, args.n, args.iters)).collect();
    let first_event_ms = measure_first_event_ms(args.n, args.iters);
    println!("submit -> first progress event: {first_event_ms:.3} ms (min of 5, warm cache)");
    let devices = measure_devices(args.n, args.iters);
    let local_search = measure_local_search(args.n, args.iters);
    let obs_overhead = measure_obs_overhead(args.jobs, args.n, args.iters);
    let dynamics = measure_dynamics_overhead(args.jobs, args.n, args.iters);
    let obs_serve = measure_obs_serve(args.jobs, args.n, args.iters);
    let faults = measure_faults(args.n, args.iters);
    let batched_ls = measure_batched_ls(args.n, args.iters);
    let entry = HistEntry {
        label: args.label.clone(),
        jobs: args.jobs,
        n: args.n,
        iterations: args.iters,
        host_cpus: host_cpus(),
        first_event_ms,
        runs,
        devices: Some(devices),
        local_search: Some(local_search),
        obs_overhead: Some(obs_overhead),
        faults: Some(faults),
        batched_ls: Some(batched_ls),
        dynamics: Some(dynamics),
        obs_serve: Some(obs_serve),
    };

    let mut history = if args.append {
        read_history(&args.out).unwrap_or_else(|e| {
            eprintln!("refusing to overwrite unreadable history: {e}");
            std::process::exit(1);
        })
    } else {
        Vec::new()
    };
    // Re-running under an existing label replaces that entry (keeps the
    // artifact one-entry-per-PR).
    history.retain(|e| e.label != entry.label);
    history.push(entry);

    let json = render_history(&history);
    match std::fs::write(&args.out, &json) {
        Ok(()) => println!("-> {}", args.out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", args.out.display());
            std::process::exit(1);
        }
    }
}
