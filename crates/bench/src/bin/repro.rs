//! Regenerate every table and figure of Cecilia et al. 2011.
//!
//! ```text
//! repro [table1|table2|table3|table4|fig4a|fig4b|fig5|quality|all]
//!       [--max-n N] [--mode auto|full|sample:K] [--threads T] [--out DIR]
//! ```
//!
//! Each experiment prints an aligned table (measured next to the paper's
//! value where published) and writes a CSV under `--out` (default
//! `results/`).

use aco_bench::{ModePolicy, RunConfig, TableData};
use aco_simt::DeviceSpec;

fn usage() -> ! {
    eprintln!(
        "usage: repro [table1|table2|table3|table4|fig4a|fig4b|fig5|quality|ablation-block|ablation-nn|all]\n\
         \x20            [--max-n N] [--mode auto|full|sample:K] [--threads T] [--out DIR]\n\
         \n\
         Defaults: all --max-n 2392 --mode auto --threads {} --out results/\n\
         Tip: --max-n 442 finishes in well under a minute.",
        default_threads()
    );
    std::process::exit(2);
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get().min(8)).unwrap_or(4)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = "all".to_string();
    let mut cfg = RunConfig { threads: default_threads(), ..RunConfig::default() };
    let mut out_dir = std::path::PathBuf::from("results");

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-n" => {
                cfg.max_n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--threads" => {
                cfg.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--mode" => {
                let v = it.next().unwrap_or_else(|| usage());
                cfg.mode = match v.as_str() {
                    "auto" => ModePolicy::Auto,
                    "full" => ModePolicy::Full,
                    s if s.starts_with("sample:") => {
                        let k = s["sample:".len()..].parse().unwrap_or_else(|_| usage());
                        ModePolicy::Sample(k)
                    }
                    _ => usage(),
                };
            }
            "--out" => {
                out_dir = it.next().map(Into::into).unwrap_or_else(|| usage());
            }
            "-h" | "--help" => usage(),
            t if !t.starts_with('-') => target = t.to_string(),
            _ => usage(),
        }
    }

    let emit = |name: &str, t: TableData| {
        println!("{}", t.to_text());
        match t.write_csv(&out_dir, name) {
            Ok(p) => println!("  -> {}\n", p.display()),
            Err(e) => eprintln!("  (could not write CSV: {e})\n"),
        }
    };

    let run = |name: &str, cfg: &RunConfig| match name {
        "table1" => println!("{}", aco_bench::table1()),
        "table2" => {
            emit("table2_tour_construction", aco_bench::table2(&DeviceSpec::tesla_c1060(), cfg))
        }
        "table3" => emit("table3_pheromone_c1060", aco_bench::table3(cfg)),
        "table4" => emit("table4_pheromone_m2050", aco_bench::table4(cfg)),
        "fig4a" => emit("fig4a_speedup_nn", aco_bench::fig4a(cfg)),
        "fig4b" => emit("fig4b_speedup_dp", aco_bench::fig4b(cfg)),
        "fig5" => emit("fig5_speedup_pheromone", aco_bench::fig5(cfg)),
        "quality" => emit("quality", aco_bench::quality(cfg)),
        "ablation-block" => emit("ablation_block_layout", aco_bench::ablation_block(cfg)),
        "ablation-nn" => emit("ablation_nn_depth", aco_bench::ablation_nn(cfg)),
        _ => usage(),
    };

    let started = std::time::Instant::now();
    if target == "all" {
        for t in ["table1", "table2", "table3", "table4", "fig4a", "fig4b", "fig5", "quality"] {
            eprintln!("== {t} ==");
            run(t, &cfg);
        }
    } else {
        run(&target, &cfg);
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
}
