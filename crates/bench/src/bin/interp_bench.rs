//! SIMT-interpreter micro-benchmark → `BENCH_interp.json`.
//!
//! ```text
//! interp_bench [--label S] [--append] [--reps R] [--out FILE]
//! interp_bench --check FILE [--tolerance T] [--reps R]
//! ```
//!
//! `--check` is the CI regression gate mirroring `engine_bench --check`:
//! it re-runs every op of the artifact's **last** history entry and fails
//! (exit 1) if any op's allocs/op rose more than 0.5 above that entry
//! (the zero-alloc tripwire is absolute) or its ns/op rose more than
//! `--tolerance` (default 0.50 — wall time is advisory across machines;
//! allocation counts are the hard signal).
//!
//! Measures the per-operation cost of the `BlockCtx` primitives the
//! kernels are built from — wall nanoseconds *and allocator calls* per
//! op — on a 256-lane block. The allocation column is the regression
//! tripwire for the pooled register file: every row must stay at (or
//! very near) zero allocations per op once the thread-local pools are
//! warm; a future change that reintroduces per-op `Vec` churn shows up
//! here immediately, long before it is visible in end-to-end numbers.
//!
//! The `launches` section measures allocator calls **per
//! `launch_threads` call** of a read-heavy kernel family at 1 and 4
//! exec threads — the tripwire for the COW shadow memory: forking a
//! shadow worker clones buffer *handles*, so allocs/launch must stay
//! flat however large the read-only inputs are. The `--check` gate
//! holds each family within the same ±0.5 slack as the per-op rows.
//!
//! The artifact keeps a history entry per PR, like `BENCH_engine.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use aco_bench::json::Json;
use aco_simt::prelude::*;

/// Counts every allocator call so the bench can report allocs/op.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to `System` verbatim; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One micro-kernel: `reps` repetitions of a single primitive inside one
/// 256-lane block.
struct OpKernel {
    op: &'static str,
    reps: u32,
    buf_f: DevicePtr<f32>,
    buf_u: DevicePtr<u32>,
}

impl Kernel for OpKernel {
    fn name(&self) -> &'static str {
        self.op
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let a = ctx.thread_idx();
        let af = ctx.u2f(&a);
        let bf = ctx.splat_f32(1.5);
        let idx = a.clone();
        match self.op {
            "fmul" => {
                for _ in 0..self.reps {
                    let _ = ctx.fmul(&af, &bf);
                }
            }
            "fma" => {
                for _ in 0..self.reps {
                    let _ = ctx.fma(&af, &bf, &af);
                }
            }
            "fdiv_sfu" => {
                for _ in 0..self.reps {
                    let _ = ctx.fdiv(&af, &bf);
                }
            }
            "cmp_select" => {
                for _ in 0..self.reps {
                    let m = ctx.flt(&af, &bf);
                    let _ = ctx.select_f32(&m, &af, &bf);
                }
            }
            "if_else" => {
                let m = ctx.flt(&af, &bf);
                for _ in 0..self.reps {
                    ctx.if_else(
                        gm,
                        &m,
                        |ctx, _| ctx.charge(Op::IAlu, 1),
                        |ctx, _| ctx.charge(Op::IAlu, 1),
                    );
                }
            }
            "global_ld" => {
                for _ in 0..self.reps {
                    let _ = ctx.ld_global_f32(gm, self.buf_f, &idx);
                }
            }
            "global_st" => {
                for _ in 0..self.reps {
                    ctx.st_global_f32(gm, self.buf_f, &idx, &af);
                }
            }
            "tex_ld" => {
                for _ in 0..self.reps {
                    let _ = ctx.ld_tex_f32(gm, self.buf_f, &idx);
                }
            }
            "shared_ld_st" => {
                let sh = ctx.shared_alloc_f32(256);
                for _ in 0..self.reps {
                    ctx.sh_st_f32(sh, &idx, &af);
                    let _ = ctx.sh_ld_f32(sh, &idx);
                }
            }
            "atomic_add" => {
                let eight = ctx.splat_u32(8);
                let target = ctx.imod(&a, &eight);
                for _ in 0..self.reps {
                    ctx.atomic_add_f32(gm, self.buf_f, &target, &bf);
                }
            }
            "lcg_rng" => {
                let mut state = ctx.reg_from_fn_u32(|l| l as u32 + 1);
                for _ in 0..self.reps {
                    let _ = ctx.lcg_next_f32(&mut state);
                }
            }
            "roulette_loop" => {
                // A loop_while whose lanes retire progressively — the
                // divergence pattern of the proportional roulette.
                let _ = self.buf_u;
                for _ in 0..self.reps / 16 {
                    let mut trips = ctx.splat_u32(0);
                    let one = ctx.splat_u32(1);
                    let lanes = ctx.thread_idx();
                    let sixteen = ctx.splat_u32(16);
                    let cap = ctx.imod(&lanes, &sixteen);
                    ctx.loop_while(gm, |ctx, _| {
                        let next = ctx.iadd(&trips, &one);
                        ctx.assign_u32(&mut trips, &next);
                        ctx.ult(&trips, &cap)
                    });
                }
            }
            other => unreachable!("unknown op {other}"),
        }
    }
}

/// The COW-shadow workload: each block reads a large read-only buffer
/// (texture path) and writes one word per lane into a small output — the
/// allocation shape of the batched-LS hot path, where distance/NN-list
/// inputs dwarf the per-launch writes. Pre-COW, `launch_threads` with
/// shadow workers deep-copied every buffer per group; with `Arc`-backed
/// copy-on-write buffers only the dirtied output materialises, so
/// allocs/launch stays flat as the big read-only input grows.
struct ShadowKernel {
    big: DevicePtr<f32>,
    out: DevicePtr<u32>,
}

impl Kernel for ShadowKernel {
    fn name(&self) -> &'static str {
        "cow_shadow"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let tid = ctx.global_thread_idx();
        let _ = ctx.ld_tex_f32(gm, self.big, &tid);
        ctx.st_global_u32(gm, self.out, &tid, &tid);
    }
}

/// Allocator calls per `launch_threads` call of the [`ShadowKernel`]
/// family at a given exec-thread count (8 blocks over a 64 Ki-word
/// read-only input). `launches` is the counted sample size; the family
/// launch count itself is deterministic harness structure.
struct LaunchAllocResult {
    family: String,
    threads: usize,
    launches: u64,
    allocs_per_launch: f64,
}

fn run_launches(threads: usize) -> LaunchAllocResult {
    let dev = DeviceSpec::tesla_c1060();
    let mut gm = GlobalMem::new();
    let blocks = 8u32;
    let big = gm.alloc_f32(65_536);
    let out = gm.alloc_u32((blocks * 256) as usize);
    let k = ShadowKernel { big, out };
    let cfg = LaunchConfig::new(blocks, 256);
    // Warm-up launch: pools, caches, and the first shadow forks.
    launch_threads(&dev, &cfg, &k, &mut gm, SimMode::Full, threads).unwrap();
    let launches = 32u64;
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..launches {
        launch_threads(&dev, &cfg, &k, &mut gm, SimMode::Full, threads).unwrap();
    }
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    LaunchAllocResult {
        family: format!("cow_shadow_t{threads}"),
        threads,
        launches,
        allocs_per_launch: allocs as f64 / launches as f64,
    }
}

/// Exec-thread counts the launch-allocation section measures: the
/// single-threaded reference and a forked-shadow run.
const LAUNCH_THREADS: [usize; 2] = [1, 4];

const OPS: [&str; 12] = [
    "fmul",
    "fma",
    "fdiv_sfu",
    "cmp_select",
    "if_else",
    "global_ld",
    "global_st",
    "tex_ld",
    "shared_ld_st",
    "atomic_add",
    "lcg_rng",
    "roulette_loop",
];

struct OpResult {
    name: &'static str,
    ns_per_op: f64,
    allocs_per_op: f64,
}

/// Allowed absolute rise in allocs/op before the gate fails: the pooled
/// interpreter holds every row at ~0, so any systematic per-op churn
/// clears this slack immediately while counter jitter does not.
const ALLOC_SLACK: f64 = 0.5;

/// `--check`: re-run the last committed entry's ops and compare. Exit 1
/// on regression beyond the tolerances.
fn check(path: &std::path::Path, tolerance: f64, reps: u32) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check: could not read {}: {e}", path.display());
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("check: could not parse {}: {e}", path.display());
        std::process::exit(2);
    });
    let Some(last) = doc.get("history").and_then(Json::arr).and_then(|h| h.last()) else {
        eprintln!("check: no usable history in {}", path.display());
        std::process::exit(2);
    };
    let label = last.get("label").and_then(Json::str).unwrap_or("unlabeled");
    let baseline: Vec<(&str, f64, f64)> = last
        .get("ops")
        .and_then(Json::arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|o| {
            Some((
                o.get("op").and_then(Json::str)?,
                o.get("ns_per_op").and_then(Json::num)?,
                o.get("allocs_per_op").and_then(Json::num)?,
            ))
        })
        .collect();
    if baseline.is_empty() {
        eprintln!("check: entry '{label}' has no ops");
        std::process::exit(2);
    }
    println!("gate: entry '{label}', {} ops, tolerance {tolerance:.2}", baseline.len());
    let fresh: Vec<OpResult> = OPS.iter().map(|&op| run_op(op, reps)).collect();
    let mut failed = false;
    for (name, base_ns, base_allocs) in baseline {
        let Some(f) = fresh.iter().find(|r| r.name == name) else {
            eprintln!("gate FAIL: op '{name}' no longer measured");
            failed = true;
            continue;
        };
        if f.allocs_per_op > base_allocs + ALLOC_SLACK {
            eprintln!(
                "gate FAIL: {name} allocs/op {:.4} > baseline {base_allocs:.4} + {ALLOC_SLACK}",
                f.allocs_per_op
            );
            failed = true;
        }
        if f.ns_per_op > base_ns * (1.0 + tolerance) {
            eprintln!(
                "gate FAIL: {name} ns/op {:.1} > baseline {base_ns:.1} * {:.2}",
                f.ns_per_op,
                1.0 + tolerance
            );
            failed = true;
        }
    }
    // Launch-allocation gate: COW shadows hold allocs/launch flat, so a
    // rise past the slack means the launch path started deep-copying
    // buffers again. Entries predating the section are skipped.
    let launch_baseline: Vec<(&str, f64)> = last
        .get("launches")
        .and_then(Json::arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|l| {
            Some((
                l.get("family").and_then(Json::str)?,
                l.get("allocs_per_launch").and_then(Json::num)?,
            ))
        })
        .collect();
    for &threads in &LAUNCH_THREADS {
        let fresh = run_launches(threads);
        let Some(&(_, base)) = launch_baseline.iter().find(|(f, _)| *f == fresh.family) else {
            continue;
        };
        if fresh.allocs_per_launch > base + ALLOC_SLACK {
            eprintln!(
                "gate FAIL: {} allocs/launch {:.4} > baseline {base:.4} + {ALLOC_SLACK}",
                fresh.family, fresh.allocs_per_launch
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("gate OK: every op within allocs +{ALLOC_SLACK} and ns *{:.2}", 1.0 + tolerance);
    std::process::exit(0);
}

fn run_op(op: &'static str, reps: u32) -> OpResult {
    let dev = DeviceSpec::tesla_c1060();
    let mut gm = GlobalMem::new();
    let buf_f = gm.alloc_f32(256);
    let buf_u = gm.alloc_u32(256);
    let k = OpKernel { op, reps, buf_f, buf_u };
    let cfg = LaunchConfig::new(1, 256).shared(4 * 256);
    // Warm-up launch: fills the thread-local pools and caches.
    launch(&dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();

    let rounds = 8u32;
    let before_allocs = ALLOC_CALLS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..rounds {
        launch(&dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();
    }
    let elapsed = t0.elapsed();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - before_allocs;
    let total_ops = (reps as u64) * rounds as u64;
    OpResult {
        name: op,
        ns_per_op: elapsed.as_nanos() as f64 / total_ops as f64,
        allocs_per_op: allocs as f64 / total_ops as f64,
    }
}

fn render(label: &str, results: &[OpResult], launches: &[LaunchAllocResult]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "      {{\"op\": \"{}\", \"ns_per_op\": {:.1}, \"allocs_per_op\": {:.4}}}",
                r.name, r.ns_per_op, r.allocs_per_op
            )
        })
        .collect();
    let launch_rows: Vec<String> = launches
        .iter()
        .map(|l| {
            format!(
                "      {{\"family\": \"{}\", \"threads\": {}, \"launches\": {}, \
                 \"allocs_per_launch\": {:.4}}}",
                l.family, l.threads, l.launches, l.allocs_per_launch
            )
        })
        .collect();
    format!(
        "    {{\n      \"label\": \"{label}\",\n      \"block\": 256,\n      \"ops\": [\n{}\n      \
         ],\n      \"launches\": [\n{}\n      ]\n    }}",
        rows.join(",\n"),
        launch_rows.join(",\n")
    )
}

fn main() {
    let mut label = String::from("dev");
    let mut append = false;
    let mut reps: u32 = 4096;
    let mut out = std::path::PathBuf::from("BENCH_interp.json");
    let mut check_path: Option<std::path::PathBuf> = None;
    let mut tolerance = 0.50;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().expect("--label S"),
            "--append" => append = true,
            "--reps" => reps = it.next().expect("--reps R").parse().expect("--reps R"),
            "--out" => out = it.next().expect("--out FILE").into(),
            "--check" => check_path = Some(it.next().expect("--check FILE").into()),
            "--tolerance" => {
                tolerance = it.next().expect("--tolerance T").parse().expect("--tolerance T");
            }
            other => {
                eprintln!("unknown arg {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &check_path {
        check(path, tolerance, reps);
    }

    let results: Vec<OpResult> = OPS.iter().map(|&op| run_op(op, reps)).collect();
    println!("{:<14} {:>10} {:>12}", "op", "ns/op", "allocs/op");
    for r in &results {
        println!("{:<14} {:>10.1} {:>12.4}", r.name, r.ns_per_op, r.allocs_per_op);
    }
    let launches: Vec<LaunchAllocResult> =
        LAUNCH_THREADS.iter().map(|&t| run_launches(t)).collect();
    println!("{:<14} {:>10} {:>15}", "family", "launches", "allocs/launch");
    for l in &launches {
        println!("{:<14} {:>10} {:>15.4}", l.family, l.launches, l.allocs_per_launch);
    }

    // Keep prior history entries (drop any with the same label).
    let mut entries: Vec<String> = Vec::new();
    if append {
        if let Ok(text) = std::fs::read_to_string(&out) {
            if let Ok(doc) = Json::parse(&text) {
                if let Some(hist) = doc.get("history").and_then(Json::arr) {
                    for e in hist {
                        let lbl = e.get("label").and_then(Json::str).unwrap_or("");
                        if lbl == label {
                            continue;
                        }
                        let ops: Vec<String> = e
                            .get("ops")
                            .and_then(Json::arr)
                            .unwrap_or(&[])
                            .iter()
                            .map(|o| {
                                format!(
                                    "      {{\"op\": \"{}\", \"ns_per_op\": {:.1}, \
                                     \"allocs_per_op\": {:.4}}}",
                                    o.get("op").and_then(Json::str).unwrap_or("?"),
                                    o.get("ns_per_op").and_then(Json::num).unwrap_or(0.0),
                                    o.get("allocs_per_op").and_then(Json::num).unwrap_or(0.0)
                                )
                            })
                            .collect();
                        // Pre-PR-8 entries have no launch section; keep
                        // whatever each entry recorded.
                        let old_launches: Vec<String> = e
                            .get("launches")
                            .and_then(Json::arr)
                            .unwrap_or(&[])
                            .iter()
                            .map(|l| {
                                format!(
                                    "      {{\"family\": \"{}\", \"threads\": {}, \
                                     \"launches\": {}, \"allocs_per_launch\": {:.4}}}",
                                    l.get("family").and_then(Json::str).unwrap_or("?"),
                                    l.get("threads").and_then(Json::num).unwrap_or(0.0) as u64,
                                    l.get("launches").and_then(Json::num).unwrap_or(0.0) as u64,
                                    l.get("allocs_per_launch").and_then(Json::num).unwrap_or(0.0)
                                )
                            })
                            .collect();
                        let launches_part = if old_launches.is_empty() {
                            String::new()
                        } else {
                            format!(
                                ",\n      \"launches\": [\n{}\n      ]",
                                old_launches.join(",\n")
                            )
                        };
                        entries.push(format!(
                            "    {{\n      \"label\": \"{lbl}\",\n      \"block\": {},\n      \
                             \"ops\": [\n{}\n      ]{launches_part}\n    }}",
                            e.get("block").and_then(Json::num).unwrap_or(256.0) as u32,
                            ops.join(",\n")
                        ));
                    }
                }
            }
        }
    }
    entries.push(render(&label, &results, &launches));

    let json = format!(
        "{{\n  \"bench\": \"blockctx_ops\",\n  \"history\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("-> {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
