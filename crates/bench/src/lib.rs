//! Benchmark harness for the GPU-ACO reproduction.
//!
//! * [`paper`] — the published numbers of Cecilia et al. 2011 (Tables
//!   II–IV, figure peaks), embedded for side-by-side comparison;
//! * [`table`] — table assembly, text rendering, CSV output;
//! * [`runner`] — one generator per table/figure, driving the SIMT
//!   simulator and the CPU cost model.
//!
//! The `repro` binary (`cargo run -p aco-bench --release --bin repro`)
//! regenerates everything; `cargo bench` runs the Criterion wrappers.

pub mod json;
pub mod paper;
pub mod runner;
pub mod table;

pub use runner::{
    ablation_block, ablation_nn, fig4a, fig4b, fig5, paper_params, quality, sim_mode_for, table1,
    table2, table3, table4, ModePolicy, RunConfig,
};
pub use table::TableData;
