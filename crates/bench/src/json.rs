//! A minimal JSON reader for the bench artifacts.
//!
//! The workspace vendors no serde; the bench binaries only need to read
//! back their *own* output (`BENCH_engine.json` history entries for
//! appending and for the CI regression gate), so this is a small
//! recursive-descent parser over the full JSON grammar — strict enough
//! for interchange, tiny enough to audit.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — fine for bench counters).
    Num(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (sorted keys; duplicates keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { b: src.as_bytes(), i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view (`None` for non-arrays).
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Number view (`None` for non-numbers).
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String view (`None` for non-strings).
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let e = self.peek().ok_or("bad escape")?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.i += 4;
                            // Surrogates are not paired here — the bench
                            // artifacts are ASCII; replace rather than fail.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = r#"{
          "bench": "engine_batch",
          "history": [
            {"label": "PR-1", "jobs": 12, "runs": [{"workers": 1, "jobs_per_sec": 5.055}]},
            {"label": "PR-2", "jobs": 12, "runs": []}
          ]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("bench").and_then(Json::str), Some("engine_batch"));
        let hist = v.get("history").and_then(Json::arr).unwrap();
        assert_eq!(hist.len(), 2);
        let r0 = hist[0].get("runs").and_then(Json::arr).unwrap();
        assert_eq!(r0[0].get("jobs_per_sec").and_then(Json::num), Some(5.055));
    }

    #[test]
    fn parses_scalars_strings_and_escapes() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\n\"b\" A""#).unwrap(), Json::Str("a\n\"b\" A".into()));
        assert_eq!(Json::parse("[1, [2, {}]]").unwrap().arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }
}
