//! Table assembly, text rendering and CSV output.

use std::fmt::Write as _;

/// A labelled 2-D table of measurements, optionally paired with the
/// paper's published values for side-by-side comparison.
#[derive(Debug, Clone)]
pub struct TableData {
    /// Table heading.
    pub title: String,
    /// Unit note printed under the heading.
    pub unit: String,
    /// Row labels.
    pub rows: Vec<String>,
    /// Column labels.
    pub cols: Vec<String>,
    /// Measured values, `values[row][col]`; `NaN` = not measured.
    pub values: Vec<Vec<f64>>,
    /// Paper values aligned with `values` (when published).
    pub paper: Option<Vec<Vec<f64>>>,
}

fn fmt_val(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

impl TableData {
    /// Assert the shape is consistent (used by constructors and tests).
    pub fn validate(&self) {
        assert_eq!(self.values.len(), self.rows.len(), "row count mismatch");
        for r in &self.values {
            assert_eq!(r.len(), self.cols.len(), "column count mismatch");
        }
        if let Some(p) = &self.paper {
            assert_eq!(p.len(), self.rows.len());
            for r in p {
                assert_eq!(r.len(), self.cols.len());
            }
        }
    }

    /// Render as an aligned text table. With paper values present, each
    /// cell shows `measured (paper)`.
    pub fn to_text(&self) -> String {
        self.validate();
        let mut cells: Vec<Vec<String>> = Vec::new();
        let mut header = vec![String::new()];
        header.extend(self.cols.iter().cloned());
        cells.push(header);
        for (i, label) in self.rows.iter().enumerate() {
            let mut row = vec![label.clone()];
            for (j, &v) in self.values[i].iter().enumerate() {
                let cell = match &self.paper {
                    Some(p) if !p[i][j].is_nan() => {
                        format!("{} ({})", fmt_val(v), fmt_val(p[i][j]))
                    }
                    _ => fmt_val(v),
                };
                row.push(cell);
            }
            cells.push(row);
        }
        let widths: Vec<usize> = (0..cells[0].len())
            .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if !self.unit.is_empty() {
            let _ = writeln!(out, "[{}]", self.unit);
        }
        for (k, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, s)| {
                    if c == 0 {
                        format!("{:<w$}", s, w = widths[0])
                    } else {
                        format!("{:>w$}", s, w = widths[c])
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
            if k == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                let _ = writeln!(out, "{}", "-".repeat(total));
            }
        }
        out
    }

    /// Render as CSV (`row,col,measured,paper`).
    pub fn to_csv(&self) -> String {
        self.validate();
        let mut out = String::from("row,column,measured,paper\n");
        for (i, rl) in self.rows.iter().enumerate() {
            for (j, cl) in self.cols.iter().enumerate() {
                let p = self
                    .paper
                    .as_ref()
                    .map(|p| p[i][j])
                    .filter(|v| !v.is_nan())
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                let m = if self.values[i][j].is_nan() {
                    String::new()
                } else {
                    self.values[i][j].to_string()
                };
                let _ = writeln!(out, "\"{rl}\",\"{cl}\",{m},{p}");
            }
        }
        out
    }

    /// Write the CSV next to the repository's `results/` directory.
    pub fn write_csv(
        &self,
        dir: &std::path::Path,
        name: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableData {
        TableData {
            title: "T".into(),
            unit: "ms".into(),
            rows: vec!["a".into(), "b".into()],
            cols: vec!["x".into(), "y".into()],
            values: vec![vec![1.0, 22.5], vec![f64::NAN, 1234.0]],
            paper: Some(vec![vec![1.1, 20.0], vec![f64::NAN, f64::NAN]]),
        }
    }

    #[test]
    fn text_contains_measured_and_paper() {
        let t = sample().to_text();
        assert!(t.contains("1.00 (1.10)"));
        assert!(t.contains("22.5 (20.0)"));
        assert!(t.contains("1234"));
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        assert_eq!(lines[0], "row,column,measured,paper");
        assert!(lines[1].starts_with("\"a\",\"x\",1,1.1"));
        // NaN measured -> empty field.
        assert!(lines[3].starts_with("\"b\",\"x\",,"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn validation_catches_ragged_rows() {
        let mut t = sample();
        t.values[0].pop();
        t.validate();
    }

    #[test]
    fn value_formatting_ranges() {
        assert_eq!(fmt_val(0.123), "0.12");
        assert_eq!(fmt_val(12.34), "12.3");
        assert_eq!(fmt_val(1234.5), "1234");
        assert_eq!(fmt_val(f64::NAN), "-");
    }
}
