//! Figure 4(b) bench: data-parallel tour-construction speed-up vs the
//! fully probabilistic sequential code.

use aco_bench::{fig4b, paper_params, ModePolicy, RunConfig};
use aco_core::gpu::tour::DataParallelTourKernel;
use aco_core::gpu::ColonyBuffers;
use aco_simt::{launch, DeviceSpec, GlobalMem, SimMode};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig { max_n: 100, mode: ModePolicy::Auto, threads: 2 };
    let table = fig4b(&cfg);
    println!("{}", table.to_text());
    let _ = table.write_csv(std::path::Path::new("results"), "fig4b_speedup_dp_small");

    let inst = aco_tsp::paper_instance("att48").expect("known instance");
    let params = paper_params();

    let mut g = c.benchmark_group("fig4b_dp_kernel");
    g.sample_size(10);
    for dev in [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_m2050()] {
        g.bench_function(dev.name, |b| {
            b.iter(|| {
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
                let ck = aco_core::gpu::choice::ChoiceKernel { bufs, alpha: 1.0, beta: 2.0 };
                launch(&dev, &ck.config(), &ck, &mut gm, SimMode::Full).expect("choice");
                let k = DataParallelTourKernel {
                    bufs,
                    texture: true,
                    seed: 5,
                    iteration: 0,
                    block_override: None,
                };
                launch(&dev, &k.config(), &k, &mut gm, SimMode::Full)
                    .expect("valid launch")
                    .time
                    .total_ms
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
