//! Figure 4(a) bench: NN-list tour-construction speed-up series, plus a
//! wall-time benchmark of the CPU reference it divides by.

use aco_bench::{fig4a, paper_params, ModePolicy, RunConfig};
use aco_core::cpu::{AntSystem, OpCounter, TourPolicy};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig { max_n: 280, mode: ModePolicy::Auto, threads: 4 };
    let table = fig4a(&cfg);
    println!("{}", table.to_text());
    let _ = table.write_csv(std::path::Path::new("results"), "fig4a_speedup_nn_small");

    let inst = aco_tsp::paper_instance("kroC100").expect("known instance");
    let params = paper_params();

    let mut g = c.benchmark_group("fig4a_cpu_reference");
    g.sample_size(10);
    g.bench_function("cpu_nn_construction_kroC100", |b| {
        let mut aco = AntSystem::new(&inst, params.clone());
        b.iter(|| {
            let mut counter = OpCounter::default();
            aco.construct_solutions(TourPolicy::NearestNeighborList, &mut counter)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
