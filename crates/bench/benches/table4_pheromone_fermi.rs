//! Table IV bench: pheromone-update strategies on the Tesla M2050 model
//! (native float atomics — the contrast with Table III).

use aco_bench::{table4, ModePolicy, RunConfig};
use aco_core::gpu::{run_pheromone, ColonyBuffers, PheromoneStrategy};
use aco_simt::{DeviceSpec, GlobalMem, SimMode};
use aco_tsp::Tour;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let cfg = RunConfig { max_n: 100, mode: ModePolicy::Auto, threads: 2 };
    let table = table4(&cfg);
    println!("{}", table.to_text());
    let _ = table.write_csv(std::path::Path::new("results"), "table4_pheromone_m2050_small");

    let inst = aco_tsp::paper_instance("kroC100").expect("known instance");
    let dev = DeviceSpec::tesla_m2050();
    let params = aco_bench::paper_params();

    let mut g = c.benchmark_group("table4_kroC100");
    g.sample_size(10);
    for strategy in [PheromoneStrategy::AtomicShared, PheromoneStrategy::ScatterTiled] {
        g.bench_function(strategy.paper_row(), |b| {
            b.iter(|| {
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
                let mut rng = rand::rngs::StdRng::seed_from_u64(9);
                let tours: Vec<Tour> = (0..100).map(|_| Tour::random(100, &mut rng)).collect();
                bufs.upload_tours(&mut gm, &tours, inst.matrix());
                run_pheromone(&dev, &mut gm, bufs, strategy, 0.5, SimMode::Full)
                    .expect("valid launch")
                    .time
                    .total_ms
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
