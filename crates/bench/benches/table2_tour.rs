//! Table II bench: regenerates the tour-construction table at small scale
//! and benchmarks representative kernel launches (wall time of the
//! simulator, which is the library's own hot path).

use aco_bench::{table2, ModePolicy, RunConfig};
use aco_core::gpu::{run_tour, ColonyBuffers, TourStrategy};
use aco_simt::{DeviceSpec, GlobalMem, SimMode};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig { max_n: 100, mode: ModePolicy::Auto, threads: 2 };
    let table = table2(&DeviceSpec::tesla_c1060(), &cfg);
    println!("{}", table.to_text());
    let _ = table.write_csv(std::path::Path::new("results"), "table2_tour_construction_small");

    let inst = aco_tsp::paper_instance("att48").expect("known instance");
    let dev = DeviceSpec::tesla_c1060();
    let params = aco_bench::paper_params();

    let mut g = c.benchmark_group("table2_att48");
    g.sample_size(10);
    for strategy in
        [TourStrategy::DeviceRng, TourStrategy::NNListSharedTex, TourStrategy::DataParallelTex]
    {
        g.bench_function(strategy.paper_row(), |b| {
            b.iter(|| {
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
                run_tour(&dev, &mut gm, bufs, strategy, 1.0, 2.0, 7, 0, SimMode::Full)
                    .expect("valid launch")
                    .total_ms()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
