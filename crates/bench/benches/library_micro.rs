//! Library microbenchmarks: the real wall time of the building blocks —
//! TSPLIB parsing, NN-list construction, 2-opt, CPU AS iterations, and
//! raw simulator throughput.

use aco_core::cpu::{AntSystem, OpCounter, TourPolicy};
use aco_core::params::AcoParams;
use aco_simt::prelude::*;
use aco_tsp::{tsplib, NearestNeighborLists, Tour};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

struct Saxpy {
    x: DevicePtr<f32>,
    n: u32,
}
impl Kernel for Saxpy {
    fn name(&self) -> &'static str {
        "saxpy"
    }
    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let i = ctx.global_thread_idx();
        let limit = ctx.splat_u32(self.n);
        let ok = ctx.ult(&i, &limit);
        ctx.if_then(gm, &ok, |ctx, gm| {
            let x = ctx.ld_global_f32(gm, self.x, &i);
            let two = ctx.splat_f32(2.0);
            let y = ctx.fma(&two, &x, &x);
            ctx.st_global_f32(gm, self.x, &i, &y);
        });
    }
}

fn bench(c: &mut Criterion) {
    let inst = aco_tsp::paper_instance("kroC100").expect("known instance");

    c.bench_function("tsplib_write_parse_roundtrip_100", |b| {
        let text = tsplib::write(&inst);
        b.iter(|| tsplib::parse(&text).expect("round trip"))
    });

    c.bench_function("nn_list_build_100x20", |b| {
        b.iter(|| NearestNeighborLists::build(inst.matrix(), 20).expect("valid"))
    });

    c.bench_function("two_opt_random_tour_100", |b| {
        let nn = NearestNeighborLists::build(inst.matrix(), 15).expect("valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut t = Tour::random(100, &mut rng);
            aco_tsp::two_opt::two_opt(&mut t, inst.matrix(), &nn)
        })
    });

    c.bench_function("cpu_as_iteration_100", |b| {
        let mut aco = AntSystem::new(&inst, AcoParams::default().nn(20).seed(1));
        b.iter(|| aco.iterate(TourPolicy::NearestNeighborList).iter_best)
    });

    c.bench_function("cpu_as_construct_only_100", |b| {
        let aco = AntSystem::new(&inst, AcoParams::default().nn(20).seed(1));
        b.iter(|| {
            let mut rng = aco_simt::rng::PmRng::new(42);
            let mut c = OpCounter::default();
            aco.construct_one(&mut rng, TourPolicy::NearestNeighborList, &mut c)
        })
    });

    c.bench_function("simt_saxpy_64k_lanes", |b| {
        let dev = DeviceSpec::tesla_m2050();
        b.iter(|| {
            let mut gm = GlobalMem::new();
            let x = gm.alloc_f32(65536);
            let k = Saxpy { x, n: 65536 };
            launch(&dev, &LaunchConfig::new(256, 256), &k, &mut gm, SimMode::Full).expect("valid")
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
