//! Table III bench: pheromone-update strategies on the Tesla C1060 model.

use aco_bench::{table3, ModePolicy, RunConfig};
use aco_core::gpu::{run_pheromone, ColonyBuffers, PheromoneStrategy};
use aco_simt::{DeviceSpec, GlobalMem, SimMode};
use aco_tsp::Tour;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let cfg = RunConfig { max_n: 100, mode: ModePolicy::Auto, threads: 2 };
    let table = table3(&cfg);
    println!("{}", table.to_text());
    let _ = table.write_csv(std::path::Path::new("results"), "table3_pheromone_c1060_small");

    let inst = aco_tsp::paper_instance("att48").expect("known instance");
    let dev = DeviceSpec::tesla_c1060();
    let params = aco_bench::paper_params();

    let mut g = c.benchmark_group("table3_att48");
    g.sample_size(10);
    for strategy in
        [PheromoneStrategy::AtomicShared, PheromoneStrategy::Reduction, PheromoneStrategy::Scatter]
    {
        g.bench_function(strategy.paper_row(), |b| {
            b.iter(|| {
                let mut gm = GlobalMem::new();
                let bufs = ColonyBuffers::allocate(&mut gm, &inst, &params);
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                let tours: Vec<Tour> = (0..48).map(|_| Tour::random(48, &mut rng)).collect();
                bufs.upload_tours(&mut gm, &tours, inst.matrix());
                run_pheromone(&dev, &mut gm, bufs, strategy, 0.5, SimMode::Full)
                    .expect("valid launch")
                    .time
                    .total_ms
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
