//! Figure 5 bench: pheromone-update speed-up (best kernel vs sequential).

use aco_bench::{fig5, ModePolicy, RunConfig};
use aco_core::cpu::ant_system::model as cpu_model;
use aco_core::cpu::CpuModel;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig { max_n: 442, mode: ModePolicy::Auto, threads: 4 };
    let table = fig5(&cfg);
    println!("{}", table.to_text());
    let _ = table.write_csv(std::path::Path::new("results"), "fig5_speedup_pheromone_small");

    // Microbenchmark of the modeled CPU update pricing itself.
    let mut g = c.benchmark_group("fig5_cpu_model");
    g.bench_function("cpu_update_model_pr1002", |b| {
        let model = CpuModel::default();
        b.iter(|| model.time_ms(&cpu_model::update_counters(1002, 1002)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
