//! The launch-fault hook: how a supervisor injects a fault into the
//! SIMT launch path without the simulator knowing about jobs or plans.
//!
//! This is the failure-path twin of `aco_obs::kernel`: the engine arms
//! exactly one [`LaunchFault`] on the executing thread right before it
//! drives a solver ([`arm`] returns an RAII [`LaunchScope`] that
//! restores the previous state on drop), and the *next* simulated kernel
//! launch on that thread consumes it ([`take`]) — panicking or failing
//! the launch with the armed message. One-shot consumption means a
//! multi-launch solve fails at its first launch and runs no further
//! kernels, like a real device error surfacing at the next API call.
//!
//! Unarmed — the production configuration — the launch path pays one
//! thread-local read and a branch.

use std::cell::RefCell;

/// A fault armed for the next kernel launch on this thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchFault {
    /// The launch panics with this message.
    Panic(String),
    /// The launch fails with a transient device error carrying this
    /// message.
    Transient(String),
}

thread_local! {
    static ARMED: RefCell<Option<LaunchFault>> = const { RefCell::new(None) };
}

/// RAII guard for an armed [`LaunchFault`]; restores the previously
/// armed fault (if any) on drop, so nesting composes and an unconsumed
/// fault never leaks past its scope.
#[must_use = "dropping the scope immediately disarms the fault"]
pub struct LaunchScope {
    previous: Option<LaunchFault>,
}

impl Drop for LaunchScope {
    fn drop(&mut self) {
        ARMED.with(|s| *s.borrow_mut() = self.previous.take());
    }
}

/// Arm `fault` for the next launch on this thread until the returned
/// guard drops.
pub fn arm(fault: LaunchFault) -> LaunchScope {
    let previous = ARMED.with(|s| s.borrow_mut().replace(fault));
    LaunchScope { previous }
}

/// Consume the armed fault, if any (called by the SIMT launch path; the
/// second launch in a scope sees `None`).
pub fn take() -> Option<LaunchFault> {
    ARMED.with(|s| s.borrow_mut().take())
}

/// Is a fault currently armed on this thread?
pub fn armed() -> bool {
    ARMED.with(|s| s.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_without_arming_is_none() {
        assert_eq!(take(), None);
    }

    #[test]
    fn armed_fault_is_consumed_exactly_once() {
        let _scope = arm(LaunchFault::Transient("t".into()));
        assert!(armed());
        assert_eq!(take(), Some(LaunchFault::Transient("t".into())));
        assert_eq!(take(), None, "one-shot");
        assert!(!armed());
    }

    #[test]
    fn scope_restores_the_previous_fault() {
        let _outer = arm(LaunchFault::Panic("outer".into()));
        {
            let _inner = arm(LaunchFault::Transient("inner".into()));
            assert_eq!(take(), Some(LaunchFault::Transient("inner".into())));
        }
        // Inner scope dropped: the outer fault is armed again.
        assert_eq!(take(), Some(LaunchFault::Panic("outer".into())));
    }

    #[test]
    fn dropping_an_unconsumed_scope_disarms() {
        {
            let _scope = arm(LaunchFault::Panic("never consumed".into()));
        }
        assert_eq!(take(), None);
    }
}
