//! `aco-faults` — deterministic fault injection for the solve stack.
//!
//! Robustness machinery is only trustworthy if its failure paths are
//! *exercisable under test*, and a test is only trustworthy if the
//! failures it injects are reproducible. This crate provides both
//! halves:
//!
//! * A [`FaultPlan`]: a seeded description of *which* attempts fail and
//!   *how* ([`FaultKind`]). The decision for an attempt is a **pure
//!   function of `(seed, job id, device id, attempt)`** — no wall clock,
//!   no RNG state threaded through execution — so a fixed plan injects
//!   bit-identical faults no matter how many engine workers race over
//!   the batch, which thread runs which job, or how often the batch is
//!   replayed. This is what lets the engine extend its worker-count
//!   determinism contract to *failing* runs: fixed plan ⇒ identical
//!   outcomes, attempt counts, placements and retry sequences at 1 vs 4
//!   workers.
//! * The [`launch`] hook: a thread-local, RAII-scoped way for a
//!   supervisor to arm exactly one fault that the next simulated kernel
//!   launch consumes (panicking or failing the launch), mirroring the
//!   observability hook in `aco_obs::kernel`. Unarmed, the launch path
//!   pays one thread-local read and a branch.
//!
//! The crate is dependency-free and sits at the bottom of the workspace
//! stack: it knows nothing about engines, pools or jobs — devices are
//! raw `u32` ids (`None` = the CPU backend), jobs are raw `u64`s.

use std::collections::BTreeMap;
use std::sync::Arc;

pub mod launch;

/// What kind of failure an attempt is injected with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The kernel launch panics (exercises the engine's `catch_unwind`
    /// supervision and panic-payload enrichment).
    KernelPanic,
    /// The device reports a transient, typed error
    /// (`SimtError::DeviceFault`); the canonical retryable failure.
    TransientError,
    /// The attempt hangs: it makes no progress until the engine's
    /// per-attempt watchdog (or the plan's [`FaultPlan::hang_ms`] cap)
    /// cuts it off.
    Hang,
}

impl FaultKind {
    /// Stable lower-case label (used in fault records and rendering).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::KernelPanic => "kernel-panic",
            FaultKind::TransientError => "transient-error",
            FaultKind::Hang => "hang",
        }
    }
}

/// Per-target fault probabilities (each in `[0, 1]`; their sum is
/// clamped conceptually by evaluation order: panic, then transient, then
/// hang).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability of [`FaultKind::KernelPanic`].
    pub panic: f64,
    /// Probability of [`FaultKind::TransientError`].
    pub transient: f64,
    /// Probability of [`FaultKind::Hang`].
    pub hang: f64,
}

impl FaultRates {
    fn total(&self) -> f64 {
        self.panic + self.transient + self.hang
    }
}

/// Default simulated-hang duration cap (milliseconds).
pub const DEFAULT_HANG_MS: u64 = 25;

/// A seeded, immutable description of which attempts fail and how.
///
/// Baseline rates apply to every attempt (including CPU-backend
/// attempts, where the device is `None`); per-device overrides replace
/// the baseline for attempts bound to that device. The decision itself
/// ([`FaultPlan::fault_for`]) hashes `(seed, job, device, attempt)`
/// through a SplitMix64-style finalizer into a unit float and compares
/// it against the cumulative rate thresholds — stateless, so the same
/// question always gets the same answer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    base: FaultRates,
    /// Per-device rate overrides, keyed by raw pool device id.
    overrides: BTreeMap<u32, FaultRates>,
    hang_ms: u64,
}

impl FaultPlan {
    /// An empty plan (no faults anywhere) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: FaultRates::default(),
            overrides: BTreeMap::new(),
            hang_ms: DEFAULT_HANG_MS,
        }
    }

    /// Builder: baseline kernel-panic probability for every attempt.
    pub fn panic_rate(mut self, p: f64) -> Self {
        self.base.panic = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: baseline transient-error probability for every attempt.
    pub fn transient_rate(mut self, p: f64) -> Self {
        self.base.transient = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: baseline hang probability for every attempt.
    pub fn hang_rate(mut self, p: f64) -> Self {
        self.base.hang = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: replace every rate for attempts on `device`.
    pub fn device_rates(mut self, device: u32, rates: FaultRates) -> Self {
        self.overrides.insert(device, rates);
        self
    }

    /// Builder: `device` fails transiently with probability `p` (a flaky
    /// card — most attempts on it die, retries may get through).
    pub fn flaky_device(self, device: u32, p: f64) -> Self {
        self.device_rates(device, FaultRates { transient: p.clamp(0.0, 1.0), ..Default::default() })
    }

    /// Builder: every attempt on `device` fails transiently (a dead
    /// card — only failover away from it can succeed).
    pub fn dead_device(self, device: u32) -> Self {
        self.device_rates(device, FaultRates { transient: 1.0, ..Default::default() })
    }

    /// Builder: how long an injected hang stalls before the injector
    /// itself cuts it off (the engine's per-attempt watchdog may fire
    /// first; the cap keeps watchdog-less runs bounded).
    pub fn hang_ms(mut self, ms: u64) -> Self {
        self.hang_ms = ms.max(1);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The hang-duration cap in milliseconds.
    pub fn hang_cap_ms(&self) -> u64 {
        self.hang_ms
    }

    /// The rates governing an attempt on `device` (`None` = CPU).
    pub fn rates_for(&self, device: Option<u32>) -> FaultRates {
        device.and_then(|d| self.overrides.get(&d).copied()).unwrap_or(self.base)
    }

    /// The fault injected into attempt `attempt` of job `job` on
    /// `device`, if any. Pure: no state is read or written, so any
    /// caller — a submit-time preview, the executing worker, a test
    /// replaying the schedule — gets the same answer.
    pub fn fault_for(&self, job: u64, device: Option<u32>, attempt: u32) -> Option<FaultKind> {
        let rates = self.rates_for(device);
        if rates.total() <= 0.0 {
            return None;
        }
        let u = unit_hash(self.seed, job, device, attempt);
        if u < rates.panic {
            Some(FaultKind::KernelPanic)
        } else if u < rates.panic + rates.transient {
            Some(FaultKind::TransientError)
        } else if u < rates.panic + rates.transient + rates.hang {
            Some(FaultKind::Hang)
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer (the same mixing the vendored proptest RNG
/// uses): a cheap, well-distributed 64-bit permutation.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash `(seed, job, device, attempt)` to a unit float in `[0, 1)`.
/// The CPU "device" is distinguished from device 0 by an offset.
fn unit_hash(seed: u64, job: u64, device: Option<u32>, attempt: u32) -> f64 {
    let d = device.map(|d| d as u64 + 1).unwrap_or(0);
    let h = splitmix(splitmix(splitmix(seed ^ job).wrapping_add(d)).wrapping_add(attempt as u64));
    // 53 high bits → the unit interval, exactly representable in f64.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A cheap, clonable handle to an optional [`FaultPlan`]. The disabled
/// default is the production configuration: every query is one branch on
/// a `None`, mirroring how `aco_obs` handles disabled observability.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: Option<Arc<FaultPlan>>,
}

impl FaultInjector {
    /// An injector that never injects (the default).
    pub fn disabled() -> Self {
        FaultInjector { plan: None }
    }

    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan: Some(Arc::new(plan)) }
    }

    /// Is a plan armed?
    pub fn is_armed(&self) -> bool {
        self.plan.is_some()
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_deref()
    }

    /// The fault injected into `(job, device, attempt)`, if any (`None`
    /// always when disabled). See [`FaultPlan::fault_for`].
    pub fn fault_for(&self, job: u64, device: Option<u32>, attempt: u32) -> Option<FaultKind> {
        self.plan.as_ref().and_then(|p| p.fault_for(job, device, attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_injects() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_armed());
        for job in 0..50 {
            assert_eq!(inj.fault_for(job, Some(0), 1), None);
        }
    }

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let plan = FaultPlan::new(42).transient_rate(0.5);
        let a: Vec<_> = (0..64).map(|j| plan.fault_for(j, Some(1), 1)).collect();
        let b: Vec<_> = (0..64).map(|j| plan.fault_for(j, Some(1), 1)).collect();
        assert_eq!(a, b, "same question, same answer");
        let other = FaultPlan::new(43).transient_rate(0.5);
        let c: Vec<_> = (0..64).map(|j| plan.fault_for(j, Some(1), 1)).collect();
        let d: Vec<_> = (0..64).map(|j| other.fault_for(j, Some(1), 1)).collect();
        assert_ne!(c, d, "different seeds give different schedules");
    }

    #[test]
    fn rates_partition_the_unit_interval_in_kind_order() {
        // With rates summing to 1 every attempt faults, and the observed
        // mix roughly tracks the configured split.
        let plan = FaultPlan::new(7).panic_rate(0.2).transient_rate(0.5).hang_rate(0.3);
        let mut counts = [0usize; 3];
        for job in 0..2000u64 {
            match plan.fault_for(job, Some(0), 1) {
                Some(FaultKind::KernelPanic) => counts[0] += 1,
                Some(FaultKind::TransientError) => counts[1] += 1,
                Some(FaultKind::Hang) => counts[2] += 1,
                None => panic!("rates sum to 1; every attempt must fault"),
            }
        }
        assert!((300..500).contains(&counts[0]), "panic ≈ 20%: {counts:?}");
        assert!((800..1200).contains(&counts[1]), "transient ≈ 50%: {counts:?}");
        assert!((400..800).contains(&counts[2]), "hang ≈ 30%: {counts:?}");
    }

    #[test]
    fn device_overrides_replace_the_baseline() {
        let plan = FaultPlan::new(1).dead_device(2).flaky_device(3, 0.0);
        for job in 0..32u64 {
            assert_eq!(plan.fault_for(job, Some(2), 1), Some(FaultKind::TransientError));
            assert_eq!(plan.fault_for(job, Some(3), 1), None, "override replaces, not adds");
            assert_eq!(plan.fault_for(job, Some(0), 1), None, "baseline is empty");
            assert_eq!(plan.fault_for(job, None, 1), None, "CPU attempts use the baseline");
        }
    }

    #[test]
    fn attempts_and_devices_decorrelate() {
        // A 50% flaky device must not fail the same job on every attempt
        // (otherwise retry-on-same-device could never succeed).
        let plan = FaultPlan::new(9).flaky_device(0, 0.5);
        let escaped = (0..200u64)
            .filter(|&job| (1..=4).any(|a| plan.fault_for(job, Some(0), a).is_none()))
            .count();
        assert!(escaped > 180, "almost every job escapes within 4 attempts: {escaped}");
        // And the CPU stream differs from device 0's.
        let plan = FaultPlan::new(9).transient_rate(0.5);
        let dev: Vec<_> = (0..64).map(|j| plan.fault_for(j, Some(0), 1).is_some()).collect();
        let cpu: Vec<_> = (0..64).map(|j| plan.fault_for(j, None, 1).is_some()).collect();
        assert_ne!(dev, cpu);
    }

    #[test]
    fn hang_cap_is_configurable_and_clamped() {
        assert_eq!(FaultPlan::new(0).hang_cap_ms(), DEFAULT_HANG_MS);
        assert_eq!(FaultPlan::new(0).hang_ms(100).hang_cap_ms(), 100);
        assert_eq!(FaultPlan::new(0).hang_ms(0).hang_cap_ms(), 1);
    }
}
