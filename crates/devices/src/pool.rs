//! The device pool: placement, admission, and telemetry.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use aco_simt::DeviceSpec;

use crate::profile::{DeviceModel, DeviceProfile};

/// Index of a device within its pool (stable for the pool's lifetime;
/// also the identifier reports and progress events carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Where a job may run. `Any` is the default; `Preferred` biases the
/// placement toward one device but falls back when that device is
/// markedly worse (or incompatible); `Pinned` is honoured exactly or
/// rejected with a typed [`PlacementError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceAffinity {
    /// Any compatible device; the pool picks.
    #[default]
    Any,
    /// Use this device unless its predicted completion is more than
    /// [`PREFERRED_SLACK`]× the best compatible device's (or it is
    /// incompatible), in which case place as `Any`.
    Preferred(DeviceId),
    /// Exactly this device, or a typed rejection.
    Pinned(DeviceId),
}

/// How much worse (multiplicatively) a `Preferred` device's predicted
/// completion may be before the pool overrides the preference.
pub const PREFERRED_SLACK: f64 = 1.5;

/// Health of one pool device, as judged by the deterministic health
/// ledger (driven by `note_outcome` calls in the submission sequence —
/// never by execution timing, so health-aware placement keeps the
/// pool's worker-count determinism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HealthState {
    /// No recent failures.
    #[default]
    Healthy,
    /// At least [`HealthPolicy::degrade_after`] consecutive failures:
    /// still eligible, but `Any` placements prefer non-degraded peers.
    Degraded,
    /// At least [`HealthPolicy::quarantine_after`] consecutive failures:
    /// excluded from placement (pins get a typed error) until probation
    /// re-admits it.
    Quarantined,
    /// Re-admitted after sitting out [`HealthPolicy::probation_after`]
    /// skipped placements: eligible again, but one more failure
    /// re-quarantines immediately, while one success heals fully.
    Probation,
}

impl HealthState {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        }
    }

    /// Numeric severity code (exported as a gauge: 0 healthy, 1
    /// degraded, 2 probation, 3 quarantined).
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Probation => 2,
            HealthState::Quarantined => 3,
        }
    }
}

/// Thresholds of the per-device health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HealthPolicy {
    /// Consecutive failures before a device is [`HealthState::Degraded`].
    pub degrade_after: u32,
    /// Consecutive failures before a device is
    /// [`HealthState::Quarantined`].
    pub quarantine_after: u32,
    /// Placements a quarantined device must sit out before probation
    /// re-admits it.
    pub probation_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy { degrade_after: 1, quarantine_after: 3, probation_after: 8 }
    }
}

impl HealthPolicy {
    /// Builder: degrade threshold (clamped to ≥ 1).
    pub fn degrade_after(mut self, failures: u32) -> Self {
        self.degrade_after = failures.max(1);
        self
    }

    /// Builder: quarantine threshold (clamped to ≥ 1).
    pub fn quarantine_after(mut self, failures: u32) -> Self {
        self.quarantine_after = failures.max(1);
        self
    }

    /// Builder: probation re-admission threshold (clamped to ≥ 1).
    pub fn probation_after(mut self, skips: u32) -> Self {
        self.probation_after = skips.max(1);
        self
    }
}

/// One health transition, in ledger order (`seq` is the ledger's logical
/// clock: the count of outcome notes and quarantine skips so far — no
/// wall clock, so the timeline is identical at any worker count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// The device that transitioned.
    pub device: DeviceId,
    /// The state it entered.
    pub state: HealthState,
    /// Logical time of the transition.
    pub seq: u64,
}

/// Bound on the retained health-event log (oldest kept; a pool seeing
/// more transitions than this is being deliberately tortured by a fault
/// plan, and the tail adds nothing).
const MAX_HEALTH_EVENTS: usize = 4096;

/// The pool's placement policy for `Any`/fallback placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementStrategy {
    /// Minimise `predict_kernel_ms × iterations + assigned backlog` over
    /// compatible devices (ties break toward the lowest id).
    #[default]
    LeastLoaded,
    /// Rotate over compatible devices in id order, ignoring load — the
    /// baseline least-loaded placement is measured against.
    RoundRobin,
}

/// A successful placement decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The chosen device.
    pub device: DeviceId,
    /// Predicted total milliseconds of the job on that device
    /// (`predict_kernel_ms × iterations`) — the amount charged to the
    /// device's assigned ledger.
    pub predicted_ms: f64,
}

/// Why a placement was rejected. These are *submit-time* errors: the job
/// never queues, never runs, and never touches any cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementError {
    /// The pool contains no device of the required model.
    NoCompatibleDevice {
        /// The model the job was built for.
        required: DeviceModel,
    },
    /// A pinned/preferred affinity names a device id the pool does not
    /// have.
    UnknownDevice {
        /// The id the affinity named.
        device: DeviceId,
    },
    /// A pinned affinity names a device of the wrong model.
    IncompatibleDevice {
        /// The id the affinity named.
        device: DeviceId,
        /// The model the job was built for.
        required: DeviceModel,
        /// The model actually installed at that id.
        installed: DeviceModel,
    },
    /// A pinned affinity was given for a job that does not run on a
    /// device at all (a CPU backend).
    NotADeviceJob {
        /// The id the affinity named.
        device: DeviceId,
    },
    /// A pinned affinity names a device the health ledger has
    /// quarantined. Pins are a contract, so the pool rejects rather than
    /// silently moving the job.
    DeviceQuarantined {
        /// The quarantined device the pin named.
        device: DeviceId,
    },
    /// Every device of the required model is quarantined. Schedulers with
    /// a CPU-fallback policy degrade on this error instead of failing.
    AllDevicesQuarantined {
        /// The model the job was built for.
        required: DeviceModel,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCompatibleDevice { required } => {
                write!(f, "pool has no {} device", required.label())
            }
            PlacementError::UnknownDevice { device } => {
                write!(f, "pool has no device {device}")
            }
            PlacementError::IncompatibleDevice { device, required, installed } => {
                write!(
                    f,
                    "job requires a {} device but {device} is a {}",
                    required.label(),
                    installed.label()
                )
            }
            PlacementError::NotADeviceJob { device } => {
                write!(f, "job pinned to {device} does not run on a device")
            }
            PlacementError::DeviceQuarantined { device } => {
                write!(f, "device {device} is quarantined")
            }
            PlacementError::AllDevicesQuarantined { required } => {
                write!(f, "every {} device is quarantined", required.label())
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Live per-device counters. Everything here is observability: none of
/// it feeds back into placement (see the module docs of the crate).
#[derive(Debug, Default)]
struct Telemetry {
    /// Jobs sitting in this device's run queue right now.
    queued: AtomicUsize,
    /// Jobs admitted and executing right now.
    running: AtomicUsize,
    /// Peak of `queued + running` ever observed.
    peak_depth: AtomicUsize,
    /// Peak of `running` ever observed.
    peak_running: AtomicUsize,
    /// Jobs that ran to a posted result on this device.
    completed: AtomicU64,
    /// Accumulated host wall-clock microseconds spent executing jobs.
    busy_us: AtomicU64,
    /// Admission attempts rejected because every resident-job slot was
    /// busy (each is one wait bout a worker spent backing off).
    admission_waits: AtomicU64,
    /// Genuine runtime faults observed on this device (telemetry only —
    /// the deterministic health ledger is fed by `note_outcome`, never by
    /// this counter, so execution timing cannot perturb placement).
    faults: AtomicU64,
}

/// One device's cell in the deterministic health ledger.
#[derive(Debug, Clone, Default)]
struct HealthCell {
    state: HealthState,
    /// Consecutive noted failures since the last noted success.
    consecutive: u32,
    /// Placements this quarantined device has sat out so far.
    skips: u32,
    /// Times this device has ever entered quarantine.
    quarantines: u64,
}

/// Deterministic placement state, mutated only by [`DevicePool::place`]
/// and [`DevicePool::note_outcome`].
#[derive(Debug)]
struct Ledger {
    /// Total predicted milliseconds ever assigned per device — the
    /// "queue depth" term of the placement cost. Monotone by design:
    /// draining it on completion would make placement depend on
    /// completion timing and break worker-count determinism.
    assigned_ms: Vec<f64>,
    /// Round-robin cursor (used only under that strategy).
    rr_next: u64,
    /// Per-device health cells (same mutex as the rest of the
    /// deterministic state: health transitions are ordered by the
    /// submission sequence, not by execution timing).
    health: Vec<HealthCell>,
    /// Logical clock over health mutations (outcome notes + quarantine
    /// skips), stamped onto [`HealthEvent`]s.
    health_seq: u64,
    /// Transition log, oldest first, bounded by [`MAX_HEALTH_EVENTS`].
    events: Vec<HealthEvent>,
}

/// Point-in-time view of one pool device (see [`DevicePool::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    /// The device's pool id.
    pub id: DeviceId,
    /// Profile name.
    pub name: String,
    /// Hardware generation.
    pub model: DeviceModel,
    /// Jobs in the run queue right now.
    pub queued: usize,
    /// Jobs executing right now.
    pub running: usize,
    /// Peak `queued + running` observed.
    pub peak_depth: usize,
    /// Peak concurrent `running` observed (≤ `slots`: every admission
    /// path respects the budget).
    pub peak_running: usize,
    /// Jobs completed on this device.
    pub completed: u64,
    /// Host wall-clock milliseconds spent executing jobs.
    pub busy_ms: f64,
    /// Total predicted milliseconds assigned by the placement ledger.
    pub assigned_ms: f64,
    /// Admission attempts rejected on a full slot budget (backlog
    /// pressure: how often workers had to wait for this device).
    pub admission_waits: u64,
    /// Resident-job budget.
    pub slots: usize,
    /// Exec-thread budget.
    pub exec_threads: usize,
    /// Health-ledger state.
    pub health: HealthState,
    /// Consecutive ledger-noted failures since the last success.
    pub consecutive_failures: u32,
    /// Times the device has ever entered quarantine.
    pub quarantines: u64,
    /// Genuine runtime faults observed (telemetry; never feeds health).
    pub faults_observed: u64,
}

/// A fixed set of simulated devices plus the placement ledger and
/// telemetry. Profiles are immutable after construction; ids are the
/// construction order.
#[derive(Debug)]
pub struct DevicePool {
    profiles: Vec<DeviceProfile>,
    specs: Vec<DeviceSpec>,
    strategy: PlacementStrategy,
    health_policy: HealthPolicy,
    ledger: Mutex<Ledger>,
    telemetry: Vec<Telemetry>,
}

impl DevicePool {
    /// Build a pool over `profiles` (possibly empty: an empty pool is a
    /// CPU-only engine — every GPU placement fails with
    /// [`PlacementError::NoCompatibleDevice`]) with the default
    /// [`HealthPolicy`].
    pub fn new(profiles: Vec<DeviceProfile>, strategy: PlacementStrategy) -> Self {
        Self::with_health(profiles, strategy, HealthPolicy::default())
    }

    /// Build a pool with explicit health thresholds.
    pub fn with_health(
        profiles: Vec<DeviceProfile>,
        strategy: PlacementStrategy,
        health_policy: HealthPolicy,
    ) -> Self {
        let specs = profiles.iter().map(DeviceProfile::spec).collect();
        let telemetry = profiles.iter().map(|_| Telemetry::default()).collect();
        let assigned_ms = vec![0.0; profiles.len()];
        let health = vec![HealthCell::default(); assigned_ms.len()];
        DevicePool {
            profiles,
            specs,
            strategy,
            health_policy,
            ledger: Mutex::new(Ledger {
                assigned_ms,
                rr_next: 0,
                health,
                health_seq: 0,
                events: Vec::new(),
            }),
            telemetry,
        }
    }

    /// The health thresholds in force.
    pub fn health_policy(&self) -> HealthPolicy {
        self.health_policy
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Is the pool empty (CPU-only engine)?
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The placement strategy in force.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The profile at `id`, if any.
    pub fn profile(&self, id: DeviceId) -> Option<&DeviceProfile> {
        self.profiles.get(id.0 as usize)
    }

    /// The derived [`DeviceSpec`] at `id`, if any (precomputed once).
    pub fn spec(&self, id: DeviceId) -> Option<&DeviceSpec> {
        self.specs.get(id.0 as usize)
    }

    /// Ids of every device of `model`, ascending.
    pub fn devices_of(&self, model: DeviceModel) -> Vec<DeviceId> {
        self.profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.model == model)
            .map(|(i, _)| DeviceId(i as u32))
            .collect()
    }

    /// Validate that a *pinned* affinity names a real device (the cheap
    /// check a scheduler can run at submit time before the job's model
    /// is known, e.g. for auto backends). `Preferred` is a preference,
    /// not a contract: an unknown or incompatible preference falls back
    /// to `Any` at placement time, exactly as [`DevicePool::place`] and
    /// [`DevicePool::rotate`] treat it, so it never fails here.
    pub fn check_affinity(&self, affinity: DeviceAffinity) -> Result<(), PlacementError> {
        match affinity {
            DeviceAffinity::Pinned(d) => {
                if (d.0 as usize) < self.profiles.len() {
                    Ok(())
                } else {
                    Err(PlacementError::UnknownDevice { device: d })
                }
            }
            DeviceAffinity::Any | DeviceAffinity::Preferred(_) => Ok(()),
        }
    }

    /// The deterministic completion-time estimate the placement cost uses
    /// for a `(n, m, iterations)` job on `id`: `predict_kernel_ms ×
    /// iterations + assigned backlog`.
    pub fn predicted_completion_ms(
        &self,
        id: DeviceId,
        n: usize,
        m: usize,
        iterations: usize,
    ) -> Option<f64> {
        let profile = self.profile(id)?;
        let ledger = self.ledger.lock().expect("ledger lock");
        Some(job_ms(profile, n, m, iterations) + ledger.assigned_ms[id.0 as usize])
    }

    /// Place a job that requires a `required`-model device. On success the
    /// chosen device's assigned ledger is charged with the job's predicted
    /// milliseconds. Placement is deterministic in the call sequence: no
    /// wall clock, no completion feedback, no randomness.
    pub fn place(
        &self,
        required: DeviceModel,
        affinity: DeviceAffinity,
        n: usize,
        m: usize,
        iterations: usize,
    ) -> Result<Placement, PlacementError> {
        let compatible = self.devices_of(required);
        let mut guard = self.ledger.lock().expect("ledger lock");
        let ledger = &mut *guard;

        let chosen = match affinity {
            DeviceAffinity::Pinned(d) => {
                let p = self.profile(d).ok_or(PlacementError::UnknownDevice { device: d })?;
                if p.model != required {
                    return Err(PlacementError::IncompatibleDevice {
                        device: d,
                        required,
                        installed: p.model,
                    });
                }
                // A pin is a contract: a quarantined pin is a typed
                // rejection, never a silent move to another device.
                if ledger.health[d.0 as usize].state == HealthState::Quarantined {
                    return Err(PlacementError::DeviceQuarantined { device: d });
                }
                d
            }
            DeviceAffinity::Preferred(p) => {
                let available = self.admissible(ledger, &compatible, required)?;
                let best = self.pick(&available, ledger, required, n, m, iterations)?;
                match self.profile(p) {
                    Some(prof)
                        if prof.model == required
                            && ledger.health[p.0 as usize].state != HealthState::Quarantined =>
                    {
                        let best_cost = self.cost(ledger, best, n, m, iterations);
                        let pref_cost = self.cost(ledger, p, n, m, iterations);
                        if pref_cost <= best_cost * PREFERRED_SLACK {
                            p
                        } else {
                            best
                        }
                    }
                    // Incompatible, unknown, or quarantined preference:
                    // fall back to Any.
                    _ => best,
                }
            }
            DeviceAffinity::Any => {
                let available = self.admissible(ledger, &compatible, required)?;
                self.pick(&available, ledger, required, n, m, iterations)?
            }
        };

        let predicted_ms = job_ms(&self.profiles[chosen.0 as usize], n, m, iterations);
        ledger.assigned_ms[chosen.0 as usize] += predicted_ms;
        Ok(Placement { device: chosen, predicted_ms })
    }

    /// Filter `compatible` through the health ledger: quarantined devices
    /// are dropped (each drop is one "skip"; enough skips move the device
    /// to probation, which re-admits it on this very call). Callers hold
    /// the ledger lock.
    fn admissible(
        &self,
        ledger: &mut Ledger,
        compatible: &[DeviceId],
        required: DeviceModel,
    ) -> Result<Vec<DeviceId>, PlacementError> {
        if compatible.is_empty() {
            return Err(PlacementError::NoCompatibleDevice { required });
        }
        let mut available = Vec::with_capacity(compatible.len());
        for &d in compatible {
            let i = d.0 as usize;
            if ledger.health[i].state != HealthState::Quarantined {
                available.push(d);
                continue;
            }
            ledger.health_seq += 1;
            let seq = ledger.health_seq;
            let cell = &mut ledger.health[i];
            cell.skips += 1;
            if cell.skips >= self.health_policy.probation_after {
                // Probation: eligible again immediately, but primed so
                // that one more failure re-quarantines while one success
                // heals fully.
                cell.state = HealthState::Probation;
                cell.skips = 0;
                cell.consecutive = self.health_policy.quarantine_after.saturating_sub(1);
                push_event(
                    &mut ledger.events,
                    HealthEvent { device: d, state: HealthState::Probation, seq },
                );
                available.push(d);
            }
        }
        if available.is_empty() {
            return Err(PlacementError::AllDevicesQuarantined { required });
        }
        Ok(available)
    }

    /// The `Any` choice under the pool's strategy, over devices that
    /// already passed [`DevicePool::admissible`]. Degraded devices are a
    /// soft avoid: they are only picked when every alternative is also
    /// degraded. Callers hold the ledger lock.
    fn pick(
        &self,
        available: &[DeviceId],
        ledger: &mut Ledger,
        required: DeviceModel,
        n: usize,
        m: usize,
        iterations: usize,
    ) -> Result<DeviceId, PlacementError> {
        if available.is_empty() {
            return Err(PlacementError::NoCompatibleDevice { required });
        }
        let sound: Vec<DeviceId> = available
            .iter()
            .copied()
            .filter(|d| ledger.health[d.0 as usize].state != HealthState::Degraded)
            .collect();
        let compatible: &[DeviceId] = if sound.is_empty() { available } else { &sound };
        Ok(match self.strategy {
            PlacementStrategy::LeastLoaded => *compatible
                .iter()
                .min_by(|a, b| {
                    self.cost(ledger, **a, n, m, iterations)
                        .total_cmp(&self.cost(ledger, **b, n, m, iterations))
                })
                .expect("compatible is non-empty"),
            PlacementStrategy::RoundRobin => {
                let d = compatible[(ledger.rr_next % compatible.len() as u64) as usize];
                ledger.rr_next += 1;
                d
            }
        })
    }

    fn cost(&self, ledger: &Ledger, d: DeviceId, n: usize, m: usize, iterations: usize) -> f64 {
        job_ms(&self.profiles[d.0 as usize], n, m, iterations) + ledger.assigned_ms[d.0 as usize]
    }

    /// Stateless device choice for jobs whose device need is only known
    /// at run time (auto-resolved backends): a pure function of
    /// `(pool, required, affinity, key)`, so it cannot depend on
    /// execution order. Such jobs bypass the assigned ledger — their cost
    /// was unknown when the deterministic placement state was last
    /// mutated at submit time.
    pub fn rotate(
        &self,
        required: DeviceModel,
        affinity: DeviceAffinity,
        key: u64,
    ) -> Result<DeviceId, PlacementError> {
        self.rotate_avoiding(required, affinity, key, 0)
    }

    /// [`DevicePool::rotate`] over the devices *not* set in `avoid_mask`
    /// (bit *i* excludes device *i*). The mask is caller-supplied state —
    /// typically a quarantine mask captured at submit time — so the
    /// choice stays a pure function of its arguments; this method never
    /// reads the live health ledger. A pinned masked device is a typed
    /// rejection; a preferred masked device falls back to rotation.
    pub fn rotate_avoiding(
        &self,
        required: DeviceModel,
        affinity: DeviceAffinity,
        key: u64,
        avoid_mask: u64,
    ) -> Result<DeviceId, PlacementError> {
        let masked = |d: DeviceId| d.0 < 64 && (avoid_mask >> d.0) & 1 == 1;
        match affinity {
            DeviceAffinity::Pinned(d) | DeviceAffinity::Preferred(d) => {
                if let Some(p) = self.profile(d) {
                    if p.model == required && !masked(d) {
                        return Ok(d);
                    }
                    if matches!(affinity, DeviceAffinity::Pinned(_)) {
                        if p.model != required {
                            return Err(PlacementError::IncompatibleDevice {
                                device: d,
                                required,
                                installed: p.model,
                            });
                        }
                        return Err(PlacementError::DeviceQuarantined { device: d });
                    }
                } else if matches!(affinity, DeviceAffinity::Pinned(_)) {
                    return Err(PlacementError::UnknownDevice { device: d });
                }
            }
            DeviceAffinity::Any => {}
        }
        let compatible = self.devices_of(required);
        if compatible.is_empty() {
            return Err(PlacementError::NoCompatibleDevice { required });
        }
        let open: Vec<DeviceId> = compatible.iter().copied().filter(|d| !masked(*d)).collect();
        if open.is_empty() {
            return Err(PlacementError::AllDevicesQuarantined { required });
        }
        Ok(open[(key % open.len() as u64) as usize])
    }

    // --- health ledger (scheduler-facing) ----------------------------------

    /// Charge one job outcome on `id` to the health ledger. This is the
    /// *only* input to the health state machine; callers must invoke it
    /// in a deterministic order (the engine charges predicted outcomes at
    /// submit time) or accept placement divergence. Unknown ids are
    /// ignored.
    pub fn note_outcome(&self, id: DeviceId, ok: bool) {
        let i = id.0 as usize;
        if i >= self.profiles.len() {
            return;
        }
        let policy = self.health_policy;
        let mut guard = self.ledger.lock().expect("ledger lock");
        let ledger = &mut *guard;
        ledger.health_seq += 1;
        let seq = ledger.health_seq;
        let cell = &mut ledger.health[i];
        let new_state = if ok {
            cell.consecutive = 0;
            cell.skips = 0;
            HealthState::Healthy
        } else {
            cell.consecutive = cell.consecutive.saturating_add(1);
            if cell.consecutive >= policy.quarantine_after {
                HealthState::Quarantined
            } else if cell.consecutive >= policy.degrade_after {
                HealthState::Degraded
            } else {
                cell.state
            }
        };
        if new_state != cell.state {
            if new_state == HealthState::Quarantined {
                cell.quarantines += 1;
                cell.skips = 0;
            }
            cell.state = new_state;
            push_event(&mut ledger.events, HealthEvent { device: id, state: new_state, seq });
        }
    }

    /// The health state of `id`, if the pool has such a device.
    pub fn health(&self, id: DeviceId) -> Option<HealthState> {
        let ledger = self.ledger.lock().expect("ledger lock");
        ledger.health.get(id.0 as usize).map(|c| c.state)
    }

    /// Bitmask of currently quarantined devices (bit *i* set ⇔ device *i*
    /// quarantined; devices beyond id 63 are never masked). Capture this
    /// at submit time and feed it to [`DevicePool::rotate_avoiding`] to
    /// make run-time device choice health-aware without reading live
    /// state.
    pub fn quarantine_mask(&self) -> u64 {
        let ledger = self.ledger.lock().expect("ledger lock");
        ledger
            .health
            .iter()
            .take(64)
            .enumerate()
            .filter(|(_, c)| c.state == HealthState::Quarantined)
            .fold(0u64, |mask, (i, _)| mask | (1u64 << i))
    }

    /// The health transition log, oldest first (bounded; see
    /// [`HealthEvent`] for the logical clock).
    pub fn health_events(&self) -> Vec<HealthEvent> {
        let ledger = self.ledger.lock().expect("ledger lock");
        ledger.events.clone()
    }

    /// Count one genuine runtime fault on `id` (telemetry only: shows up
    /// in snapshots and metrics, never consulted by placement).
    pub fn note_fault_observed(&self, id: DeviceId) {
        if let Some(t) = self.telemetry.get(id.0 as usize) {
            t.faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    // --- slot accounting audit ---------------------------------------------

    /// Slot-accounting leaks visible right now: devices still holding
    /// running slots or queued entries. Meaningful once the scheduler has
    /// gone quiescent (all jobs terminal); each string names one
    /// imbalance. Empty means every `try_admit`/`try_admit_unqueued` was
    /// balanced by a `release`/`cancel_admit` and every `note_queued` was
    /// consumed.
    pub fn slot_leaks(&self) -> Vec<String> {
        let mut leaks = Vec::new();
        for (i, t) in self.telemetry.iter().enumerate() {
            let running = t.running.load(Ordering::Acquire);
            let queued = t.queued.load(Ordering::Acquire);
            if running != 0 {
                leaks.push(format!("dev{i}: {running} running slot(s) never released"));
            }
            if queued != 0 {
                leaks.push(format!("dev{i}: {queued} queued entr(ies) never admitted"));
            }
        }
        leaks
    }

    /// Panic (with every imbalance listed) if [`DevicePool::slot_leaks`]
    /// is non-empty. Test/teardown helper.
    pub fn assert_no_slot_leaks(&self) {
        let leaks = self.slot_leaks();
        assert!(leaks.is_empty(), "device slot accounting leaked: {}", leaks.join("; "));
    }

    // --- telemetry hooks (scheduler-facing) --------------------------------

    /// A job entered `id`'s run queue.
    pub fn note_queued(&self, id: DeviceId) {
        let t = &self.telemetry[id.0 as usize];
        let q = t.queued.fetch_add(1, Ordering::Relaxed) + 1;
        let depth = q + t.running.load(Ordering::Relaxed);
        t.peak_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Reserve one resident-job slot on `id` (running++ iff below the
    /// slot budget, with peak tracking).
    fn try_reserve_slot(&self, id: DeviceId) -> bool {
        let t = &self.telemetry[id.0 as usize];
        let slots = self.profiles[id.0 as usize].slots;
        if t.running
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| (r < slots).then_some(r + 1))
            .is_err()
        {
            t.admission_waits.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        t.peak_running.fetch_max(t.running.load(Ordering::Relaxed), Ordering::Relaxed);
        true
    }

    /// Try to admit one more *queued* job onto `id` (respecting its slot
    /// budget); on success the job is accounted as running and removed
    /// from the queued count.
    pub fn try_admit(&self, id: DeviceId) -> bool {
        if !self.try_reserve_slot(id) {
            return false;
        }
        let t = &self.telemetry[id.0 as usize];
        let _ = t.queued.fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| q.checked_sub(1));
        true
    }

    /// Try to admit a job that was never queued on the device (an auto
    /// job that resolved to a GPU backend at run time). The slot budget
    /// applies exactly as for queued jobs; callers retry until a slot
    /// frees.
    pub fn try_admit_unqueued(&self, id: DeviceId) -> bool {
        self.try_reserve_slot(id)
    }

    /// Undo an admission whose job never ran (its queue entry had been
    /// finalised by an eager cancel/expiry).
    pub fn cancel_admit(&self, id: DeviceId) {
        let t = &self.telemetry[id.0 as usize];
        let _ = t.running.fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1));
    }

    /// A job finished executing on `id` after `wall` host time.
    pub fn release(&self, id: DeviceId, wall: std::time::Duration) {
        let t = &self.telemetry[id.0 as usize];
        let _ = t.running.fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1));
        t.completed.fetch_add(1, Ordering::Relaxed);
        t.busy_us.fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
    }

    /// Pool-wide health roll-up: how many devices sit in each state
    /// right now. The serving layer's `/healthz` aggregate — one ledger
    /// lock, no per-device allocation.
    pub fn health_summary(&self) -> HealthSummary {
        let ledger = self.ledger.lock().expect("ledger lock");
        let mut summary = HealthSummary::default();
        for h in &ledger.health {
            match h.state {
                HealthState::Healthy => summary.healthy += 1,
                HealthState::Degraded => summary.degraded += 1,
                HealthState::Probation => summary.probation += 1,
                HealthState::Quarantined => summary.quarantined += 1,
            }
        }
        summary
    }

    /// Point-in-time view of every device.
    pub fn snapshot(&self) -> Vec<DeviceSnapshot> {
        let ledger = self.ledger.lock().expect("ledger lock");
        self.profiles
            .iter()
            .zip(&self.telemetry)
            .enumerate()
            .map(|(i, (p, t))| DeviceSnapshot {
                id: DeviceId(i as u32),
                name: p.name.clone(),
                model: p.model,
                queued: t.queued.load(Ordering::Relaxed),
                running: t.running.load(Ordering::Relaxed),
                peak_depth: t.peak_depth.load(Ordering::Relaxed),
                peak_running: t.peak_running.load(Ordering::Relaxed),
                completed: t.completed.load(Ordering::Relaxed),
                busy_ms: t.busy_us.load(Ordering::Relaxed) as f64 / 1e3,
                assigned_ms: ledger.assigned_ms[i],
                admission_waits: t.admission_waits.load(Ordering::Relaxed),
                slots: p.slots,
                exec_threads: p.exec_threads,
                health: ledger.health[i].state,
                consecutive_failures: ledger.health[i].consecutive,
                quarantines: ledger.health[i].quarantines,
                faults_observed: t.faults.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Pool-wide device-health roll-up (see [`DevicePool::health_summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSummary {
    /// Devices in [`HealthState::Healthy`].
    pub healthy: usize,
    /// Devices in [`HealthState::Degraded`].
    pub degraded: usize,
    /// Devices in [`HealthState::Probation`].
    pub probation: usize,
    /// Devices in [`HealthState::Quarantined`].
    pub quarantined: usize,
}

impl HealthSummary {
    /// Devices counted, across all states.
    pub fn total(&self) -> usize {
        self.healthy + self.degraded + self.probation + self.quarantined
    }

    /// Is every device fully healthy?
    pub fn all_healthy(&self) -> bool {
        self.total() == self.healthy
    }
}

/// Append a health event, keeping the log bounded (oldest retained: the
/// interesting part of a quarantine timeline is how it started).
fn push_event(events: &mut Vec<HealthEvent>, ev: HealthEvent) {
    if events.len() < MAX_HEALTH_EVENTS {
        events.push(ev);
    }
}

/// A job's predicted total milliseconds on `profile`.
fn job_ms(profile: &DeviceProfile, n: usize, m: usize, iterations: usize) -> f64 {
    profile.predict_kernel_ms(n, m) * iterations.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_and_two() -> DevicePool {
        DevicePool::new(
            vec![
                DeviceProfile::tesla_c1060("g0"),
                DeviceProfile::tesla_c1060("g1").sm_count(15),
                DeviceProfile::tesla_m2050("f0"),
                DeviceProfile::tesla_m2050("f1"),
            ],
            PlacementStrategy::LeastLoaded,
        )
    }

    #[test]
    fn least_loaded_spreads_equal_jobs_over_equal_devices() {
        let pool = two_and_two();
        let a = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 48, 32, 5).unwrap();
        let b = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 48, 32, 5).unwrap();
        assert_ne!(a.device, b.device, "second equal job must go to the idle twin");
        assert!(a.predicted_ms > 0.0);
    }

    #[test]
    fn least_loaded_prefers_the_faster_heterogeneous_device() {
        let pool = two_and_two();
        // g1 has half the SMs of g0; the first C1060 job must go to g0.
        let a = pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Any, 64, 32, 5).unwrap();
        assert_eq!(a.device, DeviceId(0));
    }

    #[test]
    fn pinned_is_honoured_or_rejected() {
        let pool = two_and_two();
        let pin = DeviceAffinity::Pinned(DeviceId(1));
        let ok = pool.place(DeviceModel::TeslaC1060, pin, 32, 16, 3).unwrap();
        assert_eq!(ok.device, DeviceId(1));
        assert_eq!(
            pool.place(DeviceModel::TeslaM2050, pin, 32, 16, 3),
            Err(PlacementError::IncompatibleDevice {
                device: DeviceId(1),
                required: DeviceModel::TeslaM2050,
                installed: DeviceModel::TeslaC1060,
            })
        );
        assert_eq!(
            pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Pinned(DeviceId(9)), 32, 16, 3),
            Err(PlacementError::UnknownDevice { device: DeviceId(9) })
        );
    }

    #[test]
    fn preferred_yields_when_markedly_worse() {
        let pool = two_and_two();
        // Load f1 heavily, then prefer it: the pool must override.
        for _ in 0..8 {
            pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Pinned(DeviceId(3)), 96, 64, 20)
                .unwrap();
        }
        let p = pool
            .place(DeviceModel::TeslaM2050, DeviceAffinity::Preferred(DeviceId(3)), 32, 16, 2)
            .unwrap();
        assert_eq!(p.device, DeviceId(2), "overloaded preference must be overridden");
        // A fresh pool honours the same preference.
        let fresh = two_and_two();
        let q = fresh
            .place(DeviceModel::TeslaM2050, DeviceAffinity::Preferred(DeviceId(3)), 32, 16, 2)
            .unwrap();
        assert_eq!(q.device, DeviceId(3));
    }

    #[test]
    fn round_robin_rotates_within_the_compatible_set() {
        let pool = DevicePool::new(
            vec![
                DeviceProfile::tesla_c1060("g0"),
                DeviceProfile::tesla_m2050("f0"),
                DeviceProfile::tesla_c1060("g1"),
            ],
            PlacementStrategy::RoundRobin,
        );
        let seq: Vec<DeviceId> = (0..4)
            .map(|_| {
                pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Any, 32, 16, 3).unwrap().device
            })
            .collect();
        assert_eq!(seq, vec![DeviceId(0), DeviceId(2), DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn empty_or_modelless_pool_rejects_with_typed_errors() {
        let empty = DevicePool::new(Vec::new(), PlacementStrategy::LeastLoaded);
        assert_eq!(
            empty.place(DeviceModel::TeslaC1060, DeviceAffinity::Any, 16, 8, 1),
            Err(PlacementError::NoCompatibleDevice { required: DeviceModel::TeslaC1060 })
        );
        let fermi_only =
            DevicePool::new(vec![DeviceProfile::tesla_m2050("f0")], PlacementStrategy::LeastLoaded);
        assert_eq!(
            fermi_only.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, 7),
            Err(PlacementError::NoCompatibleDevice { required: DeviceModel::TeslaC1060 })
        );
    }

    #[test]
    fn rotate_is_a_pure_function_of_its_key() {
        let pool = two_and_two();
        for key in 0..6 {
            let a = pool.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, key).unwrap();
            let b = pool.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, key).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, [DeviceId(0), DeviceId(1)][(key % 2) as usize]);
        }
    }

    #[test]
    fn slots_gate_admission_and_telemetry_balances() {
        let pool = DevicePool::new(
            vec![DeviceProfile::tesla_c1060("g0").slots(2)],
            PlacementStrategy::LeastLoaded,
        );
        let d = DeviceId(0);
        pool.note_queued(d);
        pool.note_queued(d);
        pool.note_queued(d);
        assert!(pool.try_admit(d));
        assert!(pool.try_admit(d));
        assert!(!pool.try_admit(d), "third admission exceeds the slot budget");
        assert!(!pool.try_admit_unqueued(d), "unqueued admissions share the same budget");
        pool.release(d, std::time::Duration::from_millis(3));
        assert!(pool.try_admit(d), "released slot is reusable");
        let snap = &pool.snapshot()[0];
        assert_eq!(snap.peak_running, 2);
        assert_eq!(snap.peak_depth, 3);
        assert_eq!(snap.completed, 1);
        assert!(snap.busy_ms >= 3.0);
        assert_eq!(snap.queued, 0);
    }

    #[test]
    fn health_machine_degrades_quarantines_and_heals() {
        let pool = two_and_two();
        let d = DeviceId(2);
        assert_eq!(pool.health(d), Some(HealthState::Healthy));
        pool.note_outcome(d, false);
        assert_eq!(pool.health(d), Some(HealthState::Degraded));
        pool.note_outcome(d, false);
        assert_eq!(pool.health(d), Some(HealthState::Degraded));
        pool.note_outcome(d, false);
        assert_eq!(pool.health(d), Some(HealthState::Quarantined));
        assert_eq!(pool.quarantine_mask(), 1 << 2);
        pool.note_outcome(d, true);
        assert_eq!(pool.health(d), Some(HealthState::Healthy));
        assert_eq!(pool.quarantine_mask(), 0);
        let states: Vec<HealthState> = pool.health_events().iter().map(|e| e.state).collect();
        assert_eq!(
            states,
            vec![HealthState::Degraded, HealthState::Quarantined, HealthState::Healthy]
        );
        let seqs: Vec<u64> = pool.health_events().iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "logical clock must advance: {seqs:?}");
    }

    #[test]
    fn quarantined_devices_are_routed_around() {
        let pool = two_and_two();
        for _ in 0..3 {
            pool.note_outcome(DeviceId(2), false);
        }
        // Any placement must avoid f0 entirely now.
        for _ in 0..4 {
            let p = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2).unwrap();
            assert_eq!(p.device, DeviceId(3));
        }
        // A preference for the quarantined device falls back ...
        let p = pool
            .place(DeviceModel::TeslaM2050, DeviceAffinity::Preferred(DeviceId(2)), 32, 16, 2)
            .unwrap();
        assert_eq!(p.device, DeviceId(3));
        // ... but a pin is a contract: typed rejection, never a move.
        assert_eq!(
            pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Pinned(DeviceId(2)), 32, 16, 2),
            Err(PlacementError::DeviceQuarantined { device: DeviceId(2) })
        );
    }

    #[test]
    fn degraded_devices_are_a_soft_avoid() {
        let pool = two_and_two();
        // Degrade f0 (one failure under the default policy).
        pool.note_outcome(DeviceId(2), false);
        // Both fermis idle: the healthy twin must win even though costs tie.
        let p = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2).unwrap();
        assert_eq!(p.device, DeviceId(3));
        // Degrade the twin too: a degraded device is still placeable.
        pool.note_outcome(DeviceId(3), false);
        let q = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2).unwrap();
        assert!(q.device == DeviceId(2) || q.device == DeviceId(3));
    }

    #[test]
    fn full_quarantine_is_a_typed_error_and_probation_readmits() {
        let policy = HealthPolicy::default().probation_after(2);
        let pool = DevicePool::with_health(
            vec![DeviceProfile::tesla_m2050("f0")],
            PlacementStrategy::LeastLoaded,
            policy,
        );
        let d = DeviceId(0);
        for _ in 0..3 {
            pool.note_outcome(d, false);
        }
        assert_eq!(
            pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2),
            Err(PlacementError::AllDevicesQuarantined { required: DeviceModel::TeslaM2050 }),
            "first skip"
        );
        // Second skip reaches probation_after = 2: the same call re-admits.
        let p = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2).unwrap();
        assert_eq!(p.device, d);
        assert_eq!(pool.health(d), Some(HealthState::Probation));
        // Probation is primed: one more failure re-quarantines at once ...
        pool.note_outcome(d, false);
        assert_eq!(pool.health(d), Some(HealthState::Quarantined));
        assert_eq!(pool.snapshot()[0].quarantines, 2);
        // ... while a success after re-admission heals fully.
        pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2).unwrap_err();
        pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 32, 16, 2).unwrap();
        pool.note_outcome(d, true);
        assert_eq!(pool.health(d), Some(HealthState::Healthy));
    }

    #[test]
    fn rotate_avoiding_is_pure_and_respects_the_mask() {
        let pool = two_and_two();
        // Mask 0 is plain rotate.
        for key in 0..6 {
            assert_eq!(
                pool.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, key),
                pool.rotate_avoiding(DeviceModel::TeslaC1060, DeviceAffinity::Any, key, 0)
            );
        }
        // Masking g0 leaves only g1 at every key.
        for key in 0..6 {
            assert_eq!(
                pool.rotate_avoiding(DeviceModel::TeslaC1060, DeviceAffinity::Any, key, 1 << 0),
                Ok(DeviceId(1))
            );
        }
        // Pins reject a masked device; preferences fall back.
        assert_eq!(
            pool.rotate_avoiding(
                DeviceModel::TeslaC1060,
                DeviceAffinity::Pinned(DeviceId(0)),
                3,
                1 << 0
            ),
            Err(PlacementError::DeviceQuarantined { device: DeviceId(0) })
        );
        assert_eq!(
            pool.rotate_avoiding(
                DeviceModel::TeslaC1060,
                DeviceAffinity::Preferred(DeviceId(0)),
                3,
                1 << 0
            ),
            Ok(DeviceId(1))
        );
        // Masking every compatible device is the typed full-quarantine error.
        assert_eq!(
            pool.rotate_avoiding(DeviceModel::TeslaC1060, DeviceAffinity::Any, 3, 0b11),
            Err(PlacementError::AllDevicesQuarantined { required: DeviceModel::TeslaC1060 })
        );
        // The mask never touches the live ledger.
        assert_eq!(pool.quarantine_mask(), 0);
    }

    #[test]
    fn slot_leak_audit_reports_and_clears() {
        let pool = DevicePool::new(
            vec![DeviceProfile::tesla_c1060("g0").slots(2)],
            PlacementStrategy::LeastLoaded,
        );
        let d = DeviceId(0);
        pool.note_queued(d);
        assert!(pool.try_admit(d));
        assert!(pool.try_admit_unqueued(d));
        let leaks = pool.slot_leaks();
        assert_eq!(leaks.len(), 1, "{leaks:?}");
        assert!(leaks[0].contains("2 running"));
        pool.release(d, std::time::Duration::from_millis(1));
        pool.cancel_admit(d);
        pool.assert_no_slot_leaks();
        pool.note_fault_observed(d);
        assert_eq!(pool.snapshot()[0].faults_observed, 1);
    }

    #[test]
    fn check_affinity_rejects_only_unknown_pins() {
        let pool = two_and_two();
        assert_eq!(pool.check_affinity(DeviceAffinity::Any), Ok(()));
        assert_eq!(pool.check_affinity(DeviceAffinity::Pinned(DeviceId(3))), Ok(()));
        assert_eq!(
            pool.check_affinity(DeviceAffinity::Pinned(DeviceId(4))),
            Err(PlacementError::UnknownDevice { device: DeviceId(4) })
        );
        // A preference is not a contract: unknown ids fall back to Any
        // at placement time instead of failing at submit.
        assert_eq!(pool.check_affinity(DeviceAffinity::Preferred(DeviceId(9))), Ok(()));
        let p =
            pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Preferred(DeviceId(9)), 24, 12, 2);
        assert!(p.is_ok(), "unknown preference places as Any: {p:?}");
    }
}
