//! The device pool: placement, admission, and telemetry.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use aco_simt::DeviceSpec;

use crate::profile::{DeviceModel, DeviceProfile};

/// Index of a device within its pool (stable for the pool's lifetime;
/// also the identifier reports and progress events carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Where a job may run. `Any` is the default; `Preferred` biases the
/// placement toward one device but falls back when that device is
/// markedly worse (or incompatible); `Pinned` is honoured exactly or
/// rejected with a typed [`PlacementError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceAffinity {
    /// Any compatible device; the pool picks.
    #[default]
    Any,
    /// Use this device unless its predicted completion is more than
    /// [`PREFERRED_SLACK`]× the best compatible device's (or it is
    /// incompatible), in which case place as `Any`.
    Preferred(DeviceId),
    /// Exactly this device, or a typed rejection.
    Pinned(DeviceId),
}

/// How much worse (multiplicatively) a `Preferred` device's predicted
/// completion may be before the pool overrides the preference.
pub const PREFERRED_SLACK: f64 = 1.5;

/// The pool's placement policy for `Any`/fallback placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementStrategy {
    /// Minimise `predict_kernel_ms × iterations + assigned backlog` over
    /// compatible devices (ties break toward the lowest id).
    #[default]
    LeastLoaded,
    /// Rotate over compatible devices in id order, ignoring load — the
    /// baseline least-loaded placement is measured against.
    RoundRobin,
}

/// A successful placement decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The chosen device.
    pub device: DeviceId,
    /// Predicted total milliseconds of the job on that device
    /// (`predict_kernel_ms × iterations`) — the amount charged to the
    /// device's assigned ledger.
    pub predicted_ms: f64,
}

/// Why a placement was rejected. These are *submit-time* errors: the job
/// never queues, never runs, and never touches any cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementError {
    /// The pool contains no device of the required model.
    NoCompatibleDevice {
        /// The model the job was built for.
        required: DeviceModel,
    },
    /// A pinned/preferred affinity names a device id the pool does not
    /// have.
    UnknownDevice {
        /// The id the affinity named.
        device: DeviceId,
    },
    /// A pinned affinity names a device of the wrong model.
    IncompatibleDevice {
        /// The id the affinity named.
        device: DeviceId,
        /// The model the job was built for.
        required: DeviceModel,
        /// The model actually installed at that id.
        installed: DeviceModel,
    },
    /// A pinned affinity was given for a job that does not run on a
    /// device at all (a CPU backend).
    NotADeviceJob {
        /// The id the affinity named.
        device: DeviceId,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCompatibleDevice { required } => {
                write!(f, "pool has no {} device", required.label())
            }
            PlacementError::UnknownDevice { device } => {
                write!(f, "pool has no device {device}")
            }
            PlacementError::IncompatibleDevice { device, required, installed } => {
                write!(
                    f,
                    "job requires a {} device but {device} is a {}",
                    required.label(),
                    installed.label()
                )
            }
            PlacementError::NotADeviceJob { device } => {
                write!(f, "job pinned to {device} does not run on a device")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Live per-device counters. Everything here is observability: none of
/// it feeds back into placement (see the module docs of the crate).
#[derive(Debug, Default)]
struct Telemetry {
    /// Jobs sitting in this device's run queue right now.
    queued: AtomicUsize,
    /// Jobs admitted and executing right now.
    running: AtomicUsize,
    /// Peak of `queued + running` ever observed.
    peak_depth: AtomicUsize,
    /// Peak of `running` ever observed.
    peak_running: AtomicUsize,
    /// Jobs that ran to a posted result on this device.
    completed: AtomicU64,
    /// Accumulated host wall-clock microseconds spent executing jobs.
    busy_us: AtomicU64,
    /// Admission attempts rejected because every resident-job slot was
    /// busy (each is one wait bout a worker spent backing off).
    admission_waits: AtomicU64,
}

/// Deterministic placement state, mutated only by [`DevicePool::place`].
#[derive(Debug)]
struct Ledger {
    /// Total predicted milliseconds ever assigned per device — the
    /// "queue depth" term of the placement cost. Monotone by design:
    /// draining it on completion would make placement depend on
    /// completion timing and break worker-count determinism.
    assigned_ms: Vec<f64>,
    /// Round-robin cursor (used only under that strategy).
    rr_next: u64,
}

/// Point-in-time view of one pool device (see [`DevicePool::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    /// The device's pool id.
    pub id: DeviceId,
    /// Profile name.
    pub name: String,
    /// Hardware generation.
    pub model: DeviceModel,
    /// Jobs in the run queue right now.
    pub queued: usize,
    /// Jobs executing right now.
    pub running: usize,
    /// Peak `queued + running` observed.
    pub peak_depth: usize,
    /// Peak concurrent `running` observed (≤ `slots`: every admission
    /// path respects the budget).
    pub peak_running: usize,
    /// Jobs completed on this device.
    pub completed: u64,
    /// Host wall-clock milliseconds spent executing jobs.
    pub busy_ms: f64,
    /// Total predicted milliseconds assigned by the placement ledger.
    pub assigned_ms: f64,
    /// Admission attempts rejected on a full slot budget (backlog
    /// pressure: how often workers had to wait for this device).
    pub admission_waits: u64,
    /// Resident-job budget.
    pub slots: usize,
    /// Exec-thread budget.
    pub exec_threads: usize,
}

/// A fixed set of simulated devices plus the placement ledger and
/// telemetry. Profiles are immutable after construction; ids are the
/// construction order.
#[derive(Debug)]
pub struct DevicePool {
    profiles: Vec<DeviceProfile>,
    specs: Vec<DeviceSpec>,
    strategy: PlacementStrategy,
    ledger: Mutex<Ledger>,
    telemetry: Vec<Telemetry>,
}

impl DevicePool {
    /// Build a pool over `profiles` (possibly empty: an empty pool is a
    /// CPU-only engine — every GPU placement fails with
    /// [`PlacementError::NoCompatibleDevice`]).
    pub fn new(profiles: Vec<DeviceProfile>, strategy: PlacementStrategy) -> Self {
        let specs = profiles.iter().map(DeviceProfile::spec).collect();
        let telemetry = profiles.iter().map(|_| Telemetry::default()).collect();
        let assigned_ms = vec![0.0; profiles.len()];
        DevicePool {
            profiles,
            specs,
            strategy,
            ledger: Mutex::new(Ledger { assigned_ms, rr_next: 0 }),
            telemetry,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Is the pool empty (CPU-only engine)?
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The placement strategy in force.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The profile at `id`, if any.
    pub fn profile(&self, id: DeviceId) -> Option<&DeviceProfile> {
        self.profiles.get(id.0 as usize)
    }

    /// The derived [`DeviceSpec`] at `id`, if any (precomputed once).
    pub fn spec(&self, id: DeviceId) -> Option<&DeviceSpec> {
        self.specs.get(id.0 as usize)
    }

    /// Ids of every device of `model`, ascending.
    pub fn devices_of(&self, model: DeviceModel) -> Vec<DeviceId> {
        self.profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.model == model)
            .map(|(i, _)| DeviceId(i as u32))
            .collect()
    }

    /// Validate that a *pinned* affinity names a real device (the cheap
    /// check a scheduler can run at submit time before the job's model
    /// is known, e.g. for auto backends). `Preferred` is a preference,
    /// not a contract: an unknown or incompatible preference falls back
    /// to `Any` at placement time, exactly as [`DevicePool::place`] and
    /// [`DevicePool::rotate`] treat it, so it never fails here.
    pub fn check_affinity(&self, affinity: DeviceAffinity) -> Result<(), PlacementError> {
        match affinity {
            DeviceAffinity::Pinned(d) => {
                if (d.0 as usize) < self.profiles.len() {
                    Ok(())
                } else {
                    Err(PlacementError::UnknownDevice { device: d })
                }
            }
            DeviceAffinity::Any | DeviceAffinity::Preferred(_) => Ok(()),
        }
    }

    /// The deterministic completion-time estimate the placement cost uses
    /// for a `(n, m, iterations)` job on `id`: `predict_kernel_ms ×
    /// iterations + assigned backlog`.
    pub fn predicted_completion_ms(
        &self,
        id: DeviceId,
        n: usize,
        m: usize,
        iterations: usize,
    ) -> Option<f64> {
        let profile = self.profile(id)?;
        let ledger = self.ledger.lock().expect("ledger lock");
        Some(job_ms(profile, n, m, iterations) + ledger.assigned_ms[id.0 as usize])
    }

    /// Place a job that requires a `required`-model device. On success the
    /// chosen device's assigned ledger is charged with the job's predicted
    /// milliseconds. Placement is deterministic in the call sequence: no
    /// wall clock, no completion feedback, no randomness.
    pub fn place(
        &self,
        required: DeviceModel,
        affinity: DeviceAffinity,
        n: usize,
        m: usize,
        iterations: usize,
    ) -> Result<Placement, PlacementError> {
        let compatible = self.devices_of(required);
        let mut ledger = self.ledger.lock().expect("ledger lock");

        let chosen = match affinity {
            DeviceAffinity::Pinned(d) => {
                let p = self.profile(d).ok_or(PlacementError::UnknownDevice { device: d })?;
                if p.model != required {
                    return Err(PlacementError::IncompatibleDevice {
                        device: d,
                        required,
                        installed: p.model,
                    });
                }
                d
            }
            DeviceAffinity::Preferred(p) => {
                let best = self.pick(&compatible, &mut ledger, required, n, m, iterations)?;
                match self.profile(p) {
                    Some(prof) if prof.model == required => {
                        let best_cost = self.cost(&ledger, best, n, m, iterations);
                        let pref_cost = self.cost(&ledger, p, n, m, iterations);
                        if pref_cost <= best_cost * PREFERRED_SLACK {
                            p
                        } else {
                            best
                        }
                    }
                    // Incompatible or unknown preference: fall back to Any.
                    _ => best,
                }
            }
            DeviceAffinity::Any => {
                self.pick(&compatible, &mut ledger, required, n, m, iterations)?
            }
        };

        let predicted_ms = job_ms(&self.profiles[chosen.0 as usize], n, m, iterations);
        ledger.assigned_ms[chosen.0 as usize] += predicted_ms;
        Ok(Placement { device: chosen, predicted_ms })
    }

    /// The `Any` choice under the pool's strategy. Callers hold the
    /// ledger lock.
    fn pick(
        &self,
        compatible: &[DeviceId],
        ledger: &mut Ledger,
        required: DeviceModel,
        n: usize,
        m: usize,
        iterations: usize,
    ) -> Result<DeviceId, PlacementError> {
        if compatible.is_empty() {
            return Err(PlacementError::NoCompatibleDevice { required });
        }
        Ok(match self.strategy {
            PlacementStrategy::LeastLoaded => *compatible
                .iter()
                .min_by(|a, b| {
                    self.cost(ledger, **a, n, m, iterations)
                        .total_cmp(&self.cost(ledger, **b, n, m, iterations))
                })
                .expect("compatible is non-empty"),
            PlacementStrategy::RoundRobin => {
                let d = compatible[(ledger.rr_next % compatible.len() as u64) as usize];
                ledger.rr_next += 1;
                d
            }
        })
    }

    fn cost(&self, ledger: &Ledger, d: DeviceId, n: usize, m: usize, iterations: usize) -> f64 {
        job_ms(&self.profiles[d.0 as usize], n, m, iterations) + ledger.assigned_ms[d.0 as usize]
    }

    /// Stateless device choice for jobs whose device need is only known
    /// at run time (auto-resolved backends): a pure function of
    /// `(pool, required, affinity, key)`, so it cannot depend on
    /// execution order. Such jobs bypass the assigned ledger — their cost
    /// was unknown when the deterministic placement state was last
    /// mutated at submit time.
    pub fn rotate(
        &self,
        required: DeviceModel,
        affinity: DeviceAffinity,
        key: u64,
    ) -> Result<DeviceId, PlacementError> {
        match affinity {
            DeviceAffinity::Pinned(d) | DeviceAffinity::Preferred(d) => {
                if let Some(p) = self.profile(d) {
                    if p.model == required {
                        return Ok(d);
                    }
                    if matches!(affinity, DeviceAffinity::Pinned(_)) {
                        return Err(PlacementError::IncompatibleDevice {
                            device: d,
                            required,
                            installed: p.model,
                        });
                    }
                } else if matches!(affinity, DeviceAffinity::Pinned(_)) {
                    return Err(PlacementError::UnknownDevice { device: d });
                }
            }
            DeviceAffinity::Any => {}
        }
        let compatible = self.devices_of(required);
        if compatible.is_empty() {
            return Err(PlacementError::NoCompatibleDevice { required });
        }
        Ok(compatible[(key % compatible.len() as u64) as usize])
    }

    // --- telemetry hooks (scheduler-facing) --------------------------------

    /// A job entered `id`'s run queue.
    pub fn note_queued(&self, id: DeviceId) {
        let t = &self.telemetry[id.0 as usize];
        let q = t.queued.fetch_add(1, Ordering::Relaxed) + 1;
        let depth = q + t.running.load(Ordering::Relaxed);
        t.peak_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Reserve one resident-job slot on `id` (running++ iff below the
    /// slot budget, with peak tracking).
    fn try_reserve_slot(&self, id: DeviceId) -> bool {
        let t = &self.telemetry[id.0 as usize];
        let slots = self.profiles[id.0 as usize].slots;
        if t.running
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| (r < slots).then_some(r + 1))
            .is_err()
        {
            t.admission_waits.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        t.peak_running.fetch_max(t.running.load(Ordering::Relaxed), Ordering::Relaxed);
        true
    }

    /// Try to admit one more *queued* job onto `id` (respecting its slot
    /// budget); on success the job is accounted as running and removed
    /// from the queued count.
    pub fn try_admit(&self, id: DeviceId) -> bool {
        if !self.try_reserve_slot(id) {
            return false;
        }
        let t = &self.telemetry[id.0 as usize];
        let _ = t.queued.fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| q.checked_sub(1));
        true
    }

    /// Try to admit a job that was never queued on the device (an auto
    /// job that resolved to a GPU backend at run time). The slot budget
    /// applies exactly as for queued jobs; callers retry until a slot
    /// frees.
    pub fn try_admit_unqueued(&self, id: DeviceId) -> bool {
        self.try_reserve_slot(id)
    }

    /// Undo an admission whose job never ran (its queue entry had been
    /// finalised by an eager cancel/expiry).
    pub fn cancel_admit(&self, id: DeviceId) {
        let t = &self.telemetry[id.0 as usize];
        let _ = t.running.fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1));
    }

    /// A job finished executing on `id` after `wall` host time.
    pub fn release(&self, id: DeviceId, wall: std::time::Duration) {
        let t = &self.telemetry[id.0 as usize];
        let _ = t.running.fetch_update(Ordering::AcqRel, Ordering::Acquire, |r| r.checked_sub(1));
        t.completed.fetch_add(1, Ordering::Relaxed);
        t.busy_us.fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
    }

    /// Point-in-time view of every device.
    pub fn snapshot(&self) -> Vec<DeviceSnapshot> {
        let ledger = self.ledger.lock().expect("ledger lock");
        self.profiles
            .iter()
            .zip(&self.telemetry)
            .enumerate()
            .map(|(i, (p, t))| DeviceSnapshot {
                id: DeviceId(i as u32),
                name: p.name.clone(),
                model: p.model,
                queued: t.queued.load(Ordering::Relaxed),
                running: t.running.load(Ordering::Relaxed),
                peak_depth: t.peak_depth.load(Ordering::Relaxed),
                peak_running: t.peak_running.load(Ordering::Relaxed),
                completed: t.completed.load(Ordering::Relaxed),
                busy_ms: t.busy_us.load(Ordering::Relaxed) as f64 / 1e3,
                assigned_ms: ledger.assigned_ms[i],
                admission_waits: t.admission_waits.load(Ordering::Relaxed),
                slots: p.slots,
                exec_threads: p.exec_threads,
            })
            .collect()
    }
}

/// A job's predicted total milliseconds on `profile`.
fn job_ms(profile: &DeviceProfile, n: usize, m: usize, iterations: usize) -> f64 {
    profile.predict_kernel_ms(n, m) * iterations.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_and_two() -> DevicePool {
        DevicePool::new(
            vec![
                DeviceProfile::tesla_c1060("g0"),
                DeviceProfile::tesla_c1060("g1").sm_count(15),
                DeviceProfile::tesla_m2050("f0"),
                DeviceProfile::tesla_m2050("f1"),
            ],
            PlacementStrategy::LeastLoaded,
        )
    }

    #[test]
    fn least_loaded_spreads_equal_jobs_over_equal_devices() {
        let pool = two_and_two();
        let a = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 48, 32, 5).unwrap();
        let b = pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Any, 48, 32, 5).unwrap();
        assert_ne!(a.device, b.device, "second equal job must go to the idle twin");
        assert!(a.predicted_ms > 0.0);
    }

    #[test]
    fn least_loaded_prefers_the_faster_heterogeneous_device() {
        let pool = two_and_two();
        // g1 has half the SMs of g0; the first C1060 job must go to g0.
        let a = pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Any, 64, 32, 5).unwrap();
        assert_eq!(a.device, DeviceId(0));
    }

    #[test]
    fn pinned_is_honoured_or_rejected() {
        let pool = two_and_two();
        let pin = DeviceAffinity::Pinned(DeviceId(1));
        let ok = pool.place(DeviceModel::TeslaC1060, pin, 32, 16, 3).unwrap();
        assert_eq!(ok.device, DeviceId(1));
        assert_eq!(
            pool.place(DeviceModel::TeslaM2050, pin, 32, 16, 3),
            Err(PlacementError::IncompatibleDevice {
                device: DeviceId(1),
                required: DeviceModel::TeslaM2050,
                installed: DeviceModel::TeslaC1060,
            })
        );
        assert_eq!(
            pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Pinned(DeviceId(9)), 32, 16, 3),
            Err(PlacementError::UnknownDevice { device: DeviceId(9) })
        );
    }

    #[test]
    fn preferred_yields_when_markedly_worse() {
        let pool = two_and_two();
        // Load f1 heavily, then prefer it: the pool must override.
        for _ in 0..8 {
            pool.place(DeviceModel::TeslaM2050, DeviceAffinity::Pinned(DeviceId(3)), 96, 64, 20)
                .unwrap();
        }
        let p = pool
            .place(DeviceModel::TeslaM2050, DeviceAffinity::Preferred(DeviceId(3)), 32, 16, 2)
            .unwrap();
        assert_eq!(p.device, DeviceId(2), "overloaded preference must be overridden");
        // A fresh pool honours the same preference.
        let fresh = two_and_two();
        let q = fresh
            .place(DeviceModel::TeslaM2050, DeviceAffinity::Preferred(DeviceId(3)), 32, 16, 2)
            .unwrap();
        assert_eq!(q.device, DeviceId(3));
    }

    #[test]
    fn round_robin_rotates_within_the_compatible_set() {
        let pool = DevicePool::new(
            vec![
                DeviceProfile::tesla_c1060("g0"),
                DeviceProfile::tesla_m2050("f0"),
                DeviceProfile::tesla_c1060("g1"),
            ],
            PlacementStrategy::RoundRobin,
        );
        let seq: Vec<DeviceId> = (0..4)
            .map(|_| {
                pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Any, 32, 16, 3).unwrap().device
            })
            .collect();
        assert_eq!(seq, vec![DeviceId(0), DeviceId(2), DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn empty_or_modelless_pool_rejects_with_typed_errors() {
        let empty = DevicePool::new(Vec::new(), PlacementStrategy::LeastLoaded);
        assert_eq!(
            empty.place(DeviceModel::TeslaC1060, DeviceAffinity::Any, 16, 8, 1),
            Err(PlacementError::NoCompatibleDevice { required: DeviceModel::TeslaC1060 })
        );
        let fermi_only =
            DevicePool::new(vec![DeviceProfile::tesla_m2050("f0")], PlacementStrategy::LeastLoaded);
        assert_eq!(
            fermi_only.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, 7),
            Err(PlacementError::NoCompatibleDevice { required: DeviceModel::TeslaC1060 })
        );
    }

    #[test]
    fn rotate_is_a_pure_function_of_its_key() {
        let pool = two_and_two();
        for key in 0..6 {
            let a = pool.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, key).unwrap();
            let b = pool.rotate(DeviceModel::TeslaC1060, DeviceAffinity::Any, key).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, [DeviceId(0), DeviceId(1)][(key % 2) as usize]);
        }
    }

    #[test]
    fn slots_gate_admission_and_telemetry_balances() {
        let pool = DevicePool::new(
            vec![DeviceProfile::tesla_c1060("g0").slots(2)],
            PlacementStrategy::LeastLoaded,
        );
        let d = DeviceId(0);
        pool.note_queued(d);
        pool.note_queued(d);
        pool.note_queued(d);
        assert!(pool.try_admit(d));
        assert!(pool.try_admit(d));
        assert!(!pool.try_admit(d), "third admission exceeds the slot budget");
        assert!(!pool.try_admit_unqueued(d), "unqueued admissions share the same budget");
        pool.release(d, std::time::Duration::from_millis(3));
        assert!(pool.try_admit(d), "released slot is reusable");
        let snap = &pool.snapshot()[0];
        assert_eq!(snap.peak_running, 2);
        assert_eq!(snap.peak_depth, 3);
        assert_eq!(snap.completed, 1);
        assert!(snap.busy_ms >= 3.0);
        assert_eq!(snap.queued, 0);
    }

    #[test]
    fn check_affinity_rejects_only_unknown_pins() {
        let pool = two_and_two();
        assert_eq!(pool.check_affinity(DeviceAffinity::Any), Ok(()));
        assert_eq!(pool.check_affinity(DeviceAffinity::Pinned(DeviceId(3))), Ok(()));
        assert_eq!(
            pool.check_affinity(DeviceAffinity::Pinned(DeviceId(4))),
            Err(PlacementError::UnknownDevice { device: DeviceId(4) })
        );
        // A preference is not a contract: unknown ids fall back to Any
        // at placement time instead of failing at submit.
        assert_eq!(pool.check_affinity(DeviceAffinity::Preferred(DeviceId(9))), Ok(()));
        let p =
            pool.place(DeviceModel::TeslaC1060, DeviceAffinity::Preferred(DeviceId(9)), 24, 12, 2);
        assert!(p.is_ok(), "unknown preference places as Any: {p:?}");
    }
}
