//! `aco-devices` — a pool of simulated GPUs with affinity-aware,
//! deterministic job placement.
//!
//! The paper executes every kernel on one device; production ACO serving
//! shards a batch across many. This crate models that pool *without*
//! requiring real hardware: each [`DeviceProfile`] derives a
//! [`DeviceSpec`](aco_simt::DeviceSpec) from the paper's Table-I presets
//! (optionally rescaling SM count and memory bandwidth for heterogeneous
//! fleets), carries an **exec-thread budget** (host threads donated to
//! block-level simulation, see `aco_simt::launch_threads`) and a
//! **resident-job slot** count (how many jobs the device admits
//! concurrently).
//!
//! [`DevicePool::place`] is the placement engine: given a job's required
//! [`DeviceModel`], its [`DeviceAffinity`] and its shape `(n, m,
//! iterations)`, it prices every compatible device as
//!
//! ```text
//! completion(d) = predict_kernel_ms(d, n, m) × iterations + assigned_ms(d)
//! ```
//!
//! and picks the minimum (or rotates, under
//! [`PlacementStrategy::RoundRobin`]). `assigned_ms` is a **deterministic
//! ledger**: it grows when a job is placed and is never decremented by
//! completions, so placement is a pure function of the submission
//! sequence — a fixed batch placed on a fixed pool yields bit-identical
//! assignments no matter how many workers later drain the queues, which
//! is the property the engine's worker-count determinism contract rests
//! on. Live queue depth, occupancy, and busy time are tracked separately
//! as telemetry ([`DevicePool::snapshot`]) and never feed back into
//! placement.
//!
//! The same determinism discipline extends to **device health**: each
//! device carries a [`HealthState`] machine (Healthy → Degraded →
//! Quarantined, with probation re-admission) driven *only* by explicit
//! [`DevicePool::note_outcome`] calls — never by execution timing — so
//! health-aware placement (quarantine filtering in `place`, the
//! caller-supplied avoid mask of [`DevicePool::rotate_avoiding`]) keeps
//! the worker-count-invariance contract even while fault injection is
//! tearing devices down.

mod pool;
mod profile;

pub use pool::{
    DeviceAffinity, DeviceId, DevicePool, DeviceSnapshot, HealthEvent, HealthPolicy, HealthState,
    HealthSummary, Placement, PlacementError, PlacementStrategy,
};
pub use profile::{DeviceModel, DeviceProfile};
