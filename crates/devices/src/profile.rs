//! Device profiles: Table-I presets plus per-device overrides.

use aco_simt::DeviceSpec;

/// The hardware generations the simulator models (Table I of the paper).
/// A pool device *instance* is a [`DeviceProfile`] built on one of these;
/// jobs compiled for a model run on any pool device of that model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceModel {
    /// Tesla C1060 (GT200, CC 1.3).
    TeslaC1060,
    /// Tesla M2050 (Fermi, CC 2.0).
    TeslaM2050,
}

impl DeviceModel {
    /// Both models, in the paper's order.
    pub const ALL: [DeviceModel; 2] = [DeviceModel::TeslaC1060, DeviceModel::TeslaM2050];

    /// The unmodified Table-I spec of this model.
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceModel::TeslaC1060 => DeviceSpec::tesla_c1060(),
            DeviceModel::TeslaM2050 => DeviceSpec::tesla_m2050(),
        }
    }

    /// Short stable label (used in reports and bench artifacts).
    pub fn label(self) -> &'static str {
        match self {
            DeviceModel::TeslaC1060 => "c1060",
            DeviceModel::TeslaM2050 => "m2050",
        }
    }
}

/// One simulated device of a pool: a Table-I base model plus the knobs
/// that make pool members heterogeneous.
///
/// The overrides model real fleet variance (salvaged parts with fused-off
/// SMs, different memory configurations) without inventing a third
/// microarchitecture: everything else about the [`DeviceSpec`] stays
/// exactly the Table-I preset, so the simulator's kernel models remain
/// valid.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Pool-unique human-readable name (e.g. `"gpu0"`).
    pub name: String,
    /// Base hardware generation.
    pub model: DeviceModel,
    /// Override the preset's streaming-multiprocessor count (clamped to
    /// ≥ 1). `None` keeps the Table-I value (30 / 14).
    pub sm_count: Option<u32>,
    /// Override the preset's DRAM bandwidth in GB/s. `None` keeps the
    /// Table-I value (102 / 144).
    pub mem_bandwidth_gbps: Option<f64>,
    /// Host threads this device donates to block-level simulation
    /// (`aco_simt::launch_threads`); functional results are bit-identical
    /// for every value, so this only trades host cores for wall clock.
    pub exec_threads: usize,
    /// Resident-job budget: how many jobs the scheduler admits onto this
    /// device concurrently. Queued jobs beyond it wait in the device's
    /// run queue.
    pub slots: usize,
}

impl DeviceProfile {
    /// A profile with the model's Table-I spec, one exec thread and one
    /// resident-job slot.
    pub fn new(name: impl Into<String>, model: DeviceModel) -> Self {
        DeviceProfile {
            name: name.into(),
            model,
            sm_count: None,
            mem_bandwidth_gbps: None,
            exec_threads: 1,
            slots: 1,
        }
    }

    /// Shorthand: an unmodified Tesla C1060.
    pub fn tesla_c1060(name: impl Into<String>) -> Self {
        Self::new(name, DeviceModel::TeslaC1060)
    }

    /// Shorthand: an unmodified Tesla M2050.
    pub fn tesla_m2050(name: impl Into<String>) -> Self {
        Self::new(name, DeviceModel::TeslaM2050)
    }

    /// Builder: SM-count override.
    pub fn sm_count(mut self, sms: u32) -> Self {
        self.sm_count = Some(sms.max(1));
        self
    }

    /// Builder: memory-bandwidth override (GB/s).
    pub fn mem_bandwidth(mut self, gbps: f64) -> Self {
        self.mem_bandwidth_gbps = Some(gbps.max(1.0));
        self
    }

    /// Builder: exec-thread budget (clamped to ≥ 1).
    pub fn exec_threads(mut self, threads: usize) -> Self {
        self.exec_threads = threads.max(1);
        self
    }

    /// Builder: resident-job slots (clamped to ≥ 1).
    pub fn slots(mut self, slots: usize) -> Self {
        self.slots = slots.max(1);
        self
    }

    /// The full [`DeviceSpec`] this profile executes with: the model's
    /// Table-I preset with the overrides applied.
    pub fn spec(&self) -> DeviceSpec {
        let mut spec = self.model.spec();
        if let Some(sms) = self.sm_count {
            spec.sm_count = sms.max(1);
        }
        if let Some(bw) = self.mem_bandwidth_gbps {
            spec.mem_bandwidth_gbps = bw.max(1.0);
        }
        spec
    }

    /// Analytic per-iteration kernel-time prediction in milliseconds for
    /// an `n`-city, `m`-ant colony on this device — the *placement* cost
    /// model, deliberately much cheaper than the simulator it
    /// approximates (no probe launch, no artifacts, no cache).
    ///
    /// Construction dominates an AS iteration: `m` ants each take `n`
    /// steps scanning `O(n)` candidates, a few FLOPs and one `(τ, η)`
    /// read per candidate. The prediction is the max of the compute and
    /// bandwidth roofs plus two kernel-launch overheads, so it is
    /// monotone in problem size and in every override a profile can
    /// apply. It is a pure function of `(profile, n, m)`; placement
    /// determinism relies on that.
    pub fn predict_kernel_ms(&self, n: usize, m: usize) -> f64 {
        let spec = self.spec();
        let work = m as f64 * n as f64 * n as f64;
        let flops_per_ms =
            spec.sm_count as f64 * spec.cores_per_sm as f64 * spec.clock_mhz as f64 * 1e3;
        let compute_ms = 4.0 * work / flops_per_ms;
        let bytes_per_ms = spec.mem_bandwidth_gbps * 1e6;
        let mem_ms = 8.0 * work / bytes_per_ms;
        compute_ms.max(mem_ms) + 2.0 * spec.launch_overhead_us / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_applies_overrides_and_keeps_the_rest() {
        let base = DeviceModel::TeslaC1060.spec();
        let spec = DeviceProfile::tesla_c1060("half").sm_count(15).mem_bandwidth(51.0).spec();
        assert_eq!(spec.sm_count, 15);
        assert_eq!(spec.mem_bandwidth_gbps, 51.0);
        assert_eq!(spec.cores_per_sm, base.cores_per_sm);
        assert_eq!(spec.clock_mhz, base.clock_mhz);
        assert_eq!(spec.compute_capability, base.compute_capability);
        assert_eq!(DeviceProfile::tesla_m2050("stock").spec().sm_count, 14);
    }

    #[test]
    fn prediction_is_monotone_in_size_and_in_device_speed() {
        let full = DeviceProfile::tesla_c1060("full");
        let half = DeviceProfile::tesla_c1060("half").sm_count(15).mem_bandwidth(51.0);
        assert!(full.predict_kernel_ms(64, 32) > full.predict_kernel_ms(32, 32));
        assert!(full.predict_kernel_ms(64, 64) > full.predict_kernel_ms(64, 32));
        assert!(half.predict_kernel_ms(128, 64) > full.predict_kernel_ms(128, 64));
        assert!(full.predict_kernel_ms(16, 8) > 0.0);
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let p = DeviceProfile::tesla_m2050("x").exec_threads(0).slots(0).sm_count(0);
        assert_eq!(p.exec_threads, 1);
        assert_eq!(p.slots, 1);
        assert_eq!(p.spec().sm_count, 1);
    }
}
