//! Property tests for the TSP substrate.

use aco_tsp::{
    geometry::{att, ceil_2d, euc_2d, man_2d, max_2d},
    nearest_neighbor_tour, tsplib,
    two_opt::two_opt,
    NearestNeighborLists, Point, Tour,
};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = aco_tsp::TspInstance> {
    (5usize..60, 0u64..1_000_000)
        .prop_map(|(n, seed)| aco_tsp::uniform_random("prop", n, 1000.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn distance_functions_are_symmetric_and_triangleish(
        ax in -1e4f64..1e4, ay in -1e4f64..1e4,
        bx in -1e4f64..1e4, by in -1e4f64..1e4,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        for f in [euc_2d, ceil_2d, att, man_2d, max_2d] {
            prop_assert_eq!(f(a, b), f(b, a));
        }
        // Rounded metrics obey the triangle inequality up to rounding slack.
        let c = Point::new((ax + bx) / 2.0, (ay + by) / 2.0);
        prop_assert!(euc_2d(a, b) <= euc_2d(a, c) + euc_2d(c, b) + 1);
    }

    #[test]
    fn tsplib_round_trip_preserves_distances(inst in arb_instance()) {
        let text = tsplib::write(&inst);
        let back = tsplib::parse(&text).expect("own output parses");
        prop_assert_eq!(back.n(), inst.n());
        for i in 0..inst.n() {
            for j in 0..inst.n() {
                prop_assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }

    #[test]
    fn explicit_matrix_round_trip(inst in arb_instance()) {
        // Re-encode through an EXPLICIT full matrix and back.
        let explicit = aco_tsp::TspInstance::from_matrix("x", inst.matrix().clone())
            .expect("symmetric matrix");
        let text = tsplib::write(&explicit);
        let back = tsplib::parse(&text).expect("own output parses");
        for i in 0..inst.n() {
            for j in 0..inst.n() {
                prop_assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }

    #[test]
    fn nn_lists_are_sorted_prefixes_of_the_distance_order(
        inst in arb_instance(),
        depth in 1usize..20,
    ) {
        let nn = NearestNeighborLists::build(inst.matrix(), depth).expect("n >= 2");
        for c in 0..inst.n() {
            let list = nn.neighbors(c);
            // Sorted by distance.
            for w in list.windows(2) {
                prop_assert!(
                    inst.dist(c, w[0] as usize) <= inst.dist(c, w[1] as usize)
                );
            }
            // No self, no duplicates.
            prop_assert!(list.iter().all(|&j| j as usize != c));
            let mut sorted = list.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), list.len());
            // Nothing outside the list is closer than the last entry.
            let worst = inst.dist(c, *list.last().expect("non-empty") as usize);
            let closer_outside = (0..inst.n())
                .filter(|&j| j != c && !list.contains(&(j as u32)))
                .filter(|&j| inst.dist(c, j) < worst)
                .count();
            prop_assert_eq!(closer_outside, 0);
        }
    }

    #[test]
    fn tour_length_is_rotation_invariant(inst in arb_instance(), rot in 0usize..50) {
        let n = inst.n();
        let t = nearest_neighbor_tour(inst.matrix(), 0);
        let mut rotated: Vec<u32> = t.order().to_vec();
        rotated.rotate_left(rot % n);
        let t2 = Tour::new(rotated).expect("rotation preserves permutation");
        prop_assert_eq!(t.length(inst.matrix()), t2.length(inst.matrix()));
    }

    #[test]
    fn tour_length_is_reversal_invariant(inst in arb_instance()) {
        let t = nearest_neighbor_tour(inst.matrix(), 0);
        let mut rev: Vec<u32> = t.order().to_vec();
        rev.reverse();
        let t2 = Tour::new(rev).expect("reversal preserves permutation");
        prop_assert_eq!(t.length(inst.matrix()), t2.length(inst.matrix()));
    }

    #[test]
    fn two_opt_improves_or_preserves_and_stays_valid(
        inst in arb_instance(),
        seed in 0u64..10_000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tour = Tour::random(inst.n(), &mut rng);
        let before = tour.length(inst.matrix());
        let nn = NearestNeighborLists::build(inst.matrix(), 10.min(inst.n() - 1)).expect("n >= 2");
        two_opt(&mut tour, inst.matrix(), &nn);
        prop_assert!(tour.is_valid());
        prop_assert!(tour.length(inst.matrix()) <= before);
    }

    #[test]
    fn greedy_tour_beats_the_average_random_tour(inst in arb_instance()) {
        use rand::SeedableRng;
        let greedy = nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let avg: u64 = (0..8)
            .map(|_| Tour::random(inst.n(), &mut rng).length(inst.matrix()))
            .sum::<u64>()
            / 8;
        prop_assert!(greedy <= avg, "greedy {greedy} vs random average {avg}");
    }
}
