//! TSPLIB'95 reader and writer.
//!
//! Supports `TYPE: TSP` files with coordinate-based metrics
//! (`NODE_COORD_SECTION`) and explicit matrices (`EDGE_WEIGHT_SECTION` in
//! `FULL_MATRIX`, `UPPER_ROW`, `LOWER_ROW`, `UPPER_DIAG_ROW` and
//! `LOWER_DIAG_ROW` formats) — enough to load every instance in the paper's
//! benchmark set from the original files when they are available.

use crate::geometry::{EdgeWeightType, Point};
use crate::instance::TspInstance;
use crate::matrix::DistanceMatrix;
use crate::TspError;

/// The `EDGE_WEIGHT_FORMAT` keywords supported for explicit matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WeightFormat {
    FullMatrix,
    UpperRow,
    LowerRow,
    UpperDiagRow,
    LowerDiagRow,
}

impl WeightFormat {
    fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "FULL_MATRIX" => WeightFormat::FullMatrix,
            "UPPER_ROW" => WeightFormat::UpperRow,
            "LOWER_ROW" => WeightFormat::LowerRow,
            "UPPER_DIAG_ROW" => WeightFormat::UpperDiagRow,
            "LOWER_DIAG_ROW" => WeightFormat::LowerDiagRow,
            _ => return None,
        })
    }

    /// Number of values an explicit section must contain for `n` cities.
    fn expected_len(self, n: usize) -> usize {
        match self {
            WeightFormat::FullMatrix => n * n,
            WeightFormat::UpperRow | WeightFormat::LowerRow => n * (n - 1) / 2,
            WeightFormat::UpperDiagRow | WeightFormat::LowerDiagRow => n * (n + 1) / 2,
        }
    }
}

/// Parse a TSPLIB file from a string.
pub fn parse(text: &str) -> Result<TspInstance, TspError> {
    let mut name = String::from("unnamed");
    let mut comment = String::new();
    let mut dimension: Option<usize> = None;
    let mut weight_type: Option<EdgeWeightType> = None;
    let mut weight_format: Option<WeightFormat> = None;

    let mut lines = text.lines().map(str::trim).peekable();

    // --- specification part -------------------------------------------------
    while let Some(&line) = lines.peek() {
        if line.is_empty() {
            lines.next();
            continue;
        }
        // Section keywords end the specification part.
        if line.starts_with("NODE_COORD_SECTION") || line.starts_with("EDGE_WEIGHT_SECTION") {
            break;
        }
        if line == "EOF" {
            break;
        }
        let line = lines.next().unwrap();
        let (key, value) = match line.split_once(':') {
            Some((k, v)) => (k.trim(), v.trim()),
            None => (line, ""),
        };
        match key {
            "NAME" => name = value.to_string(),
            "COMMENT" => {
                if !comment.is_empty() {
                    comment.push(' ');
                }
                comment.push_str(value);
            }
            "TYPE" => {
                if value != "TSP" {
                    return Err(TspError::Unsupported(format!(
                        "TYPE {value} (only symmetric TSP is supported)"
                    )));
                }
            }
            "DIMENSION" => {
                dimension = Some(
                    value
                        .parse()
                        .map_err(|_| TspError::Parse(format!("bad DIMENSION value: {value:?}")))?,
                );
            }
            "EDGE_WEIGHT_TYPE" => {
                weight_type =
                    Some(EdgeWeightType::from_keyword(value).ok_or_else(|| {
                        TspError::Unsupported(format!("EDGE_WEIGHT_TYPE {value}"))
                    })?);
            }
            "EDGE_WEIGHT_FORMAT" => {
                weight_format =
                    Some(WeightFormat::from_keyword(value).ok_or_else(|| {
                        TspError::Unsupported(format!("EDGE_WEIGHT_FORMAT {value}"))
                    })?);
            }
            // Harmless metadata we accept and ignore.
            "DISPLAY_DATA_TYPE" | "NODE_COORD_TYPE" => {}
            other => {
                return Err(TspError::Parse(format!("unknown specification key {other:?}")));
            }
        }
    }

    let n = dimension.ok_or_else(|| TspError::Parse("missing DIMENSION".into()))?;
    if n < 2 {
        return Err(TspError::Invalid(format!("DIMENSION must be >= 2, got {n}")));
    }
    let wt = weight_type.ok_or_else(|| TspError::Parse("missing EDGE_WEIGHT_TYPE".into()))?;

    // --- data part -----------------------------------------------------------
    let mut instance = None;
    while let Some(line) = lines.next() {
        if line.is_empty() {
            continue;
        }
        if line == "EOF" {
            break;
        }
        if line.starts_with("NODE_COORD_SECTION") {
            if wt == EdgeWeightType::Explicit {
                // Coordinates may still appear for display; skip them.
                skip_numeric_lines(&mut lines, n);
                continue;
            }
            let points = parse_coords(&mut lines, n)?;
            instance = Some(TspInstance::from_points(name.clone(), wt, points)?);
        } else if line.starts_with("EDGE_WEIGHT_SECTION") {
            if wt != EdgeWeightType::Explicit {
                return Err(TspError::Parse(
                    "EDGE_WEIGHT_SECTION present but EDGE_WEIGHT_TYPE is not EXPLICIT".into(),
                ));
            }
            let fmt = weight_format.ok_or_else(|| {
                TspError::Parse("EXPLICIT instance missing EDGE_WEIGHT_FORMAT".into())
            })?;
            let matrix = parse_explicit(&mut lines, n, fmt)?;
            instance = Some(TspInstance::from_matrix(name.clone(), matrix)?);
        } else if line.starts_with("DISPLAY_DATA_SECTION") {
            skip_numeric_lines(&mut lines, n);
        } else {
            return Err(TspError::Parse(format!("unexpected line in data part: {line:?}")));
        }
    }

    instance
        .map(|i| i.with_comment(comment))
        .ok_or_else(|| TspError::Parse("file contains no coordinate or weight section".into()))
}

fn skip_numeric_lines<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    n: usize,
) {
    for _ in 0..n {
        match lines.peek() {
            Some(&l) if !l.is_empty() && l != "EOF" => {
                lines.next();
            }
            _ => break,
        }
    }
}

fn parse_coords<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<Vec<Point>, TspError> {
    let mut points = vec![None::<Point>; n];
    let mut seen = 0usize;
    while seen < n {
        let line = lines.next().ok_or_else(|| {
            TspError::Parse(format!("coordinate section ended after {seen} of {n} cities"))
        })?;
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let idx: usize = it
            .next()
            .ok_or_else(|| TspError::Parse("empty coordinate line".into()))?
            .parse()
            .map_err(|_| TspError::Parse(format!("bad city index in {line:?}")))?;
        let x: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| TspError::Parse(format!("bad x coordinate in {line:?}")))?;
        let y: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| TspError::Parse(format!("bad y coordinate in {line:?}")))?;
        if idx == 0 || idx > n {
            return Err(TspError::Parse(format!("city index {idx} out of range 1..={n}")));
        }
        if points[idx - 1].is_some() {
            return Err(TspError::Parse(format!("duplicate city index {idx}")));
        }
        points[idx - 1] = Some(Point::new(x, y));
        seen += 1;
    }
    Ok(points.into_iter().map(|p| p.unwrap()).collect())
}

fn parse_explicit<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = &'a str>>,
    n: usize,
    fmt: WeightFormat,
) -> Result<DistanceMatrix, TspError> {
    // Weight sections are free-form whitespace-separated numbers.
    let expected = fmt.expected_len(n);
    let mut values = Vec::with_capacity(expected);
    while values.len() < expected {
        let line = match lines.peek() {
            Some(&l) => l,
            None => break,
        };
        if line == "EOF" || line.ends_with("_SECTION") {
            break;
        }
        lines.next();
        for tok in line.split_whitespace() {
            let v: i64 =
                tok.parse().map_err(|_| TspError::Parse(format!("bad weight token {tok:?}")))?;
            if v < 0 {
                return Err(TspError::Parse(format!("negative edge weight {v}")));
            }
            values.push(v as u32);
        }
    }
    if values.len() != expected {
        return Err(TspError::Parse(format!(
            "edge weight section has {} values, expected {expected} for {fmt:?}",
            values.len()
        )));
    }

    let mut d = vec![0u32; n * n];
    let mut k = 0usize;
    match fmt {
        WeightFormat::FullMatrix => {
            d.copy_from_slice(&values);
        }
        WeightFormat::UpperRow => {
            for i in 0..n {
                for j in (i + 1)..n {
                    d[i * n + j] = values[k];
                    d[j * n + i] = values[k];
                    k += 1;
                }
            }
        }
        WeightFormat::LowerRow => {
            for i in 1..n {
                for j in 0..i {
                    d[i * n + j] = values[k];
                    d[j * n + i] = values[k];
                    k += 1;
                }
            }
        }
        WeightFormat::UpperDiagRow => {
            for i in 0..n {
                for j in i..n {
                    d[i * n + j] = values[k];
                    d[j * n + i] = values[k];
                    k += 1;
                }
            }
        }
        WeightFormat::LowerDiagRow => {
            for i in 0..n {
                for j in 0..=i {
                    d[i * n + j] = values[k];
                    d[j * n + i] = values[k];
                    k += 1;
                }
            }
        }
    }
    DistanceMatrix::from_flat(n, d)
}

/// Serialise an instance back to TSPLIB text.
///
/// Coordinate-based instances emit `NODE_COORD_SECTION`; explicit instances
/// emit a `FULL_MATRIX` weight section. `parse(&write(inst))` reproduces the
/// instance's distance matrix exactly (round-trip property, see tests).
pub fn write(inst: &TspInstance) -> String {
    let mut out = String::new();
    out.push_str(&format!("NAME: {}\n", inst.name()));
    out.push_str("TYPE: TSP\n");
    if !inst.comment().is_empty() {
        out.push_str(&format!("COMMENT: {}\n", inst.comment()));
    }
    out.push_str(&format!("DIMENSION: {}\n", inst.n()));
    out.push_str(&format!("EDGE_WEIGHT_TYPE: {}\n", inst.weight_type().keyword()));
    match inst.points() {
        Some(points) => {
            out.push_str("NODE_COORD_SECTION\n");
            for (i, p) in points.iter().enumerate() {
                out.push_str(&format!("{} {} {}\n", i + 1, p.x, p.y));
            }
        }
        None => {
            out.push_str("EDGE_WEIGHT_FORMAT: FULL_MATRIX\n");
            out.push_str("EDGE_WEIGHT_SECTION\n");
            let n = inst.n();
            for i in 0..n {
                let row: Vec<String> = (0..n).map(|j| inst.dist(i, j).to_string()).collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
        }
    }
    out.push_str("EOF\n");
    out
}

/// Load an instance from a file on disk.
pub fn load(path: impl AsRef<std::path::Path>) -> Result<TspInstance, TspError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| TspError::Parse(format!("cannot read {:?}: {e}", path.as_ref())))?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_EUC: &str = "\
NAME: toy5
TYPE: TSP
COMMENT: five points on a line
DIMENSION: 5
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0 0
2 10 0
3 20 0
4 30 0
5 40 0
EOF
";

    #[test]
    fn parses_coordinate_instance() {
        let inst = parse(SMALL_EUC).unwrap();
        assert_eq!(inst.name(), "toy5");
        assert_eq!(inst.n(), 5);
        assert_eq!(inst.dist(0, 4), 40);
        assert_eq!(inst.dist(1, 3), 20);
        assert_eq!(inst.comment(), "five points on a line");
    }

    #[test]
    fn parses_full_matrix() {
        let text = "\
NAME: m3
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 2 4
2 0 3
4 3 0
EOF
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.dist(0, 1), 2);
        assert_eq!(inst.dist(2, 0), 4);
    }

    #[test]
    fn parses_upper_row() {
        let text = "\
NAME: u3
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: UPPER_ROW
EDGE_WEIGHT_SECTION
2 4
3
EOF
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.dist(0, 1), 2);
        assert_eq!(inst.dist(0, 2), 4);
        assert_eq!(inst.dist(1, 2), 3);
        assert_eq!(inst.dist(2, 1), 3);
    }

    #[test]
    fn parses_lower_diag_row() {
        let text = "\
NAME: l3
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
2 0
4 3 0
EOF
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.dist(0, 1), 2);
        assert_eq!(inst.dist(0, 2), 4);
        assert_eq!(inst.dist(1, 2), 3);
    }

    #[test]
    fn round_trip_coordinates() {
        let inst = parse(SMALL_EUC).unwrap();
        let text = write(&inst);
        let back = parse(&text).unwrap();
        assert_eq!(back.n(), inst.n());
        for i in 0..inst.n() {
            for j in 0..inst.n() {
                assert_eq!(back.dist(i, j), inst.dist(i, j));
            }
        }
    }

    #[test]
    fn rejects_asymmetric_type() {
        let text = "NAME: x\nTYPE: ATSP\nDIMENSION: 3\n";
        assert!(matches!(parse(text), Err(TspError::Unsupported(_))));
    }

    #[test]
    fn rejects_missing_dimension() {
        let text = "NAME: x\nTYPE: TSP\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_duplicate_city() {
        let text = "\
NAME: dup
TYPE: TSP
DIMENSION: 2
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0 0
1 1 1
EOF
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_truncated_weight_section() {
        let text = "\
NAME: short
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 1 2
EOF
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn att_weight_type_parses() {
        let text = "\
NAME: att2
TYPE: TSP
DIMENSION: 2
EDGE_WEIGHT_TYPE: ATT
NODE_COORD_SECTION
1 0 0
2 10 0
EOF
";
        let inst = parse(text).unwrap();
        assert_eq!(inst.dist(0, 1), 4); // matches geometry::att test case
    }
}
