//! Content hashing for TSP instances.
//!
//! The batch engine caches per-instance artifacts (nearest-neighbour
//! lists, greedy-tour lengths, backend decisions) across jobs. Cache keys
//! must identify the *problem*, not the `TspInstance` allocation, so two
//! instances with identical distance matrices — loaded from different
//! files, generated twice, or renamed — share one cache entry. The hash is
//! FNV-1a over the dimension and the row-major distance matrix; names,
//! comments, coordinates and metadata deliberately do not participate
//! (they never influence a solver).

use crate::matrix::DistanceMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `n` and every distance cell, row-major.
///
/// Deterministic across platforms (explicit little-endian byte order) and
/// stable across releases — persisted artifact stores may rely on it.
pub fn matrix_content_hash(matrix: &DistanceMatrix) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: [u8; 4]| {
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat((matrix.n() as u32).to_le_bytes());
    for &d in matrix.as_flat() {
        eat(d.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::uniform_random;
    use crate::TspInstance;

    #[test]
    fn equal_matrices_hash_equal_regardless_of_metadata() {
        let a = uniform_random("alpha", 40, 500.0, 7);
        let b = uniform_random("beta", 40, 500.0, 7).with_comment("other metadata");
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn different_instances_hash_differently() {
        let a = uniform_random("x", 40, 500.0, 7);
        let b = uniform_random("x", 40, 500.0, 8);
        let c = uniform_random("x", 41, 500.0, 7);
        assert_ne!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn hash_survives_matrix_round_trip() {
        let a = uniform_random("rt", 25, 300.0, 3);
        let explicit = TspInstance::from_matrix("renamed", a.matrix().clone()).unwrap();
        assert_eq!(a.content_hash(), explicit.content_hash());
    }

    #[test]
    fn hash_is_pinned() {
        // Guards the cross-platform/cross-release stability promise: this
        // constant may never change, or persisted artifact stores keyed by
        // the hash would silently go stale.
        let m = DistanceMatrix::from_flat(2, vec![0, 5, 5, 0]).unwrap();
        assert_eq!(matrix_content_hash(&m), 0x8373_C3CC_F65F_5207);
    }
}
