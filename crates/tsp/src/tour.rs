//! Tours: representation, validation, length, constructive heuristics.

use crate::matrix::DistanceMatrix;
use crate::TspError;

/// A Hamiltonian cycle over the cities `0..n`, stored as a visiting order.
///
/// The closing edge (last city back to the first) is implicit. Tour lengths
/// are exact integers (`u64`) because TSPLIB distances are integral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tour {
    order: Vec<u32>,
}

impl Tour {
    /// Wrap a visiting order, verifying it is a permutation of `0..n`.
    pub fn new(order: Vec<u32>) -> Result<Self, TspError> {
        let n = order.len();
        if n < 2 {
            return Err(TspError::Invalid(format!("tour must visit >= 2 cities, got {n}")));
        }
        let mut seen = vec![false; n];
        for &c in &order {
            let c = c as usize;
            if c >= n {
                return Err(TspError::Invalid(format!("city {c} out of range 0..{n}")));
            }
            if seen[c] {
                return Err(TspError::Invalid(format!("city {c} visited twice")));
            }
            seen[c] = true;
        }
        Ok(Tour { order })
    }

    /// Wrap a visiting order without validation.
    ///
    /// Use only for orders produced by trusted construction code; debug
    /// builds still assert the permutation property.
    pub fn new_unchecked(order: Vec<u32>) -> Self {
        debug_assert!(Tour::new(order.clone()).is_ok());
        Tour { order }
    }

    /// The identity tour `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Self {
        Tour { order: (0..n as u32).collect() }
    }

    /// A uniformly random tour (Fisher–Yates from the provided RNG).
    pub fn random(n: usize, rng: &mut impl rand::Rng) -> Self {
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Tour { order }
    }

    /// Number of cities.
    #[inline]
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// The visiting order.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Mutable access for local search; callers must preserve the
    /// permutation property (checked in debug builds by [`Tour::is_valid`]).
    #[inline]
    pub fn order_mut(&mut self) -> &mut [u32] {
        &mut self.order
    }

    /// Total cycle length under `matrix`, including the closing edge.
    pub fn length(&self, matrix: &DistanceMatrix) -> u64 {
        let n = self.order.len();
        let mut total = 0u64;
        for k in 0..n {
            let a = self.order[k] as usize;
            let b = self.order[(k + 1) % n] as usize;
            total += matrix.dist(a, b) as u64;
        }
        total
    }

    /// True if the order is a permutation of `0..n`.
    pub fn is_valid(&self) -> bool {
        Tour::new(self.order.clone()).is_ok()
    }

    /// Successor of `city` along the tour.
    pub fn successor(&self, city: u32) -> u32 {
        let pos = self.order.iter().position(|&c| c == city).expect("city in tour");
        self.order[(pos + 1) % self.order.len()]
    }

    /// The multiset of undirected edges `(min, max)` in the cycle.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let n = self.order.len();
        (0..n)
            .map(|k| {
                let a = self.order[k];
                let b = self.order[(k + 1) % n];
                (a.min(b), a.max(b))
            })
            .collect()
    }
}

/// Greedy nearest-neighbour construction starting from `start`.
///
/// This is the ACOTSP bootstrap heuristic: the Ant System initialises its
/// pheromone level to `m / C_nn` where `C_nn` is the length of this tour.
pub fn nearest_neighbor_tour(matrix: &DistanceMatrix, start: usize) -> Tour {
    let n = matrix.n();
    assert!(start < n, "start city {start} out of range 0..{n}");
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = start;
    visited[start] = true;
    order.push(start as u32);
    for _ in 1..n {
        let row = matrix.row(current);
        let mut best = usize::MAX;
        let mut best_d = u32::MAX;
        for (j, (&d, &v)) in row.iter().zip(visited.iter()).enumerate() {
            if !v && d < best_d {
                best = j;
                best_d = d;
            }
        }
        visited[best] = true;
        order.push(best as u32);
        current = best;
    }
    Tour { order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn line(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| (10 * (i as i64 - j as i64).unsigned_abs()) as u32)
            .unwrap()
    }

    #[test]
    fn validates_permutations() {
        assert!(Tour::new(vec![0, 1, 2]).is_ok());
        assert!(Tour::new(vec![0, 1, 1]).is_err());
        assert!(Tour::new(vec![0, 1, 3]).is_err());
        assert!(Tour::new(vec![0]).is_err());
    }

    #[test]
    fn length_includes_closing_edge() {
        let m = line(4);
        let t = Tour::identity(4);
        // 10 + 10 + 10 + closing 30
        assert_eq!(t.length(&m), 60);
    }

    #[test]
    fn random_tours_are_valid_and_seeded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t1 = Tour::random(50, &mut rng);
        assert!(t1.is_valid());
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
        let t2 = Tour::random(50, &mut rng2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn nearest_neighbor_on_line_is_optimal_from_end() {
        let m = line(5);
        let t = nearest_neighbor_tour(&m, 0);
        assert_eq!(t.order(), &[0, 1, 2, 3, 4]);
        assert_eq!(t.length(&m), 80);
    }

    #[test]
    fn nearest_neighbor_visits_everything_from_any_start() {
        let m = line(7);
        for s in 0..7 {
            let t = nearest_neighbor_tour(&m, s);
            assert!(t.is_valid());
            assert_eq!(t.order()[0], s as u32);
        }
    }

    #[test]
    fn successor_and_edges() {
        let t = Tour::new(vec![2, 0, 1]).unwrap();
        assert_eq!(t.successor(2), 0);
        assert_eq!(t.successor(1), 2);
        let mut e = t.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
