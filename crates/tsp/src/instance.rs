//! A TSP instance: name, optional coordinates, and its distance matrix.

use crate::geometry::{EdgeWeightType, Point};
use crate::matrix::DistanceMatrix;
use crate::TspError;

/// A complete, symmetric TSP instance.
///
/// Instances are immutable once built; solvers share them by reference.
#[derive(Debug, Clone)]
pub struct TspInstance {
    name: String,
    comment: String,
    weight_type: EdgeWeightType,
    points: Option<Vec<Point>>,
    matrix: DistanceMatrix,
    /// Known optimal tour length, when recorded (TSPLIB publishes optima).
    best_known: Option<u64>,
}

impl TspInstance {
    /// Build an instance from city coordinates under a TSPLIB metric.
    pub fn from_points(
        name: impl Into<String>,
        weight_type: EdgeWeightType,
        points: Vec<Point>,
    ) -> Result<Self, TspError> {
        if weight_type == EdgeWeightType::Explicit {
            return Err(TspError::Invalid(
                "EXPLICIT instances must be built with from_matrix".into(),
            ));
        }
        let n = points.len();
        let matrix = DistanceMatrix::from_fn(n, |i, j| {
            if i == j {
                0
            } else {
                weight_type.distance(points[i], points[j])
            }
        })?;
        Ok(TspInstance {
            name: name.into(),
            comment: String::new(),
            weight_type,
            points: Some(points),
            matrix,
            best_known: None,
        })
    }

    /// Build an instance directly from an explicit distance matrix.
    pub fn from_matrix(name: impl Into<String>, matrix: DistanceMatrix) -> Result<Self, TspError> {
        if !matrix.is_symmetric() {
            return Err(TspError::Invalid(
                "explicit matrix must be symmetric for the symmetric TSP".into(),
            ));
        }
        Ok(TspInstance {
            name: name.into(),
            comment: String::new(),
            weight_type: EdgeWeightType::Explicit,
            points: None,
            matrix,
            best_known: None,
        })
    }

    /// Attach a free-text comment (kept through TSPLIB round-trips).
    pub fn with_comment(mut self, comment: impl Into<String>) -> Self {
        self.comment = comment.into();
        self
    }

    /// Record the known optimal tour length.
    pub fn with_best_known(mut self, best: u64) -> Self {
        self.best_known = Some(best);
        self
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instance comment.
    pub fn comment(&self) -> &str {
        &self.comment
    }

    /// Number of cities.
    #[inline]
    pub fn n(&self) -> usize {
        self.matrix.n()
    }

    /// The TSPLIB edge-weight type.
    pub fn weight_type(&self) -> EdgeWeightType {
        self.weight_type
    }

    /// City coordinates, if the instance is coordinate-based.
    pub fn points(&self) -> Option<&[Point]> {
        self.points.as_deref()
    }

    /// The dense distance matrix.
    #[inline]
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// Distance between cities `i` and `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> u32 {
        self.matrix.dist(i, j)
    }

    /// Known optimal tour length, if recorded.
    pub fn best_known(&self) -> Option<u64> {
        self.best_known
    }

    /// Content hash of the problem this instance poses (dimension plus
    /// distance matrix; metadata excluded). Two instances with the same
    /// hash are interchangeable for every solver, which is what the batch
    /// engine's artifact cache keys on.
    pub fn content_hash(&self) -> u64 {
        crate::hash::matrix_content_hash(&self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> TspInstance {
        TspInstance::from_points(
            "square4",
            EdgeWeightType::Euc2d,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 10.0),
                Point::new(10.0, 10.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_matrix_from_points() {
        let inst = square();
        assert_eq!(inst.n(), 4);
        assert_eq!(inst.dist(0, 1), 10);
        assert_eq!(inst.dist(0, 2), 14); // sqrt(200) = 14.14 -> 14
        assert!(inst.matrix().is_symmetric());
        assert!(inst.points().is_some());
    }

    #[test]
    fn explicit_requires_symmetry() {
        let asym = DistanceMatrix::from_flat(2, vec![0, 1, 2, 0]).unwrap();
        assert!(TspInstance::from_matrix("bad", asym).is_err());
        let sym = DistanceMatrix::from_flat(2, vec![0, 1, 1, 0]).unwrap();
        let inst = TspInstance::from_matrix("ok", sym).unwrap();
        assert_eq!(inst.weight_type(), EdgeWeightType::Explicit);
        assert!(inst.points().is_none());
    }

    #[test]
    fn metadata_builders() {
        let inst = square().with_comment("unit test").with_best_known(40);
        assert_eq!(inst.comment(), "unit test");
        assert_eq!(inst.best_known(), Some(40));
    }

    #[test]
    fn from_points_rejects_explicit() {
        let err = TspInstance::from_points("x", EdgeWeightType::Explicit, vec![]);
        assert!(err.is_err());
    }
}
