//! Dense distance matrices.
//!
//! The Ant System reads distances in every inner loop, so the matrix is a
//! single flat allocation indexed `i * n + j` — the same layout the GPU
//! kernels use for their device buffer, which keeps CPU and simulated-GPU
//! address streams directly comparable.

use crate::TspError;

/// A dense, row-major `n × n` matrix of integral distances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Build from a flat row-major vector. `d.len()` must equal `n * n`.
    pub fn from_flat(n: usize, d: Vec<u32>) -> Result<Self, TspError> {
        if n < 2 {
            return Err(TspError::Invalid(format!("need at least 2 cities, got {n}")));
        }
        if d.len() != n * n {
            return Err(TspError::Invalid(format!(
                "flat distance vector has {} entries, expected {}",
                d.len(),
                n * n
            )));
        }
        Ok(DistanceMatrix { n, d })
    }

    /// Build by evaluating `f(i, j)` for every ordered pair.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u32) -> Result<Self, TspError> {
        if n < 2 {
            return Err(TspError::Invalid(format!("need at least 2 cities, got {n}")));
        }
        let mut d = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = f(i, j);
            }
        }
        Ok(DistanceMatrix { n, d })
    }

    /// Number of cities.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from city `i` to city `j`.
    #[inline]
    pub fn dist(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i < self.n && j < self.n);
        self.d[i * self.n + j]
    }

    /// Row `i` as a slice (distances from city `i` to every city).
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.d[i * self.n..(i + 1) * self.n]
    }

    /// The flat row-major buffer (used to upload to the simulated device).
    #[inline]
    pub fn as_flat(&self) -> &[u32] {
        &self.d
    }

    /// True if `dist(i, j) == dist(j, i)` for all pairs.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.dist(i, j) != self.dist(j, i) {
                    return false;
                }
            }
        }
        true
    }

    /// True if the diagonal is all zero.
    pub fn has_zero_diagonal(&self) -> bool {
        (0..self.n).all(|i| self.dist(i, i) == 0)
    }

    /// The largest off-diagonal distance (useful for pheromone bounds).
    pub fn max_distance(&self) -> u32 {
        let mut m = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    m = m.max(self.dist(i, j));
                }
            }
        }
        m
    }

    /// The smallest non-zero off-diagonal distance.
    pub fn min_distance(&self) -> u32 {
        let mut m = u32::MAX;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    m = m.min(self.dist(i, j));
                }
            }
        }
        m
    }

    /// Heuristic matrix `eta[i][j] = 1 / d(i,j)` as `f32` (the precision the
    /// paper's GPU code uses). The diagonal and zero distances map to
    /// `1 / 0.1` following the ACOTSP convention of clamping `d = 0` edges.
    pub fn heuristic_matrix(&self) -> Vec<f32> {
        let mut eta = vec![0.0f32; self.n * self.n];
        for i in 0..self.n {
            for j in 0..self.n {
                let d = self.d[i * self.n + j];
                eta[i * self.n + j] = if d == 0 { 10.0 } else { 1.0 / d as f32 };
            }
        }
        eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        // 0-1: 2, 0-2: 4, 1-2: 3
        DistanceMatrix::from_flat(3, vec![0, 2, 4, 2, 0, 3, 4, 3, 0]).unwrap()
    }

    #[test]
    fn indexing_and_rows() {
        let m = sample();
        assert_eq!(m.n(), 3);
        assert_eq!(m.dist(0, 2), 4);
        assert_eq!(m.row(1), &[2, 0, 3]);
        assert_eq!(m.as_flat().len(), 9);
    }

    #[test]
    fn symmetry_and_diagonal_checks() {
        let m = sample();
        assert!(m.is_symmetric());
        assert!(m.has_zero_diagonal());
        let asym = DistanceMatrix::from_flat(2, vec![0, 1, 2, 0]).unwrap();
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn extremes() {
        let m = sample();
        assert_eq!(m.max_distance(), 4);
        assert_eq!(m.min_distance(), 2);
    }

    #[test]
    fn from_fn_matches_from_flat() {
        let flat = sample();
        let f = DistanceMatrix::from_fn(3, |i, j| flat.dist(i, j)).unwrap();
        assert_eq!(f, flat);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(DistanceMatrix::from_flat(1, vec![0]).is_err());
        assert!(DistanceMatrix::from_flat(3, vec![0; 8]).is_err());
        assert!(DistanceMatrix::from_fn(0, |_, _| 0).is_err());
    }

    #[test]
    fn heuristic_clamps_zero_distances() {
        let m = sample();
        let eta = m.heuristic_matrix();
        assert_eq!(eta[0], 10.0); // diagonal
        assert!((eta[1] - 0.5).abs() < 1e-6);
    }
}
