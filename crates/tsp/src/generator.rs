//! Seeded synthetic instance generators.
//!
//! The paper evaluates on seven TSPLIB instances (att48, kroC100, a280,
//! pcb442, d657, pr1002, pr2392). The original coordinate files are not
//! redistributable inside this repository, and the paper's performance
//! study depends only on the instance *size* `n` (thread counts, memory
//! footprints, tile counts), not on the particular coordinates. We therefore
//! provide deterministic, seeded stand-ins with identical sizes; real TSPLIB
//! files can be substituted at any time through [`crate::tsplib::load`].

use crate::geometry::{EdgeWeightType, Point};
use crate::instance::TspInstance;
use rand::{Rng, SeedableRng};

/// Description of one of the paper's benchmark instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperInstance {
    /// TSPLIB name as printed in the paper's tables.
    pub name: &'static str,
    /// Number of cities (encoded in the TSPLIB name).
    pub n: usize,
    /// Known optimal tour length of the *real* TSPLIB instance.
    pub best_known: u64,
}

/// The benchmark set of the paper's evaluation (Tables II–IV, Figures 4–5),
/// in the order the tables print them.
pub const PAPER_INSTANCES: [PaperInstance; 7] = [
    PaperInstance { name: "att48", n: 48, best_known: 10628 },
    PaperInstance { name: "kroC100", n: 100, best_known: 20749 },
    PaperInstance { name: "a280", n: 280, best_known: 2579 },
    PaperInstance { name: "pcb442", n: 442, best_known: 50778 },
    PaperInstance { name: "d657", n: 657, best_known: 48912 },
    PaperInstance { name: "pr1002", n: 1002, best_known: 259045 },
    PaperInstance { name: "pr2392", n: 2392, best_known: 378032 },
];

/// Fixed base seed for the paper stand-ins, so every run of the repro
/// harness sees the exact same instances.
const PAPER_SEED: u64 = 0x05EE_DAC0_2011;

/// Generate `n` cities uniformly in a `side × side` square.
pub fn uniform_random(name: &str, n: usize, side: f64, seed: u64) -> TspInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let points: Vec<Point> =
        (0..n).map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side))).collect();
    TspInstance::from_points(name, EdgeWeightType::Euc2d, points)
        .expect("generated instance is structurally valid")
}

/// Generate `n` cities grouped into `clusters` Gaussian clusters, a common
/// structured workload (models PCB drilling patterns such as pcb442).
pub fn clustered(name: &str, n: usize, clusters: usize, side: f64, seed: u64) -> TspInstance {
    assert!(clusters >= 1, "need at least one cluster");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let sigma = side / (clusters as f64).sqrt() / 6.0;
    let points: Vec<Point> = (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // Box–Muller without external distributions.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let r = (-2.0 * u1.ln()).sqrt();
            let (dx, dy) = (
                r * (2.0 * std::f64::consts::PI * u2).cos() * sigma,
                r * (2.0 * std::f64::consts::PI * u2).sin() * sigma,
            );
            Point::new((c.x + dx).clamp(0.0, side), (c.y + dy).clamp(0.0, side))
        })
        .collect();
    TspInstance::from_points(name, EdgeWeightType::Euc2d, points)
        .expect("generated instance is structurally valid")
}

/// Generate a `w × h` grid of cities with unit spacing `step`.
pub fn grid(name: &str, w: usize, h: usize, step: f64) -> TspInstance {
    let points: Vec<Point> =
        (0..w * h).map(|k| Point::new((k % w) as f64 * step, (k / w) as f64 * step)).collect();
    TspInstance::from_points(name, EdgeWeightType::Euc2d, points)
        .expect("generated instance is structurally valid")
}

/// The seven size-faithful stand-ins for the paper's benchmark set.
///
/// Each instance has the same `n` as its TSPLIB namesake, carries the
/// namesake's name (so tables print identically), and records the real
/// instance's best-known length in its comment for reference. Coordinates
/// are seeded uniform — see the module docs for why this preserves the
/// paper's performance behaviour.
pub fn paper_instances() -> Vec<TspInstance> {
    PAPER_INSTANCES.iter().enumerate().map(|(i, p)| paper_instance_by_index(i, p)).collect()
}

/// A single paper stand-in by table position (0 = att48 … 6 = pr2392).
pub fn paper_instance(name: &str) -> Option<TspInstance> {
    PAPER_INSTANCES
        .iter()
        .enumerate()
        .find(|(_, p)| p.name == name)
        .map(|(i, p)| paper_instance_by_index(i, p))
}

fn paper_instance_by_index(i: usize, p: &PaperInstance) -> TspInstance {
    // Square side scales with sqrt(n) to keep city density constant, which
    // keeps distance magnitudes comparable across sizes (as in TSPLIB).
    let side = 1000.0 * (p.n as f64 / 100.0).sqrt();
    uniform_random(p.name, p.n, side, PAPER_SEED.wrapping_add(i as u64)).with_comment(format!(
        "synthetic stand-in for TSPLIB {} (n = {}, real optimum {})",
        p.name, p.n, p.best_known
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform_random("a", 30, 100.0, 42);
        let b = uniform_random("b", 30, 100.0, 42);
        let c = uniform_random("c", 30, 100.0, 43);
        assert_eq!(a.matrix().as_flat(), b.matrix().as_flat());
        assert_ne!(a.matrix().as_flat(), c.matrix().as_flat());
    }

    #[test]
    fn paper_set_sizes_match_names() {
        let insts = paper_instances();
        assert_eq!(insts.len(), 7);
        for (inst, meta) in insts.iter().zip(PAPER_INSTANCES.iter()) {
            assert_eq!(inst.name(), meta.name);
            assert_eq!(inst.n(), meta.n);
            assert!(inst.matrix().is_symmetric());
            assert!(inst.matrix().has_zero_diagonal());
        }
    }

    #[test]
    fn paper_instance_lookup() {
        assert_eq!(paper_instance("att48").unwrap().n(), 48);
        assert_eq!(paper_instance("pr2392").unwrap().n(), 2392);
        assert!(paper_instance("nope").is_none());
    }

    #[test]
    fn paper_instances_are_stable_across_calls() {
        let a = paper_instance("kroC100").unwrap();
        let b = paper_instance("kroC100").unwrap();
        assert_eq!(a.matrix().as_flat(), b.matrix().as_flat());
    }

    #[test]
    fn clustered_stays_in_bounds() {
        let inst = clustered("cl", 120, 6, 500.0, 9);
        assert_eq!(inst.n(), 120);
        for p in inst.points().unwrap() {
            assert!(p.x >= 0.0 && p.x <= 500.0);
            assert!(p.y >= 0.0 && p.y <= 500.0);
        }
    }

    #[test]
    fn grid_has_expected_unit_distances() {
        let inst = grid("g", 3, 3, 10.0);
        assert_eq!(inst.n(), 9);
        assert_eq!(inst.dist(0, 1), 10);
        assert_eq!(inst.dist(0, 3), 10);
        assert_eq!(inst.dist(0, 4), 14);
    }
}
