//! TSP substrate for the GPU-ACO reproduction.
//!
//! This crate provides everything the Ant System needs from the Travelling
//! Salesman Problem side:
//!
//! - [`tsplib`]: a parser/writer for the TSPLIB'95 format (the benchmark
//!   library the paper draws its instances from),
//! - [`geometry`]: the TSPLIB edge-weight functions (`EUC_2D`, `CEIL_2D`,
//!   `ATT`, `GEO`, `MAN_2D`, `MAX_2D`),
//! - [`matrix`]: dense distance matrices,
//! - [`nn`]: nearest-neighbour candidate lists (the paper uses `NN = 30`),
//! - [`tour`]: tour representation, validation and constructive heuristics,
//! - [`generator`]: seeded synthetic instance generators, including
//!   size-faithful stand-ins for the seven TSPLIB instances used in the
//!   paper's evaluation (att48 … pr2392),
//! - [`two_opt`]: a 2-opt local search with neighbour lists and don't-look
//!   bits (an extension used by the solution-quality experiments).
//!
//! Distances follow the TSPLIB convention of being rounded to integers, so
//! tour lengths are exact `u64` values and every experiment is reproducible
//! bit-for-bit.

pub mod generator;
pub mod geometry;
pub mod hash;
pub mod instance;
pub mod matrix;
pub mod nn;
pub mod tour;
pub mod tsplib;
pub mod two_opt;

pub use generator::{
    clustered, grid, paper_instance, paper_instances, uniform_random, PaperInstance,
};
pub use geometry::{EdgeWeightType, Point};
pub use hash::matrix_content_hash;
pub use instance::TspInstance;
pub use matrix::DistanceMatrix;
pub use nn::NearestNeighborLists;
pub use tour::{nearest_neighbor_tour, Tour};

/// Errors produced while loading or validating TSP data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TspError {
    /// The TSPLIB input could not be parsed; the string describes where/why.
    Parse(String),
    /// The instance is structurally invalid (e.g. fewer than 2 cities).
    Invalid(String),
    /// An operation was asked to use an unsupported TSPLIB feature.
    Unsupported(String),
}

impl std::fmt::Display for TspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TspError::Parse(m) => write!(f, "TSPLIB parse error: {m}"),
            TspError::Invalid(m) => write!(f, "invalid TSP instance: {m}"),
            TspError::Unsupported(m) => write!(f, "unsupported TSPLIB feature: {m}"),
        }
    }
}

impl std::error::Error for TspError {}
