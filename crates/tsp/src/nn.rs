//! Nearest-neighbour candidate lists.
//!
//! The paper's fastest task-parallel tour kernels (Table II, versions 4–6)
//! restrict the probabilistic choice to each city's `nn` nearest neighbours
//! (`NN = 30` in the evaluation), falling back to the full heuristic rule
//! once all candidates are visited. The list is stored flat (`city * nn +
//! rank`) — the exact device layout the kernels read.

use crate::matrix::DistanceMatrix;
use crate::TspError;

/// Per-city lists of the `nn` nearest other cities, in increasing distance.
#[derive(Debug, Clone)]
pub struct NearestNeighborLists {
    n: usize,
    nn: usize,
    /// Flat `n * nn` matrix: `list[city * nn + rank]`.
    list: Vec<u32>,
}

impl NearestNeighborLists {
    /// Build lists of depth `nn` from a distance matrix.
    ///
    /// `nn` is clamped to `n - 1` (a city has only `n - 1` neighbours).
    /// Ties are broken by city index, making construction deterministic.
    pub fn build(matrix: &DistanceMatrix, nn: usize) -> Result<Self, TspError> {
        let n = matrix.n();
        if nn == 0 {
            return Err(TspError::Invalid("nearest-neighbour depth must be > 0".into()));
        }
        let nn = nn.min(n - 1);
        let mut list = vec![0u32; n * nn];
        let mut order: Vec<u32> = Vec::with_capacity(n - 1);
        for city in 0..n {
            order.clear();
            order.extend((0..n as u32).filter(|&j| j as usize != city));
            let row = matrix.row(city);
            // Partial selection: only the first `nn` entries need to be sorted.
            order.select_nth_unstable_by_key(nn - 1, |&j| (row[j as usize], j));
            let mut chosen: Vec<u32> = order[..nn].to_vec();
            chosen.sort_unstable_by_key(|&j| (row[j as usize], j));
            list[city * nn..(city + 1) * nn].copy_from_slice(&chosen);
        }
        Ok(NearestNeighborLists { n, nn, list })
    }

    /// Number of cities.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Depth of each list.
    #[inline]
    pub fn depth(&self) -> usize {
        self.nn
    }

    /// The neighbours of `city`, nearest first.
    #[inline]
    pub fn neighbors(&self, city: usize) -> &[u32] {
        &self.list[city * self.nn..(city + 1) * self.nn]
    }

    /// The flat `n * nn` buffer (device upload layout).
    #[inline]
    pub fn as_flat(&self) -> &[u32] {
        &self.list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_instance(n: usize) -> DistanceMatrix {
        // Cities on a line at x = 0, 10, 20, ...
        DistanceMatrix::from_fn(n, |i, j| (10 * (i as i64 - j as i64).unsigned_abs()) as u32)
            .unwrap()
    }

    #[test]
    fn lists_are_sorted_by_distance() {
        let m = line_instance(6);
        let nn = NearestNeighborLists::build(&m, 3).unwrap();
        assert_eq!(nn.depth(), 3);
        // City 0's nearest are 1, 2, 3.
        assert_eq!(nn.neighbors(0), &[1, 2, 3]);
        // City 3 is equidistant from 2 and 4 -> tie broken by index.
        assert_eq!(nn.neighbors(3), &[2, 4, 1]);
    }

    #[test]
    fn depth_clamps_to_n_minus_1() {
        let m = line_instance(4);
        let nn = NearestNeighborLists::build(&m, 100).unwrap();
        assert_eq!(nn.depth(), 3);
        for c in 0..4 {
            let mut got: Vec<u32> = nn.neighbors(c).to_vec();
            got.sort_unstable();
            let want: Vec<u32> = (0..4u32).filter(|&j| j as usize != c).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn no_city_lists_itself() {
        let m = line_instance(8);
        let nn = NearestNeighborLists::build(&m, 5).unwrap();
        for c in 0..8 {
            assert!(nn.neighbors(c).iter().all(|&j| j as usize != c));
        }
    }

    #[test]
    fn flat_layout_matches_accessor() {
        let m = line_instance(5);
        let nn = NearestNeighborLists::build(&m, 2).unwrap();
        let flat = nn.as_flat();
        for c in 0..5 {
            assert_eq!(&flat[c * 2..c * 2 + 2], nn.neighbors(c));
        }
    }

    #[test]
    fn zero_depth_rejected() {
        let m = line_instance(3);
        assert!(NearestNeighborLists::build(&m, 0).is_err());
    }
}
