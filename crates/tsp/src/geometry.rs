//! TSPLIB'95 edge-weight functions.
//!
//! Every function reproduces the rounding behaviour specified in the TSPLIB
//! documentation (Reinelt, 1991): distances are integral, obtained with the
//! `nint` convention (round-half-up via `+0.5` truncation) except where the
//! format specifies `ceil` (CEIL_2D, and the special ATT rule).

/// A city location. TSPLIB coordinates are real-valued even for "integer"
/// instances, so we keep `f64` throughout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// The TSPLIB `EDGE_WEIGHT_TYPE`s supported by this crate.
///
/// These cover every type used by the paper's benchmark set (att48 is `ATT`,
/// kroC100/a280/pcb442/d657/pr1002/pr2392 are `EUC_2D`) plus the other
/// coordinate-based types commonly found in TSPLIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeWeightType {
    /// Rounded Euclidean distance (the TSPLIB default for 2-D instances).
    Euc2d,
    /// Euclidean distance rounded *up*.
    Ceil2d,
    /// Pseudo-Euclidean "AT&T" distance used by att48/att532.
    Att,
    /// Geographic distance (input coordinates are DDD.MM latitude/longitude).
    Geo,
    /// Rounded Manhattan distance.
    Man2d,
    /// Rounded maximum-norm distance.
    Max2d,
    /// Distances given explicitly in the file (`EDGE_WEIGHT_SECTION`).
    Explicit,
}

impl EdgeWeightType {
    /// Parse the TSPLIB keyword.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "EUC_2D" => EdgeWeightType::Euc2d,
            "CEIL_2D" => EdgeWeightType::Ceil2d,
            "ATT" => EdgeWeightType::Att,
            "GEO" => EdgeWeightType::Geo,
            "MAN_2D" => EdgeWeightType::Man2d,
            "MAX_2D" => EdgeWeightType::Max2d,
            "EXPLICIT" => EdgeWeightType::Explicit,
            _ => return None,
        })
    }

    /// The TSPLIB keyword for this weight type.
    pub fn keyword(self) -> &'static str {
        match self {
            EdgeWeightType::Euc2d => "EUC_2D",
            EdgeWeightType::Ceil2d => "CEIL_2D",
            EdgeWeightType::Att => "ATT",
            EdgeWeightType::Geo => "GEO",
            EdgeWeightType::Man2d => "MAN_2D",
            EdgeWeightType::Max2d => "MAX_2D",
            EdgeWeightType::Explicit => "EXPLICIT",
        }
    }

    /// Compute the integral distance between two points under this metric.
    ///
    /// # Panics
    /// Panics for [`EdgeWeightType::Explicit`], which has no coordinate
    /// formula — explicit instances carry their matrix in the file.
    pub fn distance(self, a: Point, b: Point) -> u32 {
        match self {
            EdgeWeightType::Euc2d => euc_2d(a, b),
            EdgeWeightType::Ceil2d => ceil_2d(a, b),
            EdgeWeightType::Att => att(a, b),
            EdgeWeightType::Geo => geo(a, b),
            EdgeWeightType::Man2d => man_2d(a, b),
            EdgeWeightType::Max2d => max_2d(a, b),
            EdgeWeightType::Explicit => {
                panic!("EXPLICIT edge weights have no coordinate distance function")
            }
        }
    }
}

/// TSPLIB `nint`: round half away from zero for non-negative inputs.
#[inline]
pub fn nint(x: f64) -> u32 {
    (x + 0.5) as u32
}

/// Rounded Euclidean distance (`EUC_2D`).
#[inline]
pub fn euc_2d(a: Point, b: Point) -> u32 {
    let xd = a.x - b.x;
    let yd = a.y - b.y;
    nint((xd * xd + yd * yd).sqrt())
}

/// Euclidean distance rounded up (`CEIL_2D`).
#[inline]
pub fn ceil_2d(a: Point, b: Point) -> u32 {
    let xd = a.x - b.x;
    let yd = a.y - b.y;
    (xd * xd + yd * yd).sqrt().ceil() as u32
}

/// Pseudo-Euclidean `ATT` distance (att48, att532).
///
/// TSPLIB: `rij = sqrt((xd^2 + yd^2)/10)`, `tij = nint(rij)`, and if
/// `tij < rij` the distance is `tij + 1`, else `tij`.
#[inline]
pub fn att(a: Point, b: Point) -> u32 {
    let xd = a.x - b.x;
    let yd = a.y - b.y;
    let rij = ((xd * xd + yd * yd) / 10.0).sqrt();
    let tij = nint(rij);
    if (tij as f64) < rij {
        tij + 1
    } else {
        tij
    }
}

/// Rounded Manhattan distance (`MAN_2D`).
#[inline]
pub fn man_2d(a: Point, b: Point) -> u32 {
    nint((a.x - b.x).abs() + (a.y - b.y).abs())
}

/// Rounded maximum-norm distance (`MAX_2D`).
#[inline]
pub fn max_2d(a: Point, b: Point) -> u32 {
    let xd = nint((a.x - b.x).abs());
    let yd = nint((a.y - b.y).abs());
    xd.max(yd)
}

// TSPLIB's GEO distance is *defined* with this truncated constant, not
// the mathematical pi — using `std::f64::consts::PI` would change
// published optimal tour lengths.
#[allow(clippy::approx_constant)]
const GEO_PI: f64 = 3.141592;
const GEO_RRR: f64 = 6378.388;

/// Convert a TSPLIB `DDD.MM` coordinate to radians.
fn geo_radians(coord: f64) -> f64 {
    let deg = coord.trunc();
    let min = coord - deg;
    GEO_PI * (deg + 5.0 * min / 3.0) / 180.0
}

/// Geographic distance (`GEO`), per the TSPLIB reference implementation.
pub fn geo(a: Point, b: Point) -> u32 {
    let lat_a = geo_radians(a.x);
    let lon_a = geo_radians(a.y);
    let lat_b = geo_radians(b.x);
    let lon_b = geo_radians(b.y);
    let q1 = (lon_a - lon_b).cos();
    let q2 = (lat_a - lat_b).cos();
    let q3 = (lat_a + lat_b).cos();
    // Clamp guards against |cos| arguments drifting past 1.0 in floating
    // point; TSPLIB's C reference relies on the libm acos domain behaviour.
    let arg = (0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)).clamp(-1.0, 1.0);
    (GEO_RRR * arg.acos() + 1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nint_rounds_half_up() {
        assert_eq!(nint(0.0), 0);
        assert_eq!(nint(0.49), 0);
        assert_eq!(nint(0.5), 1);
        assert_eq!(nint(1.5), 2);
        assert_eq!(nint(2.4999), 2);
    }

    #[test]
    fn euclidean_is_symmetric_and_zero_on_diagonal() {
        let a = Point::new(3.0, 4.0);
        let b = Point::new(0.0, 0.0);
        assert_eq!(euc_2d(a, b), 5);
        assert_eq!(euc_2d(b, a), 5);
        assert_eq!(euc_2d(a, a), 0);
    }

    #[test]
    fn euclidean_rounds() {
        // sqrt(2) = 1.414... -> 1 ; sqrt(8) = 2.828... -> 3
        assert_eq!(euc_2d(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 1);
        assert_eq!(euc_2d(Point::new(0.0, 0.0), Point::new(2.0, 2.0)), 3);
    }

    #[test]
    fn ceil_rounds_up() {
        assert_eq!(ceil_2d(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 2);
        assert_eq!(ceil_2d(Point::new(0.0, 0.0), Point::new(3.0, 4.0)), 5);
    }

    #[test]
    fn att_matches_reference_rule() {
        // r = sqrt((9+16)/10) = sqrt(2.5) = 1.581..; t = nint = 2; t >= r -> 2
        assert_eq!(att(Point::new(0.0, 0.0), Point::new(3.0, 4.0)), 2);
        // r = sqrt(100/10) = 3.162..; t = 3; t < r -> 4
        assert_eq!(att(Point::new(0.0, 0.0), Point::new(10.0, 0.0)), 4);
    }

    #[test]
    fn manhattan_and_max_norms() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.2, 4.4);
        assert_eq!(man_2d(a, b), 8); // 3.2+4.4 = 7.6 -> 8
        assert_eq!(max_2d(a, b), 4); // max(nint 3.2, nint 4.4) = max(3,4)
    }

    #[test]
    fn geo_known_pair_is_plausible_and_symmetric() {
        // Two points one degree of latitude apart on the same meridian:
        // one degree of arc on the TSPLIB sphere is ~111 km.
        let a = Point::new(10.0, 20.0);
        let b = Point::new(11.0, 20.0);
        let d = geo(a, b);
        assert!((105..=120).contains(&d), "got {d}");
        assert_eq!(geo(a, b), geo(b, a));
        // TSPLIB's GEO formula is `(int)(RRR * acos(..) + 1.0)`, so the
        // self-distance truncates to 1 rather than 0 — we reproduce that.
        assert!(geo(a, a) <= 1);
    }

    #[test]
    fn keyword_round_trip() {
        for t in [
            EdgeWeightType::Euc2d,
            EdgeWeightType::Ceil2d,
            EdgeWeightType::Att,
            EdgeWeightType::Geo,
            EdgeWeightType::Man2d,
            EdgeWeightType::Max2d,
            EdgeWeightType::Explicit,
        ] {
            assert_eq!(EdgeWeightType::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(EdgeWeightType::from_keyword("BOGUS"), None);
    }
}
