//! 2-opt local search with neighbour lists and don't-look bits.
//!
//! Not used by the paper's timing study, but required by the solution-quality
//! experiments and a standard component of any credible ACO/TSP library
//! (ACOTSP ships the same optimisation). The implementation follows the
//! classic design: candidate moves are restricted to each city's
//! nearest-neighbour list, and "don't-look" bits skip cities whose
//! neighbourhood has not changed since they last failed to improve.
//!
//! This is the standalone, queue-driven (first-improvement-per-city)
//! variant. The engine and the colonies use `aco-localsearch` instead,
//! whose round-based best-improvement pass is algorithmically mirrored
//! by a GPU kernel family; this module stays as the dependency-free
//! helper for `aco-tsp`-only users (see `examples/tsplib_solver.rs`).
//! Fixes to the move evaluation logic likely apply to both.

use crate::matrix::DistanceMatrix;
use crate::nn::NearestNeighborLists;
use crate::tour::Tour;

/// Improve `tour` in place until 2-opt local optimality (w.r.t. the
/// neighbour lists). Returns the number of improving moves applied.
pub fn two_opt(tour: &mut Tour, matrix: &DistanceMatrix, nn: &NearestNeighborLists) -> usize {
    let n = tour.n();
    debug_assert_eq!(matrix.n(), n);

    // pos[c] = index of city c in the order.
    let mut pos = vec![0u32; n];
    for (i, &c) in tour.order().iter().enumerate() {
        pos[c as usize] = i as u32;
    }
    let mut dont_look = vec![false; n];
    let mut queue: Vec<u32> = (0..n as u32).collect();
    let mut improvements = 0usize;

    while let Some(c1) = queue.pop() {
        if dont_look[c1 as usize] {
            continue;
        }
        dont_look[c1 as usize] = true;
        if let Some((a, b)) = best_move(tour, matrix, nn, &pos, c1) {
            apply_2opt(tour, &mut pos, a, b);
            improvements += 1;
            // Re-activate the endpoints of the exchanged edges.
            for &c in &[
                a,
                b,
                tour.order()[(pos[a as usize] as usize + 1) % n],
                tour.order()[(pos[b as usize] as usize + 1) % n],
            ] {
                if dont_look[c as usize] {
                    dont_look[c as usize] = false;
                    queue.push(c);
                }
            }
            dont_look[c1 as usize] = false;
            queue.push(c1);
        }
    }
    improvements
}

/// Find the best improving 2-opt move that removes an edge incident to `c1`.
/// Returns the canonical pair `(c1, c2)` meaning: reverse the segment between
/// the successors of `c1` and `c2`.
fn best_move(
    tour: &Tour,
    matrix: &DistanceMatrix,
    nn: &NearestNeighborLists,
    pos: &[u32],
    c1: u32,
) -> Option<(u32, u32)> {
    let n = tour.n();
    let order = tour.order();
    let succ = |c: u32| order[(pos[c as usize] as usize + 1) % n];
    let pred = |c: u32| order[(pos[c as usize] as usize + n - 1) % n];

    let mut best_gain = 0i64;
    let mut best: Option<(u32, u32)> = None;

    // Moves that replace the edge (c1, succ(c1)).
    let s1 = succ(c1);
    let d_c1_s1 = matrix.dist(c1 as usize, s1 as usize) as i64;
    for &c2 in nn.neighbors(c1 as usize) {
        let d_c1_c2 = matrix.dist(c1 as usize, c2 as usize) as i64;
        if d_c1_c2 >= d_c1_s1 {
            break; // neighbours sorted: no closer candidate can improve
        }
        let s2 = succ(c2);
        if s2 == c1 || c2 == s1 {
            continue;
        }
        let gain = d_c1_s1 + matrix.dist(c2 as usize, s2 as usize) as i64
            - d_c1_c2
            - matrix.dist(s1 as usize, s2 as usize) as i64;
        if gain > best_gain {
            best_gain = gain;
            best = Some((c1, c2));
        }
    }

    // Moves that replace the edge (pred(c1), c1).
    let p1 = pred(c1);
    let d_p1_c1 = matrix.dist(p1 as usize, c1 as usize) as i64;
    for &c2 in nn.neighbors(c1 as usize) {
        let d_c1_c2 = matrix.dist(c1 as usize, c2 as usize) as i64;
        if d_c1_c2 >= d_p1_c1 {
            break;
        }
        let p2 = pred(c2);
        if p2 == c1 || c2 == p1 {
            continue;
        }
        let gain = d_p1_c1 + matrix.dist(p2 as usize, c2 as usize) as i64
            - d_c1_c2
            - matrix.dist(p1 as usize, p2 as usize) as i64;
        if gain > best_gain {
            best_gain = gain;
            best = Some((p1, p2));
        }
    }

    best
}

/// Reverse the tour segment strictly after `a` up to and including `b`
/// (equivalently: replace edges (a, succ a) and (b, succ b) with (a, b) and
/// (succ a, succ b)), keeping `pos` consistent. Always reverses the shorter
/// side so a move costs O(min(len, n - len)).
fn apply_2opt(tour: &mut Tour, pos: &mut [u32], a: u32, b: u32) {
    let n = tour.n();
    let pa = pos[a as usize] as usize;
    let pb = pos[b as usize] as usize;
    let (mut i, mut j);
    let inner = (pb + n - pa) % n; // segment length succ(a)..=b
    if inner <= n - inner {
        i = (pa + 1) % n;
        j = pb;
    } else {
        // Reverse the complementary segment succ(b)..=a instead.
        i = (pb + 1) % n;
        j = pa;
    }
    let order = tour.order_mut();
    let seg_len = (j + n - i) % n + 1;
    for _ in 0..seg_len / 2 {
        order.swap(i, j);
        pos[order[i] as usize] = i as u32;
        pos[order[j] as usize] = j as u32;
        i = (i + 1) % n;
        j = (j + n - 1) % n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::uniform_random;
    use crate::tour::nearest_neighbor_tour;
    use rand::SeedableRng;

    #[test]
    fn two_opt_never_worsens_and_reaches_local_optimum() {
        let inst = uniform_random("t", 60, 1000.0, 11);
        let nn = NearestNeighborLists::build(inst.matrix(), 15).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut tour = Tour::random(60, &mut rng);
        let before = tour.length(inst.matrix());
        let moves = two_opt(&mut tour, inst.matrix(), &nn);
        let after = tour.length(inst.matrix());
        assert!(tour.is_valid());
        assert!(after <= before);
        assert!(moves > 0, "random tour on 60 cities should be improvable");
        // Running again finds nothing (local optimality w.r.t. the lists).
        let more = two_opt(&mut tour, inst.matrix(), &nn);
        assert_eq!(more, 0);
        assert_eq!(tour.length(inst.matrix()), after);
    }

    #[test]
    fn two_opt_untangles_a_crossing() {
        // Square visited in crossing order 0,2,1,3 -> 2-opt must fix it.
        let inst = crate::generator::grid("sq", 2, 2, 10.0);
        let nn = NearestNeighborLists::build(inst.matrix(), 3).unwrap();
        let mut tour = Tour::new(vec![0, 3, 1, 2]).unwrap();
        let crossing = tour.length(inst.matrix());
        two_opt(&mut tour, inst.matrix(), &nn);
        let fixed = tour.length(inst.matrix());
        assert!(fixed < crossing, "expected {fixed} < {crossing}");
        assert_eq!(fixed, 40);
    }

    #[test]
    fn improves_nearest_neighbor_tours() {
        let inst = uniform_random("t", 120, 1000.0, 5);
        let nn = NearestNeighborLists::build(inst.matrix(), 20).unwrap();
        let mut tour = nearest_neighbor_tour(inst.matrix(), 0);
        let before = tour.length(inst.matrix());
        two_opt(&mut tour, inst.matrix(), &nn);
        assert!(tour.length(inst.matrix()) <= before);
        assert!(tour.is_valid());
    }
}
