//! Thread-local buffer pools for the interpreter hot path.
//!
//! Every lockstep operation needs a block-wide output buffer ([`Reg`]'s
//! backing `Vec`) and every structured branch needs an active-lane bitmap
//! ([`Mask`]'s backing `Vec<u64>`). Allocating those from the global
//! allocator per operation dominated interpreter time (millions of
//! short-lived `Vec`s per simulated kernel), so both recycle through
//! per-thread free lists instead: dropping a `Reg` or `Mask` returns its
//! buffer to the pool, and the next operation reuses it.
//!
//! Pools are thread-local, so parallel block execution
//! ([`crate::launch::launch_threads`]) needs no synchronisation and block
//! results stay independent of which thread ran them. Each pool is
//! capped, bounding worst-case retention to a few hundred kilobytes per
//! thread.
//!
//! [`Reg`]: crate::block::Reg
//! [`Mask`]: crate::mask::Mask

use std::cell::RefCell;

/// Maximum free buffers retained per pool (per thread).
const POOL_CAP: usize = 128;

macro_rules! pooled {
    ($name:ident, $t:ty) => {
        thread_local! {
            static $name: RefCell<Vec<Vec<$t>>> = const { RefCell::new(Vec::new()) };
        }

        impl PoolItem for $t {
            #[inline]
            fn take(len: usize) -> Vec<$t> {
                let recycled = $name.with(|p| p.borrow_mut().pop());
                match recycled {
                    Some(mut v) => {
                        v.clear();
                        v.resize(len, <$t>::default());
                        v
                    }
                    None => vec![<$t>::default(); len],
                }
            }

            #[inline]
            fn put(v: Vec<$t>) {
                if v.capacity() == 0 {
                    return;
                }
                $name.with(|p| {
                    let mut p = p.borrow_mut();
                    if p.len() < POOL_CAP {
                        p.push(v);
                    }
                });
            }
        }
    };
}

/// A value whose `Vec` buffers recycle through a thread-local free list.
///
/// `take` returns a buffer of exactly `len` elements, all
/// default-initialised; `put` donates a buffer back. Implemented for the
/// element types the simulator's registers and masks are built from.
pub trait PoolItem: Copy + Default + 'static {
    /// Fetch a zeroed buffer of `len` elements (reusing a pooled one).
    fn take(len: usize) -> Vec<Self>;
    /// Return a buffer to the pool.
    fn put(v: Vec<Self>);
}

pooled!(POOL_U32, u32);
pooled!(POOL_F32, f32);
pooled!(POOL_U64, u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers() {
        let mut v = u32::take(8);
        v[3] = 77;
        u32::put(v);
        let v2 = u32::take(8);
        assert_eq!(v2, vec![0; 8], "recycled buffer must be re-zeroed");
        u32::put(v2);
    }

    #[test]
    fn take_resizes_recycled_buffers() {
        let v = f32::take(4);
        f32::put(v);
        let big = f32::take(16);
        assert_eq!(big.len(), 16);
        let small = f32::take(2);
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn pool_reuses_capacity() {
        let v = u64::take(32);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        u64::put(v);
        let v2 = u64::take(32);
        // Not guaranteed by the API, but with a quiescent pool the same
        // allocation comes straight back.
        assert_eq!((v2.capacity(), v2.as_ptr()), (cap, ptr));
    }
}
