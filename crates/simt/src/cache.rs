//! A small set-associative LRU cache simulator.
//!
//! Used for the per-SM texture cache (both devices) and the Fermi L1.
//! Determinism matters more than cycle-accuracy here: the paper's texture
//! wins come from read-only spatial locality, which set-associative LRU
//! captures.

/// Set-associative LRU cache over byte addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]` = line tag; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (larger = more recent).
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity. Capacity is rounded down to a whole number
    /// of sets; a zero-capacity cache is legal and always misses.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1);
        let lines = (capacity_bytes / line_bytes) as usize;
        let sets = (lines / ways).max(if lines == 0 { 0 } else { 1 });
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Access `addr`; returns `true` on hit. Misses fill the line.
    pub fn access(&mut self, addr: u64) -> bool {
        if self.sets == 0 {
            self.misses += 1;
            return false;
        }
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        // Hit?
        for way in 0..self.ways {
            if self.tags[base + way] == line {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU way.
        let mut victim = 0;
        for way in 1..self.ways {
            if self.stamps[base + way] < self.stamps[base + victim] {
                victim = way;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        self.misses += 1;
        false
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clear contents and counters (between kernel launches).
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_hits_within_lines() {
        let mut c = Cache::new(1024, 32, 4);
        // 8 accesses per 32B line at 4B stride: 1 miss + 7 hits.
        for i in 0..8u64 {
            let hit = c.access(i * 4);
            assert_eq!(hit, i != 0);
        }
        assert_eq!(c.counters(), (7, 1));
    }

    #[test]
    fn capacity_eviction() {
        // 2 lines total, direct-ish: 1 set x 2 ways of 32B.
        let mut c = Cache::new(64, 32, 2);
        assert!(!c.access(0)); // line 0
        assert!(!c.access(32)); // line 1
        assert!(c.access(0)); // still resident
        assert!(!c.access(64)); // evicts LRU (line 1)
        assert!(c.access(0)); // line 0 stays (recently used)
        assert!(!c.access(32)); // was evicted
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut c = Cache::new(0, 32, 4);
        assert!(!c.access(0));
        assert!(!c.access(0));
        assert_eq!(c.counters(), (0, 2));
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = Cache::new(128, 32, 2);
        c.access(0);
        c.access(0);
        assert_eq!(c.counters(), (1, 1));
        c.reset();
        assert_eq!(c.counters(), (0, 0));
        assert!(!c.access(0));
    }

    #[test]
    fn lru_prefers_oldest_victim() {
        let mut c = Cache::new(64, 32, 2); // one set, two ways
        c.access(0); // A
        c.access(32); // B
        c.access(0); // touch A
        c.access(64); // C evicts B (LRU)
        assert!(c.access(0), "A must survive");
        assert!(c.access(64), "C resident");
    }
}
