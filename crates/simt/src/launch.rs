//! Kernel launches.
//!
//! A launch assigns blocks to SMs round-robin (`sm = block % sm_count`),
//! executes each block in lockstep through a [`BlockCtx`], and turns the
//! accumulated [`KernelStats`] into a [`KernelTime`].
//!
//! **Execution order and parallelism.** Blocks are executed *SM-group
//! major*: all of SM 0's blocks in block order, then SM 1's, and so on.
//! Groups are independent — each owns its per-SM caches and its slice of
//! the stats — so [`launch_threads`] can run them on a host thread pool.
//!
//! **COW shadows and the commit-order contract.** Parallel groups
//! execute against *copy-on-write shadows* of global memory: a fork
//! clones only the buffer handles (`Arc` bumps), a buffer's data is
//! duplicated the first time the shadow stores into it, and every
//! mutation is logged. After all groups join, the launch commits the
//! logs onto the real arena **in canonical group order** — ascending SM
//! id, blocks in block order within a group — with plain stores replayed
//! as overwrites and atomic adds re-applied as adds. That order is
//! exactly the serial execution order, so counters and global-memory
//! contents are **bit identical for every host thread count**, including
//! the serial path (which skips shadows entirely) — pinned by the
//! cross-crate `parallel_launch` tests. Allocations per launch scale
//! with the buffers each group actually dirties, not with the arena
//! size (tracked as `allocs/launch` in `BENCH_interp.json`).
//!
//! The model's one execution-model rule (true of real CUDA, too): a
//! block must not read global memory that another block of the *same
//! launch* writes non-atomically, and must not read back atomic
//! accumulators it updates in that launch. Every kernel in this
//! reproduction satisfies this (tours, tabus and lengths are per-ant;
//! deposits are atomic adds committed at launch end).
//!
//! Large grids can be *block-sampled*: a deterministic, evenly spaced
//! subset of blocks executes and the counters are scaled by the inverse
//! sampling fraction. This is the standard architecture-simulation
//! technique for workloads whose blocks are statistically homogeneous —
//! which every kernel in this reproduction is (all ants do the same work
//! in expectation). Functional output is then partial; sampled launches
//! are for timing studies, and the integration tests cross-validate
//! sampled against full counters on small instances.

use crate::block::BlockCtx;
use crate::cache::Cache;
use crate::device::DeviceSpec;
use crate::global::GlobalMem;
use crate::occupancy::{occupancy, Occupancy};
use crate::stats::KernelStats;
use crate::timing::{estimate, KernelTime};
use crate::SimtError;

/// Grid/block shape plus declared per-kernel resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Declared registers per thread (occupancy input).
    pub regs_per_thread: u32,
    /// Declared shared memory per block in bytes (occupancy input and the
    /// block's allocation budget).
    pub shared_bytes: u32,
}

impl LaunchConfig {
    /// A simple config with default resource estimates (16 regs, no shared).
    pub fn new(grid: u32, block: u32) -> Self {
        LaunchConfig { grid, block, regs_per_thread: 16, shared_bytes: 0 }
    }

    /// Builder: declared register usage.
    pub fn regs(mut self, r: u32) -> Self {
        self.regs_per_thread = r;
        self
    }

    /// Builder: declared shared-memory usage.
    pub fn shared(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }
}

/// Execution fidelity of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Execute every block (full functional + timing fidelity).
    Full,
    /// Execute at most this many evenly spaced blocks and extrapolate the
    /// counters (timing fidelity; partial functional output).
    SampleBlocks(u32),
}

/// A kernel: straight-line SPMD code over one block.
///
/// `Sync` because [`launch_threads`] shares the kernel across the host
/// threads executing its SM groups (kernels are plain parameter structs).
pub trait Kernel: Sync {
    /// Kernel name (reports and errors).
    fn name(&self) -> &'static str;
    /// Execute one block.
    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem);
}

/// Everything a launch produces.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    /// Extrapolated event counters.
    pub stats: KernelStats,
    /// Occupancy of the configuration.
    pub occupancy: Occupancy,
    /// Modeled execution time.
    pub time: KernelTime,
    /// Blocks actually executed.
    pub executed_blocks: u32,
    /// Counter extrapolation factor (`grid / executed`).
    pub scale: f64,
}

/// Validate a launch configuration against the device limits.
pub fn validate(dev: &DeviceSpec, cfg: &LaunchConfig) -> Result<(), SimtError> {
    if cfg.grid == 0 {
        return Err(SimtError::BadLaunch("grid must have at least one block".into()));
    }
    if cfg.block == 0 || cfg.block > dev.max_threads_per_block {
        return Err(SimtError::BadLaunch(format!(
            "block size {} outside 1..={} for {}",
            cfg.block, dev.max_threads_per_block, dev.name
        )));
    }
    if cfg.shared_bytes > dev.shared_mem_per_sm {
        return Err(SimtError::BadLaunch(format!(
            "shared memory {} B exceeds {} B per block on {}",
            cfg.shared_bytes, dev.shared_mem_per_sm, dev.name
        )));
    }
    if cfg.regs_per_thread * cfg.block > dev.registers_per_sm {
        return Err(SimtError::BadLaunch(format!(
            "register demand {}x{} exceeds the {}-register file on {}",
            cfg.regs_per_thread, cfg.block, dev.registers_per_sm, dev.name
        )));
    }
    Ok(())
}

/// Launch `kernel` on `dev` over `gm`, serially (one host thread).
pub fn launch(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    kernel: &dyn Kernel,
    gm: &mut GlobalMem,
    mode: SimMode,
) -> Result<LaunchResult, SimtError> {
    launch_threads(dev, cfg, kernel, gm, mode, 1)
}

/// Execute one SM group: all of one SM's blocks, in block order, against
/// its own caches, accumulating into a fresh per-group stats record.
fn run_group(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    kernel: &dyn Kernel,
    sm: usize,
    blocks: &[u32],
    gm: &mut GlobalMem,
) -> KernelStats {
    let mut stats = KernelStats::for_sms(dev.sm_count as usize);
    let mut tex = Cache::new(dev.tex_cache_bytes as u64, 32, 8);
    let mut l1 = Cache::new(if dev.has_l1 { dev.l1_bytes as u64 } else { 0 }, 128, 8);
    for &b in blocks {
        let mut ctx = BlockCtx::new(
            dev,
            b,
            cfg.grid,
            cfg.block,
            sm,
            cfg.shared_bytes,
            &mut stats,
            &mut tex,
            &mut l1,
        );
        kernel.run_block(&mut ctx, gm);
    }
    stats
}

/// Launch `kernel` on `dev` over `gm`, executing SM groups across up to
/// `threads` host threads. Results — counters *and* global memory — are
/// bit-identical to [`launch`] for every `threads` value (see the module
/// docs for how).
pub fn launch_threads(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    kernel: &dyn Kernel,
    gm: &mut GlobalMem,
    mode: SimMode,
    threads: usize,
) -> Result<LaunchResult, SimtError> {
    // Fault-injection hook (the failure-path twin of the observability
    // hook at the bottom of this function): a fault armed on this thread
    // is consumed by its next launch, before any block executes, so a
    // failed launch leaves memory and counters untouched.
    if let Some(fault) = aco_faults::launch::take() {
        match fault {
            aco_faults::launch::LaunchFault::Panic(msg) => panic!("{msg}"),
            aco_faults::launch::LaunchFault::Transient(msg) => {
                return Err(SimtError::DeviceFault(msg))
            }
        }
    }
    validate(dev, cfg)?;

    let occ = occupancy(dev, cfg.block, cfg.regs_per_thread, cfg.shared_bytes, cfg.grid);

    // Which blocks execute?
    let blocks: Vec<u32> = match mode {
        SimMode::Full => (0..cfg.grid).collect(),
        SimMode::SampleBlocks(k) => {
            let k = k.clamp(1, cfg.grid);
            // Evenly spaced, deterministic sample covering the grid.
            (0..k).map(|i| (i as u64 * cfg.grid as u64 / k as u64) as u32).collect()
        }
    };
    let executed = blocks.len() as u32;
    let scale = cfg.grid as f64 / executed as f64;

    // Group blocks by SM, ascending SM id — the canonical execution and
    // commit order.
    let mut by_sm: Vec<Vec<u32>> = vec![Vec::new(); dev.sm_count as usize];
    for &b in &blocks {
        by_sm[(b % dev.sm_count) as usize].push(b);
    }
    let groups: Vec<(usize, Vec<u32>)> =
        by_sm.into_iter().enumerate().filter(|(_, blks)| !blks.is_empty()).collect();

    let mut stats = KernelStats::for_sms(dev.sm_count as usize);
    if threads <= 1 || groups.len() <= 1 {
        // Serial: run directly against the real arena, group-major.
        for (sm, blks) in &groups {
            let s = run_group(dev, cfg, kernel, *sm, blks, gm);
            stats.merge(&s);
        }
    } else {
        // Parallel: each group runs on a logging shadow of the arena;
        // stats merge and logs commit in SM order afterwards.
        let workers = threads.min(groups.len());
        let chunk = groups.len().div_ceil(workers);
        let base: &GlobalMem = gm;
        let mut results: Vec<Vec<(KernelStats, Vec<crate::global::LogOp>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .chunks(chunk)
                    .map(|gs| {
                        scope.spawn(move || {
                            gs.iter()
                                .map(|(sm, blks)| {
                                    let mut shadow = base.fork_shadow();
                                    let s = run_group(dev, cfg, kernel, *sm, blks, &mut shadow);
                                    (s, shadow.take_log())
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("launch worker panicked")).collect()
            });
        for (s, log) in results.iter_mut().flatten() {
            stats.merge(s);
            gm.replay(log);
        }
    }

    if scale != 1.0 {
        stats.scale(scale);
        // Sampled blocks land on a handful of simulated SMs; after
        // extrapolation the per-SM maximum would be distorted by sampling
        // collisions. Blocks of one launch are homogeneous (the sampling
        // premise), so redistribute the scaled issue cycles evenly over
        // the SMs the full grid would occupy.
        let busy = occ.busy_sms.max(1) as usize;
        let total: f64 = stats.issue_cycles_per_sm.iter().sum();
        stats.issue_cycles_per_sm.fill(0.0);
        for c in stats.issue_cycles_per_sm.iter_mut().take(busy) {
            *c = total / busy as f64;
        }
    }
    let time = estimate(dev, &occ, &stats);
    // Observability hook: report this launch's family and modeled time
    // to whatever sink the calling thread has installed (a no-op
    // thread-local read otherwise — see `aco_obs::kernel`). Runs after
    // the parallel groups joined, on the launching thread, so it is
    // deterministic and free of synchronisation.
    aco_obs::kernel::record(kernel.name(), time.total_ms);
    Ok(LaunchResult { stats, occupancy: occ, time, executed_blocks: executed, scale })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::DevicePtr;

    /// y[i] = a * x[i] + y[i] over `n` elements.
    struct Saxpy {
        a: f32,
        x: DevicePtr<f32>,
        y: DevicePtr<f32>,
        n: u32,
    }

    impl Kernel for Saxpy {
        fn name(&self) -> &'static str {
            "saxpy"
        }
        fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
            let i = ctx.global_thread_idx();
            let n = ctx.splat_u32(self.n);
            let in_range = ctx.ult(&i, &n);
            ctx.if_then(gm, &in_range.clone(), |ctx, gm| {
                let x = ctx.ld_global_f32(gm, self.x, &i);
                let y = ctx.ld_global_f32(gm, self.y, &i);
                let a = ctx.splat_f32(self.a);
                let r = ctx.fma(&a, &x, &y);
                ctx.st_global_f32(gm, self.y, &i, &r);
            });
        }
    }

    fn setup(n: usize) -> (GlobalMem, DevicePtr<f32>, DevicePtr<f32>) {
        let mut gm = GlobalMem::new();
        let x = gm.alloc_f32(n);
        let y = gm.alloc_f32(n);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        gm.write_f32(x, &xs);
        gm.write_f32(y, &ys);
        (gm, x, y)
    }

    #[test]
    fn saxpy_computes_and_counts() {
        let dev = DeviceSpec::tesla_c1060();
        let n = 1000;
        let (mut gm, x, y) = setup(n);
        let k = Saxpy { a: 3.0, x, y, n: n as u32 };
        let cfg = LaunchConfig::new((n as u32).div_ceil(128), 128);
        let r = launch(&dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        for i in 0..n {
            assert_eq!(gm.f32(y)[i], 3.0 * i as f32 + 2.0 * i as f32);
        }
        assert_eq!(r.executed_blocks, 8);
        assert_eq!(r.scale, 1.0);
        assert!(r.stats.ld_transactions > 0.0);
        assert!(r.stats.dram_bytes >= (2 * 4 * n) as f64); // >= useful bytes
        assert!(r.time.total_ms > 0.0);
    }

    #[test]
    fn coalesced_saxpy_moves_close_to_useful_bytes() {
        let dev = DeviceSpec::tesla_c1060();
        let n = 4096;
        let (mut gm, x, y) = setup(n);
        let k = Saxpy { a: 1.0, x, y, n: n as u32 };
        let cfg = LaunchConfig::new((n as u32).div_ceil(256), 256);
        let r = launch(&dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        let useful = (3 * 4 * n) as f64; // 2 loads + 1 store per element
        assert!(
            r.stats.dram_bytes <= useful * 1.1,
            "coalesced kernel should not amplify traffic: {} vs {}",
            r.stats.dram_bytes,
            useful
        );
    }

    #[test]
    fn sampling_extrapolates_counters() {
        let dev = DeviceSpec::tesla_c1060();
        let n = 128 * 64; // 64 blocks of 128
        let (mut gm, x, y) = setup(n);
        let k = Saxpy { a: 2.0, x, y, n: n as u32 };
        let cfg = LaunchConfig::new(64, 128);

        let full = launch(&dev, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        let (mut gm2, x2, y2) = setup(n);
        let k2 = Saxpy { a: 2.0, x: x2, y: y2, n: n as u32 };
        let sampled = launch(&dev, &cfg, &k2, &mut gm2, SimMode::SampleBlocks(8)).unwrap();

        assert_eq!(sampled.executed_blocks, 8);
        assert_eq!(sampled.scale, 8.0);
        let rel = (sampled.stats.dram_bytes - full.stats.dram_bytes).abs() / full.stats.dram_bytes;
        assert!(rel < 0.05, "sampled dram bytes off by {rel}");
        let relt = (sampled.time.total_ms - full.time.total_ms).abs() / full.time.total_ms;
        assert!(relt < 0.10, "sampled time off by {relt}");
    }

    #[test]
    fn fermi_l1_reduces_repeat_traffic() {
        // Two saxpy launches over the same small array: on Fermi the
        // second pass inside one launch isn't modeled, but within a launch
        // repeated loads of the same lines (grid bigger than data) hit L1.
        struct RepeatLoad {
            x: DevicePtr<f32>,
        }
        impl Kernel for RepeatLoad {
            fn name(&self) -> &'static str {
                "repeat"
            }
            fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
                let t = ctx.thread_idx();
                // Every block reads the same 128 words.
                for _ in 0..4 {
                    let _ = ctx.ld_global_f32(gm, self.x, &t);
                }
            }
        }
        let mut gm = GlobalMem::new();
        let x = gm.alloc_f32(128);
        let k = RepeatLoad { x };
        let cfg = LaunchConfig::new(14, 128); // one block per SM
        let fermi = DeviceSpec::tesla_m2050();
        let r = launch(&fermi, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        assert!(r.stats.l1_hits > 0.0);
        // 4 loads x 4 lines x 14 blocks = 224 line accesses, 4 lines
        // missed per SM -> 56 misses.
        assert_eq!(r.stats.l1_misses, 56.0);
        let c1060 = DeviceSpec::tesla_c1060();
        let r2 = launch(&c1060, &cfg, &k, &mut gm, SimMode::Full).unwrap();
        assert!(r2.stats.dram_bytes > r.stats.dram_bytes, "GT200 has no L1");
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let dev = DeviceSpec::tesla_c1060();
        let n = 4096;
        let cfg = LaunchConfig::new((n as u32).div_ceil(128), 128);
        let (mut gm_s, xs, ys) = setup(n);
        let ks = Saxpy { a: 2.5, x: xs, y: ys, n: n as u32 };
        let rs = launch(&dev, &cfg, &ks, &mut gm_s, SimMode::Full).unwrap();
        for threads in [2, 3, 8, 64] {
            let (mut gm_p, xp, yp) = setup(n);
            let kp = Saxpy { a: 2.5, x: xp, y: yp, n: n as u32 };
            let rp = launch_threads(&dev, &cfg, &kp, &mut gm_p, SimMode::Full, threads).unwrap();
            assert_eq!(rs.stats, rp.stats, "stats must not depend on host threads");
            assert_eq!(gm_s.f32(ys), gm_p.f32(yp), "memory must not depend on host threads");
            assert_eq!(rs.time.total_ms.to_bits(), rp.time.total_ms.to_bits());
        }
    }

    /// All blocks atomically accumulate into one cell: the commit order
    /// of the adds (and therefore the exact f32 sum) must match serial
    /// execution for every thread count.
    struct AtomicAccum {
        acc: DevicePtr<f32>,
    }
    impl Kernel for AtomicAccum {
        fn name(&self) -> &'static str {
            "accum"
        }
        fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
            let zero = ctx.splat_u32(0);
            // A block-dependent, non-dyadic value so float addition order
            // is observable in the result bits.
            let v = ctx.splat_f32(0.1 + ctx.block_idx as f32 * 0.001);
            ctx.atomic_add_f32(gm, self.acc, &zero, &v);
        }
    }

    #[test]
    fn atomic_commit_order_matches_serial_exactly() {
        let dev = DeviceSpec::tesla_m2050();
        let cfg = LaunchConfig::new(97, 32);
        let mut gm_s = GlobalMem::new();
        let acc_s = gm_s.alloc_f32(1);
        launch(&dev, &cfg, &AtomicAccum { acc: acc_s }, &mut gm_s, SimMode::Full).unwrap();
        for threads in [2, 5, 16] {
            let mut gm_p = GlobalMem::new();
            let acc_p = gm_p.alloc_f32(1);
            launch_threads(
                &dev,
                &cfg,
                &AtomicAccum { acc: acc_p },
                &mut gm_p,
                SimMode::Full,
                threads,
            )
            .unwrap();
            assert_eq!(
                gm_s.f32(acc_s)[0].to_bits(),
                gm_p.f32(acc_p)[0].to_bits(),
                "atomic sum bits must match serial at {threads} threads"
            );
        }
    }

    #[test]
    fn launch_validation() {
        let dev = DeviceSpec::tesla_c1060();
        let mut gm = GlobalMem::new();
        let x = gm.alloc_f32(16);
        let y = gm.alloc_f32(16);
        let k = Saxpy { a: 1.0, x, y, n: 16 };
        assert!(launch(&dev, &LaunchConfig::new(0, 128), &k, &mut gm, SimMode::Full).is_err());
        assert!(launch(&dev, &LaunchConfig::new(1, 1024), &k, &mut gm, SimMode::Full).is_err());
        assert!(launch(
            &dev,
            &LaunchConfig::new(1, 128).shared(64 * 1024),
            &k,
            &mut gm,
            SimMode::Full
        )
        .is_err());
    }
}
