//! Global-memory coalescing models.
//!
//! The paper's strategies live or die by coalescing, so the simulator
//! reproduces the two protocols of the devices it models:
//!
//! * **CC 1.2/1.3 (Tesla C1060)** — per *half-warp* (16 threads): the
//!   hardware finds the 128-byte segments touched, then shrinks each
//!   transaction to 64 or 32 bytes when all touched words of the segment
//!   fall in one aligned half/quarter (CUDA C Programming Guide, G.3.2.2).
//! * **CC 2.0 (Tesla M2050)** — per warp: one 128-byte L1 cache line per
//!   distinct line touched; misses become 128-byte DRAM transactions.
//!
//! Functions here are pure so they can be property-tested in isolation.

/// One coalesced transaction: base address and size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    pub base: u64,
    pub bytes: u32,
}

/// Coalesce one *half-warp*'s 4-byte accesses under the CC 1.2/1.3 rules.
///
/// `addrs` are the byte addresses issued by the active lanes of the
/// half-warp (duplicates allowed). Returns the memory transactions issued.
pub fn coalesce_cc13_half_warp(addrs: &[u64]) -> Vec<Transaction> {
    let mut segs = Vec::new();
    let mut out = Vec::new();
    coalesce_cc13_half_warp_into(addrs, &mut segs, &mut out);
    out
}

/// [`coalesce_cc13_half_warp`] writing into caller-provided buffers
/// (`segs` is scratch, `out` receives the transactions) so the per-access
/// hot path allocates nothing.
pub fn coalesce_cc13_half_warp_into(
    addrs: &[u64],
    segs: &mut Vec<u64>,
    out: &mut Vec<Transaction>,
) {
    out.clear();
    if addrs.is_empty() {
        return;
    }
    // Distinct 128-byte segments, in address order for determinism.
    segs.clear();
    segs.extend(addrs.iter().map(|a| a & !127));
    segs.sort_unstable();
    segs.dedup();

    out.extend(segs.iter().map(|&seg| {
        let lo = addrs
            .iter()
            .filter(|&&a| a & !127 == seg)
            .map(|&a| a - seg)
            .min()
            .expect("segment has at least one access");
        let hi = addrs
            .iter()
            .filter(|&&a| a & !127 == seg)
            .map(|&a| a - seg + 3)
            .max()
            .expect("segment has at least one access");
        // Shrink to an aligned 32/64-byte window when possible.
        if lo / 32 == hi / 32 {
            Transaction { base: seg + (lo / 32) * 32, bytes: 32 }
        } else if lo / 64 == hi / 64 {
            Transaction { base: seg + (lo / 64) * 64, bytes: 64 }
        } else {
            Transaction { base: seg, bytes: 128 }
        }
    }));
}

/// Distinct 128-byte lines touched by a warp (CC 2.0 L1 granularity).
pub fn lines_cc20(addrs: &[u64]) -> Vec<u64> {
    let mut lines = Vec::new();
    lines_cc20_into(addrs, &mut lines);
    lines
}

/// [`lines_cc20`] writing into a caller-provided buffer.
pub fn lines_cc20_into(addrs: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.extend(addrs.iter().map(|a| a & !127));
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_addrs(base: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| base + 4 * i).collect()
    }

    #[test]
    fn perfectly_coalesced_half_warp_is_one_64b_transaction() {
        // 16 lanes x 4B = 64 contiguous bytes, 64-aligned.
        let t = coalesce_cc13_half_warp(&seq_addrs(0, 16));
        assert_eq!(t, vec![Transaction { base: 0, bytes: 64 }]);
    }

    #[test]
    fn small_footprint_shrinks_to_32b() {
        // 8 lanes x 4B within one 32B quarter.
        let t = coalesce_cc13_half_warp(&seq_addrs(128, 8));
        assert_eq!(t, vec![Transaction { base: 128, bytes: 32 }]);
    }

    #[test]
    fn unaligned_contiguous_spans_full_segment_or_splits() {
        // 16 lanes starting at byte 32: bytes 32..96 fit in segment 0's
        // 64-byte window only if aligned; 32..95 spans quarters 1..2 ->
        // not one 32B, not one aligned 64B (32/64=0, 95/64=1) -> 128B.
        let t = coalesce_cc13_half_warp(&seq_addrs(32, 16));
        assert_eq!(t, vec![Transaction { base: 0, bytes: 128 }]);
    }

    #[test]
    fn strided_access_explodes_into_many_transactions() {
        // Stride 128B: every lane its own segment -> 16 transactions.
        let addrs: Vec<u64> = (0..16u64).map(|i| i * 128).collect();
        let t = coalesce_cc13_half_warp(&addrs);
        assert_eq!(t.len(), 16);
        assert!(t.iter().all(|x| x.bytes == 32));
    }

    #[test]
    fn duplicate_addresses_coalesce() {
        let addrs = vec![64u64; 16];
        let t = coalesce_cc13_half_warp(&addrs);
        assert_eq!(t, vec![Transaction { base: 64, bytes: 32 }]);
    }

    #[test]
    fn empty_half_warp_issues_nothing() {
        assert!(coalesce_cc13_half_warp(&[]).is_empty());
    }

    #[test]
    fn fermi_lines_dedupe() {
        // A full warp of contiguous 4B accesses = 1 line.
        assert_eq!(lines_cc20(&seq_addrs(0, 32)), vec![0]);
        // Crossing a line boundary = 2 lines.
        assert_eq!(lines_cc20(&seq_addrs(64, 32)), vec![0, 128]);
        // Stride-128 = one line per lane.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        assert_eq!(lines_cc20(&addrs).len(), 32);
    }

    #[test]
    fn transactions_cover_all_accessed_bytes() {
        // Random-ish pattern: every accessed word must fall inside some
        // returned transaction window.
        let addrs = vec![4u64, 100, 260, 264, 900, 904, 908, 1020];
        let ts = coalesce_cc13_half_warp(&addrs);
        for &a in &addrs {
            assert!(
                ts.iter().any(|t| a >= t.base && a + 4 <= t.base + t.bytes as u64),
                "address {a} not covered by {ts:?}"
            );
        }
    }
}
