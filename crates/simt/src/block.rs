//! Lockstep block execution.
//!
//! Kernels are written in a block-wide SPMD style: every per-thread value
//! is a register vector ([`Reg`], one slot per thread of the block) and
//! every operation goes through [`BlockCtx`], which
//!
//! 1. applies the operation functionally to all *active* lanes, and
//! 2. charges issue cycles for every **warp** containing at least one
//!    active lane — so divergent control flow costs exactly what the SIMT
//!    hardware pays (both branch sides serialized for mixed warps).
//!
//! Global accesses stream lane addresses through the coalescing model,
//! shared accesses through the bank-conflict model, and atomics through
//! the serialization model (with CAS-loop emulation for float atomics on
//! CC 1.x, as the paper discusses for the Tesla C1060).

use crate::cache::Cache;
use crate::coalesce::{coalesce_cc13_half_warp_into, lines_cc20_into, Transaction};
use crate::device::DeviceSpec;
use crate::global::{DevicePtr, GlobalMem};
use crate::mask::{Mask, WARP};
use crate::pool::PoolItem;
use crate::shared::{ShPtr, SharedMem};
use crate::stats::KernelStats;

/// A per-thread register vector (one value per lane of the block).
///
/// The backing buffer recycles through a thread-local free list (see
/// [`crate::pool`]): every lockstep operation produces a `Reg`, so the
/// hot path never touches the global allocator once the pool is warm.
#[derive(Debug)]
pub struct Reg<T: PoolItem>(pub(crate) Vec<T>);

impl<T: PoolItem> Clone for Reg<T> {
    fn clone(&self) -> Self {
        let mut v = T::take(self.0.len());
        v.copy_from_slice(&self.0);
        Reg(v)
    }
}

impl<T: PoolItem> Drop for Reg<T> {
    fn drop(&mut self) {
        T::put(std::mem::take(&mut self.0));
    }
}

impl<T: PoolItem> Reg<T> {
    /// Value held by `lane`.
    #[inline]
    pub fn lane(&self, lane: usize) -> T {
        self.0[lane]
    }

    /// All lanes (host-side inspection; not charged).
    pub fn as_slice(&self) -> &[T] {
        &self.0
    }
}

/// Instruction classes with distinct issue costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Integer/logic ALU op (add, shift, mask…).
    IAlu,
    /// f32 add/sub/compare-class op.
    FAlu,
    /// f32 multiply / FMA.
    FMul,
    /// Transcendental on the SFU (`__powf`, `__expf`, rsqrt, rcp…).
    Sfu,
    /// Integer division or modulo (expanded to many instructions).
    IDivMod,
    /// Register move / select / conversion.
    Mov,
    /// Branch / loop bookkeeping.
    Branch,
    /// Memory instruction issue (address math + request).
    MemIssue,
    /// Shared-memory access instruction.
    Shared,
    /// Barrier.
    Bar,
}

/// Issue cost of `op` in shader cycles per warp on `dev`.
pub fn op_cycles(dev: &DeviceSpec, op: Op) -> u32 {
    let base = dev.issue_cycles_per_warp;
    match op {
        Op::IAlu | Op::FAlu | Op::FMul | Op::Mov | Op::Branch | Op::Bar => base,
        Op::MemIssue | Op::Shared => base,
        Op::Sfu => dev.sfu_cycles_per_warp,
        // Integer div/mod lowers to a long instruction sequence on both
        // GT200 and Fermi (no hardware divider): ~16 ALU ops.
        Op::IDivMod => 16 * base,
    }
}

/// Execution context of one thread block.
pub struct BlockCtx<'a> {
    pub(crate) device: &'a DeviceSpec,
    /// Block index within the grid.
    pub block_idx: u32,
    /// Grid size in blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
    pub(crate) sm_id: usize,
    mask_stack: Vec<Mask>,
    shared: SharedMem,
    pub(crate) stats: &'a mut KernelStats,
    tex: &'a mut Cache,
    l1: &'a mut Cache,
    declared_shared_bytes: u32,
    // Reusable scratch buffers for the memory models (allocated once per
    // block, reused by every access — the per-op `collect()`s they
    // replace dominated interpreter time).
    scratch_words: Vec<(usize, u32)>,
    scratch_addrs: Vec<u64>,
    scratch_lines: Vec<u64>,
    scratch_txns: Vec<Transaction>,
    scratch_counts: Vec<(u64, u32)>,
}

impl<'a> BlockCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        device: &'a DeviceSpec,
        block_idx: u32,
        grid_dim: u32,
        block_dim: u32,
        sm_id: usize,
        shared_bytes: u32,
        stats: &'a mut KernelStats,
        tex: &'a mut Cache,
        l1: &'a mut Cache,
    ) -> Self {
        BlockCtx {
            device,
            block_idx,
            grid_dim,
            block_dim,
            sm_id,
            mask_stack: vec![Mask::all(block_dim as usize)],
            shared: SharedMem::new(shared_bytes),
            stats,
            tex,
            l1,
            declared_shared_bytes: shared_bytes,
            scratch_words: Vec::new(),
            scratch_addrs: Vec::new(),
            scratch_lines: Vec::new(),
            scratch_txns: Vec::new(),
            scratch_counts: Vec::new(),
        }
    }

    /// The device this block runs on.
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// Current active mask.
    #[inline]
    pub fn active(&self) -> &Mask {
        self.mask_stack.last().expect("mask stack never empty")
    }

    /// Charge `count` instructions of class `op` to every active warp.
    pub fn charge(&mut self, op: Op, count: u64) {
        let warps = self.active().active_warps() as f64;
        if warps == 0.0 {
            return;
        }
        let cycles = op_cycles(self.device, op) as f64;
        self.stats.issue_cycles_per_sm[self.sm_id] += warps * cycles * count as f64;
        self.stats.warp_instructions += warps * count as f64;
    }

    // --- register creation ------------------------------------------------

    /// `threadIdx.x` of every lane.
    pub fn thread_idx(&mut self) -> Reg<u32> {
        self.charge(Op::Mov, 1);
        let mut out = u32::take(self.block_dim as usize);
        for (t, o) in out.iter_mut().enumerate() {
            *o = t as u32;
        }
        Reg(out)
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn global_thread_idx(&mut self) -> Reg<u32> {
        self.charge(Op::IAlu, 1);
        let base = self.block_idx * self.block_dim;
        let mut out = u32::take(self.block_dim as usize);
        for (t, o) in out.iter_mut().enumerate() {
            *o = base + t as u32;
        }
        Reg(out)
    }

    /// Broadcast an f32 constant.
    pub fn splat_f32(&mut self, v: f32) -> Reg<f32> {
        self.charge(Op::Mov, 1);
        let mut out = f32::take(self.block_dim as usize);
        out.fill(v);
        Reg(out)
    }

    /// Broadcast a u32 constant.
    pub fn splat_u32(&mut self, v: u32) -> Reg<u32> {
        self.charge(Op::Mov, 1);
        let mut out = u32::take(self.block_dim as usize);
        out.fill(v);
        Reg(out)
    }

    /// Initialise a register from a lane function (costed as one move; use
    /// for thread-dependent seeds and similar setup, not bulk compute).
    /// Only *active* lanes are evaluated — inactive lanes read back 0.
    pub fn reg_from_fn_u32(&mut self, mut f: impl FnMut(usize) -> u32) -> Reg<u32> {
        self.charge(Op::Mov, 1);
        let mut out = u32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = f(lane);
        }
        Reg(out)
    }

    // --- generic lane-wise helpers ----------------------------------------

    fn bin<T: PoolItem>(
        &mut self,
        op: Op,
        a: &Reg<T>,
        b: &Reg<T>,
        f: impl Fn(T, T) -> T,
    ) -> Reg<T> {
        self.charge(op, 1);
        let mut out = T::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = f(a.0[lane], b.0[lane]);
        }
        Reg(out)
    }

    fn un<T: PoolItem>(&mut self, op: Op, a: &Reg<T>, f: impl Fn(T) -> T) -> Reg<T> {
        self.charge(op, 1);
        let mut out = T::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = f(a.0[lane]);
        }
        Reg(out)
    }

    // --- f32 arithmetic -----------------------------------------------------

    pub fn fadd(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.bin(Op::FAlu, a, b, |x, y| x + y)
    }
    pub fn fsub(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.bin(Op::FAlu, a, b, |x, y| x - y)
    }
    pub fn fmul(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.bin(Op::FMul, a, b, |x, y| x * y)
    }
    /// `a * b + c` as a single FMA.
    pub fn fma(&mut self, a: &Reg<f32>, b: &Reg<f32>, c: &Reg<f32>) -> Reg<f32> {
        self.charge(Op::FMul, 1);
        let mut out = f32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = a.0[lane].mul_add(b.0[lane], c.0[lane]);
        }
        Reg(out)
    }
    /// Division lowers to SFU reciprocal + multiply.
    pub fn fdiv(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.charge(Op::Sfu, 1);
        self.bin(Op::FMul, a, b, |x, y| x / y)
    }
    pub fn fmin(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.bin(Op::FAlu, a, b, f32::min)
    }
    pub fn fmax(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.bin(Op::FAlu, a, b, f32::max)
    }
    /// `__powf` — two SFU passes (log + exp) plus a multiply.
    pub fn fpow(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.charge(Op::Sfu, 2);
        self.bin(Op::FMul, a, b, f32::powf)
    }
    /// Absolute value.
    pub fn fabs(&mut self, a: &Reg<f32>) -> Reg<f32> {
        self.un(Op::FAlu, a, f32::abs)
    }
    /// SFU reciprocal (`__frcp`).
    pub fn frecip(&mut self, a: &Reg<f32>) -> Reg<f32> {
        self.un(Op::Sfu, a, |x| 1.0 / x)
    }
    /// SFU square root.
    pub fn fsqrt(&mut self, a: &Reg<f32>) -> Reg<f32> {
        self.un(Op::Sfu, a, f32::sqrt)
    }

    // --- u32 arithmetic -----------------------------------------------------

    pub fn iadd(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, u32::wrapping_add)
    }
    pub fn isub(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, u32::wrapping_sub)
    }
    pub fn imul(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, u32::wrapping_mul)
    }
    pub fn imod(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IDivMod, a, b, |x, y| x % y)
    }
    pub fn idiv(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IDivMod, a, b, |x, y| x / y)
    }
    pub fn iand(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, |x, y| x & y)
    }
    pub fn ior(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, |x, y| x | y)
    }
    pub fn ishl(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, |x, y| x.wrapping_shl(y))
    }
    pub fn ishr(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, |x, y| x.wrapping_shr(y))
    }
    pub fn imin(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, u32::min)
    }
    pub fn imax(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.bin(Op::IAlu, a, b, u32::max)
    }

    /// u32 → f32 conversion.
    pub fn u2f(&mut self, a: &Reg<u32>) -> Reg<f32> {
        self.charge(Op::Mov, 1);
        let mut out = f32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = a.0[lane] as f32;
        }
        Reg(out)
    }

    /// f32 → u32 truncating conversion.
    pub fn f2u(&mut self, a: &Reg<f32>) -> Reg<u32> {
        self.charge(Op::Mov, 1);
        let mut out = u32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = a.0[lane].max(0.0) as u32;
        }
        Reg(out)
    }

    /// Mask selecting a single lane of the block (e.g. "thread 0 writes
    /// the result").
    pub fn lane_mask(&self, lane: u32) -> Mask {
        Mask::from_fn(self.block_dim as usize, |l| l == lane as usize)
    }

    // --- comparisons & selection ---------------------------------------------

    fn cmp<T: PoolItem>(&mut self, a: &Reg<T>, b: &Reg<T>, f: impl Fn(T, T) -> bool) -> Mask {
        self.charge(Op::FAlu, 1);
        let active = self.mask_stack.last().expect("mask stack never empty");
        Mask::from_fn(self.block_dim as usize, |lane| active.get(lane) && f(a.0[lane], b.0[lane]))
    }

    pub fn flt(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Mask {
        self.cmp(a, b, |x, y| x < y)
    }
    pub fn fle(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Mask {
        self.cmp(a, b, |x, y| x <= y)
    }
    pub fn fge(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Mask {
        self.cmp(a, b, |x, y| x >= y)
    }
    pub fn fgt(&mut self, a: &Reg<f32>, b: &Reg<f32>) -> Mask {
        self.cmp(a, b, |x, y| x > y)
    }
    pub fn ult(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Mask {
        self.cmp(a, b, |x, y| x < y)
    }
    pub fn ule(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Mask {
        self.cmp(a, b, |x, y| x <= y)
    }
    pub fn ueq(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Mask {
        self.cmp(a, b, |x, y| x == y)
    }
    pub fn une(&mut self, a: &Reg<u32>, b: &Reg<u32>) -> Mask {
        self.cmp(a, b, |x, y| x != y)
    }

    fn sel<T: PoolItem>(&mut self, m: &Mask, a: &Reg<T>, b: &Reg<T>) -> Reg<T> {
        self.charge(Op::Mov, 1);
        let mut out = T::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = if m.get(lane) { a.0[lane] } else { b.0[lane] };
        }
        Reg(out)
    }

    /// Lane-wise select: `m ? a : b`.
    pub fn select_f32(&mut self, m: &Mask, a: &Reg<f32>, b: &Reg<f32>) -> Reg<f32> {
        self.sel(m, a, b)
    }

    /// Lane-wise select: `m ? a : b`.
    pub fn select_u32(&mut self, m: &Mask, a: &Reg<u32>, b: &Reg<u32>) -> Reg<u32> {
        self.sel(m, a, b)
    }

    /// Predicated assignment: active lanes copy `src` into `dst`, inactive
    /// lanes keep their value (how real registers behave under masking).
    pub fn assign_f32(&mut self, dst: &mut Reg<f32>, src: &Reg<f32>) {
        self.charge(Op::Mov, 1);
        for lane in self.active().lanes() {
            dst.0[lane] = src.0[lane];
        }
    }

    /// Predicated assignment for u32 registers.
    pub fn assign_u32(&mut self, dst: &mut Reg<u32>, src: &Reg<u32>) {
        self.charge(Op::Mov, 1);
        for lane in self.active().lanes() {
            dst.0[lane] = src.0[lane];
        }
    }

    // --- control flow ----------------------------------------------------------

    fn count_divergence(&mut self, cond: &Mask) {
        let active = self.active();
        let mut divergent = 0.0;
        for w in 0..active.warp_count() {
            let aw = active.warp_bits(w);
            if aw == 0 {
                continue;
            }
            let cw = cond.warp_bits(w) & aw;
            if cw != 0 && cw != aw {
                divergent += 1.0;
            }
        }
        self.stats.divergent_branches += divergent;
    }

    /// Structured if/else: runs `then_f` with the mask narrowed to
    /// `active & cond`, then `else_f` with `active & !cond`. Warps with
    /// lanes on both sides are counted divergent and pay for both bodies.
    pub fn if_else(
        &mut self,
        gm: &mut GlobalMem,
        cond: &Mask,
        then_f: impl FnOnce(&mut Self, &mut GlobalMem),
        else_f: impl FnOnce(&mut Self, &mut GlobalMem),
    ) {
        self.charge(Op::Branch, 1);
        self.count_divergence(cond);
        let then_mask = self.active().and(cond);
        let else_mask = self.active().and_not(cond);
        if then_mask.any() {
            self.mask_stack.push(then_mask);
            then_f(self, gm);
            self.mask_stack.pop();
        }
        if else_mask.any() {
            self.mask_stack.push(else_mask);
            else_f(self, gm);
            self.mask_stack.pop();
        }
    }

    /// `if_else` without an else branch.
    pub fn if_then(
        &mut self,
        gm: &mut GlobalMem,
        cond: &Mask,
        then_f: impl FnOnce(&mut Self, &mut GlobalMem),
    ) {
        self.if_else(gm, cond, then_f, |_, _| {});
    }

    /// Charge and account a branch on `cond` without executing anything.
    /// Pair with [`BlockCtx::with_mask`] when the two sides of a branch
    /// must share mutable per-lane state (which `if_else`'s simultaneous
    /// closures cannot express).
    pub fn branch(&mut self, cond: &Mask) {
        self.charge(Op::Branch, 1);
        self.count_divergence(cond);
    }

    /// Run `f` with the active mask narrowed to `active & cond`, charging
    /// nothing for the region itself (use [`BlockCtx::branch`] for the
    /// branch cost). Skipped entirely when no lane qualifies.
    pub fn with_mask(
        &mut self,
        gm: &mut GlobalMem,
        cond: &Mask,
        f: impl FnOnce(&mut Self, &mut GlobalMem),
    ) {
        let m = self.active().and(cond);
        if m.any() {
            self.mask_stack.push(m);
            f(self, gm);
            self.mask_stack.pop();
        }
    }

    /// Data-dependent loop. `body` executes under the mask of lanes still
    /// looping and returns the mask of lanes that want another trip; the
    /// loop ends when none do. A warp keeps paying as long as *any* of its
    /// lanes iterates — the intra-warp serialization the paper's
    /// roulette-wheel scan suffers. (Single-closure form so condition and
    /// body can share mutable per-lane state.)
    pub fn loop_while(
        &mut self,
        gm: &mut GlobalMem,
        mut body: impl FnMut(&mut Self, &mut GlobalMem) -> Mask,
    ) {
        const MAX_TRIPS: u64 = 100_000_000;
        let entry = self.active().clone();
        self.mask_stack.push(entry);
        let mut trips = 0u64;
        loop {
            self.charge(Op::Branch, 1);
            let cont = body(self, gm);
            let next = self.active().and(&cont);
            // Warps with lanes exiting while others continue diverge.
            self.count_divergence(&cont);
            if !next.any() {
                break;
            }
            *self.mask_stack.last_mut().expect("pushed above") = next;
            trips += 1;
            assert!(trips < MAX_TRIPS, "loop_while exceeded {MAX_TRIPS} iterations");
        }
        self.mask_stack.pop();
    }

    /// `__syncthreads()`: semantically a no-op in lockstep execution, but
    /// charged and counted.
    pub fn sync_threads(&mut self) {
        // Barriers are charged for every warp of the block (even fully
        // masked ones must arrive in CUDA's model).
        let warps = self.block_dim.div_ceil(WARP as u32) as f64;
        let cycles = op_cycles(self.device, Op::Bar) as f64;
        self.stats.issue_cycles_per_sm[self.sm_id] += warps * cycles;
        self.stats.warp_instructions += warps;
        self.stats.barriers += 1.0;
    }

    // --- shared memory ----------------------------------------------------------

    /// Allocate `len` f32 elements of shared memory, or `None` when the
    /// block's declared budget is exhausted.
    pub fn try_shared_alloc_f32(&mut self, len: usize) -> Option<ShPtr<f32>> {
        self.shared.try_alloc(len as u32).map(|off| ShPtr::new(off, len as u32))
    }

    /// Allocate shared f32 storage; panics if over the declared budget.
    pub fn shared_alloc_f32(&mut self, len: usize) -> ShPtr<f32> {
        self.try_shared_alloc_f32(len).unwrap_or_else(|| {
            panic!(
                "shared memory exhausted: wanted {} bytes more, declared {}",
                4 * len,
                self.declared_shared_bytes
            )
        })
    }

    /// Allocate `len` u32 elements of shared memory.
    pub fn try_shared_alloc_u32(&mut self, len: usize) -> Option<ShPtr<u32>> {
        self.shared.try_alloc(len as u32).map(|off| ShPtr::new(off, len as u32))
    }

    /// Allocate shared u32 storage; panics if over the declared budget.
    pub fn shared_alloc_u32(&mut self, len: usize) -> ShPtr<u32> {
        self.try_shared_alloc_u32(len).unwrap_or_else(|| {
            panic!(
                "shared memory exhausted: wanted {} bytes more, declared {}",
                4 * len,
                self.declared_shared_bytes
            )
        })
    }

    /// Gather `(lane, word_addr)` pairs of active lanes into the reusable
    /// scratch list (callers put it back when done).
    fn gather_words<T>(&mut self, ptr: ShPtr<T>, idx: &Reg<u32>) -> Vec<(usize, u32)> {
        let mut words = std::mem::take(&mut self.scratch_words);
        words.clear();
        words.extend(
            self.mask_stack
                .last()
                .expect("mask stack never empty")
                .lanes()
                .map(|lane| (lane, ptr.word_addr(idx.0[lane]))),
        );
        words
    }

    /// Charge one shared access instruction and its bank conflicts.
    fn charge_shared(&mut self, words: &[(usize, u32)]) {
        // words: (lane, word_addr) pairs of active lanes.
        self.charge(Op::Shared, 1);
        self.stats.shared_accesses += words.len() as f64;
        let banks = self.device.shared_banks as usize;
        // Conflict granularity: half-warp on CC 1.x, full warp on CC 2.x.
        let group = if self.device.compute_capability.is_fermi() { WARP } else { WARP / 2 };
        let mut extra_total = 0.0;
        // Per conflict group: the serialization degree is the largest
        // number of *distinct* word addresses landing in one bank. Groups
        // are at most a warp wide, so the quadratic duplicate scan beats
        // any allocation-backed set.
        let mut bank_counts = [0u32; 64];
        debug_assert!(banks <= bank_counts.len());
        let mut s = 0;
        while s < words.len() {
            let g = words[s].0 / group;
            let mut e = s;
            while e < words.len() && words[e].0 / group == g {
                e += 1;
            }
            bank_counts[..banks].fill(0);
            for i in s..e {
                let addr = words[i].1;
                if words[s..i].iter().all(|&(_, a)| a != addr) {
                    bank_counts[addr as usize % banks] += 1;
                }
            }
            let degree = bank_counts[..banks].iter().copied().max().unwrap_or(0);
            if degree > 1 {
                extra_total += (degree - 1) as f64;
            }
            s = e;
        }
        if extra_total > 0.0 {
            self.stats.bank_conflict_extra += extra_total;
            self.stats.issue_cycles_per_sm[self.sm_id] +=
                extra_total * op_cycles(self.device, Op::Shared) as f64;
        }
    }

    /// Shared load with per-lane indices.
    pub fn sh_ld_f32(&mut self, ptr: ShPtr<f32>, idx: &Reg<u32>) -> Reg<f32> {
        let words = self.gather_words(ptr, idx);
        self.charge_shared(&words);
        let mut out = f32::take(self.block_dim as usize);
        for &(lane, word) in &words {
            out[lane] = f32::from_bits(self.shared.load(word));
        }
        self.scratch_words = words;
        Reg(out)
    }

    /// Shared store with per-lane indices (lane order resolves races).
    pub fn sh_st_f32(&mut self, ptr: ShPtr<f32>, idx: &Reg<u32>, val: &Reg<f32>) {
        let words = self.gather_words(ptr, idx);
        self.charge_shared(&words);
        for &(lane, word) in &words {
            self.shared.store(word, val.0[lane].to_bits());
        }
        self.scratch_words = words;
    }

    /// Shared load with per-lane indices (u32).
    pub fn sh_ld_u32(&mut self, ptr: ShPtr<u32>, idx: &Reg<u32>) -> Reg<u32> {
        let words = self.gather_words(ptr, idx);
        self.charge_shared(&words);
        let mut out = u32::take(self.block_dim as usize);
        for &(lane, word) in &words {
            out[lane] = self.shared.load(word);
        }
        self.scratch_words = words;
        Reg(out)
    }

    /// Shared store with per-lane indices (u32).
    pub fn sh_st_u32(&mut self, ptr: ShPtr<u32>, idx: &Reg<u32>, val: &Reg<u32>) {
        let words = self.gather_words(ptr, idx);
        self.charge_shared(&words);
        for &(lane, word) in &words {
            self.shared.store(word, val.0[lane]);
        }
        self.scratch_words = words;
    }

    /// Uniform (broadcast) shared read — all active lanes read one word;
    /// broadcast never conflicts.
    pub fn sh_ld_f32_uniform(&mut self, ptr: ShPtr<f32>, idx: u32) -> f32 {
        self.charge(Op::Shared, 1);
        self.stats.shared_accesses += self.active().count() as f64;
        f32::from_bits(self.shared.load(ptr.word_addr(idx)))
    }

    /// Uniform (broadcast) shared read of a u32 word.
    pub fn sh_ld_u32_uniform(&mut self, ptr: ShPtr<u32>, idx: u32) -> u32 {
        self.charge(Op::Shared, 1);
        self.stats.shared_accesses += self.active().count() as f64;
        self.shared.load(ptr.word_addr(idx))
    }

    // --- global memory -----------------------------------------------------------

    fn charge_global_access(&mut self, gm: &GlobalMem, buf_id: u32, idx: &Reg<u32>, store: bool) {
        self.charge(Op::MemIssue, 1);
        let mut addrs = std::mem::take(&mut self.scratch_addrs);
        let mut lines = std::mem::take(&mut self.scratch_lines);
        let mut txns = std::mem::take(&mut self.scratch_txns);
        let active = self.mask_stack.last().expect("mask stack never empty");
        let stats = &mut *self.stats;
        stats.mem_warp_instructions += active.active_warps() as f64;
        let fermi = self.device.compute_capability.is_fermi();
        for w in 0..active.warp_count() {
            if !active.warp_any(w) {
                continue;
            }
            // Lane addresses in ascending lane order; `half` counts the
            // lanes of the warp's first half (a prefix, since lanes are
            // ascending).
            addrs.clear();
            let mut half = 0usize;
            for lane in active.warp_lanes(w) {
                if lane % WARP < WARP / 2 {
                    half += 1;
                }
                addrs.push(gm.addr(buf_id, idx.0[lane] as usize));
            }
            // Partition camping: a warp-wide broadcast load means every
            // concurrently running block is reading this address right now,
            // all hammering one DRAM partition — traffic is effectively
            // serialized by `broadcast_camping`.
            let camping = if !store && addrs.len() >= 16 && addrs.iter().all(|&a| a == addrs[0]) {
                self.device.broadcast_camping
            } else {
                1.0
            };
            if fermi {
                // L1-cached loads; stores go straight through in line units.
                lines_cc20_into(&addrs, &mut lines);
                for &line in &lines {
                    if !store && self.l1.access(line) {
                        stats.l1_hits += 1.0;
                    } else {
                        if !store {
                            stats.l1_misses += 1.0;
                        }
                        stats.dram_bytes += 128.0 * camping;
                        if store {
                            stats.st_transactions += 1.0;
                        } else {
                            stats.ld_transactions += 1.0;
                        }
                    }
                }
            } else {
                // CC 1.3: segment coalescing per half-warp, no cache.
                for part in [&addrs[..half], &addrs[half..]] {
                    coalesce_cc13_half_warp_into(part, &mut lines, &mut txns);
                    for t in &txns {
                        stats.dram_bytes += t.bytes as f64 * camping;
                        if store {
                            stats.st_transactions += 1.0;
                        } else {
                            stats.ld_transactions += 1.0;
                        }
                    }
                }
            }
        }
        self.scratch_addrs = addrs;
        self.scratch_lines = lines;
        self.scratch_txns = txns;
    }

    /// Global load, f32.
    pub fn ld_global_f32(
        &mut self,
        gm: &GlobalMem,
        ptr: DevicePtr<f32>,
        idx: &Reg<u32>,
    ) -> Reg<f32> {
        self.charge_global_access(gm, ptr.id, idx, false);
        let mut out = f32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = gm.load_f32(ptr, idx.0[lane] as usize);
        }
        Reg(out)
    }

    /// Global load, u32.
    pub fn ld_global_u32(
        &mut self,
        gm: &GlobalMem,
        ptr: DevicePtr<u32>,
        idx: &Reg<u32>,
    ) -> Reg<u32> {
        self.charge_global_access(gm, ptr.id, idx, false);
        let mut out = u32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            out[lane] = gm.load_u32(ptr, idx.0[lane] as usize);
        }
        Reg(out)
    }

    /// Global store, f32 (lane order resolves same-address races).
    pub fn st_global_f32(
        &mut self,
        gm: &mut GlobalMem,
        ptr: DevicePtr<f32>,
        idx: &Reg<u32>,
        val: &Reg<f32>,
    ) {
        self.charge_global_access(gm, ptr.id, idx, true);
        let active = self.mask_stack.last().expect("mask stack never empty");
        gm.store_f32_lanes(ptr, active.lanes().map(|lane| (idx.0[lane] as usize, val.0[lane])));
    }

    /// Global store, u32.
    pub fn st_global_u32(
        &mut self,
        gm: &mut GlobalMem,
        ptr: DevicePtr<u32>,
        idx: &Reg<u32>,
        val: &Reg<u32>,
    ) {
        self.charge_global_access(gm, ptr.id, idx, true);
        let active = self.mask_stack.last().expect("mask stack never empty");
        gm.store_u32_lanes(ptr, active.lanes().map(|lane| (idx.0[lane] as usize, val.0[lane])));
    }

    /// Read-only load through the texture cache (32-byte lines, per-SM).
    ///
    /// Hits return from the on-chip cache at a fraction of DRAM latency, so
    /// the access contributes to the exposed-latency counter in proportion
    /// to its miss ratio (with a floor for the cache's own latency).
    pub fn ld_tex_f32(&mut self, gm: &GlobalMem, ptr: DevicePtr<f32>, idx: &Reg<u32>) -> Reg<f32> {
        self.charge(Op::MemIssue, 1);
        let mut out = f32::take(self.block_dim as usize);
        let active = self.mask_stack.last().expect("mask stack never empty");
        let stats = &mut *self.stats;
        let (mut hits, mut misses) = (0u64, 0u64);
        for lane in active.lanes() {
            let addr = gm.addr(ptr.id, idx.0[lane] as usize);
            if self.tex.access(addr) {
                stats.tex_hits += 1.0;
                hits += 1;
            } else {
                stats.tex_misses += 1.0;
                misses += 1;
                stats.dram_bytes += self.tex.line_bytes() as f64;
                stats.ld_transactions += 1.0;
            }
            out[lane] = gm.load_f32(ptr, idx.0[lane] as usize);
        }
        let total = (hits + misses).max(1) as f64;
        let weight = 0.35 + 0.65 * misses as f64 / total;
        stats.mem_warp_instructions += active.active_warps() as f64 * weight;
        Reg(out)
    }

    /// Atomic `tau[idx] += val` with intra-warp serialization. On devices
    /// without native float atomics (Tesla C1060) the operation is costed
    /// as the CAS-loop emulation the paper alludes to.
    pub fn atomic_add_f32(
        &mut self,
        gm: &mut GlobalMem,
        ptr: DevicePtr<f32>,
        idx: &Reg<u32>,
        val: &Reg<f32>,
    ) {
        self.charge(Op::MemIssue, 1);
        let mut addr_counts = std::mem::take(&mut self.scratch_counts);
        let active = self.mask_stack.last().expect("mask stack never empty");
        let stats = &mut *self.stats;
        stats.mem_warp_instructions += active.active_warps() as f64;
        let emu = if self.device.native_float_atomics {
            1.0
        } else {
            self.device.atomic_emulation_factor as f64
        };
        for w in 0..active.warp_count() {
            if !active.warp_any(w) {
                continue;
            }
            addr_counts.clear();
            let mut n_ops = 0.0f64;
            for lane in active.warp_lanes(w) {
                let addr = gm.addr(ptr.id, idx.0[lane] as usize);
                n_ops += 1.0;
                match addr_counts.iter_mut().find(|(a, _)| *a == addr) {
                    Some((_, c)) => *c += 1,
                    None => addr_counts.push((addr, 1)),
                }
            }
            let distinct = addr_counts.len() as f64;
            let max_mult = addr_counts.iter().map(|&(_, c)| c).max().unwrap_or(0) as f64;
            stats.atomic_ops += n_ops;
            stats.atomic_conflicts += n_ops - distinct;
            // The warp stalls for one serialized round per replay; each
            // round costs the device's atomic latency (scaled by the CAS
            // emulation factor on CC 1.x).
            stats.issue_cycles_per_sm[self.sm_id] +=
                max_mult * self.device.atomic_cycles as f64 * emu;
            // Each distinct address is a read-modify-write at the memory
            // partition: one 32B read + one 32B write.
            stats.dram_bytes += distinct * 64.0 * emu;
            stats.st_transactions += distinct * emu;
        }
        self.scratch_counts = addr_counts;
        let active = self.mask_stack.last().expect("mask stack never empty");
        gm.atomic_add_f32_lanes(
            ptr,
            active.lanes().map(|lane| (idx.0[lane] as usize, val.0[lane])),
        );
    }

    // --- device RNG -------------------------------------------------------------

    /// Park–Miller minimal-standard LCG step, state in registers — the
    /// "device function instead of CURAND" of Table II, version 3 (the same
    /// generator ACOTSP's sequential code uses). Costed as the standard
    /// division-free implementation (Schrage / `__umulhi` folding: a wide
    /// multiply plus a few ALU ops), not a hardware modulo.
    pub fn lcg_next_f32(&mut self, state: &mut Reg<u32>) -> Reg<f32> {
        // s = s * 16807 mod (2^31 - 1); r = s / (2^31 - 1).
        self.charge(Op::IAlu, 4); // mul.lo, mul.hi, fold, conditional add
        self.charge(Op::FMul, 1); // scale to [0,1)
        let mut out = f32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            let s = crate::rng::park_miller(state.0[lane]);
            state.0[lane] = s;
            out[lane] = s as f32 / 2_147_483_647.0;
        }
        self.stats.rng_calls += self.active().count() as f64;
        Reg(out)
    }

    /// CURAND-style draw: per-thread generator state lives in *global*
    /// memory (XORWOW state is 48 bytes), so every draw pays state loads
    /// and stores — the overhead version 3 of Table II removes.
    ///
    /// `states` must hold `12 * total_threads` words (12 words = 48 bytes).
    pub fn curand_next_f32(&mut self, gm: &mut GlobalMem, states: DevicePtr<u32>) -> Reg<f32> {
        let gtid = self.global_thread_idx();
        let twelve = self.splat_u32(12);
        let base = self.imul(&gtid, &twelve);
        // Load 3 words of state, xorshift, store back 3 words (the
        // remaining state words ride along in the same transactions).
        let mut s0 = self.ld_global_u32(gm, states, &base);
        let one = self.splat_u32(1);
        let idx1 = self.iadd(&base, &one);
        let s1 = self.ld_global_u32(gm, states, &idx1);
        let two = self.splat_u32(2);
        let idx2 = self.iadd(&base, &two);
        let s2 = self.ld_global_u32(gm, states, &idx2);
        // XORWOW state update + sequence bookkeeping (the library does
        // substantially more integer work per draw than a bare xorshift).
        self.charge(Op::IAlu, 20);
        let mut out = f32::take(self.block_dim as usize);
        for lane in self.active().lanes() {
            let mut x =
                s0.0[lane] ^ s1.0[lane].rotate_left(13) ^ s2.0[lane].wrapping_mul(0x9E37_79B9);
            if x == 0 {
                x = 0x1234_5678;
            }
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            s0.0[lane] = x;
            out[lane] = (x >> 8) as f32 / (1u32 << 24) as f32;
        }
        self.st_global_u32(gm, states, &base, &s0);
        self.st_global_u32(gm, states, &idx1, &s1);
        self.st_global_u32(gm, states, &idx2, &s2);
        self.stats.rng_calls += self.active().count() as f64;
        Reg(out)
    }

    /// Bytes of shared memory the block has allocated so far.
    pub fn shared_used_bytes(&self) -> u32 {
        self.shared.used_bytes()
    }
}
