//! A deterministic SIMT (CUDA-like) execution simulator and performance
//! model.
//!
//! This crate substitutes for the two NVIDIA Tesla GPUs of Cecilia et al.,
//! *"Parallelization Strategies for Ant Colony Optimisation on GPUs"*
//! (IPDPS Workshops 2011). Kernels are ordinary Rust written in a
//! block-wide SPMD style against [`block::BlockCtx`]; the simulator
//! executes them *functionally* (real values, real control flow) while
//! counting the microarchitectural events the paper's analysis is phrased
//! in terms of:
//!
//! * warp-granular instruction issue (divergent branches pay both sides),
//! * global-memory coalescing (CC 1.3 half-warp segments vs Fermi 128-byte
//!   L1 lines),
//! * shared-memory bank conflicts (16 banks/half-warp vs 32 banks/warp),
//! * atomic serialization, with CAS-loop emulation of float atomics on
//!   CC 1.x (the Tesla C1060's documented weakness),
//! * texture-cache and L1 behaviour (set-associative LRU),
//! * occupancy (block/warp/register/shared limits) and its effect on
//!   latency hiding.
//!
//! The [`timing`] module converts counters into milliseconds with a
//! documented roofline model; [`launch`] drives grids of blocks with
//! optional deterministic block sampling for very large launches.
//!
//! ```
//! use aco_simt::prelude::*;
//!
//! struct Scale(DevicePtr<f32>);
//! impl Kernel for Scale {
//!     fn name(&self) -> &'static str { "scale" }
//!     fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
//!         let i = ctx.global_thread_idx();
//!         let x = ctx.ld_global_f32(gm, self.0, &i);
//!         let two = ctx.splat_f32(2.0);
//!         let y = ctx.fmul(&x, &two);
//!         ctx.st_global_f32(gm, self.0, &i, &y);
//!     }
//! }
//!
//! let dev = DeviceSpec::tesla_c1060();
//! let mut gm = GlobalMem::new();
//! let buf = gm.alloc_f32(256);
//! gm.write_f32(buf, &[1.0; 256]);
//! let r = launch(&dev, &LaunchConfig::new(2, 128), &Scale(buf), &mut gm, SimMode::Full).unwrap();
//! assert_eq!(gm.f32(buf)[0], 2.0);
//! assert!(r.time.total_ms > 0.0);
//! ```

pub mod block;
pub mod cache;
pub mod coalesce;
pub mod device;
pub mod global;
pub mod launch;
pub mod mask;
pub mod occupancy;
pub mod pool;
pub mod rng;
pub mod shared;
pub mod stats;
pub mod timing;

pub use block::{BlockCtx, Op, Reg};
pub use device::{ComputeCapability, DeviceSpec};
pub use global::{DevicePtr, GlobalMem};
pub use launch::{launch, launch_threads, Kernel, LaunchConfig, LaunchResult, SimMode};
pub use mask::Mask;
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use shared::ShPtr;
pub use stats::KernelStats;
pub use timing::{estimate, KernelTime};

/// Convenient glob import for kernel authors.
pub mod prelude {
    pub use crate::block::{BlockCtx, Op, Reg};
    pub use crate::device::DeviceSpec;
    pub use crate::global::{DevicePtr, GlobalMem};
    pub use crate::launch::{launch, launch_threads, Kernel, LaunchConfig, LaunchResult, SimMode};
    pub use crate::mask::Mask;
    pub use crate::shared::ShPtr;
    pub use crate::stats::KernelStats;
    pub use crate::timing::KernelTime;
}

/// Errors from launch validation and host-side misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimtError {
    /// The launch configuration violates a device limit.
    BadLaunch(String),
    /// The (simulated) device failed the launch transiently — the
    /// retryable error class fault injection exercises (see
    /// `aco_faults::launch`; real backends would surface driver/ECC
    /// errors here). Distinct from [`SimtError::BadLaunch`], which marks
    /// a misconfigured launch that no retry can fix.
    DeviceFault(String),
}

impl std::fmt::Display for SimtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimtError::BadLaunch(m) => write!(f, "bad launch: {m}"),
            SimtError::DeviceFault(m) => write!(f, "device fault: {m}"),
        }
    }
}

impl std::error::Error for SimtError {}
