//! Device models.
//!
//! [`DeviceSpec`] captures every hardware parameter the simulator and the
//! timing model consume. The two presets reproduce Table I of the paper
//! (Tesla C1060, GT200, CC 1.3 — and Tesla M2050, Fermi, CC 2.0), augmented
//! with microarchitectural constants that Table I implies but does not list
//! (issue width, memory latency, launch overhead); each such constant cites
//! its source in a comment.

/// Compute capability, e.g. `(1, 3)` for the Tesla C1060.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ComputeCapability(pub u32, pub u32);

impl ComputeCapability {
    /// Fermi-or-later: per-warp coalescing through 128-byte L1 lines,
    /// native float atomics, 32 shared-memory banks.
    pub fn is_fermi(self) -> bool {
        self.0 >= 2
    }
}

/// A GPU model: everything the execution and timing models need.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    pub compute_capability: ComputeCapability,
    /// Streaming multiprocessors. Table I: 30 (C1060), 14 (M2050).
    pub sm_count: u32,
    /// Scalar cores ("SPs") per SM. Table I: 8 / 32.
    pub cores_per_sm: u32,
    /// Shader (hot) clock in MHz. Table I: 1296 / 1147.
    pub clock_mhz: u32,
    /// Threads per warp. Table I: 32 for both.
    pub warp_size: u32,
    /// Table I: 512 / 1024.
    pub max_threads_per_block: u32,
    /// Table I: 1024 / 1536.
    pub max_threads_per_sm: u32,
    /// CUDA occupancy limit: 8 resident blocks per SM on both generations.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM. Table I: 16 K / 32 K.
    pub registers_per_sm: u32,
    /// Shared memory per SM in bytes. Table I: 16 KB / 48 KB (Fermi
    /// configured for the large-shared split, as the tabu-list kernels
    /// prefer).
    pub shared_mem_per_sm: u32,
    /// Shared-memory banks: 16 (CC 1.x, conflicts per half-warp) or
    /// 32 (CC 2.x, conflicts per warp).
    pub shared_banks: u32,
    /// Global memory size in bytes. Table I: 4 GB / 3 GB.
    pub global_mem_bytes: u64,
    /// DRAM bandwidth in GB/s. Table I: 102 / 144.
    pub mem_bandwidth_gbps: f64,
    /// Round-trip global-memory latency in shader cycles.
    /// GT200 ≈ 500, Fermi ≈ 400 (both well-documented microbenchmark
    /// figures; Volkov 2008, Wong et al. 2010).
    pub mem_latency_cycles: u32,
    /// Whether `atomicAdd` on `f32` exists in hardware. CC 1.x must
    /// emulate it with an integer compare-and-swap loop (the paper calls
    /// this out as the C1060's weakness in Section IV-B / Figure 5).
    pub native_float_atomics: bool,
    /// Whether global loads are cached in an L1 (Fermi) or not (GT200).
    pub has_l1: bool,
    /// L1 size per SM in bytes (Fermi 16 KB when shared=48 KB).
    pub l1_bytes: u32,
    /// Texture cache per SM in bytes (≈ 8 KB working set on both parts).
    pub tex_cache_bytes: u32,
    /// Shader cycles to issue one warp-instruction: GT200 pipelines a warp
    /// over 8 cores in 4 cycles; Fermi's 32-core SM issues a warp per cycle.
    pub issue_cycles_per_warp: u32,
    /// Cycles per warp for special-function (transcendental) ops: the SFU
    /// pool is 2 units/SM on GT200 (16 cycles/warp) and 4/SM on Fermi
    /// (8 cycles/warp).
    pub sfu_cycles_per_warp: u32,
    /// Kernel launch overhead in microseconds (driver + setup; ≈ 7 µs on
    /// PCIe-2 era parts, ≈ 4 µs on Fermi).
    pub launch_overhead_us: f64,
    /// Extra shader cycles a hardware atomic RMW occupies at the memory
    /// partition, per (serialized) operation.
    pub atomic_cycles: u32,
    /// Cost multiplier for the CAS-loop software emulation of float
    /// atomics on CC 1.x (load + compare + cas, retried on contention).
    pub atomic_emulation_factor: u32,
    /// DRAM partitions (GT200: 8, GF100: 6).
    pub dram_partitions: u32,
    /// *Partition camping* multiplier for warp-uniform (broadcast) global
    /// loads: when every thread of every concurrently running block reads
    /// the same address (the scatter-to-gather tour scan), all traffic
    /// lands on one partition at a time and effective bandwidth collapses.
    /// GT200 pays close to the full partition count; Fermi's L2 absorbs
    /// most of it.
    pub broadcast_camping: f64,
}

impl DeviceSpec {
    /// Warps per block for a given block size (rounded up).
    pub fn warps_per_block(&self, block_dim: u32) -> u32 {
        block_dim.div_ceil(self.warp_size)
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Shader cycles per millisecond.
    pub fn cycles_per_ms(&self) -> f64 {
        self.clock_mhz as f64 * 1e3
    }

    /// Tesla C1060 (GT200, CC 1.3) exactly as in Table I of the paper.
    pub fn tesla_c1060() -> Self {
        DeviceSpec {
            name: "Tesla C1060",
            compute_capability: ComputeCapability(1, 3),
            sm_count: 30,
            cores_per_sm: 8,
            clock_mhz: 1296,
            warp_size: 32,
            max_threads_per_block: 512,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            registers_per_sm: 16 * 1024,
            shared_mem_per_sm: 16 * 1024,
            shared_banks: 16,
            global_mem_bytes: 4 << 30,
            mem_bandwidth_gbps: 102.0,
            mem_latency_cycles: 500,
            native_float_atomics: false,
            has_l1: false,
            l1_bytes: 0,
            tex_cache_bytes: 8 * 1024,
            issue_cycles_per_warp: 4,
            sfu_cycles_per_warp: 16,
            launch_overhead_us: 7.0,
            atomic_cycles: 40,
            atomic_emulation_factor: 4,
            dram_partitions: 8,
            broadcast_camping: 3.0,
        }
    }

    /// Tesla M2050 (Fermi, CC 2.0) exactly as in Table I of the paper,
    /// configured with the 48 KB-shared / 16 KB-L1 split.
    pub fn tesla_m2050() -> Self {
        DeviceSpec {
            name: "Tesla M2050",
            compute_capability: ComputeCapability(2, 0),
            sm_count: 14,
            cores_per_sm: 32,
            clock_mhz: 1147,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            registers_per_sm: 32 * 1024,
            shared_mem_per_sm: 48 * 1024,
            shared_banks: 32,
            global_mem_bytes: 3 << 30,
            mem_bandwidth_gbps: 144.0,
            mem_latency_cycles: 400,
            native_float_atomics: true,
            has_l1: true,
            l1_bytes: 16 * 1024,
            tex_cache_bytes: 8 * 1024,
            issue_cycles_per_warp: 1,
            sfu_cycles_per_warp: 8,
            launch_overhead_us: 4.0,
            atomic_cycles: 20,
            atomic_emulation_factor: 1,
            dram_partitions: 6,
            broadcast_camping: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_c1060_values() {
        let d = DeviceSpec::tesla_c1060();
        assert_eq!(d.sm_count * d.cores_per_sm, 240); // "Total SPs 240"
        assert_eq!(d.clock_mhz, 1296);
        assert_eq!(d.max_threads_per_block, 512);
        assert_eq!(d.max_threads_per_sm, 1024);
        assert_eq!(d.registers_per_sm, 16 * 1024);
        assert_eq!(d.shared_mem_per_sm, 16 * 1024);
        assert_eq!(d.mem_bandwidth_gbps, 102.0);
        assert!(!d.native_float_atomics);
        assert!(!d.has_l1);
        assert_eq!(d.max_warps_per_sm(), 32);
    }

    #[test]
    fn table1_m2050_values() {
        let d = DeviceSpec::tesla_m2050();
        assert_eq!(d.sm_count * d.cores_per_sm, 448); // "Total SPs 448"
        assert_eq!(d.clock_mhz, 1147);
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!(d.max_threads_per_sm, 1536);
        assert_eq!(d.registers_per_sm, 32 * 1024);
        assert_eq!(d.mem_bandwidth_gbps, 144.0);
        assert!(d.native_float_atomics);
        assert!(d.has_l1);
        assert_eq!(d.max_warps_per_sm(), 48);
        assert!(d.compute_capability.is_fermi());
    }

    #[test]
    fn warp_arithmetic() {
        let d = DeviceSpec::tesla_c1060();
        assert_eq!(d.warps_per_block(32), 1);
        assert_eq!(d.warps_per_block(33), 2);
        assert_eq!(d.warps_per_block(512), 16);
        assert_eq!(d.cycles_per_ms(), 1_296_000.0);
    }
}
