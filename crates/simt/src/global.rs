//! Simulated device (global) memory.
//!
//! A [`GlobalMem`] is an arena of typed buffers laid out in a single
//! virtual address space with 256-byte base alignment — the alignment
//! `cudaMalloc` guarantees, which the coalescing model depends on.
//! Element size is 4 bytes throughout (`f32`/`u32`/`i32`), matching the
//! paper's data structures ("Notice that these accesses are 4 bytes each",
//! Section IV-B).

use std::marker::PhantomData;
use std::sync::Arc;

/// Typed handle to a device buffer. `Copy`, so kernels capture it freely.
pub struct DevicePtr<T> {
    pub(crate) id: u32,
    _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for DevicePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DevicePtr<T> {}
impl<T> std::fmt::Debug for DevicePtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DevicePtr#{}", self.id)
    }
}

/// Buffer payload. The vectors sit behind [`Arc`] so a shadow fork is a
/// handle copy, not a data copy: a shadow that never writes a buffer
/// shares the base arena's allocation, and the first store into a buffer
/// ([`Arc::make_mut`]) is what pays for the copy — copy-on-write at
/// buffer granularity.
#[derive(Clone)]
enum Data {
    F32(Arc<Vec<f32>>),
    U32(Arc<Vec<u32>>),
}

#[derive(Clone)]
struct Buffer {
    base: u64,
    data: Data,
}

/// One logged device-memory mutation. Parallel launches execute blocks
/// against per-SM-group copy-on-write shadows of memory and then replay
/// the logs onto the real arena in canonical order (see
/// [`crate::launch`]), so the committed state is identical for every
/// host thread count. The log doubles as the shadow's dirty set: a
/// buffer absent from every log was never forked off its `Arc`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LogOp {
    /// Plain f32 store.
    StF32 { id: u32, idx: u32, val: f32 },
    /// Plain u32 store.
    StU32 { id: u32, idx: u32, val: u32 },
    /// Atomic float add (replayed as an add, not a store, so deposits
    /// from different SMs accumulate exactly as serial execution would).
    AddF32 { id: u32, idx: u32, val: f32 },
}

/// Device memory arena.
pub struct GlobalMem {
    buffers: Vec<Buffer>,
    next_base: u64,
    /// `Some` on shadow copies: mutations are recorded here as well as
    /// applied, so the launch can commit them onto the real arena.
    log: Option<Vec<LogOp>>,
}

/// `cudaMalloc` base alignment.
const BASE_ALIGN: u64 = 256;

impl Default for GlobalMem {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalMem {
    /// Empty arena. Base addresses start away from zero so "address 0"
    /// bugs surface loudly.
    pub fn new() -> Self {
        GlobalMem { buffers: Vec::new(), next_base: BASE_ALIGN, log: None }
    }

    /// A logging copy-on-write view of this arena for one SM group of a
    /// parallel launch: the buffer *handles* are cloned (an `Arc` bump
    /// each, no data copies), plus an empty mutation log. A buffer's
    /// contents are only duplicated when the shadow first stores into it,
    /// so a group that dirties a small slice of the arena allocates
    /// proportionally to what it touches, not to the arena size.
    pub(crate) fn fork_shadow(&self) -> GlobalMem {
        GlobalMem {
            buffers: self.buffers.clone(),
            next_base: self.next_base,
            log: Some(Vec::new()),
        }
    }

    /// Drain the mutation log (empty for non-shadow arenas).
    pub(crate) fn take_log(&mut self) -> Vec<LogOp> {
        self.log.take().unwrap_or_default()
    }

    /// Apply a drained log to this arena, in order.
    pub(crate) fn replay(&mut self, ops: &[LogOp]) {
        for &op in ops {
            match op {
                LogOp::StF32 { id, idx, val } => self.raw_store_f32(id, idx as usize, val),
                LogOp::StU32 { id, idx, val } => self.raw_store_u32(id, idx as usize, val),
                LogOp::AddF32 { id, idx, val } => {
                    let old = self.load_f32(DevicePtr { id, _pd: PhantomData }, idx as usize);
                    self.raw_store_f32(id, idx as usize, old + val);
                }
            }
        }
    }

    fn push(&mut self, bytes: u64, data: Data) -> u32 {
        let id = self.buffers.len() as u32;
        let base = self.next_base;
        self.buffers.push(Buffer { base, data });
        self.next_base = (base + bytes).next_multiple_of(BASE_ALIGN);
        id
    }

    /// Allocate an `f32` buffer of `len` elements, zero-initialised.
    pub fn alloc_f32(&mut self, len: usize) -> DevicePtr<f32> {
        let id = self.push(4 * len as u64, Data::F32(Arc::new(vec![0.0; len])));
        DevicePtr { id, _pd: PhantomData }
    }

    /// Allocate a `u32` buffer of `len` elements, zero-initialised.
    pub fn alloc_u32(&mut self, len: usize) -> DevicePtr<u32> {
        let id = self.push(4 * len as u64, Data::U32(Arc::new(vec![0; len])));
        DevicePtr { id, _pd: PhantomData }
    }

    /// Host-side view of an `f32` buffer (like `cudaMemcpy` D→H).
    pub fn f32(&self, ptr: DevicePtr<f32>) -> &[f32] {
        match &self.buffers[ptr.id as usize].data {
            Data::F32(v) => v,
            Data::U32(_) => unreachable!("typed handle guarantees the variant"),
        }
    }

    /// Host-side mutable view of an `f32` buffer (like `cudaMemcpy` H→D).
    pub fn f32_mut(&mut self, ptr: DevicePtr<f32>) -> &mut [f32] {
        match &mut self.buffers[ptr.id as usize].data {
            Data::F32(v) => Arc::make_mut(v).as_mut_slice(),
            Data::U32(_) => unreachable!("typed handle guarantees the variant"),
        }
    }

    /// Host-side view of a `u32` buffer.
    pub fn u32(&self, ptr: DevicePtr<u32>) -> &[u32] {
        match &self.buffers[ptr.id as usize].data {
            Data::U32(v) => v,
            Data::F32(_) => unreachable!("typed handle guarantees the variant"),
        }
    }

    /// Host-side mutable view of a `u32` buffer.
    pub fn u32_mut(&mut self, ptr: DevicePtr<u32>) -> &mut [u32] {
        match &mut self.buffers[ptr.id as usize].data {
            Data::U32(v) => Arc::make_mut(v).as_mut_slice(),
            Data::F32(_) => unreachable!("typed handle guarantees the variant"),
        }
    }

    /// Copy a host slice into a buffer (must match length).
    pub fn write_f32(&mut self, ptr: DevicePtr<f32>, src: &[f32]) {
        let dst = self.f32_mut(ptr);
        assert_eq!(dst.len(), src.len(), "upload length mismatch");
        dst.copy_from_slice(src);
    }

    /// Copy a host slice into a buffer (must match length).
    pub fn write_u32(&mut self, ptr: DevicePtr<u32>, src: &[u32]) {
        let dst = self.u32_mut(ptr);
        assert_eq!(dst.len(), src.len(), "upload length mismatch");
        dst.copy_from_slice(src);
    }

    /// Element count of a buffer.
    pub fn len_f32(&self, ptr: DevicePtr<f32>) -> usize {
        self.f32(ptr).len()
    }

    /// Element count of a buffer.
    pub fn len_u32(&self, ptr: DevicePtr<u32>) -> usize {
        self.u32(ptr).len()
    }

    /// Virtual byte address of element `idx` of a buffer (for coalescing).
    #[inline]
    pub(crate) fn addr(&self, id: u32, idx: usize) -> u64 {
        self.buffers[id as usize].base + 4 * idx as u64
    }

    #[inline]
    pub(crate) fn load_f32(&self, ptr: DevicePtr<f32>, idx: usize) -> f32 {
        let v = self.f32(ptr);
        match v.get(idx) {
            Some(&x) => x,
            None => panic!(
                "device OOB load: f32 buffer #{} has {} elements, index {idx}",
                ptr.id,
                v.len()
            ),
        }
    }

    #[inline]
    pub(crate) fn load_u32(&self, ptr: DevicePtr<u32>, idx: usize) -> u32 {
        let v = self.u32(ptr);
        match v.get(idx) {
            Some(&x) => x,
            None => panic!(
                "device OOB load: u32 buffer #{} has {} elements, index {idx}",
                ptr.id,
                v.len()
            ),
        }
    }

    #[inline]
    fn raw_store_f32(&mut self, id: u32, idx: usize, val: f32) {
        let v = match &mut self.buffers[id as usize].data {
            Data::F32(v) => Arc::make_mut(v),
            Data::U32(_) => unreachable!("typed handle guarantees the variant"),
        };
        let len = v.len();
        match v.get_mut(idx) {
            Some(x) => *x = val,
            None => {
                panic!("device OOB store: f32 buffer #{id} has {len} elements, index {idx}")
            }
        }
    }

    #[inline]
    fn raw_store_u32(&mut self, id: u32, idx: usize, val: u32) {
        let v = match &mut self.buffers[id as usize].data {
            Data::U32(v) => Arc::make_mut(v),
            Data::F32(_) => unreachable!("typed handle guarantees the variant"),
        };
        let len = v.len();
        match v.get_mut(idx) {
            Some(x) => *x = val,
            None => {
                panic!("device OOB store: u32 buffer #{id} has {len} elements, index {idx}")
            }
        }
    }

    // Stores arrive lane-batched — one call covers every active lane of a
    // warp-wide vector operation — so the COW materialisation
    // (`Arc::make_mut`) is paid **once per operation** instead of once per
    // lane, which is what keeps the `Arc`-backed buffers from taxing
    // `global_st`/`atomic_add` (`interp_bench` holds both near their
    // pre-COW ns/op). Lanes are applied and logged in iteration order, so
    // same-address races resolve lane-last exactly as before.

    /// Lane-batched global store, f32: `buf[idx] = val` per lane, logged
    /// as [`LogOp::StF32`] on shadow arenas.
    pub(crate) fn store_f32_lanes(
        &mut self,
        ptr: DevicePtr<f32>,
        lanes: impl Iterator<Item = (usize, f32)>,
    ) {
        let v = match &mut self.buffers[ptr.id as usize].data {
            Data::F32(v) => Arc::make_mut(v),
            Data::U32(_) => unreachable!("typed handle guarantees the variant"),
        };
        let len = v.len();
        let log = &mut self.log;
        for (idx, val) in lanes {
            match v.get_mut(idx) {
                Some(x) => *x = val,
                None => panic!(
                    "device OOB store: f32 buffer #{} has {len} elements, index {idx}",
                    ptr.id
                ),
            }
            if let Some(log) = log {
                log.push(LogOp::StF32 { id: ptr.id, idx: idx as u32, val });
            }
        }
    }

    /// Lane-batched global store, u32: `buf[idx] = val` per lane, logged
    /// as [`LogOp::StU32`] on shadow arenas.
    pub(crate) fn store_u32_lanes(
        &mut self,
        ptr: DevicePtr<u32>,
        lanes: impl Iterator<Item = (usize, u32)>,
    ) {
        let v = match &mut self.buffers[ptr.id as usize].data {
            Data::U32(v) => Arc::make_mut(v),
            Data::F32(_) => unreachable!("typed handle guarantees the variant"),
        };
        let len = v.len();
        let log = &mut self.log;
        for (idx, val) in lanes {
            match v.get_mut(idx) {
                Some(x) => *x = val,
                None => panic!(
                    "device OOB store: u32 buffer #{} has {len} elements, index {idx}",
                    ptr.id
                ),
            }
            if let Some(log) = log {
                log.push(LogOp::StU32 { id: ptr.id, idx: idx as u32, val });
            }
        }
    }

    /// Lane-batched simulated `atomicAdd(&buf[idx], val)`: applied
    /// immediately (so the owning block can proceed) and logged as an
    /// *add* ([`LogOp::AddF32`]) on shadows, so a parallel launch's commit
    /// accumulates deposits exactly like serial execution.
    pub(crate) fn atomic_add_f32_lanes(
        &mut self,
        ptr: DevicePtr<f32>,
        lanes: impl Iterator<Item = (usize, f32)>,
    ) {
        let v = match &mut self.buffers[ptr.id as usize].data {
            Data::F32(v) => Arc::make_mut(v),
            Data::U32(_) => unreachable!("typed handle guarantees the variant"),
        };
        let len = v.len();
        let log = &mut self.log;
        for (idx, val) in lanes {
            match v.get_mut(idx) {
                Some(x) => *x += val,
                None => panic!(
                    "device OOB load: f32 buffer #{} has {len} elements, index {idx}",
                    ptr.id
                ),
            }
            if let Some(log) = log {
                log.push(LogOp::AddF32 { id: ptr.id, idx: idx as u32, val });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip() {
        let mut gm = GlobalMem::new();
        let a = gm.alloc_f32(4);
        let b = gm.alloc_u32(3);
        gm.write_f32(a, &[1.0, 2.0, 3.0, 4.0]);
        gm.write_u32(b, &[7, 8, 9]);
        assert_eq!(gm.f32(a), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(gm.u32(b), &[7, 8, 9]);
        assert_eq!(gm.len_f32(a), 4);
        assert_eq!(gm.len_u32(b), 3);
    }

    #[test]
    fn buffers_are_aligned_and_disjoint() {
        let mut gm = GlobalMem::new();
        let a = gm.alloc_f32(5); // 20 bytes
        let b = gm.alloc_f32(1);
        let base_a = gm.addr(a.id, 0);
        let base_b = gm.addr(b.id, 0);
        assert_eq!(base_a % 256, 0);
        assert_eq!(base_b % 256, 0);
        assert!(base_b >= base_a + 20);
        assert_eq!(gm.addr(a.id, 3), base_a + 12);
    }

    #[test]
    #[should_panic(expected = "OOB load")]
    fn oob_load_panics() {
        let mut gm = GlobalMem::new();
        let a = gm.alloc_f32(2);
        gm.load_f32(a, 2);
    }

    #[test]
    #[should_panic(expected = "OOB store")]
    fn oob_store_panics() {
        let mut gm = GlobalMem::new();
        let a = gm.alloc_u32(2);
        gm.store_u32_lanes(a, std::iter::once((5, 1)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn upload_length_checked() {
        let mut gm = GlobalMem::new();
        let a = gm.alloc_f32(2);
        gm.write_f32(a, &[1.0]);
    }
}
