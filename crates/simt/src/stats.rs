//! Kernel event counters.
//!
//! Every simulated instruction, memory transaction, bank conflict, atomic
//! and barrier increments a counter here; the timing model
//! ([`crate::timing`]) turns the counters into milliseconds. Counters are
//! `f64` so block-sampled launches can be extrapolated by a real factor.

/// Event counters for one kernel launch (or the merge of several).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Warp-instructions issued (all classes).
    pub warp_instructions: f64,
    /// Issue cycles accumulated per SM (index = SM id). The busiest SM
    /// bounds compute time.
    pub issue_cycles_per_sm: Vec<f64>,
    /// Bytes actually moved over the DRAM interface (transaction-sized,
    /// so uncoalesced access patterns inflate this above the useful bytes).
    pub dram_bytes: f64,
    /// Global-memory load transactions (after coalescing and caches).
    pub ld_transactions: f64,
    /// Global-memory store transactions.
    pub st_transactions: f64,
    /// Warp-level memory instructions (each exposes latency to hide).
    pub mem_warp_instructions: f64,
    /// Lane-level shared-memory accesses.
    pub shared_accesses: f64,
    /// Extra serialized shared passes caused by bank conflicts.
    pub bank_conflict_extra: f64,
    /// Lane-level atomic operations.
    pub atomic_ops: f64,
    /// Serialized atomic replays (lanes in a warp hitting the same address).
    pub atomic_conflicts: f64,
    /// Warp branches where lanes took both sides (serialized execution).
    pub divergent_branches: f64,
    /// `__syncthreads()` executions (per block).
    pub barriers: f64,
    /// Texture cache hits / misses (lane granularity).
    pub tex_hits: f64,
    pub tex_misses: f64,
    /// Fermi L1 hits / misses (lane granularity).
    pub l1_hits: f64,
    pub l1_misses: f64,
    /// Device RNG draws (lane granularity) — reported because the paper
    /// discusses random-number cost explicitly.
    pub rng_calls: f64,
}

impl KernelStats {
    /// Stats sized for a device with `sm_count` SMs.
    pub fn for_sms(sm_count: usize) -> Self {
        KernelStats { issue_cycles_per_sm: vec![0.0; sm_count], ..Default::default() }
    }

    /// The busiest SM's issue cycles (bounds compute time).
    pub fn max_sm_cycles(&self) -> f64 {
        self.issue_cycles_per_sm.iter().copied().fold(0.0, f64::max)
    }

    /// Total issue cycles across all SMs.
    pub fn total_issue_cycles(&self) -> f64 {
        self.issue_cycles_per_sm.iter().sum()
    }

    /// Total global transactions (loads + stores).
    pub fn transactions(&self) -> f64 {
        self.ld_transactions + self.st_transactions
    }

    /// Scale every counter by `f` (block-sampling extrapolation).
    pub fn scale(&mut self, f: f64) {
        let KernelStats {
            warp_instructions,
            issue_cycles_per_sm,
            dram_bytes,
            ld_transactions,
            st_transactions,
            mem_warp_instructions,
            shared_accesses,
            bank_conflict_extra,
            atomic_ops,
            atomic_conflicts,
            divergent_branches,
            barriers,
            tex_hits,
            tex_misses,
            l1_hits,
            l1_misses,
            rng_calls,
        } = self;
        *warp_instructions *= f;
        issue_cycles_per_sm.iter_mut().for_each(|c| *c *= f);
        *dram_bytes *= f;
        *ld_transactions *= f;
        *st_transactions *= f;
        *mem_warp_instructions *= f;
        *shared_accesses *= f;
        *bank_conflict_extra *= f;
        *atomic_ops *= f;
        *atomic_conflicts *= f;
        *divergent_branches *= f;
        *barriers *= f;
        *tex_hits *= f;
        *tex_misses *= f;
        *l1_hits *= f;
        *l1_misses *= f;
        *rng_calls *= f;
    }

    /// Accumulate another launch's counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        if self.issue_cycles_per_sm.len() < other.issue_cycles_per_sm.len() {
            self.issue_cycles_per_sm.resize(other.issue_cycles_per_sm.len(), 0.0);
        }
        for (a, b) in self.issue_cycles_per_sm.iter_mut().zip(other.issue_cycles_per_sm.iter()) {
            *a += b;
        }
        self.warp_instructions += other.warp_instructions;
        self.dram_bytes += other.dram_bytes;
        self.ld_transactions += other.ld_transactions;
        self.st_transactions += other.st_transactions;
        self.mem_warp_instructions += other.mem_warp_instructions;
        self.shared_accesses += other.shared_accesses;
        self.bank_conflict_extra += other.bank_conflict_extra;
        self.atomic_ops += other.atomic_ops;
        self.atomic_conflicts += other.atomic_conflicts;
        self.divergent_branches += other.divergent_branches;
        self.barriers += other.barriers;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.rng_calls += other.rng_calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelStats {
        let mut s = KernelStats::for_sms(2);
        s.warp_instructions = 10.0;
        s.issue_cycles_per_sm[0] = 40.0;
        s.issue_cycles_per_sm[1] = 24.0;
        s.dram_bytes = 256.0;
        s.ld_transactions = 4.0;
        s.st_transactions = 2.0;
        s
    }

    #[test]
    fn max_and_totals() {
        let s = sample();
        assert_eq!(s.max_sm_cycles(), 40.0);
        assert_eq!(s.total_issue_cycles(), 64.0);
        assert_eq!(s.transactions(), 6.0);
    }

    #[test]
    fn scaling_scales_everything() {
        let mut s = sample();
        s.scale(2.0);
        assert_eq!(s.warp_instructions, 20.0);
        assert_eq!(s.issue_cycles_per_sm, vec![80.0, 48.0]);
        assert_eq!(s.dram_bytes, 512.0);
    }

    #[test]
    fn merging_adds_counters() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.warp_instructions, 20.0);
        assert_eq!(a.issue_cycles_per_sm, vec![80.0, 48.0]);
        assert_eq!(a.ld_transactions, 8.0);
    }

    #[test]
    fn merge_grows_sm_vector() {
        let mut a = KernelStats::for_sms(1);
        let b = sample();
        a.merge(&b);
        assert_eq!(a.issue_cycles_per_sm.len(), 2);
        assert_eq!(a.issue_cycles_per_sm[1], 24.0);
    }
}
