//! Active-lane masks.
//!
//! A [`Mask`] holds one bit per thread of a block. All SIMT control flow in
//! the simulator is expressed through masks: `if_else` intersects them,
//! `loop_while` iterates while any lane remains active, and every operation
//! charges issue cycles only for *warps* that still have at least one
//! active lane — which is exactly how divergence costs on hardware.

use crate::pool::PoolItem;

/// One bit per lane of a thread block (lane 0 = bit 0 of word 0).
///
/// Backing storage recycles through the thread-local pool in
/// [`crate::pool`]: masks are created and dropped once per simulated
/// branch, so pooling removes an allocator round-trip from every
/// structured-control-flow operation.
#[derive(Debug, PartialEq, Eq)]
pub struct Mask {
    bits: Vec<u64>,
    len: usize,
}

impl Clone for Mask {
    fn clone(&self) -> Self {
        let mut bits = u64::take(self.bits.len());
        bits.copy_from_slice(&self.bits);
        Mask { bits, len: self.len }
    }
}

impl Drop for Mask {
    fn drop(&mut self) {
        u64::put(std::mem::take(&mut self.bits));
    }
}

/// Lanes per warp; fixed at 32 across every CUDA generation we model.
pub const WARP: usize = 32;

impl Mask {
    /// All lanes active.
    pub fn all(len: usize) -> Self {
        let mut bits = u64::take(len.div_ceil(64));
        bits.fill(u64::MAX);
        Self::trim(&mut bits, len);
        Mask { bits, len }
    }

    /// No lanes active.
    pub fn none(len: usize) -> Self {
        Mask { bits: u64::take(len.div_ceil(64)), len }
    }

    /// Build from a predicate over lane indices.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut m = Mask::none(len);
        for lane in 0..len {
            if f(lane) {
                m.set(lane, true);
            }
        }
        m
    }

    fn trim(bits: &mut [u64], len: usize) {
        let extra = bits.len() * 64 - len;
        if extra > 0 {
            let last = bits.len() - 1;
            bits[last] &= u64::MAX >> extra;
        }
    }

    /// Number of lanes this mask covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no lanes are covered (empty block — not "no active lanes").
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lane state.
    #[inline]
    pub fn get(&self, lane: usize) -> bool {
        debug_assert!(lane < self.len);
        (self.bits[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Set lane state.
    #[inline]
    pub fn set(&mut self, lane: usize, v: bool) {
        debug_assert!(lane < self.len);
        if v {
            self.bits[lane / 64] |= 1 << (lane % 64);
        } else {
            self.bits[lane / 64] &= !(1 << (lane % 64));
        }
    }

    /// Any lane active?
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Number of active lanes.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn zip_with(&self, other: &Mask, f: impl Fn(u64, u64) -> u64) -> Mask {
        debug_assert_eq!(self.len, other.len);
        let mut bits = u64::take(self.bits.len());
        for ((o, &a), &b) in bits.iter_mut().zip(&self.bits).zip(&other.bits) {
            *o = f(a, b);
        }
        Mask { bits, len: self.len }
    }

    /// Lane-wise AND.
    pub fn and(&self, other: &Mask) -> Mask {
        self.zip_with(other, |a, b| a & b)
    }

    /// Lane-wise OR.
    pub fn or(&self, other: &Mask) -> Mask {
        self.zip_with(other, |a, b| a | b)
    }

    /// Lane-wise AND NOT (`self & !other`).
    pub fn and_not(&self, other: &Mask) -> Mask {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Complement within the block.
    pub fn not(&self) -> Mask {
        let mut bits = u64::take(self.bits.len());
        for (o, &a) in bits.iter_mut().zip(&self.bits) {
            *o = !a;
        }
        Self::trim(&mut bits, self.len);
        Mask { bits, len: self.len }
    }

    /// Iterate active lane indices in increasing order.
    pub fn lanes(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Number of warps the block spans (including trailing partial warp).
    pub fn warp_count(&self) -> usize {
        self.len.div_ceil(WARP)
    }

    /// The 32-bit activity pattern of warp `w`.
    pub fn warp_bits(&self, w: usize) -> u32 {
        let lane0 = w * WARP;
        debug_assert!(lane0 < self.len);
        let word = self.bits[lane0 / 64];
        let shifted = (word >> (lane0 % 64)) as u32;
        // A warp never straddles a u64 boundary (32 | 64).
        let width = (self.len - lane0).min(WARP);
        if width == WARP {
            shifted
        } else {
            shifted & ((1u32 << width) - 1)
        }
    }

    /// Does warp `w` have any active lane?
    pub fn warp_any(&self, w: usize) -> bool {
        self.warp_bits(w) != 0
    }

    /// Number of warps with at least one active lane.
    pub fn active_warps(&self) -> usize {
        (0..self.warp_count()).filter(|&w| self.warp_any(w)).count()
    }

    /// Iterate active lanes of warp `w`.
    pub fn warp_lanes(&self, w: usize) -> impl Iterator<Item = usize> + '_ {
        let base = w * WARP;
        let mut bits = self.warp_bits(w);
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(base + b)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        let a = Mask::all(70);
        assert_eq!(a.count(), 70);
        assert!(a.any());
        assert!(a.get(69));
        let n = Mask::none(70);
        assert_eq!(n.count(), 0);
        assert!(!n.any());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Mask::none(100);
        m.set(0, true);
        m.set(63, true);
        m.set(64, true);
        m.set(99, true);
        assert_eq!(m.count(), 4);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(99));
        m.set(63, false);
        assert!(!m.get(63));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::from_fn(64, |i| i % 2 == 0);
        let b = Mask::from_fn(64, |i| i % 3 == 0);
        assert_eq!(a.and(&b).count(), 11); // multiples of 6 in 0..64
        assert_eq!(a.or(&b).count(), 32 + 22 - 11);
        assert_eq!(a.not().count(), 32);
        assert_eq!(a.and_not(&b).count(), 32 - 11);
    }

    #[test]
    fn not_respects_length() {
        let m = Mask::none(33);
        assert_eq!(m.not().count(), 33); // not 64
    }

    #[test]
    fn lane_iteration_matches_bits() {
        let m = Mask::from_fn(130, |i| i % 7 == 0);
        let lanes: Vec<usize> = m.lanes().collect();
        let expect: Vec<usize> = (0..130).filter(|i| i % 7 == 0).collect();
        assert_eq!(lanes, expect);
    }

    #[test]
    fn warp_views() {
        let m = Mask::from_fn(96, |i| i < 40);
        assert_eq!(m.warp_count(), 3);
        assert_eq!(m.warp_bits(0), u32::MAX);
        assert_eq!(m.warp_bits(1), 0xFF); // lanes 32..40
        assert_eq!(m.warp_bits(2), 0);
        assert_eq!(m.active_warps(), 2);
        assert!(m.warp_any(1));
        assert!(!m.warp_any(2));
        let lanes: Vec<usize> = m.warp_lanes(1).collect();
        assert_eq!(lanes, (32..40).collect::<Vec<_>>());
    }

    #[test]
    fn partial_trailing_warp() {
        let m = Mask::all(40);
        assert_eq!(m.warp_count(), 2);
        assert_eq!(m.warp_bits(1), 0xFF);
        assert_eq!(m.active_warps(), 2);
    }
}
