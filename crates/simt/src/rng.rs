//! Random number generation primitives.
//!
//! The Park–Miller "minimal standard" LCG is the generator ACOTSP's
//! sequential code uses (`ran01`), and the device function the paper
//! substitutes for CURAND in version 3 of Table II. It is implemented here
//! once and shared by the CPU reference implementation and the simulated
//! kernels, so CPU/GPU runs can be seeded identically.

/// Modulus of the minimal-standard generator: `2^31 - 1`.
pub const PM_MODULUS: u32 = 2_147_483_647;
/// Multiplier of the minimal-standard generator.
pub const PM_MULTIPLIER: u64 = 16_807;

/// One Park–Miller step. State must be in `1..PM_MODULUS`; any other seed
/// is folded into range first.
#[inline]
pub fn park_miller(state: u32) -> u32 {
    let s = state % PM_MODULUS;
    let s = if s == 0 { 1 } else { s };
    ((s as u64 * PM_MULTIPLIER) % PM_MODULUS as u64) as u32
}

/// Park–Miller stream as an iterator-style struct for host code.
#[derive(Debug, Clone)]
pub struct PmRng {
    state: u32,
}

impl PmRng {
    /// Seed the stream (0 is remapped to 1, as the LCG has no zero state).
    pub fn new(seed: u32) -> Self {
        let s = seed % PM_MODULUS;
        PmRng { state: if s == 0 { 1 } else { s } }
    }

    /// Next raw state.
    pub fn next_u32(&mut self) -> u32 {
        self.state = park_miller(self.state);
        self.state
    }

    /// Next uniform value in `[0, 1)`, `f64` (as ACOTSP's `ran01`).
    pub fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 / PM_MODULUS as f64
    }

    /// Next uniform value in `[0, 1)`, `f32` (as the device function).
    pub fn next_f32(&mut self) -> f32 {
        self.next_u32() as f32 / PM_MODULUS as f32
    }

    /// Derive a decorrelated per-thread seed from a base seed and an index
    /// (splitmix-style avalanche, folded into the Park–Miller range).
    pub fn thread_seed(base: u64, thread: u64) -> u32 {
        let mut z = base ^ thread.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % (PM_MODULUS as u64 - 1)) as u32 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_miller_known_sequence() {
        // Classic test vector: starting from 1, the 10000th value is
        // 1043618065 (Park & Miller, 1988).
        let mut s = 1u32;
        for _ in 0..10_000 {
            s = park_miller(s);
        }
        assert_eq!(s, 1_043_618_065);
    }

    #[test]
    fn zero_state_is_remapped() {
        assert_ne!(park_miller(0), 0);
        assert_eq!(park_miller(0), park_miller(1));
        let mut r = PmRng::new(0);
        assert_ne!(r.next_u32(), 0);
    }

    #[test]
    fn stream_stays_in_unit_interval() {
        let mut r = PmRng::new(12345);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            let w = r.next_f32();
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = PmRng::new(99);
        let mut b = PmRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn thread_seeds_differ_and_stay_in_range() {
        let s0 = PmRng::thread_seed(42, 0);
        let s1 = PmRng::thread_seed(42, 1);
        assert_ne!(s0, s1);
        for t in 0..100 {
            let s = PmRng::thread_seed(42, t);
            assert!((1..PM_MODULUS).contains(&s));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = PmRng::new(7);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[(r.next_f64() * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} outside tolerance");
        }
    }
}
