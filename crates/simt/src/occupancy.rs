//! CUDA occupancy calculation.
//!
//! Resident blocks per SM are bounded by four resources — the block slots,
//! the warp slots, the register file and shared memory — exactly the
//! arithmetic of NVIDIA's occupancy calculator. Occupancy feeds the
//! latency-hiding term of the timing model: kernels with few resident
//! warps (e.g. the paper's task-parallel tour construction on small
//! instances) cannot hide their memory latency.

use crate::device::DeviceSpec;

/// Result of an occupancy computation for one launch configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps_per_sm: u32,
    /// `active_warps / max_warps` in `[0, 1]`.
    pub occupancy: f64,
    /// Which resource bound the result.
    pub limiter: Limiter,
    /// SMs that actually receive blocks (`min(grid, sm_count)`): a grid
    /// smaller than the chip leaves the rest idle, which matters for the
    /// latency-hiding term.
    pub busy_sms: u32,
}

/// The resource that capped residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    BlockSlots,
    WarpSlots,
    Registers,
    SharedMemory,
    /// The grid itself is too small to fill the SM.
    GridSize,
}

/// Compute occupancy for a launch.
///
/// `regs_per_thread` and `shared_bytes_per_block` are the kernel's declared
/// resource usage; `grid_blocks` caps residency when the whole grid fits.
pub fn occupancy(
    dev: &DeviceSpec,
    block_dim: u32,
    regs_per_thread: u32,
    shared_bytes_per_block: u32,
    grid_blocks: u32,
) -> Occupancy {
    assert!(block_dim >= 1 && block_dim <= dev.max_threads_per_block);
    let warps_per_block = dev.warps_per_block(block_dim);

    let by_block_slots = dev.max_blocks_per_sm;
    let by_warps = dev.max_warps_per_sm() / warps_per_block;
    let by_regs = if regs_per_thread == 0 {
        u32::MAX
    } else {
        dev.registers_per_sm / (regs_per_thread * block_dim)
    };
    let by_shared = dev.shared_mem_per_sm.checked_div(shared_bytes_per_block).unwrap_or(u32::MAX);

    let mut blocks = by_block_slots.min(by_warps).min(by_regs).min(by_shared);
    let mut limiter = if blocks == by_warps {
        Limiter::WarpSlots
    } else if blocks == by_block_slots {
        Limiter::BlockSlots
    } else if blocks == by_regs {
        Limiter::Registers
    } else {
        Limiter::SharedMemory
    };
    // Tie-break order above prefers reporting the architectural limits;
    // recompute precisely for determinism.
    if blocks == by_regs && by_regs < by_warps && by_regs < by_block_slots {
        limiter = Limiter::Registers;
    }
    if blocks == by_shared
        && by_shared < by_regs
        && by_shared < by_warps
        && by_shared < by_block_slots
    {
        limiter = Limiter::SharedMemory;
    }

    // A grid smaller than one wave cannot fill the SMs.
    let blocks_needed_per_sm = grid_blocks.div_ceil(dev.sm_count);
    if blocks_needed_per_sm < blocks {
        blocks = blocks_needed_per_sm;
        limiter = Limiter::GridSize;
    }

    let active_warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        active_warps_per_sm: active_warps,
        occupancy: active_warps as f64 / dev.max_warps_per_sm() as f64,
        limiter,
        busy_sms: grid_blocks.min(dev.sm_count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_c1060() {
        // 256 threads/block, light registers: 4 blocks x 8 warps = 32 warps.
        let d = DeviceSpec::tesla_c1060();
        let o = occupancy(&d, 256, 16, 0, 1000);
        assert_eq!(o.active_warps_per_sm, 32);
        assert_eq!(o.occupancy, 1.0);
    }

    #[test]
    fn register_limited() {
        let d = DeviceSpec::tesla_c1060();
        // 64 regs/thread x 256 threads = 16384 regs = whole file -> 1 block.
        let o = occupancy(&d, 256, 64, 0, 1000);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.active_warps_per_sm, 8);
    }

    #[test]
    fn shared_memory_limited() {
        let d = DeviceSpec::tesla_c1060();
        // 9 KB/block on a 16 KB SM -> 1 block.
        let o = occupancy(&d, 128, 10, 9 * 1024, 1000);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn block_slot_limited_small_blocks() {
        let d = DeviceSpec::tesla_c1060();
        // 32-thread blocks: 8 block slots x 1 warp = 8 warps, not 32.
        let o = occupancy(&d, 32, 8, 0, 1000);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, Limiter::BlockSlots);
        assert_eq!(o.active_warps_per_sm, 8);
        assert!((o.occupancy - 0.25).abs() < 1e-9);
    }

    #[test]
    fn small_grid_cannot_fill_sms() {
        let d = DeviceSpec::tesla_c1060();
        // A single 48-thread block on a 30-SM GPU: the paper's att48
        // task-parallel case — occupancy is tiny.
        let o = occupancy(&d, 48, 16, 0, 1);
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::GridSize);
        assert_eq!(o.active_warps_per_sm, 2);
    }

    #[test]
    fn fermi_has_more_warp_slots() {
        let d = DeviceSpec::tesla_m2050();
        let o = occupancy(&d, 256, 20, 0, 10_000);
        // 48 warp slots / 8 warps per block = 6 blocks; regs allow
        // 32768/(20*256) = 6 blocks as well.
        assert_eq!(o.blocks_per_sm, 6);
        assert_eq!(o.active_warps_per_sm, 48);
        assert_eq!(o.occupancy, 1.0);
    }

    #[test]
    #[should_panic]
    fn oversized_block_rejected() {
        let d = DeviceSpec::tesla_c1060();
        occupancy(&d, 1024, 16, 0, 1); // C1060 caps blocks at 512 threads
    }
}
