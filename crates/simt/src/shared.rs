//! Per-block shared memory.
//!
//! Storage is a flat arena of 4-byte words (f32 values are kept as raw
//! bits), allocated by kernels at block start — mirroring CUDA `__shared__`
//! arrays. Bank-conflict accounting happens in [`crate::block::BlockCtx`],
//! which knows the active mask; this module is pure storage plus the
//! word-address arithmetic the bank model needs.

use std::marker::PhantomData;

/// Typed handle into a block's shared memory arena.
pub struct ShPtr<T> {
    pub(crate) off_words: u32,
    pub(crate) len: u32,
    _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for ShPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ShPtr<T> {}

impl<T> ShPtr<T> {
    pub(crate) fn new(off_words: u32, len: u32) -> Self {
        ShPtr { off_words, len, _pd: PhantomData }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word address of element `idx` (bank = word address % banks).
    #[inline]
    pub(crate) fn word_addr(&self, idx: u32) -> u32 {
        debug_assert!(idx < self.len, "shared OOB: index {idx} of {}", self.len);
        self.off_words + idx
    }
}

/// A block's shared memory arena.
pub(crate) struct SharedMem {
    words: Vec<u32>,
    used_words: u32,
    budget_words: u32,
}

impl SharedMem {
    /// Arena with a byte budget (the launch's declared shared usage).
    pub(crate) fn new(budget_bytes: u32) -> Self {
        let budget_words = budget_bytes / 4;
        SharedMem { words: vec![0; budget_words as usize], used_words: 0, budget_words }
    }

    /// Allocate `len` 4-byte elements; `None` when the budget is exhausted.
    pub(crate) fn try_alloc(&mut self, len: u32) -> Option<u32> {
        if self.used_words + len > self.budget_words {
            return None;
        }
        let off = self.used_words;
        self.used_words += len;
        Some(off)
    }

    pub(crate) fn used_bytes(&self) -> u32 {
        self.used_words * 4
    }

    #[inline]
    pub(crate) fn load(&self, word: u32) -> u32 {
        self.words[word as usize]
    }

    #[inline]
    pub(crate) fn store(&mut self, word: u32, val: u32) {
        self.words[word as usize] = val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_respects_budget() {
        let mut sh = SharedMem::new(64); // 16 words
        let a = sh.try_alloc(10).unwrap();
        let b = sh.try_alloc(6).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(sh.used_bytes(), 64);
        assert!(sh.try_alloc(1).is_none());
    }

    #[test]
    fn words_zero_initialised_and_writable() {
        let mut sh = SharedMem::new(16);
        assert_eq!(sh.load(0), 0);
        sh.store(2, 0xDEAD);
        assert_eq!(sh.load(2), 0xDEAD);
    }

    #[test]
    fn ptr_word_addresses_offset() {
        let p = ShPtr::<f32> { off_words: 8, len: 4, _pd: PhantomData };
        assert_eq!(p.word_addr(0), 8);
        assert_eq!(p.word_addr(3), 11);
        assert_eq!(p.len(), 4);
    }
}
