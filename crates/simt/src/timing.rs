//! The kernel timing model.
//!
//! Event counters become milliseconds through a three-term roofline:
//!
//! ```text
//! compute_ms = busiest-SM issue cycles / shader clock
//! memory_ms  = DRAM transaction bytes / effective bandwidth
//! latency_ms = warp memory instructions x latency
//!              ------------------------------------  (exposed latency when
//!              SMs x resident warps x shader clock    too few warps hide it)
//!
//! kernel_ms  = max(compute, memory, latency) + launch overhead
//! ```
//!
//! The max() composition is the standard bulk-synchronous GPU model
//! (roofline / Hong-Kim style): a kernel is bound by whichever resource it
//! saturates; the others overlap. Effective bandwidth derates the pin
//! bandwidth by a fixed efficiency factor (DRAM never sustains 100%).

use crate::device::DeviceSpec;
use crate::occupancy::Occupancy;
use crate::stats::KernelStats;

/// Fraction of pin bandwidth a well-behaved kernel can actually sustain
/// (row activation, refresh, read/write turnaround eat the rest).
pub const DRAM_EFFICIENCY: f64 = 0.75;

/// Time estimate for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Issue-throughput bound.
    pub compute_ms: f64,
    /// DRAM bandwidth bound.
    pub memory_ms: f64,
    /// Exposed-latency bound (dominates at low occupancy).
    pub latency_ms: f64,
    /// Fixed driver/launch overhead.
    pub overhead_ms: f64,
    /// `max(compute, memory, latency) + overhead`.
    pub total_ms: f64,
}

impl KernelTime {
    /// Which bound produced `total_ms` (for reports).
    pub fn bound(&self) -> &'static str {
        if self.compute_ms >= self.memory_ms && self.compute_ms >= self.latency_ms {
            "compute"
        } else if self.memory_ms >= self.latency_ms {
            "memory"
        } else {
            "latency"
        }
    }

    /// A zero time (for folding).
    pub fn zero() -> Self {
        KernelTime {
            compute_ms: 0.0,
            memory_ms: 0.0,
            latency_ms: 0.0,
            overhead_ms: 0.0,
            total_ms: 0.0,
        }
    }

    /// Sequential composition of two kernel times (sums every component).
    pub fn then(&self, other: &KernelTime) -> KernelTime {
        KernelTime {
            compute_ms: self.compute_ms + other.compute_ms,
            memory_ms: self.memory_ms + other.memory_ms,
            latency_ms: self.latency_ms + other.latency_ms,
            overhead_ms: self.overhead_ms + other.overhead_ms,
            total_ms: self.total_ms + other.total_ms,
        }
    }
}

/// Convert counters to time for a launch with the given occupancy.
pub fn estimate(dev: &DeviceSpec, occ: &Occupancy, stats: &KernelStats) -> KernelTime {
    let cycles_per_ms = dev.cycles_per_ms();

    let compute_ms = stats.max_sm_cycles() / cycles_per_ms;

    let eff_bw_bytes_per_ms = dev.mem_bandwidth_gbps * DRAM_EFFICIENCY * 1e6; // GB/s -> bytes/ms
    let memory_ms = stats.dram_bytes / eff_bw_bytes_per_ms;

    let resident_warps = occ.active_warps_per_sm.max(1) as f64;
    // Latency is hidden by the warps resident on the SMs that actually
    // hold blocks; idle SMs contribute nothing (small grids expose it).
    let busy_sms = occ.busy_sms.max(1) as f64;
    let latency_ms = stats.mem_warp_instructions * dev.mem_latency_cycles as f64
        / (busy_sms * resident_warps * cycles_per_ms);

    let overhead_ms = dev.launch_overhead_us / 1000.0;
    let total_ms = compute_ms.max(memory_ms).max(latency_ms) + overhead_ms;
    KernelTime { compute_ms, memory_ms, latency_ms, overhead_ms, total_ms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{occupancy, Occupancy};

    fn occ_full(dev: &DeviceSpec) -> Occupancy {
        occupancy(dev, 256, 16, 0, 100_000)
    }

    #[test]
    fn compute_bound_kernel() {
        let dev = DeviceSpec::tesla_c1060();
        let mut s = KernelStats::for_sms(dev.sm_count as usize);
        s.issue_cycles_per_sm[0] = 1_296_000.0; // exactly 1 ms on SM 0
        let t = estimate(&dev, &occ_full(&dev), &s);
        assert!((t.compute_ms - 1.0).abs() < 1e-9);
        assert_eq!(t.bound(), "compute");
        assert!(t.total_ms > 1.0); // + overhead
    }

    #[test]
    fn memory_bound_kernel() {
        let dev = DeviceSpec::tesla_c1060();
        let mut s = KernelStats::for_sms(dev.sm_count as usize);
        // 76.5 MB at 76.5 GB/s effective = 1 ms.
        s.dram_bytes = dev.mem_bandwidth_gbps * DRAM_EFFICIENCY * 1e6;
        let t = estimate(&dev, &occ_full(&dev), &s);
        assert!((t.memory_ms - 1.0).abs() < 1e-9);
        assert_eq!(t.bound(), "memory");
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let dev = DeviceSpec::tesla_c1060();
        let mut s = KernelStats::for_sms(dev.sm_count as usize);
        s.mem_warp_instructions = 10_000.0;
        let low = occupancy(&dev, 32, 16, 0, 1); // 1 warp resident
        let high = occ_full(&dev);
        let t_low = estimate(&dev, &low, &s);
        let t_high = estimate(&dev, &high, &s);
        assert!(t_low.latency_ms > t_high.latency_ms * 10.0);
    }

    #[test]
    fn overhead_floors_every_launch() {
        let dev = DeviceSpec::tesla_m2050();
        let s = KernelStats::for_sms(dev.sm_count as usize);
        let t = estimate(&dev, &occ_full(&dev), &s);
        assert!((t.total_ms - dev.launch_overhead_us / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn then_accumulates() {
        let a = KernelTime {
            compute_ms: 1.0,
            memory_ms: 0.5,
            latency_ms: 0.1,
            overhead_ms: 0.007,
            total_ms: 1.007,
        };
        let b = a.then(&a);
        assert!((b.total_ms - 2.014).abs() < 1e-12);
        assert!((b.compute_ms - 2.0).abs() < 1e-12);
    }
}
