//! Property tests for the SIMT simulator.

use aco_simt::coalesce::{coalesce_cc13_half_warp, lines_cc20};
use aco_simt::prelude::*;
use aco_simt::rng::{park_miller, PmRng, PM_MODULUS};
use aco_simt::{occupancy, Mask};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn cc13_transactions_cover_every_access_and_respect_bounds(
        addrs in prop::collection::vec(0u64..100_000, 1..16),
    ) {
        let addrs: Vec<u64> = addrs.into_iter().map(|a| a * 4).collect();
        let ts = coalesce_cc13_half_warp(&addrs);
        // Coverage: every 4-byte access inside some transaction window.
        for &a in &addrs {
            prop_assert!(ts.iter().any(|t| a >= t.base && a + 4 <= t.base + t.bytes as u64));
        }
        // At most one transaction per access; sizes in {32, 64, 128};
        // bases aligned to their size.
        prop_assert!(ts.len() <= addrs.len());
        for t in &ts {
            prop_assert!(matches!(t.bytes, 32 | 64 | 128));
            prop_assert_eq!(t.base % t.bytes as u64, 0);
        }
    }

    #[test]
    fn fermi_lines_are_distinct_aligned_and_minimal(
        addrs in prop::collection::vec(0u64..100_000, 1..32),
    ) {
        let addrs: Vec<u64> = addrs.into_iter().map(|a| a * 4).collect();
        let lines = lines_cc20(&addrs);
        for w in lines.windows(2) {
            prop_assert!(w[0] < w[1], "sorted and deduped");
        }
        for &l in &lines {
            prop_assert_eq!(l % 128, 0);
        }
        for &a in &addrs {
            prop_assert!(lines.contains(&(a & !127)));
        }
    }

    #[test]
    fn mask_algebra_laws(bits_a in any::<[bool; 64]>(), bits_b in any::<[bool; 64]>()) {
        let a = Mask::from_fn(64, |i| bits_a[i]);
        let b = Mask::from_fn(64, |i| bits_b[i]);
        prop_assert_eq!(a.and(&b).count(), b.and(&a).count());
        prop_assert_eq!(a.or(&b).count() + a.and(&b).count(), a.count() + b.count());
        prop_assert_eq!(a.not().count(), 64 - a.count());
        prop_assert_eq!(a.and_not(&b).count(), a.count() - a.and(&b).count());
        // Warp views partition the lanes.
        let total: usize = (0..a.warp_count()).map(|w| a.warp_bits(w).count_ones() as usize).sum();
        prop_assert_eq!(total, a.count());
    }

    #[test]
    fn park_miller_stays_in_range_and_never_sticks(seed in 0u32..u32::MAX) {
        let mut s = seed;
        for _ in 0..100 {
            s = park_miller(s);
            prop_assert!((1..PM_MODULUS).contains(&s));
        }
        let mut r = PmRng::new(seed);
        let v = r.next_f32();
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn occupancy_is_monotone_in_resources(
        block_pow in 5u32..9, // 32..256 threads
        regs in 1u32..40,
        shared_kb in 0u32..16,
    ) {
        let dev = DeviceSpec::tesla_c1060();
        let block = 1 << block_pow;
        let o = occupancy(&dev, block, regs, shared_kb * 1024, 10_000);
        prop_assert!(o.blocks_per_sm >= 1 || shared_kb * 1024 > dev.shared_mem_per_sm);
        prop_assert!(o.occupancy <= 1.0);
        // More registers can never increase residency.
        let o2 = occupancy(&dev, block, regs + 8, shared_kb * 1024, 10_000);
        prop_assert!(o2.blocks_per_sm <= o.blocks_per_sm);
        // More shared memory can never increase residency.
        let o3 = occupancy(&dev, block, regs, (shared_kb + 1) * 1024, 10_000);
        prop_assert!(o3.blocks_per_sm <= o.blocks_per_sm);
    }
}

/// A memory-streaming kernel whose grid shape is a proptest variable:
/// whatever the geometry, counters must balance.
struct Stream {
    buf: DevicePtr<f32>,
    n: u32,
}

impl Kernel for Stream {
    fn name(&self) -> &'static str {
        "stream"
    }
    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let i = ctx.global_thread_idx();
        let limit = ctx.splat_u32(self.n);
        let ok = ctx.ult(&i, &limit);
        ctx.if_then(gm, &ok, |ctx, gm| {
            let x = ctx.ld_global_f32(gm, self.buf, &i);
            let one = ctx.splat_f32(1.0);
            let y = ctx.fadd(&x, &one);
            ctx.st_global_f32(gm, self.buf, &i, &y);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn launch_counters_balance_for_any_geometry(
        n in 1usize..5000,
        block_pow in 5u32..9,
    ) {
        let dev = DeviceSpec::tesla_c1060();
        let mut gm = GlobalMem::new();
        let buf = gm.alloc_f32(n);
        let block = 1u32 << block_pow;
        let grid = (n as u32).div_ceil(block);
        let k = Stream { buf, n: n as u32 };
        let r = launch(&dev, &LaunchConfig::new(grid, block), &k, &mut gm, SimMode::Full)
            .expect("valid launch");
        // Functional result: every element incremented exactly once.
        prop_assert!(gm.f32(buf).iter().all(|&v| v == 1.0));
        // Counter sanity: traffic at least the useful bytes, at most the
        // fully-uncoalesced worst case.
        let useful = (2 * 4 * n) as f64;
        prop_assert!(r.stats.dram_bytes >= useful);
        prop_assert!(r.stats.dram_bytes <= useful * 16.0);
        prop_assert!(r.stats.ld_transactions >= 1.0);
        prop_assert!(r.time.total_ms > 0.0);
    }

    #[test]
    fn sampled_launches_track_full_launches(
        blocks in 8u32..64,
        sample in 2u32..8,
    ) {
        let dev = DeviceSpec::tesla_c1060();
        let n = (blocks * 128) as usize;
        let run = |mode: SimMode| {
            let mut gm = GlobalMem::new();
            let buf = gm.alloc_f32(n);
            let k = Stream { buf, n: n as u32 };
            launch(&dev, &LaunchConfig::new(blocks, 128), &k, &mut gm, mode).expect("valid")
        };
        let full = run(SimMode::Full);
        let sampled = run(SimMode::SampleBlocks(sample));
        let rel = (sampled.stats.dram_bytes - full.stats.dram_bytes).abs()
            / full.stats.dram_bytes.max(1.0);
        prop_assert!(rel < 0.15, "dram bytes off by {rel}");
        let relt = (sampled.time.total_ms - full.time.total_ms).abs() / full.time.total_ms;
        prop_assert!(relt < 0.20, "time off by {relt}");
    }
}
