//! A persistent, structured event journal: the engine's flight recorder.
//!
//! Every lifecycle event of every job — submit, placement, failed
//! attempt, sampled iteration statistics, stagnation-detector edges,
//! completion — is appended as one flat JSONL line with a stable
//! schema (the `"ev"` field discriminates). Lines land in a bounded
//! in-memory ring (oldest evicted first) and, when configured with a
//! path, are also appended to a file so post-mortems survive the
//! process.
//!
//! The journal is write-only telemetry: recording never feeds back into
//! scheduling or solving. Timestamps are wall-clock offsets from engine
//! start, so journal *content* varies run to run — only solve results
//! must stay bit-identical, and those never read the journal.
//!
//! **Anchoring.** `ts_ms` alone cannot align journals from different
//! runs, so a journal configured with an engine-start epoch
//! ([`JournalConfig::epoch_ms`] — injected once at construction, never
//! `SystemTime::now()` on the hot path) emits a leading
//! `{"ev":"meta","epoch_ms":…}` header line; absolute event time is
//! `epoch_ms + ts_ms`. [`journal_epoch_ms`] recovers the anchor from an
//! exported document, and [`replay_timeline`] skips the header.
//!
//! **Sequencing.** Every line (the meta header included) carries an
//! implicit monotone sequence number starting at 0; [`Journal::export_from`]
//! reads the retained suffix from any cursor, which is what the `/events`
//! Server-Sent-Events endpoint uses for `Last-Event-ID` resume.
//!
//! [`replay_timeline`] parses an exported journal back into a
//! `JobTimeline` for one job, reconstructing backend, device, attempts,
//! cache attribution, wall times and the dynamics summary without the
//! live engine.

use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::dynamics::{DynamicsSummary, IterationStats};
use crate::metrics::json_escape as esc;
use crate::trace::{AttemptSpan, JobTimeline};

/// Default in-memory retention (JSONL lines).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Knobs for the engine-wide event journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalConfig {
    /// In-memory ring bound (lines); oldest evicted first.
    pub capacity: usize,
    /// Record every `sample_every`-th iteration event (1 = all; 0 is
    /// treated as 1). Submit/placement/attempt/stagnation/complete
    /// events are never sampled away.
    pub sample_every: u64,
    /// Also append every line to this file (best-effort: an unopenable
    /// path disables persistence and is reported via
    /// [`Journal::file_error`], never a panic).
    pub path: Option<PathBuf>,
    /// Wall-clock anchor (Unix epoch ms) of the journal's `ts_ms = 0`,
    /// injected by the owner at construction — the engine captures it
    /// once at startup, so the hot path never reads the system clock.
    /// When set, the journal's first line is a `{"ev":"meta"}` header
    /// carrying it, and exported documents from different runs become
    /// alignable (`epoch_ms + ts_ms`).
    pub epoch_ms: Option<u64>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            capacity: DEFAULT_JOURNAL_CAPACITY,
            sample_every: 1,
            path: None,
            epoch_ms: None,
        }
    }
}

impl JournalConfig {
    /// Builder: set the in-memory line bound.
    pub fn capacity(mut self, lines: usize) -> Self {
        self.capacity = lines;
        self
    }

    /// Builder: keep every `stride`-th iteration event.
    pub fn sample_every(mut self, stride: u64) -> Self {
        self.sample_every = stride;
        self
    }

    /// Builder: persist lines to `path` (JSONL, appended).
    pub fn path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Builder: anchor `ts_ms = 0` at this wall-clock instant (Unix
    /// epoch ms). See [`JournalConfig::epoch_ms`].
    pub fn epoch_ms(mut self, epoch_ms: u64) -> Self {
        self.epoch_ms = Some(epoch_ms);
        self
    }
}

struct JournalInner {
    ring: VecDeque<String>,
    evicted: u64,
    file: Option<std::io::BufWriter<std::fs::File>>,
    file_error: Option<String>,
}

/// The bounded engine-wide JSONL sink. All methods take `&self` (one
/// short mutex hold per event).
pub struct Journal {
    capacity: usize,
    sample_every: u64,
    epoch_ms: Option<u64>,
    inner: Mutex<JournalInner>,
}

impl Journal {
    /// Open a journal. File persistence failures are recorded, not
    /// raised — an engine must not fail to start over telemetry. A
    /// configured epoch emits the `{"ev":"meta"}` header as line 0.
    pub fn new(cfg: JournalConfig) -> Self {
        let (file, file_error) = match &cfg.path {
            None => (None, None),
            Some(p) => match std::fs::OpenOptions::new().create(true).append(true).open(p) {
                Ok(f) => (Some(std::io::BufWriter::new(f)), None),
                Err(e) => (None, Some(format!("{}: {e}", p.display()))),
            },
        };
        let journal = Journal {
            capacity: cfg.capacity.max(1),
            sample_every: cfg.sample_every.max(1),
            epoch_ms: cfg.epoch_ms,
            inner: Mutex::new(JournalInner { ring: VecDeque::new(), evicted: 0, file, file_error }),
        };
        if let Some(epoch) = cfg.epoch_ms {
            journal.push(format!("{{\"ev\":\"meta\",\"epoch_ms\":{epoch},\"schema\":1}}"));
        }
        journal
    }

    /// The iteration sampling stride (≥ 1).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Why file persistence is off, if it failed to start.
    pub fn file_error(&self) -> Option<String> {
        self.inner.lock().expect("journal lock").file_error.clone()
    }

    /// Lines currently retained in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock").ring.len()
    }

    /// Is the in-memory ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("journal lock").evicted
    }

    /// The wall-clock anchor of `ts_ms = 0`, when configured.
    pub fn epoch_ms(&self) -> Option<u64> {
        self.epoch_ms
    }

    /// The sequence number the *next* recorded line will get. Sequence
    /// numbers are assigned monotonically from 0 (the meta header, when
    /// configured, is line 0) and survive ring eviction: the retained
    /// line at ring index `i` has sequence `evicted + i`.
    pub fn next_seq(&self) -> u64 {
        let inner = self.inner.lock().expect("journal lock");
        inner.evicted + inner.ring.len() as u64
    }

    /// The retained lines as one JSONL document (oldest first, trailing
    /// newline).
    pub fn export(&self) -> String {
        let inner = self.inner.lock().expect("journal lock");
        let mut out = String::new();
        for line in &inner.ring {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// The retained `(sequence, line)` suffix starting at `from_seq`
    /// (inclusive). A cursor older than the ring returns everything
    /// still retained; a cursor at or past [`Journal::next_seq`] returns
    /// nothing. This is the `/events` resume surface: replaying from a
    /// mid-stream cursor yields exactly the journal suffix.
    pub fn export_from(&self, from_seq: u64) -> Vec<(u64, String)> {
        let inner = self.inner.lock().expect("journal lock");
        let base = inner.evicted;
        inner
            .ring
            .iter()
            .enumerate()
            .map(|(i, line)| (base + i as u64, line.clone()))
            .filter(|(seq, _)| *seq >= from_seq)
            .collect()
    }

    fn push(&self, line: String) {
        let mut inner = self.inner.lock().expect("journal lock");
        if let Some(f) = inner.file.as_mut() {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.evicted += 1;
        }
        inner.ring.push_back(line);
    }

    /// Record a job submission.
    #[allow(clippy::too_many_arguments)]
    pub fn record_submit(
        &self,
        ts_ms: f64,
        job: u64,
        backend: &str,
        instance: &str,
        n: usize,
        iterations: usize,
        seed: u64,
    ) {
        self.push(format!(
            "{{\"ev\":\"submit\",\"ts_ms\":{},\"job\":{job},\"backend\":\"{}\",\
             \"instance\":\"{}\",\"n\":{n},\"iterations\":{iterations},\"seed\":{seed}}}",
            fmt_ms(ts_ms),
            esc(backend),
            esc(instance),
        ));
    }

    /// Record a submit-time device placement.
    pub fn record_placement(&self, ts_ms: f64, job: u64, device: u32, device_name: &str) {
        self.push(format!(
            "{{\"ev\":\"placement\",\"ts_ms\":{},\"job\":{job},\"device\":{device},\
             \"device_name\":\"{}\"}}",
            fmt_ms(ts_ms),
            esc(device_name),
        ));
    }

    /// Record one failed attempt of a supervised job.
    pub fn record_attempt(
        &self,
        ts_ms: f64,
        job: u64,
        attempt: u32,
        device: Option<u32>,
        error: &str,
    ) {
        self.push(format!(
            "{{\"ev\":\"attempt\",\"ts_ms\":{},\"job\":{job},\"attempt\":{attempt},\
             \"device\":{},\"error\":\"{}\"}}",
            fmt_ms(ts_ms),
            fmt_opt_u32(device),
            esc(error),
        ));
    }

    /// Record a sampled iteration event (the caller applies
    /// [`Journal::sample_every`]; stats fields are omitted when the run
    /// computed none).
    #[allow(clippy::too_many_arguments)]
    pub fn record_iteration(
        &self,
        ts_ms: f64,
        job: u64,
        iteration: u64,
        iter_best: u64,
        best_so_far: u64,
        stats: Option<&IterationStats>,
    ) {
        let dyn_part = match stats {
            None => String::new(),
            Some(s) => format!(
                ",\"mean_len\":{},\"stddev_len\":{},\"improvement\":{},\"entropy\":{},\
                 \"lambda_branching\":{},\"stagnant_iterations\":{},\"stagnant\":{}",
                fmt_f(s.mean_len),
                fmt_f(s.stddev_len),
                s.improvement,
                fmt_f(s.entropy),
                fmt_f(s.lambda_branching),
                s.stagnant_iterations,
                s.stagnant,
            ),
        };
        self.push(format!(
            "{{\"ev\":\"iteration\",\"ts_ms\":{},\"job\":{job},\"iteration\":{iteration},\
             \"iter_best\":{iter_best},\"best_so_far\":{best_so_far}{dyn_part}}}",
            fmt_ms(ts_ms),
        ));
    }

    /// Record the stagnation detector newly firing.
    pub fn record_stagnation(
        &self,
        ts_ms: f64,
        job: u64,
        iteration: u64,
        stagnant_iterations: u64,
        entropy: f64,
    ) {
        self.push(format!(
            "{{\"ev\":\"stagnation\",\"ts_ms\":{},\"job\":{job},\"iteration\":{iteration},\
             \"stagnant_iterations\":{stagnant_iterations},\"entropy\":{}}}",
            fmt_ms(ts_ms),
            fmt_f(entropy),
        ));
    }

    /// Record a job finishing (any outcome).
    #[allow(clippy::too_many_arguments)]
    pub fn record_complete(
        &self,
        ts_ms: f64,
        job: u64,
        outcome: &str,
        backend: &str,
        device: Option<u32>,
        best_len: u64,
        iterations: usize,
        queue_wait_ms: f64,
        solve_wall_ms: f64,
        cache_hit: Option<bool>,
        attempts: u32,
        restarts: u64,
    ) {
        self.push(format!(
            "{{\"ev\":\"complete\",\"ts_ms\":{},\"job\":{job},\"outcome\":\"{}\",\
             \"backend\":\"{}\",\"device\":{},\"best_len\":{best_len},\
             \"iterations\":{iterations},\"queue_wait_ms\":{},\"solve_wall_ms\":{},\
             \"cache_hit\":{},\"attempts\":{attempts},\"restarts\":{restarts}}}",
            fmt_ms(ts_ms),
            esc(outcome),
            esc(backend),
            fmt_opt_u32(device),
            fmt_ms(queue_wait_ms),
            fmt_ms(solve_wall_ms),
            match cache_hit {
                None => "null".to_string(),
                Some(b) => b.to_string(),
            },
        ));
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("sample_every", &self.sample_every)
            .field("retained", &self.len())
            .field("evicted", &self.evicted())
            .finish()
    }
}

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

fn fmt_opt_u32(v: Option<u32>) -> String {
    match v {
        Some(d) => d.to_string(),
        None => "null".to_string(),
    }
}

// --- replay ----------------------------------------------------------------

/// One parsed value of a flat journal line.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Val {
    fn num(&self) -> Option<f64> {
        match self {
            Val::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one flat JSON object (`{"k": v, ...}` with string / number /
/// bool / null values — the only shapes the journal emits). Returns
/// `None` on malformed input instead of panicking, so a truncated
/// journal line degrades to a skipped record.
fn parse_flat(line: &str) -> Option<Vec<(String, Val)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut out = Vec::new();
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                return Some(out);
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => Val::Str(parse_string(&mut chars)?),
            't' => {
                for expect in "true".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Val::Bool(true)
            }
            'f' => {
                for expect in "false".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Val::Bool(false)
            }
            'n' => {
                for expect in "null".chars() {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                Val::Null
            }
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || "+-.eE".contains(c) {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                Val::Num(num.parse().ok()?)
            }
        };
        out.push((key, val));
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn get<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_num(fields: &[(String, Val)], key: &str) -> Option<f64> {
    get(fields, key).and_then(Val::num)
}

fn get_u64(fields: &[(String, Val)], key: &str) -> Option<u64> {
    get_num(fields, key).map(|v| v as u64)
}

/// The wall-clock anchor of an exported journal: the `epoch_ms` of its
/// `{"ev":"meta"}` header line, when the recording engine configured one
/// (see [`JournalConfig::epoch_ms`]). Absolute event time is
/// `epoch_ms + ts_ms`.
pub fn journal_epoch_ms(jsonl: &str) -> Option<u64> {
    jsonl.lines().find_map(|line| {
        let fields = parse_flat(line)?;
        if get(&fields, "ev").and_then(Val::str) == Some("meta") {
            get_u64(&fields, "epoch_ms")
        } else {
            None
        }
    })
}

/// Rebuild one completed job's [`JobTimeline`] from an exported journal
/// (see [`Journal::export`]). Returns `None` when the journal holds no
/// `complete` event for `job` — an in-flight or evicted job cannot be
/// replayed. A leading `{"ev":"meta"}` header (journals recorded with an
/// epoch anchor — recover it with [`journal_epoch_ms`]) is accepted and
/// skipped. Iteration *phase spans* are not journaled, so the replayed
/// timeline carries wall/queue/cache/attempt/dynamics data but an empty
/// `iterations` list.
pub fn replay_timeline(jsonl: &str, job: u64) -> Option<JobTimeline> {
    let mut backend = String::new();
    let mut device = None;
    let mut queue_wait_ms = 0.0;
    let mut solve_wall_ms = 0.0;
    let mut artifact_cache_hit = None;
    let mut attempts = Vec::new();
    let mut dynamics = DynamicsSummary::new(64);
    let mut completed = false;
    for line in jsonl.lines() {
        let Some(fields) = parse_flat(line) else { continue };
        if get_u64(&fields, "job") != Some(job) {
            continue;
        }
        match get(&fields, "ev").and_then(Val::str) {
            Some("submit") => {
                if let Some(b) = get(&fields, "backend").and_then(Val::str) {
                    backend = b.to_string();
                }
            }
            Some("placement") => device = get_u64(&fields, "device").map(|d| d as u32),
            Some("attempt") => attempts.push(AttemptSpan {
                attempt: get_u64(&fields, "attempt").unwrap_or(0) as u32,
                device: get_u64(&fields, "device").map(|d| d as u32),
                error: get(&fields, "error").and_then(Val::str).unwrap_or("").to_string(),
            }),
            Some("iteration") => {
                let (Some(iteration), Some(best_so_far)) =
                    (get_u64(&fields, "iteration"), get_u64(&fields, "best_so_far"))
                else {
                    continue;
                };
                if let Some(mean_len) = get_num(&fields, "mean_len") {
                    let stats = IterationStats {
                        mean_len,
                        stddev_len: get_num(&fields, "stddev_len").unwrap_or(0.0),
                        improvement: get_u64(&fields, "improvement").unwrap_or(0),
                        entropy: get_num(&fields, "entropy").unwrap_or(0.0),
                        lambda_branching: get_num(&fields, "lambda_branching").unwrap_or(0.0),
                        stagnant_iterations: get_u64(&fields, "stagnant_iterations").unwrap_or(0),
                        stagnant: matches!(get(&fields, "stagnant"), Some(Val::Bool(true))),
                    };
                    dynamics.record(iteration, best_so_far, &stats);
                }
            }
            Some("complete") => {
                completed = true;
                if let Some(b) = get(&fields, "backend").and_then(Val::str) {
                    backend = b.to_string();
                }
                if let Some(d) = get_u64(&fields, "device") {
                    device = Some(d as u32);
                }
                queue_wait_ms = get_num(&fields, "queue_wait_ms").unwrap_or(0.0);
                solve_wall_ms = get_num(&fields, "solve_wall_ms").unwrap_or(0.0);
                artifact_cache_hit = match get(&fields, "cache_hit") {
                    Some(Val::Bool(b)) => Some(*b),
                    _ => None,
                };
            }
            _ => {}
        }
    }
    completed.then(|| JobTimeline {
        job,
        backend,
        device,
        queue_wait_ms,
        placement_ms: 0.0,
        first_event_ms: None,
        solve_wall_ms,
        post_pass_ms: 0.0,
        artifact_cache_hit,
        iterations: Vec::new(),
        dropped_iterations: 0,
        kernels: Vec::new(),
        attempts,
        dynamics: (dynamics.iterations > 0).then_some(dynamics),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_exports_jsonl() {
        let j = Journal::new(JournalConfig::default().capacity(3));
        for job in 0..5u64 {
            j.record_submit(1.0, job, "auto", "inst", 10, 5, job);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 2);
        let text = j.export();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| parse_flat(l).is_some()), "every line parses");
        assert!(text.contains("\"job\":4"));
        assert!(!text.contains("\"job\":0"), "oldest lines evicted");
    }

    #[test]
    fn epoch_meta_line_anchors_and_replay_skips_it() {
        let j = Journal::new(JournalConfig::default().epoch_ms(1_700_000_000_123));
        assert_eq!(j.epoch_ms(), Some(1_700_000_000_123));
        assert_eq!(j.len(), 1, "meta header is line 0");
        j.record_submit(0.1, 5, "auto", "inst", 8, 2, 0);
        j.record_complete(3.0, 5, "completed", "cpu-seq", None, 42, 2, 0.2, 2.8, Some(false), 1, 0);
        let text = j.export();
        assert!(text.starts_with("{\"ev\":\"meta\",\"epoch_ms\":1700000000123"));
        assert_eq!(journal_epoch_ms(&text), Some(1_700_000_000_123));
        let t = replay_timeline(&text, 5).expect("meta line does not break replay");
        assert_eq!(t.backend, "cpu-seq");
        // No epoch configured → no header, no anchor.
        let bare = Journal::new(JournalConfig::default());
        bare.record_placement(1.0, 1, 0, "g0");
        assert_eq!(bare.epoch_ms(), None);
        assert_eq!(journal_epoch_ms(&bare.export()), None);
    }

    #[test]
    fn sequence_numbers_survive_eviction_and_resume_from_cursor() {
        let j = Journal::new(JournalConfig::default().capacity(4));
        for job in 0..10u64 {
            j.record_submit(job as f64, job, "auto", "inst", 8, 1, job);
        }
        assert_eq!(j.next_seq(), 10);
        assert_eq!(j.evicted(), 6);
        // The full retained suffix: sequences 6..=9.
        let all = j.export_from(0);
        assert_eq!(all.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        // A mid-stream cursor replays exactly the suffix at that cursor.
        let tail = j.export_from(8);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, 8);
        assert!(tail[0].1.contains("\"job\":8"), "sequence matches the recorded line");
        assert!(j.export_from(10).is_empty(), "cursor at next_seq yields nothing");
        // export() and export_from(0) agree on content.
        let pairs = j.export_from(0);
        let doc = j.export();
        assert_eq!(
            doc.lines().collect::<Vec<_>>(),
            pairs.iter().map(|(_, l)| l.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hostile_strings_round_trip() {
        let j = Journal::new(JournalConfig::default());
        j.record_submit(0.5, 1, "we\"ird\\back", "inst{a}\nline", 4, 1, 0);
        let text = j.export();
        let fields = parse_flat(text.lines().next().unwrap()).expect("line parses");
        assert_eq!(get(&fields, "backend").and_then(Val::str), Some("we\"ird\\back"));
        assert_eq!(get(&fields, "instance").and_then(Val::str), Some("inst{a}\nline"));
    }

    #[test]
    fn file_persistence_appends_lines() {
        let path = std::env::temp_dir().join(format!("aco-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::new(JournalConfig::default().path(&path));
            assert!(j.file_error().is_none());
            j.record_placement(1.0, 7, 2, "g2");
            j.record_stagnation(2.0, 7, 40, 25, 0.031);
        }
        let text = std::fs::read_to_string(&path).expect("journal file written");
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"ev\":\"stagnation\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unopenable_path_reports_error_and_keeps_recording() {
        let j = Journal::new(JournalConfig::default().path("/nonexistent-dir-aco/journal.jsonl"));
        assert!(j.file_error().is_some());
        j.record_submit(0.0, 1, "b", "i", 2, 1, 0);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn replay_reconstructs_a_completed_job() {
        let j = Journal::new(JournalConfig::default());
        j.record_submit(0.1, 9, "auto", "inst", 30, 4, 3);
        j.record_placement(0.2, 9, 1, "g1");
        j.record_attempt(0.5, 9, 1, Some(1), "kernel fault: injected");
        let stats = IterationStats {
            mean_len: 120.5,
            stddev_len: 4.25,
            improvement: 10,
            entropy: 0.75,
            lambda_branching: 3.5,
            stagnant_iterations: 0,
            stagnant: false,
        };
        j.record_iteration(1.0, 9, 0, 110, 110, Some(&stats));
        j.record_iteration(1.5, 9, 1, 112, 110, Some(&stats));
        j.record_complete(
            2.0,
            9,
            "completed",
            "gpu-nnlist-atomic",
            Some(1),
            110,
            4,
            0.4,
            1.6,
            Some(true),
            2,
            0,
        );
        // Interleaved other-job noise must not leak in.
        j.record_submit(0.3, 10, "cpu-seq", "other", 30, 4, 4);
        let text = j.export();
        let t = replay_timeline(&text, 9).expect("job 9 completed");
        assert_eq!(t.job, 9);
        assert_eq!(t.backend, "gpu-nnlist-atomic");
        assert_eq!(t.device, Some(1));
        assert!((t.queue_wait_ms - 0.4).abs() < 1e-9);
        assert!((t.solve_wall_ms - 1.6).abs() < 1e-9);
        assert_eq!(t.artifact_cache_hit, Some(true));
        assert_eq!(t.attempts.len(), 1);
        assert_eq!(t.attempts[0].error, "kernel fault: injected");
        let d = t.dynamics.expect("iteration stats journaled");
        assert_eq!(d.iterations, 2);
        assert_eq!(d.final_best, 110);
        assert!((d.final_entropy - 0.75).abs() < 1e-6);
        assert!(replay_timeline(&text, 10).is_none(), "job 10 never completed");
    }
}
