//! Rolling, time-bucketed aggregation over metrics snapshots: the
//! serving layer's answer to "what happened in the last minute", as
//! opposed to the registry's lifetime-cumulative counters.
//!
//! The mechanism is deliberately snapshot-based: a sampler calls
//! [`RollingWindow::record`] with the engine's bridged
//! [`MetricsSnapshot`] at each clock tick, and every windowed quantity —
//! throughput, failure rate, latency quantiles, per-device utilisation
//! and fault rates — is derived from the *difference* between the newest
//! frame and the frame at the window's far edge. Nothing here touches
//! the hot path: counters and histograms keep their lock-free handles,
//! and windowing reads them exactly as the Prometheus export does.
//!
//! Time is injected through the [`Clock`] trait. Production uses
//! [`MonotonicClock`] (milliseconds since engine start); tests use
//! [`ManualClock`], which makes every window computation — bucket
//! placement, rates, p50/p95/p99, burn rates — a pure function of the
//! recorded values, bit-for-bit deterministic and instant to drive
//! through hours of simulated time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// A millisecond time source for the windowing layer. Implementations
/// must be monotone non-decreasing; the epoch is arbitrary (the prod
/// clock uses its own construction time).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Milliseconds since this clock's epoch.
    fn now_ms(&self) -> u64;
}

/// The production clock: milliseconds since construction, from
/// [`Instant`] (never the wall clock, so suspends/NTP steps cannot run
/// a window backwards).
#[derive(Debug)]
pub struct MonotonicClock {
    started: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock { started: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// A hand-cranked clock for deterministic tests: starts at 0 (or
/// [`ManualClock::at`]), moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock frozen at `ms`.
    pub fn at(ms: u64) -> Self {
        ManualClock { now: AtomicU64::new(ms) }
    }

    /// Jump to an absolute time (must not move backwards; a backwards
    /// set is clamped to the current time).
    pub fn set(&self, ms: u64) {
        self.now.fetch_max(ms, Ordering::SeqCst);
    }

    /// Advance by `ms`.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Default bucket width for [`WindowConfig`] (one frame per second).
pub const DEFAULT_BUCKET_MS: u64 = 1_000;

/// Default frame retention (two minutes of 1 s buckets).
pub const DEFAULT_WINDOW_BUCKETS: usize = 120;

/// Knobs for the rolling-window layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowConfig {
    /// Time-bucket width: two samples landing in the same bucket
    /// collapse to the newer one, so the sampler cadence bounds frame
    /// growth but never correctness.
    pub bucket_ms: u64,
    /// Retained frame bound (oldest evicted first); `bucket_ms ×
    /// buckets` is the longest answerable window.
    pub buckets: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { bucket_ms: DEFAULT_BUCKET_MS, buckets: DEFAULT_WINDOW_BUCKETS }
    }
}

impl WindowConfig {
    /// Builder: bucket width in milliseconds (clamped to ≥ 1).
    pub fn bucket_ms(mut self, ms: u64) -> Self {
        self.bucket_ms = ms.max(1);
        self
    }

    /// Builder: retained bucket count (clamped to ≥ 2 — one delta needs
    /// two frames).
    pub fn buckets(mut self, buckets: usize) -> Self {
        self.buckets = buckets.max(2);
        self
    }
}

/// One recorded frame: a full snapshot stamped with its sample time.
#[derive(Debug, Clone)]
struct Frame {
    ts_ms: u64,
    snap: MetricsSnapshot,
}

/// The bounded frame ring. All methods take `&self`; recording holds
/// one short mutex (serving-path only — the solve hot path never calls
/// in here).
#[derive(Debug)]
pub struct RollingWindow {
    bucket_ms: u64,
    capacity: usize,
    frames: Mutex<VecDeque<Frame>>,
}

/// Latency quantiles interpolated from fixed histogram buckets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quantiles {
    /// Median estimate (ms).
    pub p50: f64,
    /// 95th percentile estimate (ms).
    pub p95: f64,
    /// 99th percentile estimate (ms).
    pub p99: f64,
    /// Observations inside the window.
    pub count: u64,
}

/// Per-device rolling telemetry (derived from the bridged
/// `aco_device_*{device="…"}` series).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceWindow {
    /// The device's profile name (unescaped label value).
    pub name: String,
    /// Busy wall time over window span, 0..=1-ish (can exceed 1 with
    /// multiple resident slots).
    pub utilization: f64,
    /// Faults observed inside the window.
    pub faults: u64,
    /// Faults per second inside the window.
    pub fault_rate_per_sec: f64,
    /// Jobs completed inside the window.
    pub completed: u64,
}

/// Everything the serving layer reports about one lookback window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// The requested lookback (ms).
    pub window_ms: u64,
    /// The span actually covered (start frame → end frame); shorter
    /// than `window_ms` while history is still filling.
    pub span_ms: u64,
    /// Jobs submitted inside the window.
    pub submitted: u64,
    /// Jobs completed inside the window.
    pub completed: u64,
    /// Jobs failed inside the window.
    pub failed: u64,
    /// Completed jobs per second.
    pub throughput_per_sec: f64,
    /// `failed / (completed + failed)`, 0 when nothing finished.
    pub failure_rate: f64,
    /// Queue-wait quantiles over the window's observations.
    pub queue_wait: Quantiles,
    /// Solve-wall quantiles over the window's observations.
    pub solve_wall: Quantiles,
    /// Per-device utilisation / fault rates.
    pub devices: Vec<DeviceWindow>,
}

/// The engine counter names the summary reads (the engine's stable
/// export surface — pinned by `tests/obs_serve.rs`).
pub const SUBMITTED_TOTAL: &str = "aco_engine_jobs_submitted_total";
/// Completed-jobs counter name.
pub const COMPLETED_TOTAL: &str = "aco_engine_jobs_completed_total";
/// Failed-jobs counter name.
pub const FAILED_TOTAL: &str = "aco_engine_jobs_failed_total";
/// Queue-wait histogram name.
pub const QUEUE_WAIT_MS: &str = "aco_engine_queue_wait_ms";
/// Solve-wall histogram name.
pub const SOLVE_WALL_MS: &str = "aco_engine_solve_wall_ms";

impl RollingWindow {
    /// An empty ring under `cfg`.
    pub fn new(cfg: WindowConfig) -> Self {
        RollingWindow {
            bucket_ms: cfg.bucket_ms.max(1),
            capacity: cfg.buckets.max(2),
            frames: Mutex::new(VecDeque::new()),
        }
    }

    /// The bucket width (ms).
    pub fn bucket_ms(&self) -> u64 {
        self.bucket_ms
    }

    /// Frames currently retained.
    pub fn len(&self) -> usize {
        self.frames.lock().expect("window lock").len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a snapshot at `now_ms`. A sample landing in the same time
    /// bucket as the newest frame *replaces* it (the newer cumulative
    /// values subsume the older); otherwise it appends, evicting the
    /// oldest frame past the capacity. Out-of-order samples (older than
    /// the newest frame) are dropped.
    pub fn record(&self, now_ms: u64, snap: MetricsSnapshot) {
        let mut frames = self.frames.lock().expect("window lock");
        if let Some(last) = frames.back() {
            if now_ms < last.ts_ms {
                return;
            }
            if now_ms / self.bucket_ms == last.ts_ms / self.bucket_ms {
                frames.pop_back();
            }
        }
        frames.push_back(Frame { ts_ms: now_ms, snap });
        while frames.len() > self.capacity {
            frames.pop_front();
        }
    }

    /// The start/end frames bracketing `[now − window, now]`: the end is
    /// the newest frame, the start the newest frame at or before the far
    /// edge (or the oldest retained one while history is short). `None`
    /// until two distinct-time frames exist.
    fn bracket(&self, now_ms: u64, window_ms: u64) -> Option<(Frame, Frame)> {
        let frames = self.frames.lock().expect("window lock");
        let end = frames.back()?.clone();
        let edge = now_ms.saturating_sub(window_ms);
        let start =
            frames.iter().rev().find(|f| f.ts_ms <= edge).unwrap_or(frames.front()?).clone();
        (end.ts_ms > start.ts_ms).then_some((start, end))
    }

    /// The increase of counter `name` inside the window (saturating:
    /// a bridged counter that resets reads as 0, never underflows).
    pub fn counter_delta(&self, name: &str, now_ms: u64, window_ms: u64) -> Option<u64> {
        let (start, end) = self.bracket(now_ms, window_ms)?;
        Some(counter_value(&end.snap, name).saturating_sub(counter_value(&start.snap, name)))
    }

    /// Per-second rate of counter `name` inside the window.
    pub fn counter_rate(&self, name: &str, now_ms: u64, window_ms: u64) -> Option<f64> {
        let (start, end) = self.bracket(now_ms, window_ms)?;
        let delta = counter_value(&end.snap, name).saturating_sub(counter_value(&start.snap, name));
        let span_s = (end.ts_ms - start.ts_ms) as f64 / 1e3;
        Some(delta as f64 / span_s)
    }

    /// The change of gauge `name` inside the window (signed).
    pub fn gauge_delta(&self, name: &str, now_ms: u64, window_ms: u64) -> Option<i64> {
        let (start, end) = self.bracket(now_ms, window_ms)?;
        Some(gauge_value(&end.snap, name)? - gauge_value(&start.snap, name).unwrap_or(0))
    }

    /// Quantile estimates for histogram `name` over the window's
    /// observations (bucket-delta interpolation — see [`quantiles`]).
    pub fn quantiles(&self, name: &str, now_ms: u64, window_ms: u64) -> Option<Quantiles> {
        let (start, end) = self.bracket(now_ms, window_ms)?;
        let hist = find_hist(&end.snap, name)?;
        let deltas = bucket_deltas(hist, find_hist(&start.snap, name));
        Some(quantiles(&hist.bounds, &deltas))
    }

    /// The fraction of histogram `name`'s windowed observations strictly
    /// above `threshold_ms` (resolved to bucket granularity: the
    /// threshold is rounded up to the nearest bucket bound, so a
    /// threshold equal to a bound is exact). `None` until two frames
    /// exist; 0 when the window saw no observations.
    pub fn fraction_above(
        &self,
        name: &str,
        threshold_ms: f64,
        now_ms: u64,
        window_ms: u64,
    ) -> Option<f64> {
        let (start, end) = self.bracket(now_ms, window_ms)?;
        let hist = find_hist(&end.snap, name)?;
        let deltas = bucket_deltas(hist, find_hist(&start.snap, name));
        let total: u64 = deltas.iter().sum();
        if total == 0 {
            return Some(0.0);
        }
        let below: u64 = deltas
            .iter()
            .enumerate()
            .filter(|(i, _)| hist.bounds.get(*i).is_some_and(|&b| b <= threshold_ms))
            .map(|(_, &d)| d)
            .sum();
        Some((total - below) as f64 / total as f64)
    }

    /// The full serving summary for one lookback window, reading the
    /// engine's exported series by their stable names. `None` until two
    /// distinct-time frames exist.
    pub fn stats(&self, now_ms: u64, window_ms: u64) -> Option<WindowStats> {
        let (start, end) = self.bracket(now_ms, window_ms)?;
        let span_ms = end.ts_ms - start.ts_ms;
        let span_s = span_ms as f64 / 1e3;
        let delta = |name: &str| {
            counter_value(&end.snap, name).saturating_sub(counter_value(&start.snap, name))
        };
        let submitted = delta(SUBMITTED_TOTAL);
        let completed = delta(COMPLETED_TOTAL);
        let failed = delta(FAILED_TOTAL);
        let finished = completed + failed;
        let quant = |name: &str| {
            find_hist(&end.snap, name)
                .map(|h| quantiles(&h.bounds, &bucket_deltas(h, find_hist(&start.snap, name))))
                .unwrap_or_default()
        };
        // Per-device series: enumerate devices from the end frame's
        // bridged busy_ms gauges, then delta each series.
        let mut devices = Vec::new();
        for (name, busy_end) in end.snap.gauges.iter().filter_map(|(n, v)| {
            Some((label_value(n.strip_prefix("aco_device_busy_ms{device=")?)?, *v))
        }) {
            let series = |base: &str| {
                format!("{base}{{device=\"{}\"}}", crate::metrics::escape_label_value(&name))
            };
            let busy_start = gauge_value(&start.snap, &series("aco_device_busy_ms")).unwrap_or(0);
            let faults = counter_value(&end.snap, &series("aco_device_faults_observed_total"))
                .saturating_sub(counter_value(
                    &start.snap,
                    &series("aco_device_faults_observed_total"),
                ));
            let completed = counter_value(&end.snap, &series("aco_device_completed_total"))
                .saturating_sub(counter_value(&start.snap, &series("aco_device_completed_total")));
            devices.push(DeviceWindow {
                name,
                utilization: ((busy_end - busy_start).max(0) as f64 / 1e3 / span_s).max(0.0),
                faults,
                fault_rate_per_sec: faults as f64 / span_s,
                completed,
            });
        }
        Some(WindowStats {
            window_ms,
            span_ms,
            submitted,
            completed,
            failed,
            throughput_per_sec: completed as f64 / span_s,
            failure_rate: if finished == 0 { 0.0 } else { failed as f64 / finished as f64 },
            queue_wait: quant(QUEUE_WAIT_MS),
            solve_wall: quant(SOLVE_WALL_MS),
            devices,
        })
    }
}

fn counter_value(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
}

fn gauge_value(snap: &MetricsSnapshot, name: &str) -> Option<i64> {
    snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

fn find_hist<'a>(snap: &'a MetricsSnapshot, name: &str) -> Option<&'a HistogramSnapshot> {
    snap.histograms.iter().find(|h| h.name == name)
}

/// Per-bucket observation counts inside the window: end minus start,
/// saturating per bucket (a start frame missing the histogram — it was
/// registered later — reads as all-zero).
fn bucket_deltas(end: &HistogramSnapshot, start: Option<&HistogramSnapshot>) -> Vec<u64> {
    match start {
        Some(s) if s.buckets.len() == end.buckets.len() => {
            end.buckets.iter().zip(&s.buckets).map(|(&e, &st)| e.saturating_sub(st)).collect()
        }
        _ => end.buckets.to_vec(),
    }
}

/// p50/p95/p99 from non-cumulative bucket counts via the standard
/// fixed-bucket estimate: find the bucket holding the target rank, then
/// interpolate linearly inside it (the `+Inf` bucket clamps to the last
/// finite bound — the estimate cannot exceed what the buckets resolve).
pub fn quantiles(bounds: &[f64], buckets: &[u64]) -> Quantiles {
    let count: u64 = buckets.iter().sum();
    let q = |q: f64| estimate_quantile(bounds, buckets, count, q);
    Quantiles { p50: q(0.50), p95: q(0.95), p99: q(0.99), count }
}

fn estimate_quantile(bounds: &[f64], buckets: &[u64], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = q * count as f64;
    let mut cum = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        let prev = cum as f64;
        cum += b;
        if (cum as f64) >= rank && b > 0 {
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let upper = match bounds.get(i) {
                Some(&u) => u,
                // +Inf bucket: clamp to the last finite bound.
                None => return bounds.last().copied().unwrap_or(0.0),
            };
            let within = (rank - prev) / b as f64;
            return lower + (upper - lower) * within.clamp(0.0, 1.0);
        }
    }
    bounds.last().copied().unwrap_or(0.0)
}

/// Parse the leading quoted, escaped label value out of `"value"}`…
/// (the tail of a `base{key="value"}` series name), undoing
/// [`crate::metrics::escape_label_value`].
fn label_value(tail: &str) -> Option<String> {
    let mut chars = tail.chars();
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                c => {
                    out.push('\\');
                    out.push(c);
                }
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{labelled, MetricsRegistry, LATENCY_BUCKETS_MS};

    fn snap_with(counter: &str, v: u64) -> MetricsSnapshot {
        let reg = MetricsRegistry::new(true);
        reg.counter(counter).add(v);
        reg.snapshot()
    }

    #[test]
    fn manual_clock_is_monotone_and_deterministic() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        c.set(100); // backwards set clamps
        assert_eq!(c.now_ms(), 250);
        c.set(1_000);
        assert_eq!(c.now_ms(), 1_000);
    }

    #[test]
    fn same_bucket_samples_collapse_and_capacity_evicts() {
        let w = RollingWindow::new(WindowConfig::default().bucket_ms(100).buckets(3));
        w.record(10, snap_with("c", 1));
        w.record(50, snap_with("c", 2)); // same 100ms bucket: replaces
        assert_eq!(w.len(), 1);
        w.record(150, snap_with("c", 3));
        w.record(250, snap_with("c", 4));
        w.record(350, snap_with("c", 5));
        assert_eq!(w.len(), 3, "capacity bound holds");
        // Oldest frame is now ts=150 → window of 1s sees 5-3=2.
        assert_eq!(w.counter_delta("c", 350, 1_000), Some(2));
    }

    #[test]
    fn out_of_order_samples_are_dropped() {
        let w = RollingWindow::new(WindowConfig::default().bucket_ms(10).buckets(8));
        w.record(100, snap_with("c", 5));
        w.record(50, snap_with("c", 99));
        assert_eq!(w.len(), 1);
        w.record(200, snap_with("c", 7));
        assert_eq!(w.counter_delta("c", 200, 1_000), Some(2));
    }

    #[test]
    fn rates_and_deltas_use_the_window_edge_frame() {
        let w = RollingWindow::new(WindowConfig::default().bucket_ms(1_000).buckets(10));
        for (t, v) in [(0u64, 0u64), (1_000, 10), (2_000, 30), (3_000, 60)] {
            w.record(t, snap_with("jobs", v));
        }
        // 2s window at t=3000 → start frame t=1000 (v=10): delta 50 over 2s.
        assert_eq!(w.counter_delta("jobs", 3_000, 2_000), Some(50));
        assert!((w.counter_rate("jobs", 3_000, 2_000).unwrap() - 25.0).abs() < 1e-9);
        // Window longer than history → oldest frame, delta 60 over 3s.
        assert_eq!(w.counter_delta("jobs", 3_000, 60_000), Some(60));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 observations uniform in the (1.0, 2.5] bucket.
        let bounds = LATENCY_BUCKETS_MS.to_vec();
        let mut buckets = vec![0u64; bounds.len() + 1];
        buckets[5] = 100; // le=1.0 is index 4; (1.0, 2.5] is index 5
        let q = quantiles(&bounds, &buckets);
        assert_eq!(q.count, 100);
        assert!((q.p50 - 1.75).abs() < 1e-9, "p50 {}", q.p50);
        assert!((q.p95 - (1.0 + 1.5 * 0.95)).abs() < 1e-9);
        // All mass in +Inf clamps to the last finite bound.
        let mut inf = vec![0u64; bounds.len() + 1];
        inf[bounds.len()] = 7;
        assert_eq!(quantiles(&bounds, &inf).p99, 100.0);
        // Empty window: zeros.
        assert_eq!(quantiles(&bounds, &vec![0; bounds.len() + 1]), Quantiles::default());
    }

    #[test]
    fn windowed_quantiles_see_only_the_windows_observations() {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("lat", &[1.0, 10.0, 100.0]);
        let w = RollingWindow::new(WindowConfig::default().bucket_ms(1_000).buckets(10));
        h.observe(0.5);
        h.observe(0.5);
        w.record(0, reg.snapshot());
        // Second bucket epoch: all new mass lands in (10, 100].
        for _ in 0..10 {
            h.observe(50.0);
        }
        w.record(1_000, reg.snapshot());
        let q = w.quantiles("lat", 1_000, 1_000).expect("two frames");
        assert_eq!(q.count, 10, "the two pre-window observations are excluded");
        assert!(q.p50 > 10.0 && q.p50 <= 100.0);
        let frac = w.fraction_above("lat", 10.0, 1_000, 1_000).unwrap();
        assert!((frac - 1.0).abs() < 1e-9, "all windowed observations above 10ms");
        assert_eq!(w.fraction_above("lat", 100.0, 1_000, 1_000), Some(0.0));
    }

    #[test]
    fn stats_summarise_throughput_failure_rate_and_devices() {
        let w = RollingWindow::new(WindowConfig::default().bucket_ms(1_000).buckets(10));
        let frame = |sub: u64, done: u64, failed: u64, busy: i64, faults: u64| {
            let reg = MetricsRegistry::new(true);
            reg.counter(SUBMITTED_TOTAL).add(sub);
            reg.counter(COMPLETED_TOTAL).add(done);
            reg.counter(FAILED_TOTAL).add(failed);
            let h = reg.histogram(QUEUE_WAIT_MS, &LATENCY_BUCKETS_MS);
            for _ in 0..done {
                h.observe(0.2);
            }
            let s = reg.histogram(SOLVE_WALL_MS, &LATENCY_BUCKETS_MS);
            for _ in 0..done {
                s.observe(4.0);
            }
            reg.gauge(&labelled("aco_device_busy_ms", "device", "gpu0")).set(busy);
            reg.counter(&labelled("aco_device_faults_observed_total", "device", "gpu0"))
                .add(faults);
            reg.counter(&labelled("aco_device_completed_total", "device", "gpu0")).add(done);
            reg.snapshot()
        };
        w.record(0, frame(0, 0, 0, 0, 0));
        w.record(2_000, frame(12, 8, 2, 1_000, 4));
        let s = w.stats(2_000, 10_000).expect("two frames");
        assert_eq!((s.submitted, s.completed, s.failed), (12, 8, 2));
        assert!((s.throughput_per_sec - 4.0).abs() < 1e-9);
        assert!((s.failure_rate - 0.2).abs() < 1e-9);
        assert_eq!(s.queue_wait.count, 8);
        assert!(s.queue_wait.p95 <= 0.25, "all mass in the le=0.25 bucket");
        assert_eq!(s.solve_wall.count, 8);
        assert!(s.solve_wall.p50 > 2.5 && s.solve_wall.p50 <= 5.0);
        assert_eq!(s.devices.len(), 1);
        let d = &s.devices[0];
        assert_eq!(d.name, "gpu0");
        assert!((d.utilization - 0.5).abs() < 1e-9, "1s busy over a 2s span");
        assert_eq!(d.faults, 4);
        assert!((d.fault_rate_per_sec - 2.0).abs() < 1e-9);
        assert_eq!(d.completed, 8);
    }

    #[test]
    fn one_frame_answers_nothing() {
        let w = RollingWindow::new(WindowConfig::default());
        assert!(w.stats(0, 1_000).is_none());
        w.record(0, snap_with("c", 1));
        assert!(w.counter_delta("c", 0, 1_000).is_none(), "a delta needs two frames");
    }

    #[test]
    fn hostile_device_labels_round_trip_through_stats() {
        let hostile = "we\"ird\\gpu\nline";
        let reg = MetricsRegistry::new(true);
        reg.gauge(&labelled("aco_device_busy_ms", "device", hostile)).set(500);
        let w = RollingWindow::new(WindowConfig::default().bucket_ms(1_000));
        w.record(0, MetricsSnapshot::default());
        w.record(1_000, reg.snapshot());
        let s = w.stats(1_000, 5_000).expect("two frames");
        assert_eq!(s.devices.len(), 1);
        assert_eq!(s.devices[0].name, hostile, "escaped label value decodes back");
    }
}
