//! Hierarchical job tracing: engine → job → iteration → kernel/LS pass.
//!
//! A [`JobTrace`] is the live, bounded recorder one job writes while it
//! runs; [`JobTrace::snapshot`] freezes it into a [`JobTimeline`] — the
//! answer to "where did the milliseconds go" for that job: queue wait,
//! placement, per-iteration construction/local-search/pheromone spans,
//! kernel-family totals, and whether the artifact cache hit. Finished
//! timelines land in the engine's bounded [`TraceSink`] ring.
//!
//! Recording is write-only telemetry: nothing in this module feeds back
//! into scheduling or solving, so enabling it cannot change results
//! (pinned by `tests/observability.rs`).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::dynamics::{DynamicsSummary, IterationStats};
use crate::metrics::KernelFamilySnapshot;

/// Bound on the best-so-far trajectory samples a timeline's
/// [`DynamicsSummary`] retains (stride-doubling, so the kept points
/// always span the run).
pub const DYNAMICS_TRAJECTORY_CAPACITY: usize = 64;

/// Per-iteration modeled phase spans (milliseconds), as the colonies
/// report them: construction (choice info + tours), local search, and
/// the pheromone update.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationSpans {
    /// 0-based iteration index within the job.
    pub iteration: u64,
    /// Tour-construction span (includes choice-info refresh).
    pub construction_ms: f64,
    /// Local-search span (0 when no per-iteration strategy runs).
    pub local_search_ms: f64,
    /// Pheromone-update span.
    pub pheromone_ms: f64,
}

impl IterationSpans {
    /// Sum of the three phase spans.
    pub fn total_ms(&self) -> f64 {
        self.construction_ms + self.local_search_ms + self.pheromone_ms
    }
}

/// One failed attempt of a supervised job, as the scheduler's retry
/// supervisor recorded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptSpan {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Pool device the attempt ran on, if any.
    pub device: Option<u32>,
    /// The error that ended the attempt.
    pub error: String,
}

/// A frozen copy of one job's trace (see [`JobTrace::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JobTimeline {
    /// Engine-issued job id.
    pub job: u64,
    /// Label of the backend that ran (empty until resolved).
    pub backend: String,
    /// Pool device the job ran on, if any.
    pub device: Option<u32>,
    /// Submit → worker-start wall time.
    pub queue_wait_ms: f64,
    /// Wall time of the submit-time placement decision.
    pub placement_ms: f64,
    /// Submit → first progress event wall time (`None` until the first
    /// event is emitted).
    pub first_event_ms: Option<f64>,
    /// Wall time of the solve (worker-start → result), post-pass
    /// included.
    pub solve_wall_ms: f64,
    /// Wall time of the end-of-run local-search polish (0 without one).
    pub post_pass_ms: f64,
    /// Whether this job's instance artifacts came from the cache
    /// (`None` until the lookup happened).
    pub artifact_cache_hit: Option<bool>,
    /// Per-iteration phase spans, in iteration order, up to the trace's
    /// bound.
    pub iterations: Vec<IterationSpans>,
    /// Iterations recorded past the bound (dropped, newest-first kept).
    pub dropped_iterations: u64,
    /// Per-kernel-family invocation counts and modeled ms recorded while
    /// this job held the launch hook (GPU jobs; empty for pure-CPU ones).
    pub kernels: Vec<KernelFamilySnapshot>,
    /// Failed attempts that preceded the recorded result, oldest first
    /// (empty for unsupervised or first-attempt-success jobs).
    pub attempts: Vec<AttemptSpan>,
    /// Search-dynamics summary (`None` when the run computed no
    /// dynamics statistics).
    pub dynamics: Option<DynamicsSummary>,
}

impl JobTimeline {
    /// Total recorded construction span.
    pub fn construction_ms(&self) -> f64 {
        self.iterations.iter().map(|s| s.construction_ms).sum()
    }

    /// Total recorded local-search span.
    pub fn local_search_ms(&self) -> f64 {
        self.iterations.iter().map(|s| s.local_search_ms).sum()
    }

    /// Total recorded pheromone-update span.
    pub fn pheromone_ms(&self) -> f64 {
        self.iterations.iter().map(|s| s.pheromone_ms).sum()
    }

    /// Human-readable multi-line rendering (used by
    /// `examples/observability.rs`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "job {} [{}]{}\n  queue wait {:>9.3} ms | placement {:.3} ms | solve wall {:.3} ms\n",
            self.job,
            if self.backend.is_empty() { "?" } else { &self.backend },
            match self.device {
                Some(d) => format!(" on device {d}"),
                None => String::new(),
            },
            self.queue_wait_ms,
            self.placement_ms,
            self.solve_wall_ms,
        );
        if let Some(f) = self.first_event_ms {
            out.push_str(&format!("  submit -> first event {f:.3} ms\n"));
        }
        if let Some(hit) = self.artifact_cache_hit {
            out.push_str(&format!(
                "  artifact cache: {}\n",
                if hit { "hit" } else { "miss (built here)" }
            ));
        }
        out.push_str(&format!(
            "  {} iterations (modeled): construction {:.3} ms | local search {:.3} ms | pheromone {:.3} ms\n",
            self.iterations.len(),
            self.construction_ms(),
            self.local_search_ms(),
            self.pheromone_ms(),
        ));
        for s in &self.iterations {
            out.push_str(&format!(
                "    iter {:>3}: construct {:>8.3} ms | ls {:>8.3} ms | pheromone {:>8.3} ms\n",
                s.iteration, s.construction_ms, s.local_search_ms, s.pheromone_ms
            ));
        }
        if self.dropped_iterations > 0 {
            out.push_str(&format!(
                "    (+{} iterations past the trace bound)\n",
                self.dropped_iterations
            ));
        }
        if self.post_pass_ms > 0.0 {
            out.push_str(&format!("  post-pass polish {:.3} ms\n", self.post_pass_ms));
        }
        for a in &self.attempts {
            out.push_str(&format!(
                "  attempt {} failed{}: {}\n",
                a.attempt,
                match a.device {
                    Some(d) => format!(" on device {d}"),
                    None => String::new(),
                },
                a.error
            ));
        }
        for k in &self.kernels {
            out.push_str(&format!(
                "  kernel {:<18} x{:<5} {:>10.3} ms modeled\n",
                k.family, k.invocations, k.modeled_ms
            ));
        }
        if let Some(d) = &self.dynamics {
            out.push_str(&format!("  {}\n", d.render()));
        }
        out
    }
}

#[derive(Default)]
struct TraceInner {
    backend: String,
    device: Option<u32>,
    queue_wait_ms: f64,
    placement_ms: f64,
    first_event_ms: Option<f64>,
    solve_wall_ms: f64,
    post_pass_ms: f64,
    artifact_cache_hit: Option<bool>,
    iterations: Vec<IterationSpans>,
    dropped_iterations: u64,
    kernels: BTreeMap<&'static str, (u64, f64)>,
    attempts: Vec<AttemptSpan>,
    dynamics: Option<DynamicsSummary>,
}

/// The live per-job recorder. All methods take `&self` (one short mutex
/// hold each) and record only — a trace never influences the job it
/// describes. Iteration spans are bounded by the capacity given at
/// construction; recording past it counts drops instead of growing.
pub struct JobTrace {
    job: u64,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl JobTrace {
    /// A fresh trace for engine job `job`, retaining at most
    /// `iteration_capacity` per-iteration span records.
    pub fn new(job: u64, iteration_capacity: usize) -> Self {
        JobTrace {
            job,
            capacity: iteration_capacity.max(1),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The engine-issued job id this trace describes.
    pub fn job(&self) -> u64 {
        self.job
    }

    fn with(&self, f: impl FnOnce(&mut TraceInner)) {
        f(&mut self.inner.lock().expect("trace lock"));
    }

    /// Record the resolved backend label.
    pub fn set_backend(&self, label: &str) {
        self.with(|t| t.backend = label.to_string());
    }

    /// Record the pool device the job bound to.
    pub fn set_device(&self, device: u32) {
        self.with(|t| t.device = Some(device));
    }

    /// Record submit → worker-start wall time.
    pub fn record_queue_wait_ms(&self, ms: f64) {
        self.with(|t| t.queue_wait_ms = ms);
    }

    /// Record the submit-time placement decision's wall time.
    pub fn record_placement_ms(&self, ms: f64) {
        self.with(|t| t.placement_ms = ms);
    }

    /// Record submit → first progress event wall time (first call wins).
    pub fn record_first_event_ms(&self, ms: f64) {
        self.with(|t| {
            t.first_event_ms.get_or_insert(ms);
        });
    }

    /// Record the solve's wall time (worker-start → result).
    pub fn record_solve_wall_ms(&self, ms: f64) {
        self.with(|t| t.solve_wall_ms = ms);
    }

    /// Record the end-of-run polish's wall time.
    pub fn record_post_pass_ms(&self, ms: f64) {
        self.with(|t| t.post_pass_ms = ms);
    }

    /// Record whether the artifact lookup hit the cache.
    pub fn record_cache(&self, hit: bool) {
        self.with(|t| t.artifact_cache_hit = Some(hit));
    }

    /// Record one iteration's phase spans (bounded; drops count).
    pub fn record_iteration(
        &self,
        iteration: u64,
        construction_ms: f64,
        local_search_ms: f64,
        pheromone_ms: f64,
    ) {
        self.with(|t| {
            if t.iterations.len() >= self.capacity {
                t.dropped_iterations += 1;
            } else {
                t.iterations.push(IterationSpans {
                    iteration,
                    construction_ms,
                    local_search_ms,
                    pheromone_ms,
                });
            }
        });
    }

    /// Fold one iteration's search-dynamics statistics into the running
    /// [`DynamicsSummary`] (the engine's observer calls this for events
    /// that carry stats).
    pub fn record_dynamics(&self, iteration: u64, best_so_far: u64, stats: &IterationStats) {
        self.with(|t| {
            t.dynamics
                .get_or_insert_with(|| DynamicsSummary::new(DYNAMICS_TRAJECTORY_CAPACITY))
                .record(iteration, best_so_far, stats);
        });
    }

    /// Record one failed attempt of a supervised job (the retry
    /// supervisor calls this before re-placing the job).
    pub fn record_attempt(&self, attempt: u32, device: Option<u32>, error: &str) {
        self.with(|t| t.attempts.push(AttemptSpan { attempt, device, error: error.to_string() }));
    }

    /// Record one kernel launch of `family` costing `ms` modeled time
    /// (fed by the SIMT launch hook — see `crate::kernel`).
    pub fn record_kernel(&self, family: &'static str, ms: f64) {
        self.with(|t| {
            let e = t.kernels.entry(family).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += ms;
        });
    }

    /// Freeze the trace into a [`JobTimeline`]. Callable at any point in
    /// the job's life; a mid-flight snapshot shows the spans recorded so
    /// far.
    pub fn snapshot(&self) -> JobTimeline {
        let t = self.inner.lock().expect("trace lock");
        JobTimeline {
            job: self.job,
            backend: t.backend.clone(),
            device: t.device,
            queue_wait_ms: t.queue_wait_ms,
            placement_ms: t.placement_ms,
            first_event_ms: t.first_event_ms,
            solve_wall_ms: t.solve_wall_ms,
            post_pass_ms: t.post_pass_ms,
            artifact_cache_hit: t.artifact_cache_hit,
            iterations: t.iterations.clone(),
            dropped_iterations: t.dropped_iterations,
            kernels: t
                .kernels
                .iter()
                .map(|(family, &(invocations, modeled_ms))| KernelFamilySnapshot {
                    family: (*family).to_string(),
                    invocations,
                    modeled_ms,
                })
                .collect(),
            attempts: t.attempts.clone(),
            dynamics: t.dynamics.clone(),
        }
    }
}

impl std::fmt::Debug for JobTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTrace")
            .field("job", &self.job)
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// A bounded in-memory ring of completed [`JobTimeline`]s, oldest
/// evicted first. One per engine; readers get cheap `Arc` clones.
pub struct TraceSink {
    capacity: usize,
    inner: Mutex<VecDeque<Arc<JobTimeline>>>,
    evicted: AtomicU64,
}

impl TraceSink {
    /// A sink retaining the most recent `capacity` timelines.
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }
    }

    /// Retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push a completed timeline, evicting the oldest past the bound.
    pub fn push(&self, timeline: JobTimeline) {
        let mut q = self.inner.lock().expect("sink lock");
        if q.len() >= self.capacity {
            q.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(Arc::new(timeline));
    }

    /// The retained timelines, oldest first.
    pub fn recent(&self) -> Vec<Arc<JobTimeline>> {
        self.inner.lock().expect("sink lock").iter().cloned().collect()
    }

    /// Timelines evicted by the bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.capacity)
            .field("retained", &self.inner.lock().expect("sink lock").len())
            .field("evicted", &self.evicted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_snapshots_all_spans() {
        let trace = JobTrace::new(7, 8);
        trace.set_backend("gpu-x");
        trace.set_device(1);
        trace.record_queue_wait_ms(2.0);
        trace.record_placement_ms(0.1);
        trace.record_first_event_ms(3.0);
        trace.record_first_event_ms(9.0); // first wins
        trace.record_cache(true);
        trace.record_iteration(0, 1.0, 0.5, 0.25);
        trace.record_iteration(1, 1.0, 0.5, 0.25);
        trace.record_kernel("tour", 4.0);
        trace.record_kernel("tour", 4.0);
        trace.record_kernel("update", 1.0);
        trace.record_attempt(1, Some(0), "device fault: injected");
        let t = trace.snapshot();
        assert_eq!(t.job, 7);
        assert_eq!(t.backend, "gpu-x");
        assert_eq!(t.device, Some(1));
        assert_eq!(t.first_event_ms, Some(3.0));
        assert_eq!(t.artifact_cache_hit, Some(true));
        assert_eq!(t.iterations.len(), 2);
        assert!((t.construction_ms() - 2.0).abs() < 1e-12);
        assert_eq!(
            t.kernels,
            vec![
                KernelFamilySnapshot { family: "tour".into(), invocations: 2, modeled_ms: 8.0 },
                KernelFamilySnapshot { family: "update".into(), invocations: 1, modeled_ms: 1.0 },
            ]
        );
        assert_eq!(
            t.attempts,
            vec![AttemptSpan {
                attempt: 1,
                device: Some(0),
                error: "device fault: injected".into()
            }]
        );
        assert!(t.render().contains("job 7 [gpu-x] on device 1"));
        assert!(t.render().contains("attempt 1 failed on device 0: device fault: injected"));
    }

    #[test]
    fn iteration_spans_are_bounded_with_drop_counting() {
        let trace = JobTrace::new(0, 2);
        for k in 0..5 {
            trace.record_iteration(k, 1.0, 0.0, 1.0);
        }
        let t = trace.snapshot();
        assert_eq!(t.iterations.len(), 2);
        assert_eq!(t.dropped_iterations, 3);
        assert!(t.render().contains("+3 iterations past the trace bound"));
    }

    #[test]
    fn dynamics_fold_into_the_snapshot() {
        let trace = JobTrace::new(3, 8);
        let stats = IterationStats {
            mean_len: 50.0,
            stddev_len: 2.0,
            improvement: 5,
            entropy: 0.8,
            lambda_branching: 4.0,
            stagnant_iterations: 0,
            stagnant: false,
        };
        trace.record_dynamics(0, 45, &stats);
        trace.record_dynamics(1, 40, &IterationStats { improvement: 5, entropy: 0.6, ..stats });
        let t = trace.snapshot();
        let d = t.dynamics.as_ref().expect("dynamics recorded");
        assert_eq!(d.iterations, 2);
        assert_eq!(d.final_best, 40);
        assert_eq!(d.total_improvement, 10);
        assert!((d.min_entropy - 0.6).abs() < 1e-12);
        assert!(t.render().contains("dynamics: 2 iters"));
        assert!(JobTrace::new(4, 8).snapshot().dynamics.is_none());
    }

    #[test]
    fn sink_is_a_bounded_ring() {
        let sink = TraceSink::new(2);
        for job in 0..4 {
            sink.push(JobTrace::new(job, 1).snapshot());
        }
        let recent = sink.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!((recent[0].job, recent[1].job), (2, 3));
        assert_eq!(sink.evicted(), 2);
    }
}
