//! The kernel-profiling hook: how simulated kernel launches report
//! per-family invocation counts and modeled milliseconds without the
//! SIMT layer knowing about engines or jobs.
//!
//! The launch path (`aco_simt::launch_threads`) calls [`record`] once
//! per launch with the kernel's stable family name and its modeled time.
//! By default that is a single thread-local read and a branch — nothing
//! is installed, nothing is recorded, and standalone colony/bench use
//! pays nothing. A worker that *wants* the data installs a [`KernelSink`]
//! around the solve ([`install`]); the returned [`KernelScope`] guard
//! restores the previous sink on drop, so nesting (e.g. auto-probe
//! launches inside a job) composes.
//!
//! Recording happens on the thread that issued the launch, after any
//! parallel block groups have joined, so it is deterministic and adds no
//! synchronisation to the launch itself.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::KernelFamilySnapshot;
use crate::trace::JobTrace;

/// Engine-wide kernel-family aggregate (every job's launches, summed).
#[derive(Default)]
pub struct KernelProfiler {
    families: Mutex<BTreeMap<String, (u64, f64)>>,
}

impl KernelProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one launch of `family` costing `ms` modeled time.
    pub fn record(&self, family: &str, ms: f64) {
        let mut map = self.families.lock().expect("profiler lock");
        let e = map.entry(family.to_string()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += ms;
    }

    /// Per-family totals, sorted by family name.
    pub fn snapshot(&self) -> Vec<KernelFamilySnapshot> {
        self.families
            .lock()
            .expect("profiler lock")
            .iter()
            .map(|(family, &(invocations, modeled_ms))| KernelFamilySnapshot {
                family: family.clone(),
                invocations,
                modeled_ms,
            })
            .collect()
    }
}

impl std::fmt::Debug for KernelProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelProfiler")
            .field("families", &self.families.lock().expect("profiler lock").len())
            .finish()
    }
}

/// Where a thread's kernel launches report to while a scope is active.
#[derive(Clone, Default)]
pub struct KernelSink {
    /// Per-job trace to credit launches to (the job's `JobTimeline`
    /// kernel section).
    pub trace: Option<Arc<JobTrace>>,
    /// Engine-wide aggregate.
    pub profiler: Option<Arc<KernelProfiler>>,
}

thread_local! {
    static SINK: RefCell<Option<KernelSink>> = const { RefCell::new(None) };
}

/// RAII guard for an installed [`KernelSink`]; restores the previously
/// installed sink (if any) on drop.
#[must_use = "dropping the scope immediately uninstalls the sink"]
pub struct KernelScope {
    previous: Option<KernelSink>,
}

impl Drop for KernelScope {
    fn drop(&mut self) {
        SINK.with(|s| *s.borrow_mut() = self.previous.take());
    }
}

/// Install `sink` as this thread's kernel-launch recorder until the
/// returned guard drops.
pub fn install(sink: KernelSink) -> KernelScope {
    let previous = SINK.with(|s| s.borrow_mut().replace(sink));
    KernelScope { previous }
}

/// Report one kernel launch (called by the SIMT launch path). `family`
/// is the kernel's stable name; `ms` its modeled total time. A no-op —
/// one thread-local read — unless a sink is installed on this thread.
#[inline]
pub fn record(family: &'static str, ms: f64) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            if let Some(trace) = &sink.trace {
                trace.record_kernel(family, ms);
            }
            if let Some(profiler) = &sink.profiler {
                profiler.record(family, ms);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_without_a_sink_is_a_noop() {
        record("orphan", 1.0); // must not panic or leak anywhere
    }

    #[test]
    fn scope_installs_and_restores_nested_sinks() {
        let outer_prof = Arc::new(KernelProfiler::new());
        let inner_prof = Arc::new(KernelProfiler::new());
        {
            let _outer =
                install(KernelSink { trace: None, profiler: Some(Arc::clone(&outer_prof)) });
            record("a", 1.0);
            {
                let _inner =
                    install(KernelSink { trace: None, profiler: Some(Arc::clone(&inner_prof)) });
                record("b", 2.0);
            }
            record("a", 1.0);
        }
        record("c", 9.0); // after all scopes: dropped
        let outer = outer_prof.snapshot();
        assert_eq!(outer.len(), 1);
        assert_eq!((outer[0].invocations, outer[0].modeled_ms), (2, 2.0));
        let inner = inner_prof.snapshot();
        assert_eq!(inner[0].family, "b");
        assert_eq!(inner[0].invocations, 1);
    }

    #[test]
    fn sink_feeds_trace_and_profiler_together() {
        let trace = Arc::new(JobTrace::new(3, 4));
        let prof = Arc::new(KernelProfiler::new());
        {
            let _scope = install(KernelSink {
                trace: Some(Arc::clone(&trace)),
                profiler: Some(Arc::clone(&prof)),
            });
            record("tour", 5.0);
            record("tour", 5.0);
        }
        assert_eq!(trace.snapshot().kernels[0].invocations, 2);
        assert_eq!(prof.snapshot()[0].modeled_ms, 10.0);
    }
}
