//! A minimal, std-only blocking HTTP server for the observability
//! endpoint: `TcpListener` + a bounded acceptor pool + a graceful
//! shutdown handle. No async runtime, no dependencies — serving
//! telemetry needs exactly `GET` with small text bodies, plus
//! Server-Sent Events for the journal stream.
//!
//! The server is transport only: routing lives behind the [`ObsHandler`]
//! trait (the engine implements it over its own snapshots), and the
//! journal stream behind [`EventSource`] (sequence-cursored reads, which
//! makes `Last-Event-ID` resume exact). Handlers are strictly read-only
//! by contract — the serving layer must never influence solving, which
//! is pinned by the determinism suite in `tests/obs_serve.rs`.
//!
//! Connection model: `threads` acceptor threads block on a shared
//! listener; each serves its connection to completion (one
//! request/response per connection, `Connection: close`), so the thread
//! pool bounds concurrent connections with zero queueing machinery.
//! Shutdown sets a flag and pokes each acceptor awake with a loopback
//! connection, then joins — bounded, no `SO_REUSEADDR` games, no leaked
//! threads.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on the request head (request line + headers). Anything larger is
/// rejected with `431` — observability clients send tiny requests.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Read timeout while parsing a request head.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Poll cadence of the SSE loop between journal reads.
const SSE_POLL: Duration = Duration::from_millis(20);

/// One parsed request (method, path, query, headers — bodies are not
/// read: the endpoint is `GET`-only).
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method.
    pub method: String,
    /// Path without the query string (e.g. `/metrics`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first header named `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The first query parameter named `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// A sequence-cursored event feed (the journal, behind a trait so this
/// module stays engine-agnostic).
pub trait EventSource: Send + Sync {
    /// Retained `(sequence, payload)` pairs with `sequence ≥ from_seq`,
    /// ascending. Payloads must be single-line (JSONL).
    fn events_from(&self, from_seq: u64) -> Vec<(u64, String)>;
}

/// What a handler returns.
pub enum Reply {
    /// A complete text response.
    Text {
        /// HTTP status code.
        status: u16,
        /// `Content-Type` value.
        content_type: &'static str,
        /// The body.
        body: String,
    },
    /// A Server-Sent-Events stream over an [`EventSource`]: each event
    /// is written as `id: <seq>` + `data: <payload>`, so a client can
    /// resume exactly with `Last-Event-ID`.
    Events {
        /// First sequence to deliver.
        from_seq: u64,
        /// Close the stream after this many events (`None`: stream until
        /// client disconnect or server shutdown).
        max_events: Option<u64>,
        /// The feed.
        source: Arc<dyn EventSource>,
    },
}

impl Reply {
    /// `200` with an arbitrary content type.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Reply::Text { status: 200, content_type, body: body.into() }
    }

    /// `200 text/plain`.
    pub fn text(body: impl Into<String>) -> Self {
        Self::ok("text/plain; charset=utf-8", body)
    }

    /// `200 application/json`.
    pub fn json(body: impl Into<String>) -> Self {
        Self::ok("application/json", body)
    }

    /// `200` in the Prometheus text exposition content type.
    pub fn prometheus(body: impl Into<String>) -> Self {
        Self::ok("text/plain; version=0.0.4; charset=utf-8", body)
    }

    /// `404` with a one-line body.
    pub fn not_found(what: &str) -> Self {
        Reply::Text {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("not found: {what}\n"),
        }
    }
}

/// The routing surface: map one request to one reply. Implementations
/// must be read-only with respect to anything that affects solving.
pub trait ObsHandler: Send + Sync {
    /// Handle one `GET`.
    fn handle(&self, req: &Request) -> Reply;
}

/// A running server; dropping (or [`HttpServer::shutdown`]) stops it
/// gracefully.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("threads", &self.threads.len())
            .field("stopped", &self.stop.load(Ordering::Acquire))
            .finish()
    }
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `handler` on `threads` acceptor threads (clamped to ≥ 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn ObsHandler>,
        threads: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let threads = (0..threads.max(1))
            .map(|i| {
                let listener = listener.try_clone()?;
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("aco-obs-http-{i}"))
                    .spawn(move || accept_loop(listener, handler, stop))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(HttpServer { addr, stop, threads })
    }

    /// The bound address (resolves the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: flag every acceptor, poke each awake, join
    /// all of them. Idempotent; also performed on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // One wake-up connection per acceptor thread: each sees the flag
        // either before its accept returns or on the poked connection.
        for _ in 0..self.threads.len() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, handler: Arc<dyn ObsHandler>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::Acquire) {
                    return; // the shutdown poke
                }
                // Per-connection errors (parse failures, client hangups)
                // must never take the acceptor down.
                let _ = serve_connection(stream, &*handler, &stop);
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handler: &dyn ObsHandler,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(status) => {
            let r = write_error(&mut stream, status);
            // Drain what the client is still sending before closing:
            // closing with unread bytes queued makes the kernel RST the
            // connection, clobbering the error response in flight.
            drain(&mut stream);
            return r;
        }
    };
    let Some(req) = parse_request(&head) else {
        return write_error(&mut stream, 400);
    };
    if req.method != "GET" {
        return write_error(&mut stream, 405);
    }
    match handler.handle(&req) {
        Reply::Text { status, content_type, body } => {
            write_text(&mut stream, status, content_type, &body)
        }
        Reply::Events { from_seq, max_events, source } => {
            stream_events(&mut stream, from_seq, max_events, &*source, stop)
        }
    }
}

/// Discard (bounded) whatever the peer is still sending, so the
/// subsequent close is a clean FIN rather than an RST.
fn drain(stream: &mut TcpStream) {
    stream.set_read_timeout(Some(Duration::from_millis(250))).ok();
    let mut buf = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => total += n,
        }
    }
}

/// Read the request head (through the blank line), capped.
fn read_head(stream: &mut TcpStream) -> Result<String, u16> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).map_err(|_| 408u16)?;
        if n == 0 {
            return Err(400);
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return String::from_utf8(head).map_err(|_| 400);
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(431);
        }
    }
}

fn parse_request(head: &str) -> Option<Request> {
    let mut lines = head.lines();
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_ascii_uppercase();
    let target = parts.next()?;
    parts.next()?.strip_prefix("HTTP/")?;
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    let headers = lines
        .take_while(|l| !l.trim().is_empty())
        .filter_map(|l| {
            let (name, value) = l.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Some(Request { method, path: path.to_string(), query, headers })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    }
}

fn write_text(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn write_error(stream: &mut TcpStream, status: u16) -> io::Result<()> {
    let body = format!("{status} {}\n", status_text(status));
    write_text(stream, status, "text/plain; charset=utf-8", &body)
}

/// The SSE loop: drain everything at or past the cursor, then poll the
/// source until the event budget is spent, the client disconnects (a
/// write error), or the server shuts down.
fn stream_events(
    stream: &mut TcpStream,
    from_seq: u64,
    max_events: Option<u64>,
    source: &dyn EventSource,
    stop: &AtomicBool,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
         Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut cursor = from_seq;
    let mut sent = 0u64;
    loop {
        for (seq, payload) in source.events_from(cursor) {
            write!(stream, "id: {seq}\ndata: {payload}\n\n")?;
            cursor = seq + 1;
            sent += 1;
            if max_events.is_some_and(|m| sent >= m) {
                return stream.flush();
            }
        }
        stream.flush()?;
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        std::thread::sleep(SSE_POLL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Router;

    impl ObsHandler for Router {
        fn handle(&self, req: &Request) -> Reply {
            match req.path.as_str() {
                "/ping" => Reply::text("pong\n"),
                "/json" => Reply::json("{\"ok\":true}"),
                "/echo" => Reply::text(format!(
                    "q={} h={}",
                    req.query_param("q").unwrap_or("-"),
                    req.header("X-Probe").unwrap_or("-"),
                )),
                "/stream" => {
                    let from = req
                        .query_param("from")
                        .and_then(|v| v.parse().ok())
                        .or_else(|| {
                            req.header("Last-Event-ID")
                                .and_then(|v| v.parse::<u64>().ok())
                                .map(|id| id + 1)
                        })
                        .unwrap_or(0);
                    let max = req.query_param("max").and_then(|v| v.parse().ok());
                    Reply::Events {
                        from_seq: from,
                        max_events: max,
                        source: Arc::new(FixedSource {
                            events: Mutex::new(
                                (0u64..6).map(|s| (s, format!("{{\"n\":{s}}}"))).collect(),
                            ),
                        }),
                    }
                }
                other => Reply::not_found(other),
            }
        }
    }

    struct FixedSource {
        events: Mutex<Vec<(u64, String)>>,
    }

    impl EventSource for FixedSource {
        fn events_from(&self, from_seq: u64) -> Vec<(u64, String)> {
            self.events.lock().unwrap().iter().filter(|(s, _)| *s >= from_seq).cloned().collect()
        }
    }

    fn get(addr: SocketAddr, target: &str, extra_header: Option<&str>) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        let extra = extra_header.map(|h| format!("{h}\r\n")).unwrap_or_default();
        write!(s, "GET {target} HTTP/1.1\r\nHost: test\r\n{extra}Connection: close\r\n\r\n")
            .expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_text_json_and_404_with_clean_shutdown() {
        let mut srv = HttpServer::bind("127.0.0.1:0", Arc::new(Router), 2).expect("bind");
        let addr = srv.local_addr();
        let pong = get(addr, "/ping", None);
        assert!(pong.starts_with("HTTP/1.1 200 OK\r\n"), "{pong}");
        assert!(pong.contains("Content-Length: 5"));
        assert!(pong.ends_with("pong\n"));
        let json = get(addr, "/json", None);
        assert!(json.contains("Content-Type: application/json"));
        assert!(json.ends_with("{\"ok\":true}"));
        let missing = get(addr, "/nope", None);
        assert!(missing.starts_with("HTTP/1.1 404"));
        let echo = get(addr, "/echo?q=42", Some("X-Probe: seen"));
        assert!(echo.ends_with("q=42 h=seen"), "{echo}");
        srv.shutdown();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err()
                || get_safe(addr).is_none()
        );
    }

    /// After shutdown the port may be grabbed by someone else; "either
    /// refused or not our server" is the strongest portable assertion.
    fn get_safe(addr: SocketAddr) -> Option<String> {
        let mut s = TcpStream::connect_timeout(&addr, Duration::from_millis(300)).ok()?;
        s.set_read_timeout(Some(Duration::from_millis(300))).ok()?;
        write!(s, "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").ok()?;
        let mut out = String::new();
        s.read_to_string(&mut out).ok()?;
        out.contains("pong").then_some(out)
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let srv = HttpServer::bind("127.0.0.1:0", Arc::new(Router), 1).expect("bind");
        let mut s = TcpStream::connect(srv.local_addr()).expect("connect");
        write!(s, "POST /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn sse_streams_with_ids_and_resumes_from_last_event_id() {
        let srv = HttpServer::bind("127.0.0.1:0", Arc::new(Router), 1).expect("bind");
        let addr = srv.local_addr();
        let full = get(addr, "/stream?max=6", None);
        assert!(full.contains("Content-Type: text/event-stream"));
        assert!(full.contains("id: 0\ndata: {\"n\":0}\n\n"));
        assert!(full.contains("id: 5\ndata: {\"n\":5}\n\n"));
        // Resume after event 3: exactly the suffix 4..=5.
        let resumed = get(addr, "/stream?max=2", Some("Last-Event-ID: 3"));
        assert!(!resumed.contains("data: {\"n\":3}"));
        assert!(resumed.contains("id: 4\n"));
        assert!(resumed.contains("id: 5\n"));
        // Cursor query form.
        let from = get(addr, "/stream?from=5&max=1", None);
        assert!(from.contains("id: 5\n") && !from.contains("id: 4\n"));
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let srv = HttpServer::bind("127.0.0.1:0", Arc::new(Router), 1).expect("bind");
        let mut s = TcpStream::connect(srv.local_addr()).expect("connect");
        let huge = "x".repeat(MAX_HEAD_BYTES + 1024);
        // The server may reject and close mid-write; EPIPE here is fine.
        let _ = write!(s, "GET /ping?{huge} HTTP/1.1\r\nHost: t\r\n\r\n");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 431"), "{}", &out[..out.len().min(64)]);
    }
}
