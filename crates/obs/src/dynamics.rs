//! Search-dynamics statistics: what the *search* is doing, not what the
//! machinery costs.
//!
//! The paper reports quality-over-iterations curves; its follow-ups
//! (Skinderowicz's GPU MMAS, the supply-chain deployment in PAPERS.md)
//! drive restarts and wall-clock budgets off convergence statistics.
//! This module computes those statistics per iteration:
//!
//! * **tour-length distribution** — best / mean / stddev over the
//!   colony's ants, the classic convergence curve;
//! * **best-so-far improvement deltas** — how much each iteration
//!   actually moved the needle;
//! * **pheromone trail entropy** — normalised Shannon entropy of the τ
//!   matrix: 1.0 for uniform trails (exploration), → 0 as the colony
//!   commits to few edges (exploitation/stagnation);
//! * **mean λ-branching factor** — Gambardella & Dorigo's per-city count
//!   of edges whose trail exceeds `τ_min + λ(τ_max − τ_min)`: ≈ n at
//!   start, → 2 when one tour dominates;
//! * a configurable **stagnation detector** combining a no-improvement
//!   window with an entropy floor.
//!
//! Colonies hand the raw per-iteration measurements ([`RawDynamics`]) to
//! the lifecycle driver; a [`DynamicsTracker`] (one per run) folds them
//! into the cross-iteration state ([`IterationStats`]). Everything here
//! is write-only telemetry — computing statistics never feeds back into
//! construction, update, or scheduling.

/// Knobs for the per-iteration statistics and the stagnation detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsConfig {
    /// Flag the run stagnant after this many iterations without a
    /// best-so-far improvement (0 disables the window criterion).
    pub stagnation_window: u64,
    /// Flag the run stagnant when trail entropy falls to or below this
    /// normalised floor (≤ 0 disables the entropy criterion).
    pub entropy_floor: f64,
    /// The λ of the λ-branching factor: an edge counts as "usable" from
    /// a city when its trail exceeds `τ_min + λ(τ_max − τ_min)` over
    /// that city's row.
    pub lambda: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        DynamicsConfig { stagnation_window: 50, entropy_floor: 0.05, lambda: 0.05 }
    }
}

impl DynamicsConfig {
    /// Builder: set the no-improvement window (0 disables).
    pub fn window(mut self, iterations: u64) -> Self {
        self.stagnation_window = iterations;
        self
    }

    /// Builder: set the entropy floor (≤ 0 disables).
    pub fn entropy_floor(mut self, floor: f64) -> Self {
        self.entropy_floor = floor;
        self
    }

    /// Builder: set the λ-branching threshold factor.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }
}

/// The per-iteration measurements a colony computes from its own state
/// (ant tour lengths + pheromone matrix) when dynamics are requested.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RawDynamics {
    /// Mean ant tour length this iteration.
    pub mean_len: f64,
    /// Population standard deviation of ant tour lengths.
    pub stddev_len: f64,
    /// Normalised Shannon entropy of the trail matrix, in `[0, 1]`.
    pub entropy: f64,
    /// Mean λ-branching factor over cities, in `[0, n]`.
    pub lambda_branching: f64,
}

/// One iteration's search-dynamics statistics, as carried on
/// `IterationEvent::stats` and folded into timelines/journals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Mean ant tour length this iteration.
    pub mean_len: f64,
    /// Population standard deviation of ant tour lengths.
    pub stddev_len: f64,
    /// How much the best-so-far improved this iteration (0 when it
    /// did not).
    pub improvement: u64,
    /// Normalised trail entropy, in `[0, 1]`.
    pub entropy: f64,
    /// Mean λ-branching factor over cities.
    pub lambda_branching: f64,
    /// Consecutive iterations (including this one) without a
    /// best-so-far improvement.
    pub stagnant_iterations: u64,
    /// Did the stagnation detector fire this iteration?
    pub stagnant: bool,
}

/// Cross-iteration state of the stagnation detector; one per ctx-driven
/// run. The lifecycle driver owns it and feeds it each iteration's
/// `(best_so_far, RawDynamics)` pair.
#[derive(Debug, Clone)]
pub struct DynamicsTracker {
    cfg: DynamicsConfig,
    prev_best: u64,
    stagnant_iterations: u64,
}

impl DynamicsTracker {
    /// A fresh tracker for one run.
    pub fn new(cfg: DynamicsConfig) -> Self {
        DynamicsTracker { cfg, prev_best: u64::MAX, stagnant_iterations: 0 }
    }

    /// Fold one iteration's measurements into [`IterationStats`].
    pub fn observe(&mut self, best_so_far: u64, raw: RawDynamics) -> IterationStats {
        let improvement =
            if self.prev_best == u64::MAX { 0 } else { self.prev_best.saturating_sub(best_so_far) };
        if best_so_far < self.prev_best {
            self.stagnant_iterations = 0;
        } else {
            self.stagnant_iterations += 1;
        }
        self.prev_best = self.prev_best.min(best_so_far);
        let window_hit = self.cfg.stagnation_window > 0
            && self.stagnant_iterations >= self.cfg.stagnation_window;
        let entropy_hit = self.cfg.entropy_floor > 0.0 && raw.entropy <= self.cfg.entropy_floor;
        IterationStats {
            mean_len: raw.mean_len,
            stddev_len: raw.stddev_len,
            improvement,
            entropy: raw.entropy,
            lambda_branching: raw.lambda_branching,
            stagnant_iterations: self.stagnant_iterations,
            stagnant: window_hit || entropy_hit,
        }
    }
}

/// Mean and population standard deviation of a set of tour lengths.
pub fn mean_stddev(lens: &[u64]) -> (f64, f64) {
    if lens.is_empty() {
        return (0.0, 0.0);
    }
    let m = lens.len() as f64;
    let mean = lens.iter().map(|&l| l as f64).sum::<f64>() / m;
    let var = lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / m;
    (mean, var.sqrt())
}

/// Normalised Shannon entropy of a trail matrix: treat the positive
/// entries as a probability distribution and divide by `ln(count)`, so
/// uniform trails score 1.0 and a single dominant edge scores → 0.
/// Works for both the CPU (`f64`) and GPU (`f32`) matrices.
pub fn trail_entropy<T: Copy + Into<f64>>(tau: &[T]) -> f64 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for &t in tau {
        let t: f64 = t.into();
        if t > 0.0 {
            sum += t;
            count += 1;
        }
    }
    if count < 2 || sum <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0f64;
    for &t in tau {
        let t: f64 = t.into();
        if t > 0.0 {
            let p = t / sum;
            h -= p * p.ln();
        }
    }
    (h / (count as f64).ln()).clamp(0.0, 1.0)
}

/// Mean λ-branching factor of an `n × n` trail matrix: per city, the
/// number of incident edges whose trail exceeds
/// `τ_min + λ(τ_max − τ_min)` over that city's row, averaged over
/// cities. Self-edges are excluded.
pub fn lambda_branching<T: Copy + Into<f64>>(tau: &[T], n: usize, lambda: f64) -> f64 {
    if n < 2 || tau.len() < n * n {
        return 0.0;
    }
    let mut total = 0u64;
    for i in 0..n {
        let row = &tau[i * n..(i + 1) * n];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (j, &t) in row.iter().enumerate() {
            if j == i {
                continue;
            }
            let t: f64 = t.into();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let threshold = lo + lambda * (hi - lo);
        let mut branches = 0u64;
        for (j, &t) in row.iter().enumerate() {
            if j != i && t.into() >= threshold {
                branches += 1;
            }
        }
        total += branches;
    }
    total as f64 / n as f64
}

/// Compute one iteration's [`RawDynamics`] from the final per-ant tour
/// lengths and the trail matrix. The `O(n²)` entropy/branching scans run
/// only when a caller asked for dynamics.
pub fn compute_raw<T: Copy + Into<f64>>(
    cfg: &DynamicsConfig,
    lens: &[u64],
    tau: &[T],
    n: usize,
) -> RawDynamics {
    let (mean_len, stddev_len) = mean_stddev(lens);
    RawDynamics {
        mean_len,
        stddev_len,
        entropy: trail_entropy(tau),
        lambda_branching: lambda_branching(tau, n, cfg.lambda),
    }
}

/// [`compute_raw`] from a pre-accumulated `(count, Σlen, Σlen²)` triple,
/// for colonies that construct ants one at a time and never hold the
/// whole length vector.
pub fn compute_raw_from_moments<T: Copy + Into<f64>>(
    cfg: &DynamicsConfig,
    count: u64,
    len_sum: f64,
    len_sumsq: f64,
    tau: &[T],
    n: usize,
) -> RawDynamics {
    let (mean_len, stddev_len) = if count == 0 {
        (0.0, 0.0)
    } else {
        let m = count as f64;
        let mean = len_sum / m;
        ((mean), (len_sumsq / m - mean * mean).max(0.0).sqrt())
    };
    RawDynamics {
        mean_len,
        stddev_len,
        entropy: trail_entropy(tau),
        lambda_branching: lambda_branching(tau, n, cfg.lambda),
    }
}

/// The glyph ramp [`sparkline`] renders with.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a unicode sparkline of at most `width` glyphs
/// (downsampled by striding when longer). Non-finite values render as
/// spaces; a flat series renders as a low bar.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let sampled: Vec<f64> = if values.len() <= width {
        values.to_vec()
    } else {
        (0..width).map(|i| values[i * values.len() / width]).collect()
    };
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &sampled {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return " ".repeat(sampled.len());
    }
    let span = hi - lo;
    sampled
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if span <= 0.0 {
                SPARK[0]
            } else {
                let k = ((v - lo) / span * 7.0).round() as usize;
                SPARK[k.min(7)]
            }
        })
        .collect()
}

/// A bounded, stride-doubling sample of one job's convergence: when the
/// buffer fills, every other sample is dropped and the stride doubles,
/// so the kept points always span the whole run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    samples: Vec<(u64, f64)>,
    stride: u64,
    capacity: usize,
}

impl Trajectory {
    /// A trajectory keeping at most `capacity` `(iteration, value)`
    /// samples.
    pub fn new(capacity: usize) -> Self {
        Trajectory { samples: Vec::new(), stride: 1, capacity: capacity.max(2) }
    }

    /// Offer one sample; kept only when `iteration` lands on the current
    /// stride.
    pub fn push(&mut self, iteration: u64, value: f64) {
        if iteration % self.stride != 0 {
            return;
        }
        if self.samples.len() >= self.capacity {
            let mut i = 0;
            self.samples.retain(|_| {
                i += 1;
                i % 2 == 1
            });
            self.stride *= 2;
            if iteration % self.stride != 0 {
                return;
            }
        }
        self.samples.push((iteration, value));
    }

    /// The kept `(iteration, value)` samples, oldest first.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Just the values, for [`sparkline`].
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|&(_, v)| v).collect()
    }
}

/// The per-job dynamics summary frozen into a `JobTimeline`: the state
/// of the search when the job finished, plus a bounded best-so-far
/// trajectory for dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsSummary {
    /// Iterations that carried dynamics statistics.
    pub iterations: u64,
    /// Final best-so-far tour length.
    pub final_best: u64,
    /// Final mean ant tour length.
    pub final_mean_len: f64,
    /// Trail entropy at the last observed iteration.
    pub final_entropy: f64,
    /// Minimum trail entropy observed over the run.
    pub min_entropy: f64,
    /// λ-branching factor at the last observed iteration.
    pub final_lambda_branching: f64,
    /// Total best-so-far improvement across observed iterations.
    pub total_improvement: u64,
    /// Consecutive no-improvement iterations at the end of the run.
    pub stagnant_iterations: u64,
    /// How many times the detector newly entered the stagnant state.
    pub stagnation_events: u64,
    /// Was the detector firing at the last observed iteration?
    pub last_stagnant: bool,
    /// Bounded best-so-far samples over the run (for sparklines).
    pub best_trajectory: Trajectory,
}

impl DynamicsSummary {
    /// An empty summary (no iterations observed yet).
    pub fn new(trajectory_capacity: usize) -> Self {
        DynamicsSummary {
            iterations: 0,
            final_best: u64::MAX,
            final_mean_len: 0.0,
            final_entropy: 0.0,
            min_entropy: f64::INFINITY,
            final_lambda_branching: 0.0,
            total_improvement: 0,
            stagnant_iterations: 0,
            stagnation_events: 0,
            last_stagnant: false,
            best_trajectory: Trajectory::new(trajectory_capacity),
        }
    }

    /// Fold one iteration's statistics in (healthy → stagnant edges are
    /// counted once per entry).
    pub fn record(&mut self, iteration: u64, best_so_far: u64, stats: &IterationStats) {
        if stats.stagnant && !self.last_stagnant {
            self.stagnation_events += 1;
        }
        self.iterations += 1;
        self.final_best = best_so_far;
        self.final_mean_len = stats.mean_len;
        self.final_entropy = stats.entropy;
        self.min_entropy = self.min_entropy.min(stats.entropy);
        self.final_lambda_branching = stats.lambda_branching;
        self.total_improvement += stats.improvement;
        self.stagnant_iterations = stats.stagnant_iterations;
        self.last_stagnant = stats.stagnant;
        self.best_trajectory.push(iteration, best_so_far as f64);
    }

    /// One-line rendering for timeline output.
    pub fn render(&self) -> String {
        format!(
            "dynamics: {} iters, best {}, mean {:.1}, entropy {:.3} (min {:.3}), \
             lambda {:.2}, improvement {}, stagnant {} iters ({} events)",
            self.iterations,
            if self.final_best == u64::MAX { 0 } else { self.final_best },
            self.final_mean_len,
            self.final_entropy,
            if self.min_entropy.is_finite() { self.min_entropy } else { 0.0 },
            self.final_lambda_branching,
            self.total_improvement,
            self.stagnant_iterations,
            self.stagnation_events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_stddev_matches_hand_computation() {
        let (m, s) = mean_stddev(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
    }

    #[test]
    fn entropy_is_one_for_uniform_and_drops_when_concentrated() {
        let uniform = vec![0.5f64; 16];
        assert!((trail_entropy(&uniform) - 1.0).abs() < 1e-12);
        let mut peaked = vec![1e-9f64; 16];
        peaked[3] = 1.0;
        let e = trail_entropy(&peaked);
        assert!(e < 0.1, "peaked distribution should have low entropy, got {e}");
        assert_eq!(trail_entropy::<f64>(&[]), 0.0);
        // f32 matrices (GPU colonies) go through the same helper.
        let uniform32 = vec![0.25f32; 8];
        assert!((trail_entropy(&uniform32) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lambda_branching_spans_uniform_to_dominant() {
        let n = 6;
        // Uniform trails: every off-diagonal edge clears the threshold.
        let uniform = vec![1.0f64; n * n];
        assert!((lambda_branching(&uniform, n, 0.05) - (n - 1) as f64).abs() < 1e-12);
        // One dominant out-edge per city: branching collapses toward 1.
        let mut dominant = vec![1e-6f64; n * n];
        for i in 0..n {
            dominant[i * n + (i + 1) % n] = 1.0;
        }
        let b = lambda_branching(&dominant, n, 0.05);
        assert!(b <= 1.5, "dominant tour should collapse branching, got {b}");
    }

    #[test]
    fn tracker_counts_improvements_and_fires_on_window() {
        let mut t = DynamicsTracker::new(DynamicsConfig::default().window(3).entropy_floor(0.0));
        let raw = RawDynamics { entropy: 0.9, ..Default::default() };
        let s0 = t.observe(100, raw);
        assert_eq!((s0.improvement, s0.stagnant_iterations, s0.stagnant), (0, 0, false));
        let s1 = t.observe(90, raw);
        assert_eq!((s1.improvement, s1.stagnant_iterations), (10, 0));
        let s2 = t.observe(90, raw);
        let s3 = t.observe(90, raw);
        let s4 = t.observe(90, raw);
        assert_eq!(s2.stagnant_iterations, 1);
        assert!(!s3.stagnant, "window 3 not reached at 2");
        assert!(s4.stagnant, "3 no-improvement iterations fire the window");
    }

    #[test]
    fn tracker_entropy_floor_fires_independently() {
        let mut t = DynamicsTracker::new(DynamicsConfig::default().window(0).entropy_floor(0.2));
        let hot = t.observe(50, RawDynamics { entropy: 0.8, ..Default::default() });
        assert!(!hot.stagnant);
        let cold = t.observe(40, RawDynamics { entropy: 0.1, ..Default::default() });
        assert!(cold.stagnant, "entropy 0.1 <= floor 0.2 fires even while improving");
    }

    #[test]
    fn sparkline_renders_bounded_width() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[5.0, 5.0, 5.0], 10);
        assert_eq!(flat.chars().count(), 3);
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&vals, 16);
        assert_eq!(s.chars().count(), 16);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn trajectory_stays_bounded_and_spans_the_run() {
        let mut t = Trajectory::new(8);
        for k in 0..1000u64 {
            t.push(k, 1000.0 - k as f64);
        }
        assert!(t.samples().len() <= 8);
        assert_eq!(t.samples()[0].0, 0, "oldest sample kept");
        let last = t.samples().last().unwrap().0;
        assert!(last >= 512, "samples span the run, last at {last}");
    }

    #[test]
    fn summary_counts_stagnation_edges_once() {
        let mut sum = DynamicsSummary::new(16);
        let mk = |stagnant, stagnant_iterations| IterationStats {
            mean_len: 10.0,
            stddev_len: 1.0,
            improvement: 0,
            entropy: 0.5,
            lambda_branching: 2.0,
            stagnant_iterations,
            stagnant,
        };
        sum.record(0, 100, &mk(false, 0));
        sum.record(1, 100, &mk(true, 1));
        sum.record(2, 100, &mk(true, 2));
        sum.record(3, 90, &mk(false, 0));
        sum.record(4, 90, &mk(true, 1));
        assert_eq!(sum.stagnation_events, 2);
        assert_eq!(sum.iterations, 5);
        assert_eq!(sum.final_best, 90);
        assert!(sum.render().contains("2 events"));
    }
}
