//! `aco-obs` — zero-dependency observability for the solve stack:
//! metrics, tracing, and kernel profiling.
//!
//! The paper's contribution is a *measurement-driven* comparison of GPU
//! parallelization strategies; this crate makes the reproduction
//! measurable the same way, as one subsystem instead of scattered
//! fields:
//!
//! * [`MetricsRegistry`] ([`metrics`]) — named counters, gauges and
//!   fixed-bucket histograms. Registration locks once per name; the
//!   returned handles are lock-free atomics, allocation-free on the hot
//!   path. [`MetricsSnapshot`] exports as JSON or Prometheus text.
//! * [`JobTrace`] / [`JobTimeline`] / [`TraceSink`] ([`trace`]) —
//!   hierarchical span recording (engine → job → iteration →
//!   kernel/LS pass) answering "where did the milliseconds go" per job:
//!   queue wait, placement, per-iteration construction/LS/pheromone
//!   spans, cache hits, kernel-family totals.
//! * [`kernel`] — the thread-local launch hook the SIMT simulator
//!   reports per-kernel-family invocations and modeled ms through, and
//!   the engine-wide [`KernelProfiler`] aggregate.
//! * [`dynamics`] — per-iteration *search* statistics (best/mean/stddev
//!   tour lengths, improvement deltas, trail entropy, λ-branching) and
//!   a configurable stagnation detector, computed by the colonies and
//!   folded by the lifecycle driver.
//! * [`Journal`] ([`journal`]) — a bounded engine-wide JSONL event
//!   journal (submit / placement / attempt / iteration-sample /
//!   stagnation / completion, stable flat schemas) with optional file
//!   persistence, epoch anchoring, sequence-cursored export
//!   ([`Journal::export_from`]), and [`replay_timeline`] back into a
//!   [`JobTimeline`] for post-mortems.
//! * [`RollingWindow`] ([`window`]) — time-bucketed rolling aggregation
//!   over metrics snapshots behind an injectable [`Clock`]
//!   ([`MonotonicClock`] in prod, [`ManualClock`] in tests): per-window
//!   throughput, failure rate, latency p50/p95/p99 from the pinned
//!   buckets, per-device utilisation and fault rates.
//! * [`SloSpec`] / [`SloBoard`] ([`slo`]) — declarative objectives with
//!   a multi-window burn-rate evaluator (hysteresis, one-level
//!   step-down) producing an [`AlertState`] timeline, including a
//!   bridge from the `aco-devices` health machine.
//! * [`HttpServer`] ([`http`]) — a std-only blocking `TcpListener`
//!   server (bounded acceptor pool, graceful shutdown) the engine mounts
//!   `/metrics`, `/metrics.json`, `/healthz`, `/slo`, `/dashboard` and
//!   the `/events` SSE journal stream on.
//!
//! **Determinism contract.** Everything here is write-only telemetry:
//! recording never influences scheduling, placement, seeding or solving,
//! so obs-on and obs-off runs produce bit-identical reports, placements
//! and progress sequences (pinned by `tests/observability.rs`).
//!
//! **Disabled cost.** A disabled [`Obs`] hands out handles that hold no
//! cell: every operation is one branch on a `None` — no `Arc` deref, no
//! atomic, no lock (the `obs_overhead` section of `engine_bench` gates
//! the end-to-end overhead advisory at ≤ 5%).

pub mod dynamics;
pub mod http;
pub mod journal;
pub mod kernel;
pub mod metrics;
pub mod slo;
pub mod trace;
pub mod window;

pub use dynamics::{
    sparkline, DynamicsConfig, DynamicsSummary, DynamicsTracker, IterationStats, RawDynamics,
};
pub use http::{EventSource, HttpServer, ObsHandler, Reply, Request};
pub use journal::{
    journal_epoch_ms, replay_timeline, Journal, JournalConfig, DEFAULT_JOURNAL_CAPACITY,
};
pub use kernel::{install, record, KernelProfiler, KernelScope, KernelSink};
pub use metrics::{
    Counter, FloatGauge, Gauge, Histogram, HistogramSnapshot, KernelFamilySnapshot,
    MetricsRegistry, MetricsSnapshot, LATENCY_BUCKETS_MS,
};
pub use slo::{
    default_slos, AlertState, AlertTransition, DeviceHealthView, SloBoard, SloEvaluator,
    SloObjective, SloSpec, SloStatus,
};
pub use trace::{AttemptSpan, IterationSpans, JobTimeline, JobTrace, TraceSink};
pub use window::{
    Clock, DeviceWindow, ManualClock, MonotonicClock, Quantiles, RollingWindow, WindowConfig,
    WindowStats,
};

use std::sync::Arc;

/// Default [`TraceSink`] retention (completed job timelines).
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// Default per-job bound on recorded iteration spans.
pub const DEFAULT_TRACE_ITERATIONS: usize = 512;

/// The observability hub one engine owns: a registry, a trace sink, and
/// the engine-wide kernel profiler, behind one enabled flag.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    metrics: MetricsRegistry,
    sink: TraceSink,
    profiler: Arc<KernelProfiler>,
    trace_iterations: usize,
}

impl Obs {
    /// A hub retaining `trace_capacity` completed timelines; when
    /// `enabled` is false everything degrades to no-ops and
    /// [`Obs::job_trace`] returns `None`.
    pub fn new(enabled: bool, trace_capacity: usize) -> Self {
        Obs {
            enabled,
            metrics: MetricsRegistry::new(enabled),
            sink: TraceSink::new(trace_capacity),
            profiler: Arc::new(KernelProfiler::new()),
            trace_iterations: DEFAULT_TRACE_ITERATIONS,
        }
    }

    /// Is this hub recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The completed-timeline ring.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// The engine-wide kernel profiler (shared with launch-hook sinks).
    pub fn profiler(&self) -> &Arc<KernelProfiler> {
        &self.profiler
    }

    /// A fresh per-job trace, or `None` when disabled (so a disabled
    /// engine allocates nothing per job).
    pub fn job_trace(&self, job: u64) -> Option<Arc<JobTrace>> {
        self.enabled.then(|| Arc::new(JobTrace::new(job, self.trace_iterations)))
    }

    /// Registry snapshot plus the kernel-family profile.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.kernels = self.profiler.snapshot();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_issues_no_traces_and_snapshots_empty() {
        let obs = Obs::new(false, 8);
        assert!(!obs.is_enabled());
        assert!(obs.job_trace(1).is_none());
        obs.metrics().counter("x").inc();
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty() && snap.kernels.is_empty());
    }

    #[test]
    fn snapshot_merges_registry_and_kernel_profile() {
        let obs = Obs::new(true, 8);
        obs.metrics().counter("jobs").add(2);
        obs.profiler().record("tour", 3.5);
        let snap = obs.snapshot();
        assert_eq!(snap.counters, vec![("jobs".to_string(), 2)]);
        assert_eq!(snap.kernels[0].family, "tour");
        assert!(snap.to_prometheus().contains("aco_kernel_invocations_total{family=\"tour\"} 1"));
    }
}
