//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] names an objective (an error budget over a service
//! level indicator), a pair of lookback windows, and burn-rate
//! thresholds. The evaluator computes the SLI from the rolling-window
//! layer ([`crate::window`]), divides by the budget to get a **burn
//! rate** (1.0 = consuming budget exactly as fast as the objective
//! allows), and applies the classic multi-window rule: an alert level is
//! *entered* only when **both** the long and the short window burn above
//! its threshold — the long window filters blips, the short window makes
//! the alert reset quickly once the problem stops.
//!
//! **Hysteresis.** Raising severity is immediate; lowering requires the
//! burn to stay below `hysteresis × threshold` for `clear_after`
//! consecutive evaluations, so an alert flickering around its threshold
//! produces one transition, not a strobe. Every transition is recorded
//! on a bounded timeline with a cause label.
//!
//! Device health flows through the same surface:
//! [`SloObjective::DeviceHealth`] maps the `aco-devices` health machine
//! (bridged as `aco_device_health` gauges) straight to alert states —
//! a quarantined device is `Critical`, a degraded/probation device is
//! `Warning` — and [`SloObjective::DeviceFaultRate`] turns a rising
//! per-device fault rate into a burn-rate alert. Cause labels name the
//! offending device.
//!
//! Everything here is deterministic under a [`crate::window::ManualClock`]:
//! evaluation is a pure function of the recorded frames and the
//! evaluation times.

use crate::metrics::json_escape as esc;
use crate::window::RollingWindow;

/// Alert severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum AlertState {
    /// Burn within budget.
    #[default]
    Ok,
    /// Warning thresholds exceeded on both windows.
    Warning,
    /// Critical thresholds exceeded on both windows.
    Critical,
}

impl AlertState {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Warning => "warning",
            AlertState::Critical => "critical",
        }
    }
}

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// SLI = `failed / (completed + failed)` from the engine job
    /// counters; `budget` is the tolerated failure fraction (e.g.
    /// `0.01` for 99% availability).
    FailureRate {
        /// Tolerated bad fraction (> 0).
        budget: f64,
    },
    /// SLI = fraction of `histogram`'s windowed observations above
    /// `threshold_ms`; `budget` is the tolerated slow fraction (e.g.
    /// `0.05` for "95% of jobs under 25 ms").
    LatencyAbove {
        /// The histogram series name (e.g. `aco_engine_queue_wait_ms`).
        histogram: String,
        /// The latency objective (best aligned with a pinned bucket
        /// bound — fractions resolve at bucket granularity).
        threshold_ms: f64,
        /// Tolerated slow fraction (> 0).
        budget: f64,
    },
    /// Direct bridge from the device health machine: `Critical` while
    /// any device's bridged `aco_device_health` gauge reads quarantined,
    /// `Warning` while any reads degraded or probation. Burn thresholds
    /// are ignored; hysteresis still applies on the way down.
    DeviceHealth,
    /// SLI = worst per-device fault rate (faults/s) from the bridged
    /// `aco_device_faults_observed_total` counters; burn = rate /
    /// `budget_per_sec`.
    DeviceFaultRate {
        /// Tolerated faults per second per device (> 0).
        budget_per_sec: f64,
    },
}

/// One declarative SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable name (export key).
    pub name: String,
    /// What to measure.
    pub objective: SloObjective,
    /// Long lookback (ms): smooths the burn estimate.
    pub long_window_ms: u64,
    /// Short lookback (ms): makes enter/exit responsive.
    pub short_window_ms: u64,
    /// Burn rate at or above which both windows must agree to enter
    /// `Warning`.
    pub warning_burn: f64,
    /// Burn rate at or above which both windows must agree to enter
    /// `Critical`.
    pub critical_burn: f64,
    /// Exit factor: to *leave* a level, burn must stay below
    /// `hysteresis × that level's threshold` (clamped to (0, 1]).
    pub hysteresis: f64,
    /// Consecutive below-exit evaluations required before the state
    /// steps down one level (≥ 1).
    pub clear_after: u32,
}

impl SloSpec {
    /// An SLO with the conventional multi-window defaults: 60 s long /
    /// 15 s short windows, warn at burn ≥ 1, critical at burn ≥ 6,
    /// hysteresis 0.8, two clean evaluations to step down.
    pub fn new(name: impl Into<String>, objective: SloObjective) -> Self {
        SloSpec {
            name: name.into(),
            objective,
            long_window_ms: 60_000,
            short_window_ms: 15_000,
            warning_burn: 1.0,
            critical_burn: 6.0,
            hysteresis: 0.8,
            clear_after: 2,
        }
    }

    /// Builder: the long/short window pair (ms).
    pub fn windows(mut self, long_ms: u64, short_ms: u64) -> Self {
        self.long_window_ms = long_ms.max(1);
        self.short_window_ms = short_ms.max(1);
        self
    }

    /// Builder: warning / critical burn thresholds.
    pub fn burns(mut self, warning: f64, critical: f64) -> Self {
        self.warning_burn = warning.max(0.0);
        self.critical_burn = critical.max(self.warning_burn);
        self
    }

    /// Builder: exit hysteresis factor and consecutive-clear count.
    pub fn hysteresis(mut self, factor: f64, clear_after: u32) -> Self {
        self.hysteresis = if factor > 0.0 { factor.min(1.0) } else { 0.8 };
        self.clear_after = clear_after.max(1);
        self
    }
}

/// One recorded state change.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Evaluation time (clock ms).
    pub at_ms: u64,
    /// State left.
    pub from: AlertState,
    /// State entered.
    pub to: AlertState,
    /// Human-readable reason (includes the offending device for the
    /// health/fault objectives).
    pub cause: String,
}

/// Bound on each evaluator's retained transition timeline.
const MAX_TRANSITIONS: usize = 256;

/// Point-in-time view of one SLO (see [`SloBoard::statuses`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's stable name.
    pub name: String,
    /// Current alert state.
    pub state: AlertState,
    /// Last long-window burn (0 before the first evaluation).
    pub burn_long: f64,
    /// Last short-window burn.
    pub burn_short: f64,
    /// Cause label of the last transition (empty if never transitioned).
    pub cause: String,
    /// The recorded transitions, oldest first.
    pub timeline: Vec<AlertTransition>,
}

/// The per-spec evaluator: spec + current state + hysteresis countdown +
/// transition timeline.
#[derive(Debug, Clone)]
pub struct SloEvaluator {
    spec: SloSpec,
    state: AlertState,
    /// Consecutive evaluations whose desired level sat below the current
    /// state with burn under the exit threshold.
    clear_streak: u32,
    burn_long: f64,
    burn_short: f64,
    last_cause: String,
    timeline: Vec<AlertTransition>,
}

/// The worst per-device view the device objectives evaluate: `(name,
/// health code)` pairs bridged from the latest device snapshot (codes
/// per `aco-devices`: 0 healthy, 1 degraded, 2 probation, 3
/// quarantined). Plain data so `aco-obs` stays dependency-free.
pub type DeviceHealthView = Vec<(String, u8)>;

impl SloEvaluator {
    /// A fresh evaluator in `Ok`.
    pub fn new(spec: SloSpec) -> Self {
        SloEvaluator {
            spec,
            state: AlertState::Ok,
            clear_streak: 0,
            burn_long: 0.0,
            burn_short: 0.0,
            last_cause: String::new(),
            timeline: Vec::new(),
        }
    }

    /// The spec under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// The recorded transitions, oldest first.
    pub fn timeline(&self) -> &[AlertTransition] {
        &self.timeline
    }

    /// Evaluate once at `now_ms` against the rolling windows (and, for
    /// the device objectives, the bridged device health view). Returns
    /// the (possibly new) state. Deterministic: same frames, same
    /// devices, same times → same timeline.
    pub fn evaluate(
        &mut self,
        windows: &RollingWindow,
        devices: &DeviceHealthView,
        now_ms: u64,
    ) -> AlertState {
        let (desired, burn_long, burn_short, cause) = self.measure(windows, devices, now_ms);
        self.burn_long = burn_long;
        self.burn_short = burn_short;
        use std::cmp::Ordering::*;
        match desired.cmp(&self.state) {
            Greater => {
                // Raising severity is immediate.
                self.transition(now_ms, desired, cause);
                self.clear_streak = 0;
            }
            Equal => self.clear_streak = 0,
            Less => {
                // Stepping down requires the burn to sit below the exit
                // threshold (hysteresis × the *current* level's entry
                // burn) for `clear_after` consecutive evaluations.
                let entry_burn = match self.state {
                    AlertState::Critical => self.spec.critical_burn,
                    _ => self.spec.warning_burn,
                };
                let exit = self.spec.hysteresis * entry_burn;
                let below_exit = match self.spec.objective {
                    // Health has no burn: desired < state is the signal.
                    SloObjective::DeviceHealth => true,
                    _ => burn_long < exit && burn_short < exit,
                };
                if below_exit {
                    self.clear_streak += 1;
                    if self.clear_streak >= self.spec.clear_after {
                        // One level at a time, so Critical → Warning → Ok
                        // leaves a legible timeline.
                        let next = match self.state {
                            AlertState::Critical => AlertState::Warning.max(desired),
                            _ => AlertState::Ok,
                        };
                        self.transition(now_ms, next, cause);
                        self.clear_streak = 0;
                    }
                } else {
                    self.clear_streak = 0;
                }
            }
        }
        self.state
    }

    /// The raw measurement: desired state ignoring hysteresis, both
    /// burns, and a cause label.
    fn measure(
        &self,
        windows: &RollingWindow,
        devices: &DeviceHealthView,
        now_ms: u64,
    ) -> (AlertState, f64, f64, String) {
        let spec = &self.spec;
        let burn_pair = |sli: &dyn Fn(u64) -> f64, budget: f64| {
            let b = budget.max(1e-12);
            (sli(spec.long_window_ms) / b, sli(spec.short_window_ms) / b)
        };
        match &spec.objective {
            SloObjective::FailureRate { budget } => {
                let sli = |win: u64| {
                    let failed = windows
                        .counter_delta(crate::window::FAILED_TOTAL, now_ms, win)
                        .unwrap_or(0);
                    let done = windows
                        .counter_delta(crate::window::COMPLETED_TOTAL, now_ms, win)
                        .unwrap_or(0);
                    let finished = failed + done;
                    if finished == 0 {
                        0.0
                    } else {
                        failed as f64 / finished as f64
                    }
                };
                let (long, short) = burn_pair(&sli, *budget);
                let desired = desired_state(spec, long, short);
                let cause = format!(
                    "failure-rate burn {long:.2}x/{short:.2}x over {}s/{}s (budget {budget})",
                    spec.long_window_ms / 1_000,
                    spec.short_window_ms / 1_000,
                );
                (desired, long, short, cause)
            }
            SloObjective::LatencyAbove { histogram, threshold_ms, budget } => {
                let sli = |win: u64| {
                    windows.fraction_above(histogram, *threshold_ms, now_ms, win).unwrap_or(0.0)
                };
                let (long, short) = burn_pair(&sli, *budget);
                let desired = desired_state(spec, long, short);
                let cause = format!(
                    "{histogram} >{threshold_ms}ms burn {long:.2}x/{short:.2}x (budget {budget})"
                );
                (desired, long, short, cause)
            }
            SloObjective::DeviceHealth => {
                let worst = devices.iter().max_by_key(|(_, code)| *code);
                match worst {
                    Some((name, code)) if *code >= 3 => {
                        (AlertState::Critical, 0.0, 0.0, format!("device {name} quarantined"))
                    }
                    Some((name, code)) if *code >= 1 => (
                        AlertState::Warning,
                        0.0,
                        0.0,
                        format!(
                            "device {name} {}",
                            if *code == 2 { "on probation" } else { "degraded" }
                        ),
                    ),
                    _ => (AlertState::Ok, 0.0, 0.0, "all devices healthy".to_string()),
                }
            }
            SloObjective::DeviceFaultRate { budget_per_sec } => {
                // Worst device per window; the cause names the long
                // window's offender.
                let worst = |win: u64| {
                    windows
                        .stats(now_ms, win)
                        .map(|s| {
                            s.devices
                                .into_iter()
                                .map(|d| (d.fault_rate_per_sec, d.name))
                                .max_by(|a, b| a.0.total_cmp(&b.0))
                                .unwrap_or((0.0, String::new()))
                        })
                        .unwrap_or((0.0, String::new()))
                };
                let b = budget_per_sec.max(1e-12);
                let (rate_long, device) = worst(spec.long_window_ms);
                let (rate_short, _) = worst(spec.short_window_ms);
                let (long, short) = (rate_long / b, rate_short / b);
                let desired = desired_state(spec, long, short);
                let cause = if device.is_empty() {
                    "no device faults".to_string()
                } else {
                    format!(
                        "device {device} fault rate {rate_long:.2}/s \
                         (burn {long:.2}x/{short:.2}x, budget {budget_per_sec}/s)"
                    )
                };
                (desired, long, short, cause)
            }
        }
    }

    fn transition(&mut self, at_ms: u64, to: AlertState, cause: String) {
        if to == self.state {
            return;
        }
        if self.timeline.len() >= MAX_TRANSITIONS {
            self.timeline.remove(0);
        }
        self.timeline.push(AlertTransition { at_ms, from: self.state, to, cause: cause.clone() });
        self.last_cause = cause;
        self.state = to;
    }

    /// Point-in-time status view.
    pub fn status(&self) -> SloStatus {
        SloStatus {
            name: self.spec.name.clone(),
            state: self.state,
            burn_long: self.burn_long,
            burn_short: self.burn_short,
            cause: self.last_cause.clone(),
            timeline: self.timeline.clone(),
        }
    }
}

/// The multi-window entry rule: both windows must agree.
fn desired_state(spec: &SloSpec, burn_long: f64, burn_short: f64) -> AlertState {
    if burn_long >= spec.critical_burn && burn_short >= spec.critical_burn {
        AlertState::Critical
    } else if burn_long >= spec.warning_burn && burn_short >= spec.warning_burn {
        AlertState::Warning
    } else {
        AlertState::Ok
    }
}

/// A set of evaluators sharing one rolling window — what the engine
/// hangs off its serving layer.
#[derive(Debug, Default)]
pub struct SloBoard {
    evaluators: Vec<SloEvaluator>,
}

impl SloBoard {
    /// A board over `specs`.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        SloBoard { evaluators: specs.into_iter().map(SloEvaluator::new).collect() }
    }

    /// Number of SLOs on the board.
    pub fn len(&self) -> usize {
        self.evaluators.len()
    }

    /// Is the board empty?
    pub fn is_empty(&self) -> bool {
        self.evaluators.is_empty()
    }

    /// Evaluate every SLO once; returns the worst resulting state.
    pub fn evaluate(
        &mut self,
        windows: &RollingWindow,
        devices: &DeviceHealthView,
        now_ms: u64,
    ) -> AlertState {
        self.evaluators
            .iter_mut()
            .map(|e| e.evaluate(windows, devices, now_ms))
            .max()
            .unwrap_or(AlertState::Ok)
    }

    /// Point-in-time status of every SLO.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.evaluators.iter().map(SloEvaluator::status).collect()
    }

    /// The worst current state across the board.
    pub fn worst(&self) -> AlertState {
        self.evaluators.iter().map(|e| e.state).max().unwrap_or(AlertState::Ok)
    }

    /// Render the board as a JSON document (hand-rolled like every
    /// export in this crate): an array of
    /// `{"name","state","burn_long","burn_short","cause","timeline":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.statuses().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"state\":\"{}\",\"burn_long\":{:.4},\"burn_short\":{:.4},\
                 \"cause\":\"{}\",\"timeline\":[",
                esc(&s.name),
                s.state.label(),
                s.burn_long,
                s.burn_short,
                esc(&s.cause),
            ));
            for (k, t) in s.timeline.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"at_ms\":{},\"from\":\"{}\",\"to\":\"{}\",\"cause\":\"{}\"}}",
                    t.at_ms,
                    t.from.label(),
                    t.to.label(),
                    esc(&t.cause),
                ));
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }
}

/// The default board the engine serves when the caller configures
/// windows without explicit SLOs: job availability (99%), queue-wait
/// latency (95% under 25 ms), the device health bridge, and a per-device
/// fault-rate alarm (0.5 faults/s budget).
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::new("job-availability", SloObjective::FailureRate { budget: 0.01 }),
        SloSpec::new(
            "queue-wait-p95",
            SloObjective::LatencyAbove {
                histogram: crate::window::QUEUE_WAIT_MS.to_string(),
                threshold_ms: 25.0,
                budget: 0.05,
            },
        ),
        SloSpec::new("device-health", SloObjective::DeviceHealth),
        SloSpec::new("device-fault-rate", SloObjective::DeviceFaultRate { budget_per_sec: 0.5 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::window::{RollingWindow, WindowConfig, COMPLETED_TOTAL, FAILED_TOTAL};

    /// Drive a failure-rate SLO through Ok → Warning → Critical → Ok and
    /// assert the hysteresis shape of the timeline.
    #[test]
    fn burn_rate_alert_walks_the_full_cycle_with_hysteresis() {
        let windows = RollingWindow::new(WindowConfig::default().bucket_ms(1_000).buckets(600));
        let spec = SloSpec::new("avail", SloObjective::FailureRate { budget: 0.01 })
            .windows(10_000, 2_000)
            .burns(1.0, 20.0)
            .hysteresis(0.8, 2);
        let mut eval = SloEvaluator::new(spec);
        let reg = MetricsRegistry::new(true);
        let done = reg.counter(COMPLETED_TOTAL);
        let failed = reg.counter(FAILED_TOTAL);
        let devices: DeviceHealthView = vec![("gpu0".into(), 0)];
        let tick = |t: u64, ok: u64, bad: u64, eval: &mut SloEvaluator| {
            done.add(ok);
            failed.add(bad);
            windows.record(t, reg.snapshot());
            eval.evaluate(&windows, &devices, t)
        };
        // Healthy traffic: 100 jobs/s, no failures.
        assert_eq!(tick(0, 0, 0, &mut eval), AlertState::Ok);
        assert_eq!(tick(1_000, 100, 0, &mut eval), AlertState::Ok);
        assert_eq!(tick(2_000, 100, 0, &mut eval), AlertState::Ok);
        // 5% failures: burn 5x ≥ warning(1) on both windows, < critical.
        assert_eq!(tick(3_000, 95, 5, &mut eval), AlertState::Warning);
        // 30% failures sustained: burn ≥ 20 on the short window quickly,
        // but the long window still averages in the clean history.
        let mut t = 4_000;
        while eval.state() != AlertState::Critical && t < 20_000 {
            assert_ne!(tick(t, 70, 30, &mut eval), AlertState::Ok, "never drops mid-incident");
            t += 1_000;
        }
        assert_eq!(eval.state(), AlertState::Critical, "sustained burn goes critical");
        // Recovery: clean traffic. The short window clears first; the
        // state must step down Critical → Warning → Ok, each step only
        // after 2 consecutive clean evaluations.
        let mut states = Vec::new();
        for _ in 0..40 {
            states.push(tick(t, 100, 0, &mut eval));
            t += 1_000;
        }
        assert_eq!(*states.last().unwrap(), AlertState::Ok, "fully recovers");
        // The timeline is exactly the four transitions, in order.
        let kinds: Vec<(AlertState, AlertState)> =
            eval.timeline().iter().map(|tr| (tr.from, tr.to)).collect();
        assert_eq!(
            kinds,
            vec![
                (AlertState::Ok, AlertState::Warning),
                (AlertState::Warning, AlertState::Critical),
                (AlertState::Critical, AlertState::Warning),
                (AlertState::Warning, AlertState::Ok),
            ]
        );
        // Hysteresis: each downward transition needed 2 clean evals.
        let down: Vec<u64> = eval.timeline()[2..].iter().map(|tr| tr.at_ms).collect();
        assert!(down[1] >= down[0] + 2_000, "second step waits its own clear streak");
        assert!(eval.timeline()[0].cause.contains("failure-rate burn"));
    }

    #[test]
    fn device_health_bridge_maps_codes_to_states_with_cause() {
        let windows = RollingWindow::new(WindowConfig::default());
        let mut eval = SloEvaluator::new(
            SloSpec::new("health", SloObjective::DeviceHealth).hysteresis(0.8, 1),
        );
        let healthy: DeviceHealthView = vec![("gpu0".into(), 0), ("gpu1".into(), 0)];
        let degraded: DeviceHealthView = vec![("gpu0".into(), 0), ("gpu1".into(), 1)];
        let quarantined: DeviceHealthView = vec![("gpu0".into(), 3), ("gpu1".into(), 1)];
        assert_eq!(eval.evaluate(&windows, &healthy, 0), AlertState::Ok);
        assert_eq!(eval.evaluate(&windows, &degraded, 1_000), AlertState::Warning);
        assert!(eval.timeline().last().unwrap().cause.contains("gpu1 degraded"));
        assert_eq!(eval.evaluate(&windows, &quarantined, 2_000), AlertState::Critical);
        assert!(eval.timeline().last().unwrap().cause.contains("gpu0 quarantined"));
        // Recovery steps down one level per clean evaluation (clear_after=1).
        assert_eq!(eval.evaluate(&windows, &healthy, 3_000), AlertState::Warning);
        assert_eq!(eval.evaluate(&windows, &healthy, 4_000), AlertState::Ok);
    }

    #[test]
    fn board_reports_worst_state_and_renders_json() {
        let windows = RollingWindow::new(WindowConfig::default());
        let mut board = SloBoard::new(default_slos());
        assert_eq!(board.len(), 4);
        let quarantined: DeviceHealthView = vec![("gpu0".into(), 3)];
        assert_eq!(board.evaluate(&windows, &quarantined, 0), AlertState::Critical);
        assert_eq!(board.worst(), AlertState::Critical);
        let json = board.to_json();
        assert!(json.contains("\"name\":\"device-health\""));
        assert!(json.contains("\"state\":\"critical\""));
        assert!(json.contains("device gpu0 quarantined"));
        // Flat-JSON well-formedness: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn no_traffic_is_ok_not_an_alert() {
        let windows = RollingWindow::new(WindowConfig::default().bucket_ms(1_000));
        let reg = MetricsRegistry::new(true);
        windows.record(0, reg.snapshot());
        windows.record(1_000, reg.snapshot());
        let mut board = SloBoard::new(default_slos());
        assert_eq!(board.evaluate(&windows, &Vec::new(), 1_000), AlertState::Ok);
    }
}
