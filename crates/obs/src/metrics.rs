//! The lock-cheap metrics registry: named counters, gauges and
//! fixed-bucket histograms.
//!
//! Registration (name → cell) takes a `Mutex`, but happens once per
//! metric: the returned handles ([`Counter`], [`Gauge`], [`Histogram`])
//! hold the `Arc`'d cell directly, so every hot-path operation is one or
//! two relaxed atomic RMWs with no lock and no allocation. Handles from a
//! *disabled* registry hold no cell at all — each operation is a single
//! branch on a `None`, so a disabled engine pays ~zero for being
//! instrumentable (pinned by the `obs_overhead` bench section).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The fixed bucket upper bounds (milliseconds) every latency histogram
/// in the workspace uses: queue wait, submit→first-event, job wall time.
/// An implicit `+Inf` bucket follows the last bound. Pinned by
/// `tests/observability.rs` — changing them silently breaks dashboard
/// continuity, so any change must be deliberate.
pub const LATENCY_BUCKETS_MS: [f64; 11] =
    [0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0];

/// A monotonically increasing counter handle. Cheap to clone; clones
/// share the cell. A handle from a disabled registry is a no-op.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that records nothing (what disabled registries return).
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Overwrite with an absolute value. For counters *bridged* from an
    /// external monotone source at snapshot time (cache stats, device
    /// completions) — event-sourced counters should use [`Counter::add`].
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A point-in-time gauge handle (set/add/sub). No-op when disabled.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(c) = &self.cell {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Increment by 1.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.cell {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decrement by 1.
    #[inline]
    pub fn dec(&self) {
        if let Some(c) = &self.cell {
            c.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A full-precision floating-point gauge handle (`f64` bits in an
/// `AtomicU64`). Exists because integer [`Gauge`]s quantise — the
/// `*_milli` job gauges truncate to milli-units for Prometheus name
/// stability, and the float twin carries the true value into the JSON
/// snapshot. No-op when disabled.
#[derive(Clone, Default)]
pub struct FloatGauge {
    cell: Option<Arc<AtomicU64>>,
}

impl FloatGauge {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        FloatGauge { cell: None }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.cell.as_ref().map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Shared histogram storage: bounds are fixed at registration, so
/// observation is bucket-search + three relaxed RMWs — allocation-free.
struct HistogramCell {
    /// Ascending upper bounds; an implicit `+Inf` bucket follows.
    bounds: Box<[f64]>,
    /// Non-cumulative per-bucket counts (`bounds.len() + 1` entries).
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum in integer microseconds (observed values are milliseconds);
    /// integer so concurrent observers need no CAS loop.
    sum_us: AtomicU64,
}

/// A fixed-bucket histogram handle over millisecond observations.
/// No-op when disabled.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A handle that records nothing.
    pub fn noop() -> Self {
        Histogram { cell: None }
    }

    /// Record one observation (milliseconds).
    #[inline]
    pub fn observe(&self, ms: f64) {
        let Some(c) = &self.cell else { return };
        // First bucket whose upper bound covers the value (`le`
        // semantics); past the last bound lands in the +Inf bucket.
        let idx = c.bounds.partition_point(|&b| b < ms);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum_us.fetch_add((ms.max(0.0) * 1e3).round() as u64, Ordering::Relaxed);
    }

    /// Total observations (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    FloatGauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

/// The named-metric registry. One per engine; get-or-register by name,
/// then record through the returned handle (see the module docs for the
/// locking story). A registry built disabled hands out no-op handles and
/// snapshots empty.
pub struct MetricsRegistry {
    enabled: bool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// A registry; `enabled = false` makes every handle a no-op.
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry { enabled, metrics: Mutex::new(BTreeMap::new()) }
    }

    /// Is this registry recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or register the counter `name`. Returns a no-op handle when
    /// the registry is disabled or `name` is already a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        let mut map = self.metrics.lock().expect("metrics lock");
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match m {
            Metric::Counter(c) => Counter { cell: Some(Arc::clone(c)) },
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                Counter::noop()
            }
        }
    }

    /// Get or register the gauge `name` (no-op on kind mismatch).
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        let mut map = self.metrics.lock().expect("metrics lock");
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))));
        match m {
            Metric::Gauge(g) => Gauge { cell: Some(Arc::clone(g)) },
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                Gauge::noop()
            }
        }
    }

    /// Get or register the float gauge `name` (no-op on kind mismatch).
    pub fn float_gauge(&self, name: &str) -> FloatGauge {
        if !self.enabled {
            return FloatGauge::noop();
        }
        let mut map = self.metrics.lock().expect("metrics lock");
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::FloatGauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))));
        match m {
            Metric::FloatGauge(g) => FloatGauge { cell: Some(Arc::clone(g)) },
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                FloatGauge::noop()
            }
        }
    }

    /// Get or register the histogram `name` with the given bucket upper
    /// bounds (ascending; an `+Inf` bucket is implicit). The bounds of
    /// the *first* registration win; later calls reuse them.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        let mut map = self.metrics.lock().expect("metrics lock");
        let m = map.entry(name.to_string()).or_insert_with(|| {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Metric::Histogram(Arc::new(HistogramCell {
                bounds: bounds.into(),
                buckets,
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
            }))
        });
        match m {
            Metric::Histogram(h) => Histogram { cell: Some(Arc::clone(h)) },
            _ => {
                debug_assert!(false, "metric {name:?} registered with a different kind");
                Histogram::noop()
            }
        }
    }

    /// Point-in-time copy of every registered metric, sorted by name
    /// (the `BTreeMap` order), so exports are deterministic given the
    /// same recorded values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let map = self.metrics.lock().expect("metrics lock");
        for (name, m) in map.iter() {
            match m {
                Metric::Counter(c) => {
                    snap.counters.push((name.clone(), c.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.load(Ordering::Relaxed))),
                Metric::FloatGauge(g) => snap
                    .float_gauges
                    .push((name.clone(), f64::from_bits(g.load(Ordering::Relaxed)))),
                Metric::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    bounds: h.bounds.to_vec(),
                    buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                    count: h.count.load(Ordering::Relaxed),
                    sum_ms: h.sum_us.load(Ordering::Relaxed) as f64 / 1e3,
                }),
            }
        }
        snap
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled)
            .field("metrics", &self.metrics.lock().expect("metrics lock").len())
            .finish()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Bucket upper bounds (ascending; `+Inf` implicit).
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; `bounds.len() + 1` entries, the
    /// last being the `+Inf` bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (milliseconds).
    pub sum_ms: f64,
}

/// One kernel family's aggregate profile (see `crate::kernel`).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelFamilySnapshot {
    /// The kernel's stable name (`aco_simt::Kernel::name`).
    pub family: String,
    /// Launches recorded.
    pub invocations: u64,
    /// Accumulated modeled milliseconds.
    pub modeled_ms: f64,
}

/// A point-in-time export of a whole registry (plus, when produced by
/// [`crate::Obs::snapshot`], the engine-wide kernel-family profile).
/// Entries are sorted by name; serialise with
/// [`MetricsSnapshot::to_json`] or [`MetricsSnapshot::to_prometheus`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, value)` per full-precision float gauge.
    pub float_gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
    /// Kernel-family profile (empty unless filled by the owner).
    pub kernels: Vec<KernelFamilySnapshot>,
}

/// The metric name without any trailing `{label="…"}` block (names may
/// embed Prometheus labels, e.g. `aco_device_queued{device="gpu0"}`).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// JSON string escaping: backslash, quote, and control characters (the
/// latter as `\n`/`\r`/`\t` or `\u00XX`). Metric names built from
/// user-supplied labels (device names, instance names) pass through
/// here on export, so hostile names round-trip instead of corrupting
/// the document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus label-*value* escaping (text exposition v0.0.4): backslash
/// → `\\`, quote → `\"`, newline → `\n` (other control characters are
/// also `\n`-folded — the format forbids raw control bytes).
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Build a label-embedded metric name — `base{key="value"}` — with the
/// value escaped for the Prometheus text format. Every bridging site
/// that interpolates an external name (device, job, backend) into a
/// metric name must come through here so a name containing `"`, `\`,
/// `{` or a newline cannot break the exposition.
pub fn labelled(base: &str, key: &str, value: &str) -> String {
    format!("{base}{{{key}=\"{}\"}}", escape_label_value(value))
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // keep a decimal point so JSON/Prom floats read as floats
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Render as a JSON object: `{"counters":{…},"gauges":{…},
    /// "float_gauges":{…},"histograms":{…},"kernels":{…}}`.
    /// Hand-rolled (the workspace is dependency-free); names are escaped
    /// with [`json_escape`], so label values containing quotes,
    /// backslashes, braces or newlines round-trip.
    pub fn to_json(&self) -> String {
        let esc = json_escape;
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", esc(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", esc(name)));
        }
        out.push_str("},\"float_gauges\":{");
        for (i, (name, v)) in self.float_gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", esc(name), fmt_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds.iter().map(|&b| fmt_f64(b)).collect();
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "\"{}\":{{\"bounds\":[{}],\"buckets\":[{}],\"count\":{},\"sum_ms\":{}}}",
                esc(&h.name),
                bounds.join(","),
                buckets.join(","),
                h.count,
                fmt_f64(h.sum_ms),
            ));
        }
        out.push_str("},\"kernels\":{");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"invocations\":{},\"modeled_ms\":{}}}",
                esc(&k.family),
                k.invocations,
                fmt_f64(k.modeled_ms),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Render in the Prometheus text exposition format (v0.0.4): one
    /// `# TYPE` line per metric family, cumulative `_bucket{le=…}` series
    /// plus `_sum`/`_count` per histogram, and one
    /// `aco_kernel_{invocations_total,modeled_ms_total}{family=…}` pair
    /// per profiled kernel family.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = base_name(name).to_string();
            if last_type.as_deref() != Some(base.as_str()) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_type = Some(base);
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.float_gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {}\n", fmt_f64(*v)));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "histogram");
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cum += b;
                let le = match h.bounds.get(i) {
                    Some(&bound) => fmt_f64(bound),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", h.name));
            }
            out.push_str(&format!("{}_sum {}\n", h.name, fmt_f64(h.sum_ms)));
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
        }
        if !self.kernels.is_empty() {
            out.push_str("# TYPE aco_kernel_invocations_total counter\n");
            for k in &self.kernels {
                out.push_str(&format!(
                    "aco_kernel_invocations_total{{family=\"{}\"}} {}\n",
                    k.family, k.invocations
                ));
            }
            out.push_str("# TYPE aco_kernel_modeled_ms_total counter\n");
            for k in &self.kernels {
                out.push_str(&format!(
                    "aco_kernel_modeled_ms_total{{family=\"{}\"}} {}\n",
                    k.family,
                    fmt_f64(k.modeled_ms)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noops_and_snapshots_empty() {
        let reg = MetricsRegistry::new(false);
        let c = reg.counter("x");
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = reg.histogram("h", &LATENCY_BUCKETS_MS);
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(reg.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn handles_share_cells_by_name() {
        let reg = MetricsRegistry::new(true);
        let a = reg.counter("jobs");
        let b = reg.counter("jobs");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 1);
    }

    #[test]
    fn histogram_buckets_use_le_semantics() {
        let reg = MetricsRegistry::new(true);
        let h = reg.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5); // ≤ 1.0
        h.observe(1.0); // ≤ 1.0 (le is inclusive)
        h.observe(5.0); // ≤ 10.0
        h.observe(99.0); // +Inf
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].buckets, vec![2, 1, 1]);
        assert_eq!(snap.histograms[0].count, 4);
        assert!((snap.histograms[0].sum_ms - 105.5).abs() < 1e-6);
    }

    #[test]
    fn kind_mismatch_degrades_to_noop() {
        let reg = MetricsRegistry::new(true);
        let _c = reg.counter("m");
        // Release builds degrade gracefully; debug builds would assert,
        // so only exercise the release behaviour there.
        if !cfg!(debug_assertions) {
            let g = reg.gauge("m");
            g.set(7);
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn prometheus_export_is_cumulative_and_typed() {
        let reg = MetricsRegistry::new(true);
        reg.counter("aco_jobs_total").add(3);
        reg.gauge("aco_depth").set(2);
        let h = reg.histogram("aco_wait_ms", &[1.0, 5.0]);
        h.observe(0.4);
        h.observe(4.0);
        h.observe(50.0);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE aco_jobs_total counter\naco_jobs_total 3\n"));
        assert!(text.contains("# TYPE aco_depth gauge\naco_depth 2\n"));
        assert!(text.contains("aco_wait_ms_bucket{le=\"1.0\"} 1\n"));
        assert!(text.contains("aco_wait_ms_bucket{le=\"5.0\"} 2\n"));
        assert!(text.contains("aco_wait_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("aco_wait_ms_count 3\n"));
    }

    #[test]
    fn labelled_names_share_one_type_line() {
        let reg = MetricsRegistry::new(true);
        reg.gauge("aco_device_queued{device=\"gpu0\"}").set(1);
        reg.gauge("aco_device_queued{device=\"gpu1\"}").set(2);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE aco_device_queued gauge").count(), 1);
        assert!(text.contains("aco_device_queued{device=\"gpu0\"} 1\n"));
    }

    #[test]
    fn hostile_label_values_escape_for_both_exports() {
        let hostile = "we\"ird\\gpu{0}\nline";
        let reg = MetricsRegistry::new(true);
        reg.gauge(&labelled("aco_device_queued", "device", hostile)).set(3);
        let snap = reg.snapshot();
        let json = snap.to_json();
        // The registered name holds the Prometheus-escaped label value
        // (`we\"ird\\gpu{0}\nline`); JSON export escapes each backslash
        // and quote again, so no raw quote or newline survives in a key.
        assert!(json.contains(r#"we\\\"ird\\\\gpu{0}\\nline"#));
        assert!(!json.contains('\n'));
        let prom = snap.to_prometheus();
        // One sample line, label value escaped, base name intact.
        assert!(prom.contains("# TYPE aco_device_queued gauge\n"));
        assert!(prom.contains("aco_device_queued{device=\"we\\\"ird\\\\gpu{0}\\nline\"} 3\n"));
        // Every line is either a comment or `name{labels} value`; raw
        // newlines inside a label value would break this invariant.
        for line in prom.lines() {
            assert!(
                line.starts_with("# ") || line.rsplit_once(' ').is_some(),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn escape_helpers_cover_the_hostile_set() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r{"), "a\\\"b\\\\c\\nd\\te\\r{");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(labelled("m", "k", "v\"x"), "m{k=\"v\\\"x\"}");
    }

    #[test]
    fn float_gauges_keep_full_precision_in_both_exports() {
        let reg = MetricsRegistry::new(true);
        let fg = reg.float_gauge("aco_job_entropy{job=\"1\"}");
        fg.set(0.123_456_789);
        assert!((fg.get() - 0.123_456_789).abs() < 1e-15);
        let snap = reg.snapshot();
        assert_eq!(snap.float_gauges.len(), 1);
        let json = snap.to_json();
        assert!(json.contains("\"float_gauges\":{\"aco_job_entropy{job=\\\"1\\\"}\":0.123456789}"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE aco_job_entropy gauge\n"));
        assert!(prom.contains("aco_job_entropy{job=\"1\"} 0.123456789\n"));
        // Whole values keep a decimal point so they still parse as floats.
        reg.float_gauge("aco_whole").set(2.0);
        assert!(reg.snapshot().to_prometheus().contains("aco_whole 2.0\n"));
        // Disabled registries hand out no-ops.
        let off = MetricsRegistry::new(false);
        let noop = off.float_gauge("x");
        noop.set(9.0);
        assert_eq!(noop.get(), 0.0);
    }

    #[test]
    fn json_round_trips_the_shape() {
        let reg = MetricsRegistry::new(true);
        reg.counter("c").inc();
        reg.histogram("h", &[2.5]).observe(1.0);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{\"c\":1}"));
        assert!(json.contains("\"h\":{\"bounds\":[2.5],\"buckets\":[1,0],\"count\":1"));
    }
}
