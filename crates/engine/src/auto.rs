//! Cost-model backend auto-selection.
//!
//! The paper's evaluation makes the trade-off explicit: on small
//! instances the task-parallel kernels lose to data parallelism, the CPU
//! is competitive below a few hundred cities, and the Fermi devices shift
//! every crossover point. [`resolve`] automates that judgement per
//! instance using the same clocks the paper's figures are computed from:
//!
//! * the sequential CPU is priced by [`CpuModel`] over the analytic
//!   operation counters of `aco_core::cpu::ant_system::model`;
//! * the parallel CPU divides the construction term by its thread count;
//! * each GPU candidate is priced by the simulator's kernel-time
//!   estimate, measured on a one-iteration probe launch against the
//!   actual [`DeviceSpec`](aco_simt::DeviceSpec) (block-sampled on large
//!   instances, so a probe stays cheap).
//!
//! Decisions are deterministic in `(instance content, NN depth, m)` and
//! cached in the [`ArtifactCache`], so a batch of `auto` jobs on one
//! instance pays for the probes once.

use aco_core::gpu::{run_pheromone, run_tour, ColonyBuffers, PheromoneStrategy, TourStrategy};
use aco_core::{AcoParams, CpuModel, TourPolicy};
use aco_devices::{DeviceAffinity, DevicePool};
use aco_localsearch::{
    probe_all_round_ms, probe_or_round_ms, probe_round_ms, LocalSearch, LsScope, OrOptDev,
    TwoOptBatchDev, TwoOptDev,
};
use aco_simt::{GlobalMem, SimMode};
use aco_tsp::TspInstance;

use crate::cache::{ArtifactCache, InstanceArtifacts};
use crate::solver::{cpu_ls_iter_ms, cpu_phase_ms, Backend, GpuDevice, LS_ROUNDS_EST};

/// Thread count the parallel-CPU candidate assumes. Fixed (not probed from
/// the host) so decisions — and therefore batch results — are identical on
/// every machine.
pub const AUTO_CPU_THREADS: usize = 4;

/// The GPU strategy pairs `auto` considers: the paper's best task-parallel
/// row and its best data-parallel row, each with the winning pheromone
/// kernel (Tables II–IV).
pub const AUTO_GPU_CANDIDATES: [(TourStrategy, PheromoneStrategy); 2] = [
    (TourStrategy::NNListSharedTex, PheromoneStrategy::AtomicShared),
    (TourStrategy::DataParallelTex, PheromoneStrategy::AtomicShared),
];

/// One scored candidate, for introspection / logging.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEstimate {
    /// The backend this estimate prices.
    pub backend: Backend,
    /// Modeled milliseconds per iteration.
    pub ms_per_iter: f64,
}

/// Probe fidelity: full simulation is exact but quadratic-ish in `n`, so
/// large instances fall back to deterministic block sampling (same policy
/// as the bench harness).
fn probe_mode(n: usize) -> SimMode {
    if n <= 128 {
        SimMode::Full
    } else if n <= 442 {
        SimMode::SampleBlocks(4)
    } else {
        SimMode::SampleBlocks(2)
    }
}

/// Seed every GPU probe runs under, regardless of the requesting job's
/// seed. Probe timings vary slightly with the RNG stream (tour shapes
/// steer coalescing and roulette trip counts); pinning the seed makes the
/// decision a pure function of `(instance, α, β, ρ, NN, m)`, so it cannot
/// depend on *which* job of a batch happens to populate the decision
/// cache — the property the engine's worker-count determinism rests on.
pub const PROBE_SEED: u64 = 0x0A07_0CA5;

/// Price candidate backends for `inst` under `params` (the job seed is
/// ignored; see [`PROBE_SEED`]). `gpu_models` restricts the GPU
/// candidates to device models actually installed (pass
/// [`GpuDevice::ALL`] for the unrestricted set); `allow_cpu` gates the
/// CPU candidates (false when the job is pinned to a device).
///
/// `ls` and `scope` fold the job's per-iteration local search into
/// every candidate: CPU candidates pay the analytic pass model (with
/// [`LsScope::AllAnts`] multiplying by the colony size), GPU candidates
/// pay a *probed* kernel round (× [`LS_ROUNDS_EST`]) of the matching
/// device family — the per-ant `two_opt` round for iteration-best, the
/// batched all-ants round for [`LsScope::AllAnts`] (one launch per
/// phase covers the colony, so the all-ants cost is a single batched
/// round, **not** `round × m`), and the windowed `or_opt` round for
/// `OrOpt`. Only the host-only full 2-opt is priced as host time. This
/// is how enabling local search genuinely shifts the CPU/GPU crossover.
pub fn estimates(
    inst: &TspInstance,
    params: &AcoParams,
    artifacts: &InstanceArtifacts,
    gpu_models: &[GpuDevice],
    allow_cpu: bool,
    ls: LocalSearch,
    scope: LsScope,
) -> Vec<CandidateEstimate> {
    let params = &params.clone().seed(PROBE_SEED);
    let n = inst.n();
    let m = params.ants_for(n);
    let model = CpuModel::default();
    let (choice_ms, tour_ms, update_ms) = cpu_phase_ms(n, m, params.nn_size, &model);
    // Every auto candidate is an Ant-System-family colony (m = ants_for),
    // so one scope multiplier covers them all.
    let ls_passes = match scope {
        LsScope::IterationBest => 1.0,
        LsScope::AllAnts => m.max(1) as f64,
    };
    let host_ls_ms = cpu_ls_iter_ms(ls, n, artifacts.nn.depth(), &model) * ls_passes;

    let mut out = Vec::new();
    if allow_cpu {
        out.push(CandidateEstimate {
            backend: Backend::CpuSequential { policy: TourPolicy::NearestNeighborList },
            ms_per_iter: choice_ms + tour_ms + update_ms + host_ls_ms,
        });
        out.push(CandidateEstimate {
            backend: Backend::CpuParallel {
                policy: TourPolicy::NearestNeighborList,
                threads: AUTO_CPU_THREADS,
            },
            // The local-search pass runs on the fan-in thread.
            ms_per_iter: choice_ms + tour_ms / AUTO_CPU_THREADS as f64 + update_ms + host_ls_ms,
        });
    }

    let mode = probe_mode(n);
    for &device in gpu_models {
        let dev = device.spec();
        // The 2-opt round cost depends only on the device (the family
        // reads whatever tours the preceding construction probe left),
        // so probe it once per device — on the first candidate pair —
        // and reuse the number. Pair order is fixed, so the estimate
        // stays a pure function of the inputs.
        let mut ls_round: Option<f64> = None;
        for (tour, pheromone) in AUTO_GPU_CANDIDATES {
            // The data-parallel kernel's bit-packed shared-memory tabu
            // covers at most 32 tiles × 256 threads = 8192 cities; its
            // `config()` asserts (panics) beyond that, so gate the
            // candidate instead of probing it.
            if matches!(tour, TourStrategy::DataParallel | TourStrategy::DataParallelTex)
                && n > 8192
            {
                continue;
            }
            // One probe iteration on a throwaway colony; the estimate is
            // the simulator's kernel-time model, i.e. the same quantity
            // Tables II-IV report.
            let mut gm = GlobalMem::new();
            let bufs = ColonyBuffers::allocate_with_artifacts(
                &mut gm,
                inst,
                params,
                &artifacts.nn,
                artifacts.c_nn,
            );
            let probe = run_tour(
                &dev,
                &mut gm,
                bufs,
                tour,
                params.alpha,
                params.beta,
                params.seed,
                0,
                mode,
            )
            .and_then(|tr| {
                run_pheromone(&dev, &mut gm, bufs, pheromone, params.rho, mode)
                    .map(|pr| tr.total_ms() + pr.time.total_ms)
            })
            .and_then(|iter_ms| {
                // Fold the local-search cost in: the device-resident
                // strategies are priced from a probed kernel round
                // scaled by the round estimate. Batched families cover
                // the whole scope window in one launch per phase, so an
                // all-ants pass costs one *batched* round — never
                // `round × m`. Only the host-only full 2-opt still
                // costs host time.
                match ls.per_iteration() {
                    LocalSearch::TwoOptNn => {
                        let round = match ls_round {
                            Some(r) => r,
                            None => {
                                let r = match scope {
                                    LsScope::IterationBest => {
                                        let ls_bufs = TwoOptDev::allocate(
                                            &mut gm,
                                            bufs.n,
                                            bufs.nn,
                                            bufs.stride,
                                            bufs.dist,
                                            bufs.tours,
                                            bufs.lengths,
                                            bufs.nn_list,
                                        );
                                        probe_round_ms(&dev, &mut gm, ls_bufs, 0, mode)?
                                    }
                                    LsScope::AllAnts => {
                                        let ls_bufs = TwoOptBatchDev::allocate(
                                            &mut gm,
                                            bufs.n,
                                            bufs.m,
                                            bufs.nn,
                                            bufs.stride,
                                            bufs.dist,
                                            bufs.tours,
                                            bufs.lengths,
                                            bufs.nn_list,
                                        );
                                        probe_all_round_ms(&dev, &mut gm, ls_bufs, mode)?
                                    }
                                };
                                ls_round = Some(r);
                                r
                            }
                        };
                        Ok(iter_ms + LS_ROUNDS_EST as f64 * round)
                    }
                    LocalSearch::OrOpt => {
                        let round = match ls_round {
                            Some(r) => r,
                            None => {
                                let ls_bufs = OrOptDev::allocate(
                                    &mut gm,
                                    bufs.n,
                                    bufs.m,
                                    bufs.nn,
                                    bufs.stride,
                                    bufs.dist,
                                    bufs.tours,
                                    bufs.lengths,
                                    bufs.nn_list,
                                );
                                let num = match scope {
                                    LsScope::IterationBest => 1,
                                    LsScope::AllAnts => bufs.m,
                                };
                                let r = probe_or_round_ms(&dev, &mut gm, ls_bufs, 0, num, mode)?;
                                ls_round = Some(r);
                                r
                            }
                        };
                        Ok(iter_ms + LS_ROUNDS_EST as f64 * round)
                    }
                    _ => Ok(iter_ms + host_ls_ms),
                }
            });
            if let Ok(ms_per_iter) = probe {
                out.push(CandidateEstimate {
                    backend: Backend::Gpu { device, tour, pheromone },
                    ms_per_iter,
                });
            }
            // A probe that fails to launch (device limit) simply drops the
            // candidate; some backend always remains (CPU never fails).
        }
    }
    out
}

/// Pick the fastest candidate. Ties break toward the earliest candidate in
/// enumeration order, which is deterministic.
pub fn choose(estimates: &[CandidateEstimate]) -> Backend {
    estimates
        .iter()
        .min_by(|a, b| a.ms_per_iter.total_cmp(&b.ms_per_iter))
        .map(|c| c.backend.clone())
        .expect("candidate set must not be empty")
}

/// The candidate set an auto job may choose from, given the engine's
/// device pool and the request's affinity: GPU candidates only for
/// models the pool actually contains, and — for a pinned job — only the
/// pinned device's model, with the CPU excluded (a pinned job must run
/// on its device).
fn allowed_candidates(pool: &DevicePool, affinity: DeviceAffinity) -> (Vec<GpuDevice>, bool) {
    if let DeviceAffinity::Pinned(d) = affinity {
        if let Some(profile) = pool.profile(d) {
            return (vec![GpuDevice::from_model(profile.model)], false);
        }
        // An unknown pinned device is rejected at submit; this branch is
        // a defensive fallback for standalone `resolve` callers.
        return (Vec::new(), true);
    }
    let models =
        GpuDevice::ALL.into_iter().filter(|g| !pool.devices_of(g.model()).is_empty()).collect();
    (models, true)
}

/// Resolve [`Backend::Auto`] for `inst` against the engine's device
/// pool, consulting and filling the decision cache; non-auto backends
/// pass through unchanged. The decision is keyed on the allowed
/// candidate set — and on the job's per-iteration local-search strategy
/// *and scope*, which are priced into every candidate — as well as the
/// instance/parameter slice, so jobs with different affinities or
/// local-search configurations on one instance never share a decision.
#[allow(clippy::too_many_arguments)]
pub fn resolve(
    backend: &Backend,
    inst: &TspInstance,
    params: &AcoParams,
    artifacts: &InstanceArtifacts,
    cache: &ArtifactCache,
    pool: &DevicePool,
    affinity: DeviceAffinity,
    ls: LocalSearch,
    scope: LsScope,
) -> Backend {
    if !matches!(backend, Backend::Auto) {
        return backend.clone();
    }
    let (gpu_models, allow_cpu) = allowed_candidates(pool, affinity);
    let mask = gpu_models.iter().fold(u8::from(allow_cpu) << 7, |m, g| {
        m | match g {
            GpuDevice::TeslaC1060 => 1,
            GpuDevice::TeslaM2050 => 2,
        }
    });
    let key = (
        artifacts.content_hash,
        ArtifactCache::effective_depth(inst, params.nn_size),
        params.ants_for(inst.n()),
        params.alpha.to_bits(),
        params.beta.to_bits(),
        params.rho.to_bits(),
        mask,
        // Strategy discriminant in the low nibble, scope bit above it —
        // only when a per-iteration strategy runs (scope is irrelevant
        // to pricing otherwise, so None/PostPass jobs share a decision
        // regardless of the scope their request happens to carry).
        ls.per_iteration().discriminant()
            | (u8::from(scope == LsScope::AllAnts && ls.runs_per_iteration()) << 4),
    );
    cache.decision(key, || {
        let est = estimates(inst, params, artifacts, &gpu_models, allow_cpu, ls, scope);
        if est.is_empty() {
            // Every candidate was gated or failed to probe. With the CPU
            // allowed this cannot happen; for a pinned job fall through
            // to the model's most robust kernel pair, so the launch
            // surfaces the real device error instead of a panic here.
            let device = gpu_models.first().copied().unwrap_or(GpuDevice::TeslaC1060);
            return Backend::Gpu {
                device,
                tour: TourStrategy::NNList,
                pheromone: PheromoneStrategy::AtomicShared,
            };
        }
        choose(&est)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_devices::{DeviceId, DeviceProfile, PlacementStrategy};
    use aco_tsp::uniform_random;

    fn artifacts_for(inst: &TspInstance, nn: usize) -> InstanceArtifacts {
        InstanceArtifacts {
            content_hash: inst.content_hash(),
            nn: std::sync::Arc::new(
                aco_tsp::NearestNeighborLists::build(inst.matrix(), nn).unwrap(),
            ),
            c_nn: aco_tsp::nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix()),
        }
    }

    fn both_models() -> DevicePool {
        DevicePool::new(
            vec![DeviceProfile::tesla_c1060("g0"), DeviceProfile::tesla_m2050("f0")],
            PlacementStrategy::LeastLoaded,
        )
    }

    #[test]
    fn estimates_cover_cpu_and_gpu() {
        let inst = uniform_random("auto", 32, 500.0, 3);
        let params = AcoParams::default().nn(8);
        let arts = artifacts_for(&inst, 8);
        let est = estimates(
            &inst,
            &params,
            &arts,
            &GpuDevice::ALL,
            true,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        assert!(est.len() >= 2 + GpuDevice::ALL.len()); // CPUs + at least one GPU pair each
        assert!(est.iter().all(|e| e.ms_per_iter.is_finite() && e.ms_per_iter > 0.0));
    }

    #[test]
    fn estimates_respect_the_candidate_gates() {
        let inst = uniform_random("auto-gate", 28, 500.0, 2);
        let params = AcoParams::default().nn(8);
        let arts = artifacts_for(&inst, 8);
        let gpu_only = estimates(
            &inst,
            &params,
            &arts,
            &[GpuDevice::TeslaM2050],
            false,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        assert!(!gpu_only.is_empty());
        assert!(gpu_only
            .iter()
            .all(|e| matches!(e.backend, Backend::Gpu { device: GpuDevice::TeslaM2050, .. })));
        let cpu_only =
            estimates(&inst, &params, &arts, &[], true, LocalSearch::None, LsScope::IterationBest);
        assert_eq!(cpu_only.len(), 2);
    }

    #[test]
    fn resolution_is_deterministic_and_cached() {
        let inst = uniform_random("auto2", 40, 600.0, 5);
        let params = AcoParams::default().nn(10);
        let arts = artifacts_for(&inst, 10);
        let cache = ArtifactCache::new();
        let pool = both_models();
        let any = DeviceAffinity::Any;
        let a = resolve(
            &Backend::Auto,
            &inst,
            &params,
            &arts,
            &cache,
            &pool,
            any,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        let b = resolve(
            &Backend::Auto,
            &inst,
            &params,
            &arts,
            &cache,
            &pool,
            any,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        assert_eq!(a, b);
        assert!(!matches!(a, Backend::Auto));
        let s = cache.stats();
        assert_eq!((s.decision_misses, s.decision_hits), (1, 1));
    }

    #[test]
    fn pinned_resolution_excludes_the_cpu_and_other_models() {
        let inst = uniform_random("auto-pin", 30, 500.0, 9);
        let params = AcoParams::default().nn(8);
        let arts = artifacts_for(&inst, 8);
        let cache = ArtifactCache::new();
        let pool = both_models();
        let pinned = DeviceAffinity::Pinned(DeviceId(1)); // the m2050
        let got = resolve(
            &Backend::Auto,
            &inst,
            &params,
            &arts,
            &cache,
            &pool,
            pinned,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        assert!(
            matches!(got, Backend::Gpu { device: GpuDevice::TeslaM2050, .. }),
            "pinned auto must resolve onto the pinned device's model: {got:?}"
        );
        // A different affinity on the same instance is a distinct
        // decision-cache key, not a hit on the pinned decision.
        let any = resolve(
            &Backend::Auto,
            &inst,
            &params,
            &arts,
            &cache,
            &pool,
            DeviceAffinity::Any,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        assert_eq!(cache.stats().decision_misses, 2);
        let _ = any;
    }

    #[test]
    fn non_auto_backends_pass_through() {
        let inst = uniform_random("auto3", 20, 300.0, 7);
        let params = AcoParams::default().nn(6);
        let arts = artifacts_for(&inst, 6);
        let cache = ArtifactCache::new();
        let pool = both_models();
        let want = Backend::CpuSequential { policy: TourPolicy::NearestNeighborList };
        let got = resolve(
            &want,
            &inst,
            &params,
            &arts,
            &cache,
            &pool,
            DeviceAffinity::Any,
            LocalSearch::None,
            LsScope::IterationBest,
        );
        assert_eq!(got, want);
        assert_eq!(cache.stats().decision_misses, 0);
    }
}
