//! `aco-engine` — a concurrent batch-solve engine over every ACO backend
//! in this workspace.
//!
//! The paper parallelises both ACO phases on one GPU for one TSP instance
//! at a time; this crate turns that single-solve capability into a
//! throughput system:
//!
//! * **Unified [`Solver`] trait** ([`solver`]): the sequential Ant System,
//!   the multi-threaded CPU colony, [`GpuAntSystem`](aco_core::GpuAntSystem)
//!   under any `TourStrategy × PheromoneStrategy` combination, and the
//!   ACS/MMAS variants all answer one [`SolveRequest`] → [`SolveReport`]
//!   API, selected by a [`Backend`] value.
//! * **Work-stealing batch scheduler** ([`scheduler`]): [`Engine::submit`]
//!   queues jobs onto a worker pool; per-job seeding is deterministic, so
//!   a batch returns bit-identical reports for any worker count.
//! * **Instance-artifact cache** ([`cache`]): nearest-neighbour candidate
//!   lists, greedy-tour lengths and backend decisions are keyed by the
//!   instance **content hash** and shared across jobs on the same
//!   instance.
//! * **Cost-model auto-selection** ([`auto`]): [`Backend::Auto`] prices
//!   CPU candidates with the paper's [`CpuModel`](aco_core::CpuModel)
//!   counters and GPU candidates with the simulator's kernel-time
//!   estimates on the target `DeviceSpec`, then runs the winner.
//!
//! ```
//! use std::sync::Arc;
//! use aco_core::AcoParams;
//! use aco_engine::{Backend, Engine, EngineConfig, SolveRequest};
//!
//! let engine = Engine::new(EngineConfig::with_workers(4));
//! let inst = Arc::new(aco_tsp::uniform_random("batch", 48, 800.0, 42));
//! let reports = engine.run_batch((0..8).map(|seed| {
//!     SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10))
//!         .backend(Backend::Auto)
//!         .iterations(5)
//!         .seed(seed)
//! }));
//! let best = reports
//!     .into_iter()
//!     .map(|r| r.expect("job succeeds").best_len)
//!     .min()
//!     .unwrap();
//! assert!(best > 0);
//! // Seven of the eight jobs reused the cached artifacts:
//! assert_eq!(engine.cache_stats().artifact_misses, 1);
//! ```

pub mod auto;
pub mod cache;
pub mod scheduler;
pub mod solver;

pub use auto::{choose, estimates, resolve, CandidateEstimate};
pub use cache::{ArtifactCache, CacheStats, InstanceArtifacts};
pub use scheduler::{Engine, EngineConfig, JobId};
pub use solver::{
    build_solver, Backend, EngineError, GpuDevice, SolveReport, SolveRequest, Solver,
};
