//! `aco-engine` — a concurrent batch-solve engine over every ACO backend
//! in this workspace.
//!
//! The paper parallelises both ACO phases on one GPU for one TSP instance
//! at a time; this crate turns that single-solve capability into a
//! throughput system with full job-lifecycle control:
//!
//! * **Unified [`Solver`] trait** ([`solver`]): the sequential Ant System,
//!   the multi-threaded CPU colony, [`GpuAntSystem`](aco_core::GpuAntSystem)
//!   under any `TourStrategy × PheromoneStrategy` combination, and the
//!   ACS/MMAS variants all answer one ctx-driven [`SolveRequest`] →
//!   [`SolveReport`] API, selected by a [`Backend`] value. Every colony's
//!   iteration loop checks cancellation/deadlines and emits
//!   iteration-best events.
//! * **Priority-aware work-stealing scheduler** ([`scheduler`]):
//!   [`Engine::submit`] queues jobs onto a worker pool and returns a
//!   [`JobHandle`] — non-blocking [`JobHandle::poll`], blocking
//!   [`JobHandle::wait`], a bounded [`JobHandle::progress`] event stream,
//!   prompt [`JobHandle::cancel`], and [`JobHandle::set_priority`]
//!   re-prioritisation. Per-job seeding is deterministic, so a batch
//!   returns bit-identical reports (and progress streams) for any worker
//!   count.
//! * **Simulated multi-GPU device pool** ([`aco_devices`], configured via
//!   [`EngineConfig::devices`]): GPU jobs are placed at submit time onto
//!   the least-loaded compatible device (by `predicted kernel time ×
//!   iterations + assigned backlog`), honouring per-request
//!   [`DeviceAffinity`] (pinned placements are honoured exactly or
//!   rejected with a typed [`PlacementError`]); each device has its own
//!   priority run queue, resident-job slot budget and exec-thread budget,
//!   and reports per-device telemetry ([`Engine::device_stats`]).
//!   Placement is deterministic: a fixed batch on a fixed pool yields
//!   bit-identical device assignments at any worker count.
//! * **Instance-artifact cache** ([`cache`]): nearest-neighbour candidate
//!   lists, greedy-tour lengths and backend decisions are keyed by the
//!   instance **content hash** and shared across jobs on the same
//!   instance.
//! * **Cost-model auto-selection** ([`auto`]): [`Backend::Auto`] prices
//!   CPU candidates with the paper's [`CpuModel`](aco_core::CpuModel)
//!   counters and GPU candidates with the simulator's kernel-time
//!   estimates on the target `DeviceSpec` — candidates restricted to
//!   device models the pool actually contains — then runs the winner.
//! * **Observability** ([`aco_obs`], on by default, opt out via
//!   [`EngineConfig::observe`]): a metrics registry
//!   ([`Engine::metrics`], exportable as Prometheus text or JSON),
//!   per-job span timelines ([`JobHandle::timeline`],
//!   [`Engine::recent_timelines`]) covering queue wait, placement,
//!   per-iteration construction / local-search / pheromone spans, and
//!   per-kernel-family profiles from the simulated launch path. Purely
//!   write-only: solve results, placements and progress sequences are
//!   bit-identical with observability on or off.
//! * **Search dynamics & event journal** (opt in via
//!   [`EngineConfig::dynamics`] / [`EngineConfig::journal`]): per-iteration
//!   colony statistics — mean/stddev tour length, best-so-far improvement,
//!   pheromone trail entropy, mean λ-branching factor, and a configurable
//!   stagnation detector — computed by every backend at iteration
//!   boundaries, surfaced on [`IterationEvent`] and folded into each
//!   timeline's [`DynamicsSummary`]; plus a bounded engine-wide JSONL
//!   flight recorder ([`Journal`]) of submit / placement / attempt /
//!   iteration-sample / stagnation / completion events, exportable via
//!   [`Engine::journal_export`] and replayable offline with
//!   [`replay_timeline`]. [`Engine::render_dashboard`] renders both as a
//!   textual live view. The write-only contract extends to both layers:
//!   results are bit-identical with dynamics/journal on or off.
//! * **Fault tolerance** ([`aco_faults`], armed via
//!   [`EngineConfig::faults`]): a seeded, deterministic fault injector
//!   (kernel panics, transient device errors, hangs — pure functions of
//!   `(job, device, attempt)`), a per-device health state machine in the
//!   pool (Healthy → Degraded → Quarantined with probation re-admission)
//!   consulted by placement, and a per-job retry supervisor
//!   ([`RetryPolicy`] on [`SolveRequest`]): bounded attempts with
//!   backoff, [`Failover`] re-placement onto healthy devices, graceful
//!   CPU degradation, and a per-attempt execution watchdog.
//!   [`SolveReport`] records the attempt count and every
//!   [`AttemptFault`]. Under a fixed [`FaultPlan`] the whole
//!   fault/retry/quarantine trajectory is bit-identical at any worker
//!   count; with injection disarmed the engine is byte-identical to one
//!   without the fault layer.
//! * **Serving & alerting** ([`serve`], opt in via
//!   [`EngineConfig::windows`] + [`Engine::serve_observability`]):
//!   rolling time-bucketed windows over the bridged metrics (per-window
//!   throughput, failure rate, queue-wait/solve-wall p50/p95/p99,
//!   per-device utilisation and fault rates), a declarative SLO board
//!   with multi-window burn-rate alerting ([`SloSpec`], [`AlertState`]
//!   timelines, hysteresis), and a std-only blocking HTTP endpoint
//!   ([`ObsServer`]) exposing `/metrics`, `/metrics.json`, `/healthz`,
//!   `/slo`, `/dashboard` and the `/events` SSE journal stream with
//!   exact `Last-Event-ID` resume. Serving is strictly read-only; the
//!   write-only determinism contract is unchanged with serving on.
//!
//! ```
//! use std::sync::Arc;
//! use aco_core::AcoParams;
//! use aco_engine::{Backend, Engine, EngineConfig, Priority, SolveRequest};
//!
//! let engine = Engine::new(EngineConfig::with_workers(4));
//! let inst = Arc::new(aco_tsp::uniform_random("batch", 48, 800.0, 42));
//! let handles: Vec<_> = (0..8)
//!     .map(|seed| {
//!         engine.submit(
//!             SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10))
//!                 .backend(Backend::Auto)
//!                 .iterations(5)
//!                 .seed(seed)
//!                 .priority(if seed == 0 { Priority::High } else { Priority::Normal }),
//!         )
//!     })
//!     .collect();
//! // Follow one job's convergence live, then collect everything.
//! let trace: Vec<_> = handles[0].progress().collect();
//! assert_eq!(trace.len(), 5, "one iteration-best event per iteration");
//! let best = handles
//!     .into_iter()
//!     .map(|h| h.wait().expect("job succeeds").best_len)
//!     .min()
//!     .unwrap();
//! assert!(best > 0);
//! // Seven of the eight jobs reused the cached artifacts:
//! assert_eq!(engine.cache_stats().artifact_misses, 1);
//! ```

pub mod auto;
pub mod cache;
pub mod scheduler;
pub mod serve;
pub mod solver;

pub use aco_core::lifecycle::{CancelToken, IterationEvent, RunOutcome, SolveCtx, StopReason};
pub use aco_devices::{
    DeviceAffinity, DeviceId, DeviceModel, DevicePool, DeviceProfile, DeviceSnapshot, HealthEvent,
    HealthPolicy, HealthState, HealthSummary, Placement, PlacementError, PlacementStrategy,
};
pub use aco_faults::{FaultInjector, FaultKind, FaultPlan, FaultRates};
pub use aco_localsearch::{LocalSearch, LsScope, LsScratch};
pub use aco_obs::{
    default_slos, journal_epoch_ms, replay_timeline, sparkline, AlertState, AlertTransition, Clock,
    DynamicsConfig, DynamicsSummary, HistogramSnapshot, IterationSpans, IterationStats,
    JobTimeline, Journal, JournalConfig, KernelFamilySnapshot, ManualClock, MetricsSnapshot,
    MonotonicClock, Quantiles, RawDynamics, SloBoard, SloObjective, SloSpec, SloStatus,
    WindowConfig, WindowStats, LATENCY_BUCKETS_MS,
};
pub use auto::{choose, estimates, resolve, CandidateEstimate};
pub use cache::{ArtifactCache, CacheStats, InstanceArtifacts};
pub use scheduler::{
    default_devices, Engine, EngineConfig, JobHandle, JobId, JobStatus, ProgressStream,
};
pub use serve::ObsServer;
pub use solver::{
    build_solver, AttemptFault, Backend, EngineError, Failover, GpuBinding, GpuDevice, JobOutcome,
    Priority, RetryPolicy, SolveReport, SolveRequest, Solver, DEFAULT_PROGRESS_EVENTS,
};
