//! The batch engine: a priority-aware, device-aware work-stealing worker
//! pool over solve jobs with full lifecycle control.
//!
//! CPU jobs are distributed round-robin over per-worker **priority
//! queues** at submission; GPU jobs are *placed* onto a simulated device
//! of the engine's [`DevicePool`] at submit time (affinity-aware,
//! least-loaded by predicted completion — see [`aco_devices`]) and queue
//! on that device's own priority run queue. A worker pops the
//! highest-priority (then oldest) job from its own queue, then services
//! the device queues (admission gated by each device's resident-job slot
//! budget), then steals from its peers — so a long simulation on one
//! worker never starves the rest of the batch, and GPU work only ever
//! executes on the device it was placed on.
//! [`Engine::submit`] returns a [`JobHandle`] carrying the job's whole
//! lifecycle surface: non-blocking [`JobHandle::poll`], blocking
//! [`JobHandle::wait`], a bounded [`JobHandle::progress`] event stream,
//! [`JobHandle::cancel`], and [`JobHandle::set_priority`].
//!
//! **Cancellation.** A cancelled job that has not started is finalised
//! immediately (its queue entry becomes a no-op when popped); a running
//! job observes the token at its colony's next iteration boundary and
//! reports its partial best with a `Cancelled` outcome. Either way the
//! result slot is delivered exactly once and the artifact cache is left
//! untouched — cache cells are only ever filled with completed values.
//!
//! **Re-prioritisation.** `set_priority` updates the job's priority
//! atomically and restamps its entry in the owning heap (an O(queue)
//! rebuild — re-prioritisation is rare, pops are not). The pop path
//! additionally reconciles any stale stamp it sees, but that is only a
//! backstop for the store/restamp race: lazy reconciliation alone could
//! never raise a buried low-stamped entry to the top.
//!
//! **Backpressure.** Each job's progress buffer is bounded
//! (`SolveRequest::progress_events`): the solving worker never blocks on
//! a slow consumer — once the buffer is full, the *oldest* event is
//! dropped and counted, and the newest kept, so a late reader always
//! sees the most recent convergence state. The running drop count is
//! observable per job via [`JobHandle::progress_dropped`] (equivalently
//! [`ProgressStream::dropped`]) and engine-wide via the
//! `aco_engine_progress_dropped_total` counter. Consumers that need the
//! *complete* sequence must size the buffer to the iteration count (or
//! drain concurrently); a dropped event is gone — the stream trades
//! completeness for a never-blocking solver.
//!
//! **Observability.** With [`EngineConfig::observability`] on (the
//! default), the engine owns an [`aco_obs::Obs`] hub: scheduler counters
//! and latency histograms (queue depth, steal counts, admission-wait
//! bouts, submit→start and submit→first-event), a per-job
//! [`aco_obs::JobTrace`] threaded through the solve (retrievable live or
//! finished via [`JobHandle::timeline`], retained in a bounded sink via
//! [`Engine::recent_timelines`]), and the SIMT kernel-profiling hook
//! installed around every job so GPU kernel families report invocation
//! counts and modeled ms. Export everything with [`Engine::metrics`].
//! Instrumentation is write-only: it never feeds back into scheduling or
//! solving, so obs-on/off runs are bit-identical (see below); disabled,
//! every handle is an unarmed branch and no trace is allocated.
//!
//! **Determinism.** Scheduling affects only *where* and *when* a job
//! runs, never its inputs: every job derives its RNG streams from its own
//! request seed, the artifact cache stores values that are pure functions
//! of the instance, `auto` decisions are deterministic in the instance,
//! parameters and allowed candidate set, and device placement is decided
//! in the submission sequence (explicit GPU jobs) or as a pure function
//! of the job id (auto-resolved GPU jobs) — never from completion timing.
//! Consequently an uncancelled batch produces bit-identical
//! [`SolveReport`]s — including device assignments — and bit-identical
//! progress event sequences for any worker count *and either
//! observability setting*; pinned by the
//! `engine_results_do_not_depend_on_worker_count`, `tests/lifecycle.rs`,
//! `tests/devices.rs` and `tests/observability.rs` suites.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aco_core::lifecycle::{CancelToken, IterationEvent, SolveCtx};
use aco_core::TourPolicy;
use aco_devices::{
    DeviceAffinity, DeviceId, DeviceModel, DevicePool, DeviceProfile, DeviceSnapshot, HealthPolicy,
    Placement, PlacementError, PlacementStrategy,
};
use aco_faults::{FaultInjector, FaultKind, FaultPlan};
use aco_obs::{
    default_slos, sparkline, AlertState, Clock, Counter, Gauge, Histogram, JobTimeline, JobTrace,
    KernelSink, MetricsSnapshot, MonotonicClock, Obs, RollingWindow, SloBoard, SloSpec, SloStatus,
    WindowConfig, WindowStats, LATENCY_BUCKETS_MS,
};
use aco_simt::SimtError;

use crate::auto;
use crate::cache::{ArtifactCache, CacheStats};
use crate::solver::{
    build_solver, AttemptFault, Backend, EngineError, Failover, GpuBinding, JobOutcome, Priority,
    SolveReport, SolveRequest,
};

/// The pool an [`EngineConfig`] builds by default: one unmodified device
/// of each Table-I model, which reproduces the pre-pool engine exactly
/// (every `Backend::Gpu { device, .. }` job lands on the single device of
/// that model, with the preset spec).
pub fn default_devices() -> Vec<DeviceProfile> {
    vec![DeviceProfile::tesla_c1060("gpu0"), DeviceProfile::tesla_m2050("gpu1")]
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Results never depend on this; throughput does.
    pub workers: usize,
    /// LRU entry bound for each artifact-cache map (see
    /// [`crate::cache::ArtifactCache`]).
    pub cache_entries: usize,
    /// The simulated devices this engine schedules GPU jobs onto (see
    /// [`default_devices`]). An empty vector makes a CPU-only engine:
    /// GPU submissions fail with a typed [`EngineError::Placement`] and
    /// `auto` restricts itself to CPU candidates.
    pub devices: Vec<DeviceProfile>,
    /// Placement policy for jobs without a pinned device.
    pub placement: PlacementStrategy,
    /// Record metrics, per-job timelines and kernel profiles (default
    /// `true`). Never affects results — only whether the engine can
    /// answer "where did the milliseconds go" afterwards. Disabled, all
    /// instrumentation degrades to unarmed branches ([`aco_obs`]).
    pub observability: bool,
    /// Completed [`JobTimeline`]s retained for [`Engine::recent_timelines`]
    /// (oldest evicted first).
    pub trace_capacity: usize,
    /// Deterministic fault-injection plan (default `None`: injection
    /// disabled, zero scheduling impact). Injected faults are pure
    /// functions of `(job, device, attempt)` — see [`aco_faults`] — so a
    /// fixed plan yields bit-identical outcomes, placements and retry
    /// sequences at any worker count.
    pub fault_plan: Option<FaultPlan>,
    /// Thresholds of the per-device health state machine (see
    /// [`aco_devices::HealthPolicy`]).
    pub health: HealthPolicy,
    /// Donate idle workers' threads to running GPU launches (default
    /// `true`). A worker whose run queue and steal targets are empty
    /// parks on the ready condvar; while parked it is counted in a
    /// shared donation counter, and every GPU colony launch adds
    /// `min(count, MAX_DONATED_THREADS)` host threads on top of its
    /// device profile's `exec_threads` budget — returned the moment new
    /// work wakes the worker. Simulator results are bit-identical at any
    /// thread count, so placements, reports and progress streams do not
    /// depend on donation (or the worker count); only wall-clock does.
    pub donate_idle_threads: bool,
    /// Per-iteration search-dynamics measurement (default `None`: off,
    /// zero cost). Armed, every colony computes mean/stddev tour length,
    /// trail entropy and λ-branching at each iteration boundary and the
    /// lifecycle driver folds them through the config's stagnation
    /// detector; the stats ride on each `IterationEvent`, fold into the
    /// job's [`JobTimeline`], and bridge into per-job gauges. Write-only
    /// like the rest of observability: reports, placements and the
    /// non-stats event fields are bit-identical on or off.
    pub dynamics: Option<aco_obs::DynamicsConfig>,
    /// Engine-wide structured event journal (default `None`: off). Armed,
    /// the engine appends one JSONL record per lifecycle event — submit,
    /// placement, failed attempt, iteration sample, stagnation onset,
    /// completion — to a bounded in-memory ring (and optionally a file);
    /// export with [`Engine::journal_export`], replay with
    /// [`aco_obs::replay_timeline`]. Write-only: recording never feeds
    /// back into scheduling or solving. A config without an explicit
    /// [`aco_obs::JournalConfig::epoch_ms`] is anchored once at engine
    /// construction (one wall-clock read; never in the hot path), so
    /// exported journals from different runs can be time-aligned.
    pub journal: Option<aco_obs::JournalConfig>,
    /// Rolling-window aggregation for the serving layer (default `None`:
    /// off, zero cost). Armed, the engine keeps an [`RollingWindow`] a
    /// sampler feeds with bridged metrics snapshots ([`Engine::tick_windows`]
    /// manually, or the [`Engine::serve_observability`] sampler thread)
    /// and evaluates the configured SLOs on each tick. Strictly read-side:
    /// windows observe the same snapshots the Prometheus export does and
    /// never feed back into scheduling or solving.
    pub windows: Option<WindowConfig>,
    /// SLO specs evaluated on each window tick; empty means
    /// [`default_slos`] when `windows` is armed.
    pub slos: Vec<SloSpec>,
    /// Clock driving the window/SLO layer (default `None`: a
    /// [`MonotonicClock`] built at engine construction). Inject an
    /// [`aco_obs::ManualClock`] in tests to make every window and
    /// burn-rate computation deterministic.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
        EngineConfig {
            workers,
            cache_entries: crate::cache::DEFAULT_CACHE_ENTRIES,
            devices: default_devices(),
            placement: PlacementStrategy::default(),
            observability: true,
            trace_capacity: aco_obs::DEFAULT_TRACE_CAPACITY,
            fault_plan: None,
            health: HealthPolicy::default(),
            donate_idle_threads: true,
            dynamics: None,
            journal: None,
            windows: None,
            slos: Vec::new(),
            clock: None,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers: workers.max(1), ..Default::default() }
    }

    /// Builder: LRU entry bound for the artifact/decision caches.
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Builder: the simulated device pool.
    pub fn devices(mut self, devices: Vec<DeviceProfile>) -> Self {
        self.devices = devices;
        self
    }

    /// Builder: placement strategy.
    pub fn placement(mut self, strategy: PlacementStrategy) -> Self {
        self.placement = strategy;
        self
    }

    /// Builder: enable or disable observability (see
    /// [`EngineConfig::observability`]).
    pub fn observe(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Builder: retained completed-timeline count (clamped to ≥ 1).
    pub fn trace_capacity(mut self, timelines: usize) -> Self {
        self.trace_capacity = timelines.max(1);
        self
    }

    /// Builder: arm deterministic fault injection with `plan`.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder: device health thresholds.
    pub fn health_policy(mut self, policy: HealthPolicy) -> Self {
        self.health = policy;
        self
    }

    /// Builder: enable or disable idle-worker thread donation (see
    /// [`EngineConfig::donate_idle_threads`]).
    pub fn donate_idle(mut self, enabled: bool) -> Self {
        self.donate_idle_threads = enabled;
        self
    }

    /// Builder: arm per-iteration search-dynamics measurement (see
    /// [`EngineConfig::dynamics`]).
    pub fn dynamics(mut self, config: aco_obs::DynamicsConfig) -> Self {
        self.dynamics = Some(config);
        self
    }

    /// Builder: arm the engine-wide event journal (see
    /// [`EngineConfig::journal`]).
    pub fn journal(mut self, config: aco_obs::JournalConfig) -> Self {
        self.journal = Some(config);
        self
    }

    /// Builder: arm rolling-window aggregation (see
    /// [`EngineConfig::windows`]).
    pub fn windows(mut self, config: WindowConfig) -> Self {
        self.windows = Some(config);
        self
    }

    /// Builder: the SLO specs the window layer evaluates (see
    /// [`EngineConfig::slos`]).
    pub fn slos(mut self, specs: Vec<SloSpec>) -> Self {
        self.slos = specs;
        self
    }

    /// Builder: inject the window layer's clock (see
    /// [`EngineConfig::clock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// The raw engine-issued id (what a [`aco_obs::JobTimeline`] records
    /// as its `job` field).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Coarse lifecycle phase of a job (see [`JobHandle::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Submitted; no worker has started it.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; its result waits to be claimed by `poll`/`wait`.
    Finished,
    /// Finished and its result already claimed.
    Claimed,
}

const PHASE_QUEUED: u8 = 0;
const PHASE_RUNNING: u8 = 1;
const PHASE_FINISHED: u8 = 2;

// ---------------------------------------------------------------------------
// Progress streams

struct ProgressInner {
    events: VecDeque<IterationEvent>,
    dropped: u64,
    closed: bool,
}

/// The bounded per-job event buffer shared by the solving worker (push
/// side, via the job's `SolveCtx` observer) and any [`ProgressStream`]s.
struct ProgressShared {
    inner: Mutex<ProgressInner>,
    cv: Condvar,
    capacity: usize,
    /// Engine-wide `aco_engine_progress_dropped_total` bridge (no-op
    /// when observability is off).
    dropped_metric: Counter,
}

impl ProgressShared {
    fn new(capacity: usize, dropped_metric: Counter) -> Self {
        ProgressShared {
            inner: Mutex::new(ProgressInner { events: VecDeque::new(), dropped: 0, closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            dropped_metric,
        }
    }

    /// Push one event, dropping (and counting) the oldest past the bound
    /// so the solver never blocks on a slow consumer.
    fn push(&self, ev: IterationEvent) {
        let mut inner = self.inner.lock().expect("progress lock");
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
            self.dropped_metric.inc();
        }
        inner.events.push_back(ev);
        drop(inner);
        self.cv.notify_all();
    }

    /// Events dropped so far (see the module's backpressure contract).
    fn dropped(&self) -> u64 {
        self.inner.lock().expect("progress lock").dropped
    }

    /// Mark the stream finished (no further events will arrive).
    fn close(&self) {
        self.inner.lock().expect("progress lock").closed = true;
        self.cv.notify_all();
    }
}

/// A consuming view of a job's progress events, obtained from
/// [`JobHandle::progress`]. Iteration blocks until the next event or the
/// end of the job; [`ProgressStream::try_next`] never blocks. Events are
/// *consumed*: two streams over the same job split them between
/// themselves, so use one consumer per job.
///
/// For an uncancelled job whose event count stays within the request's
/// `progress_events` bound, the consumed sequence is bit-identical at any
/// engine worker count.
pub struct ProgressStream {
    shared: Arc<ProgressShared>,
}

impl ProgressStream {
    /// Next event if one is buffered (never blocks). `None` means "none
    /// right now" — the job may still be running; use the blocking
    /// iterator to distinguish end-of-stream.
    pub fn try_next(&mut self) -> Option<IterationEvent> {
        self.shared.inner.lock().expect("progress lock").events.pop_front()
    }

    /// Events dropped so far because the buffer was full (the oldest go
    /// first — see the module docs on backpressure).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped()
    }
}

impl Iterator for ProgressStream {
    type Item = IterationEvent;

    /// Block until the next event, or `None` once the job has finished
    /// and every buffered event was consumed.
    fn next(&mut self) -> Option<IterationEvent> {
        let mut inner = self.shared.inner.lock().expect("progress lock");
        loop {
            if let Some(ev) = inner.events.pop_front() {
                return Some(ev);
            }
            if inner.closed {
                return None;
            }
            inner = self.shared.cv.wait(inner).expect("progress wait");
        }
    }
}

// ---------------------------------------------------------------------------
// Job state and queues

/// Which run queue a job's entry lives in (entries never migrate;
/// stealing pops directly from the owner's heap), so `set_priority`
/// knows which heap to restamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueSlot {
    /// Never enqueued (placement was rejected at submit).
    Unqueued,
    /// A per-worker CPU queue.
    Worker(usize),
    /// A per-device run queue.
    Device(usize),
}

/// `JobState::device` sentinel: no device bound (yet).
const NO_DEVICE: u32 = u32::MAX;

/// Shared per-job lifecycle state (held by the board, the queue entry and
/// every [`JobHandle`] clone).
struct JobState {
    cancel: CancelToken,
    priority: AtomicU8,
    phase: AtomicU8,
    progress: Arc<ProgressShared>,
    deadline: Option<Instant>,
    queue: QueueSlot,
    /// When `submit` accepted the job (the zero point of its queue-wait
    /// and first-event latencies).
    submitted: Instant,
    /// The job's span recorder (`None` with observability off).
    trace: Option<Arc<JobTrace>>,
    /// Has the first progress event been stamped with its latency?
    first_event: AtomicBool,
    /// The pool device the job is bound to (`NO_DEVICE` = none). Set at
    /// submit for explicitly-GPU jobs; set during `run_job` (before the
    /// solver is built, so before any progress event) when an auto job
    /// resolves to a GPU backend. Read by the progress observer to stamp
    /// events and by the retry supervisor to release the device after
    /// each attempt.
    device: AtomicU32,
    /// The pool's quarantine mask captured at submit (before this job's
    /// own supervision preview charged the health ledger). Run-time
    /// device choice — auto rotation and retry failover — avoids these
    /// devices via [`DevicePool::rotate_avoiding`] instead of reading
    /// live health, keeping it a pure function of the submission
    /// sequence.
    qmask: u64,
    /// Submit-time graceful degradation: every compatible device was
    /// quarantined and the job's policy allows the CPU fallback, so it
    /// queued as a CPU job and every attempt forces the CPU reference
    /// backend.
    degraded: bool,
}

impl JobState {
    fn device_id(&self) -> Option<DeviceId> {
        match self.device.load(Ordering::Acquire) {
            NO_DEVICE => None,
            d => Some(DeviceId(d)),
        }
    }

    fn set_device(&self, d: DeviceId) {
        self.device.store(d.0, Ordering::Release);
    }

    fn clear_device(&self) {
        self.device.store(NO_DEVICE, Ordering::Release);
    }
}

/// One queued job. Ordered by `(priority, submission order)`; the `prio`
/// stamp is a snapshot reconciled lazily against `state.priority` at pop.
struct QueueEntry {
    prio: u8,
    id: u64,
    state: Arc<JobState>,
    req: SolveRequest,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.id == other.id
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier submission.
        self.prio.cmp(&other.prio).then_with(|| other.id.cmp(&self.id))
    }
}

/// Lifecycle of one submitted job's result slot.
enum JobSlot {
    /// Submitted; no result yet.
    Pending,
    /// Finished; result waiting to be claimed.
    Done(Result<SolveReport, EngineError>),
}

/// In-flight result slots. A slot is created at submission and **removed
/// at claim**, so the board's size is bounded by the number of
/// outstanding jobs — no claimed-id tombstones and no drained-report
/// accumulation over the engine's lifetime. A claim on an issued id whose
/// slot is gone means "already claimed" and fails fast.
#[derive(Default)]
struct Board {
    jobs: HashMap<u64, JobSlot>,
}

/// The rolling-window/SLO state one engine owns when
/// [`EngineConfig::windows`] is armed. Serving-path only: the solve hot
/// path never reads or writes any of it.
pub(crate) struct WindowState {
    clock: Arc<dyn Clock>,
    window: RollingWindow,
    slos: Mutex<SloBoard>,
}

pub(crate) struct Shared {
    queues: Vec<Mutex<BinaryHeap<QueueEntry>>>,
    /// One run queue per pool device; GPU jobs wait here for their
    /// placed device's slot budget.
    device_queues: Vec<Mutex<BinaryHeap<QueueEntry>>>,
    pool: Arc<DevicePool>,
    /// Count of queued-but-unclaimed jobs; the condvar predicate.
    ready: Mutex<usize>,
    ready_cv: Condvar,
    board: Mutex<Board>,
    results_cv: Condvar,
    shutdown: AtomicBool,
    cache: ArtifactCache,
    /// The engine's observability hub (metrics registry, timeline sink,
    /// kernel profiler). Always present; disabled it records nothing.
    obs: Obs,
    /// Pre-registered scheduler metric handles (all no-ops when
    /// observability is off, so the hot path pays one branch each).
    metrics: SchedMetrics,
    /// Engine construction time (denominator of device utilization).
    started: Instant,
    /// The deterministic fault injector (disabled unless the config armed
    /// a [`FaultPlan`]; disabled, every query is one `None` branch).
    injector: FaultInjector,
    /// Workers currently parked on `ready_cv` with nothing runnable —
    /// the idle-thread donation counter GPU launches read (see
    /// [`EngineConfig::donate_idle_threads`]).
    donated: Arc<AtomicUsize>,
    /// Whether GPU bindings are handed the donation counter.
    donate: bool,
    /// Search-dynamics config handed to every job's `SolveCtx` (`None`:
    /// colonies skip the measurement entirely).
    dynamics: Option<aco_obs::DynamicsConfig>,
    /// The engine-wide event journal (`None`: journalling off).
    journal: Option<Arc<aco_obs::Journal>>,
    /// Rolling windows + SLO board (`None`: window layer off).
    windows: Option<WindowState>,
}

impl Shared {
    /// Journal timestamp: milliseconds since engine construction (wall
    /// clock, never fed back into scheduling).
    fn journal_ts_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// The full engine snapshot behind `Engine::metrics`: scheduler
    /// series plus per-device, per-job-dynamics and cache series bridged
    /// from their native counters here, at snapshot time, so neither
    /// subsystem depends on the metrics registry. Lives on `Shared` so
    /// the serving layer can snapshot without an `Engine` borrow.
    pub(crate) fn bridged_snapshot(&self) -> MetricsSnapshot {
        let reg = self.obs.metrics();
        if self.obs.is_enabled() {
            let elapsed = self.started.elapsed().as_secs_f64();
            // Label values flow through `labelled`, which escapes `\`,
            // `"` and newlines per the Prometheus text format — a
            // hostile device name must not corrupt the whole export.
            let dev = |base: &str, name: &str| aco_obs::metrics::labelled(base, "device", name);
            for d in self.pool.snapshot() {
                let name = &d.name;
                reg.gauge(&dev("aco_device_queued", name)).set(d.queued as i64);
                reg.gauge(&dev("aco_device_running", name)).set(d.running as i64);
                reg.counter(&dev("aco_device_completed_total", name)).set(d.completed);
                reg.counter(&dev("aco_device_admission_waits_total", name)).set(d.admission_waits);
                reg.gauge(&dev("aco_device_busy_ms", name)).set(d.busy_ms as i64);
                reg.gauge(&dev("aco_device_assigned_ms", name)).set(d.assigned_ms as i64);
                // Utilization in basis points (gauges are integers):
                // busy wall time over the engine's lifetime so far.
                let util_bp = if elapsed > 0.0 {
                    (d.busy_ms / (elapsed * 1e3) * 1e4).round() as i64
                } else {
                    0
                };
                reg.gauge(&dev("aco_device_utilization_bp", name)).set(util_bp);
                reg.gauge(&dev("aco_device_health", name)).set(d.health.code() as i64);
                reg.counter(&dev("aco_device_quarantines_total", name)).set(d.quarantines);
                reg.counter(&dev("aco_device_faults_observed_total", name)).set(d.faults_observed);
            }
            // Per-job search-dynamics gauges for every timeline still in
            // the ring. The `*_milli` integer series keep their
            // long-stable Prometheus names; the float twins carry the
            // unquantised values (full precision in the JSON snapshot).
            let job =
                |base: &str, id: u64| aco_obs::metrics::labelled(base, "job", &id.to_string());
            for t in self.obs.sink().recent() {
                if let Some(d) = &t.dynamics {
                    reg.gauge(&job("aco_job_entropy_milli", t.job))
                        .set((d.final_entropy * 1e3).round() as i64);
                    reg.gauge(&job("aco_job_stagnant_iterations", t.job))
                        .set(d.stagnant_iterations as i64);
                    reg.gauge(&job("aco_job_lambda_branching_milli", t.job))
                        .set((d.final_lambda_branching * 1e3).round() as i64);
                    reg.float_gauge(&job("aco_job_entropy", t.job)).set(d.final_entropy);
                    reg.float_gauge(&job("aco_job_lambda_branching", t.job))
                        .set(d.final_lambda_branching);
                }
            }
            let cs = self.cache.stats();
            reg.counter("aco_cache_artifact_hits_total").set(cs.artifact_hits);
            reg.counter("aco_cache_artifact_misses_total").set(cs.artifact_misses);
            reg.counter("aco_cache_decision_hits_total").set(cs.decision_hits);
            reg.counter("aco_cache_decision_misses_total").set(cs.decision_misses);
            reg.counter("aco_cache_evictions_total")
                .set(cs.artifact_evictions + cs.decision_evictions);
        }
        self.obs.snapshot()
    }

    /// Per-device health codes for the SLO bridge, as the plain view
    /// `aco-obs` understands (it depends on no other crate).
    fn device_health_view(&self) -> aco_obs::DeviceHealthView {
        self.pool.snapshot().into_iter().map(|d| (d.name, d.health.code())).collect()
    }

    /// One window tick: record the bridged snapshot at the clock's
    /// current time, then evaluate every SLO. See `Engine::tick_windows`.
    pub(crate) fn tick_windows(&self) -> Option<AlertState> {
        let ws = self.windows.as_ref()?;
        let now = ws.clock.now_ms();
        ws.window.record(now, self.bridged_snapshot());
        let devices = self.device_health_view();
        Some(ws.slos.lock().expect("slo lock").evaluate(&ws.window, &devices, now))
    }

    /// See `Engine::window_stats`.
    pub(crate) fn window_stats(&self, window_ms: u64) -> Option<WindowStats> {
        let ws = self.windows.as_ref()?;
        ws.window.stats(ws.clock.now_ms(), window_ms)
    }

    /// See `Engine::slo_statuses`.
    pub(crate) fn slo_statuses(&self) -> Vec<SloStatus> {
        match &self.windows {
            Some(ws) => ws.slos.lock().expect("slo lock").statuses(),
            None => Vec::new(),
        }
    }

    /// The `/slo` document: the SLO board as JSON (`[]` when the window
    /// layer is off).
    pub(crate) fn slo_json(&self) -> String {
        match &self.windows {
            Some(ws) => ws.slos.lock().expect("slo lock").to_json(),
            None => "[]".to_string(),
        }
    }

    /// Worst alert state on the board (`Ok` when the window layer is
    /// off — no alerting configured means nothing is firing).
    fn worst_alert(&self) -> AlertState {
        match &self.windows {
            Some(ws) => ws.slos.lock().expect("slo lock").worst(),
            None => AlertState::Ok,
        }
    }

    /// The `/healthz` document: engine uptime and queue state, job
    /// counters, per-device health, and the alert board's worst state.
    pub(crate) fn healthz_json(&self) -> String {
        use aco_obs::metrics::json_escape;
        let worst = self.worst_alert();
        let health = self.pool.health_summary();
        let outstanding = self.board.lock().expect("board lock").jobs.len();
        let mut out = format!(
            "{{\"status\":\"{}\",\"uptime_ms\":{},\"workers\":{},\"outstanding\":{},\
             \"jobs\":{{\"submitted\":{},\"completed\":{},\"failed\":{}}},\
             \"devices_quarantined\":{},\"devices\":[",
            worst.label(),
            (self.started.elapsed().as_secs_f64() * 1e3) as u64,
            self.queues.len(),
            outstanding,
            self.metrics.jobs_submitted.get(),
            self.metrics.jobs_completed.get(),
            self.metrics.jobs_failed.get(),
            health.quarantined,
        );
        for (i, d) in self.pool.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"health\":\"{}\",\"queued\":{},\"running\":{},\
                 \"completed\":{},\"faults\":{}}}",
                json_escape(&d.name),
                d.health.label(),
                d.queued,
                d.running,
                d.completed,
                d.faults_observed,
            ));
        }
        out.push_str(&format!("],\"alerts\":{}}}", self.slo_json()));
        out
    }

    /// The journal, for the serving layer's `/events` stream.
    pub(crate) fn journal_arc(&self) -> Option<Arc<aco_obs::Journal>> {
        self.journal.clone()
    }

    /// Is the rolling-window layer armed?
    pub(crate) fn has_windows(&self) -> bool {
        self.windows.is_some()
    }

    /// The armed window's bucket width, for the sampler cadence.
    pub(crate) fn window_bucket_ms(&self) -> Option<u64> {
        self.windows.as_ref().map(|ws| ws.window.bucket_ms())
    }

    /// The dashboard render behind `Engine::render_dashboard` (on
    /// `Shared` so the serving layer can render it).
    pub(crate) fn render_dashboard(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let mut out = format!(
            "aco-engine dashboard  t+{elapsed:.1}s  workers {}  journal {}\n",
            self.queues.len(),
            match &self.journal {
                Some(j) => format!("{} lines", j.len()),
                None => "off".to_string(),
            },
        );
        let devices = self.pool.snapshot();
        if devices.is_empty() {
            out.push_str("devices: none\n");
        } else {
            out.push_str("devices:\n");
            for d in devices {
                let util = if elapsed > 0.0 { d.busy_ms / (elapsed * 1e3) * 1e2 } else { 0.0 };
                out.push_str(&format!(
                    "  [{}] {:<12} queued {:>3}  running {:>2}  done {:>4}  util {:>5.1}%  {}\n",
                    d.id.0,
                    d.name,
                    d.queued,
                    d.running,
                    d.completed,
                    util,
                    d.health.label(),
                ));
            }
        }
        let timelines = self.obs.sink().recent();
        if timelines.is_empty() {
            out.push_str("jobs: none completed yet\n");
        } else {
            out.push_str("jobs (most recent last):\n");
            for t in timelines {
                let device = match t.device {
                    Some(d) => format!("dev{d}"),
                    None => "cpu".to_string(),
                };
                match &t.dynamics {
                    Some(d) => out.push_str(&format!(
                        "  job {:>3} {:<22} {device:<5} best {:>8}  {}  entropy {:.3}  \
                         lambda {:.2}  stagnant {}\n",
                        t.job,
                        t.backend,
                        if d.final_best == u64::MAX { 0 } else { d.final_best },
                        sparkline(&d.best_trajectory.values(), 24),
                        d.final_entropy,
                        d.final_lambda_branching,
                        d.stagnant_iterations,
                    )),
                    None => out.push_str(&format!(
                        "  job {:>3} {:<22} {device:<5} wall {:.1}ms\n",
                        t.job, t.backend, t.solve_wall_ms,
                    )),
                }
            }
        }
        out
    }
}

/// The scheduler's own metric handles, registered once at engine
/// construction (names are the export surface — see `Engine::metrics`).
struct SchedMetrics {
    jobs_submitted: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    /// Pops served from a *peer's* queue (work stealing).
    steals: Counter,
    /// Back-off bouts workers spent with every runnable job gated on a
    /// saturated device (scheduler-side admission waiting; the pool
    /// counts per-device rejections separately).
    admission_wait_bouts: Counter,
    progress_dropped: Counter,
    /// Entries resident in run queues (decremented when a worker pops
    /// the entry, so eagerly-finalised jobs leave the gauge only when
    /// their dead entry is reaped).
    queue_depth: Gauge,
    jobs_running: Gauge,
    queue_wait_ms: Histogram,
    first_event_ms: Histogram,
    placement_ms: Histogram,
    /// Wall time of the supervised solve (jobs that actually ran —
    /// eagerly cancelled/expired jobs are excluded), the serving layer's
    /// solve-latency SLI.
    solve_wall_ms: Histogram,
    /// Failed attempts that were retried by the supervisor.
    retries: Counter,
    /// Retries that moved to a different device than the failed attempt.
    failovers: Counter,
    /// Jobs degraded to the CPU reference backend (at submit, when the
    /// pool was fully quarantined, or mid-job by `Failover::CpuFallback`).
    cpu_fallbacks: Counter,
    /// Faults delivered by the injection plan.
    faults_injected: Counter,
    /// Attempts reclassified as hung by the per-attempt watchdog.
    watchdog_trips: Counter,
    /// Healthy→stagnant transitions the dynamics detector flagged
    /// (counted once per onset, across all jobs).
    stagnation_events: Counter,
    /// Colony stagnation restarts surfaced by completed reports (MMAS
    /// trail re-initialisations).
    restarts: Counter,
}

impl SchedMetrics {
    fn new(reg: &aco_obs::MetricsRegistry) -> Self {
        SchedMetrics {
            jobs_submitted: reg.counter("aco_engine_jobs_submitted_total"),
            jobs_completed: reg.counter("aco_engine_jobs_completed_total"),
            jobs_failed: reg.counter("aco_engine_jobs_failed_total"),
            steals: reg.counter("aco_engine_steals_total"),
            admission_wait_bouts: reg.counter("aco_engine_admission_wait_bouts_total"),
            progress_dropped: reg.counter("aco_engine_progress_dropped_total"),
            queue_depth: reg.gauge("aco_engine_queue_depth"),
            jobs_running: reg.gauge("aco_engine_jobs_running"),
            queue_wait_ms: reg.histogram("aco_engine_queue_wait_ms", &LATENCY_BUCKETS_MS),
            first_event_ms: reg.histogram("aco_engine_first_event_ms", &LATENCY_BUCKETS_MS),
            placement_ms: reg.histogram("aco_engine_placement_ms", &LATENCY_BUCKETS_MS),
            solve_wall_ms: reg.histogram("aco_engine_solve_wall_ms", &LATENCY_BUCKETS_MS),
            retries: reg.counter("aco_engine_retries_total"),
            failovers: reg.counter("aco_engine_failovers_total"),
            cpu_fallbacks: reg.counter("aco_engine_cpu_fallbacks_total"),
            faults_injected: reg.counter("aco_engine_faults_injected_total"),
            watchdog_trips: reg.counter("aco_engine_watchdog_trips_total"),
            stagnation_events: reg.counter("aco_engine_stagnation_events_total"),
            restarts: reg.counter("aco_engine_restarts_total"),
        }
    }
}

/// Pop the best entry of a locked heap, reconciling stale priority
/// stamps: an entry whose stamp disagrees with the job's current
/// priority is re-pushed under the current one and the pop retried. This
/// backstops the `set_priority` heap restamp against the race where the
/// atomic is updated while a pop is in flight.
fn pop_reconciled(q: &mut BinaryHeap<QueueEntry>) -> Option<QueueEntry> {
    loop {
        let mut e = q.pop()?;
        let current = e.state.priority.load(Ordering::Acquire);
        if e.prio == current {
            return Some(e);
        }
        e.prio = current;
        q.push(e);
    }
}

impl Shared {
    /// Pop the best runnable entry of worker queue `qi`.
    fn pop_queue(&self, qi: usize) -> Option<QueueEntry> {
        pop_reconciled(&mut self.queues[qi].lock().expect("queue lock"))
    }

    /// Pop the best runnable entry of device queue `d`, admission-gated
    /// by the device's resident-job slot budget. The admission happens
    /// under the queue lock, so it always corresponds to the entry
    /// popped here (released by the worker loop when the job finishes,
    /// or immediately if the entry turns out to be finalised already).
    /// A queue with entries but no free slot sets `saturated` so the
    /// scan loop can tell "wait for a slot" from a transient pop race.
    fn pop_device_queue(&self, d: usize, saturated: &mut bool) -> Option<QueueEntry> {
        let mut q = self.device_queues[d].lock().expect("device queue lock");
        if q.is_empty() {
            return None;
        }
        if !self.pool.try_admit(DeviceId(d as u32)) {
            *saturated = true;
            return None;
        }
        let entry = pop_reconciled(&mut q).expect("non-empty heap under lock");
        Some(entry)
    }

    /// Claim a job: block until one is queued (or shutdown), then scan —
    /// own queue first, then the device queues (offset by the worker
    /// index so workers fan out over devices), then peers (stealing
    /// takes the peer's best entry, so high-priority work migrates
    /// first). GPU entries are only taken when their device has a free
    /// slot; when every remaining job sits on a saturated device the
    /// worker waits for a slot to free.
    fn next_job(&self, worker: usize) -> Option<QueueEntry> {
        {
            let mut ready = self.ready.lock().expect("ready lock");
            loop {
                if *ready > 0 {
                    *ready -= 1; // reserve one job; a matching pop must succeed below
                    break;
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                // Nothing runnable anywhere: donate this thread to any
                // in-flight GPU launch for as long as we are parked. The
                // count is reclaimed the instant a submit wakes us, so
                // new work never waits on a donated thread.
                self.donated.fetch_add(1, Ordering::Relaxed);
                ready = self.ready_cv.wait(ready).expect("ready wait");
                self.donated.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let k = self.queues.len();
        let dcount = self.device_queues.len();
        loop {
            if let Some(job) = self.pop_queue(worker) {
                return Some(job);
            }
            let mut saturated = false;
            for i in 0..dcount {
                if let Some(job) = self.pop_device_queue((worker + i) % dcount, &mut saturated) {
                    return Some(job);
                }
            }
            for peer in 1..k {
                if let Some(job) = self.pop_queue((worker + peer) % k) {
                    self.metrics.steals.inc();
                    return Some(job);
                }
            }
            if saturated {
                // The only queued jobs sit on devices whose slots are all
                // busy; their runners will release them in milliseconds,
                // not nanoseconds — sleep instead of burning the core the
                // runner needs.
                self.metrics.admission_wait_bouts.inc();
                std::thread::sleep(std::time::Duration::from_micros(100));
            } else {
                // Another reserving worker holds "our" job only
                // transiently (between its reservation and pop); re-scan.
                std::thread::yield_now();
            }
        }
    }

    /// Finalise a job: close its progress stream, mark it finished, and
    /// fill its result slot (a no-op if the slot was already claimed).
    fn post(&self, id: u64, state: &JobState, result: Result<SolveReport, EngineError>) {
        state.progress.close();
        state.phase.store(PHASE_FINISHED, Ordering::Release);
        let mut board = self.board.lock().expect("board lock");
        if let Some(slot) = board.jobs.get_mut(&id) {
            *slot = JobSlot::Done(result);
        }
        drop(board);
        self.results_cv.notify_all();
    }

    /// Blocking claim of `id`'s result (exactly once).
    fn claim_blocking(&self, id: u64, issued: bool) -> Result<SolveReport, EngineError> {
        if !issued {
            return Err(EngineError::UnknownJob);
        }
        let mut board = self.board.lock().expect("board lock");
        loop {
            match board.jobs.get(&id) {
                // Issued id without a slot: already claimed.
                None => return Err(EngineError::UnknownJob),
                Some(JobSlot::Done(_)) => {
                    let Some(JobSlot::Done(r)) = board.jobs.remove(&id) else {
                        unreachable!("matched Done above")
                    };
                    return r;
                }
                Some(JobSlot::Pending) => {
                    board = self.results_cv.wait(board).expect("results wait");
                }
            }
        }
    }

    /// Non-blocking claim: `None` while the job is still in flight.
    fn claim_nonblocking(&self, id: u64, issued: bool) -> Option<Result<SolveReport, EngineError>> {
        if !issued {
            return Some(Err(EngineError::UnknownJob));
        }
        let mut board = self.board.lock().expect("board lock");
        match board.jobs.get(&id) {
            None => Some(Err(EngineError::UnknownJob)),
            Some(JobSlot::Done(_)) => {
                let Some(JobSlot::Done(r)) = board.jobs.remove(&id) else {
                    unreachable!("matched Done above")
                };
                Some(r)
            }
            Some(JobSlot::Pending) => None,
        }
    }
}

/// The [`SolveCtx`] one *attempt* runs under: the job's cancel token, the
/// attempt's effective deadline (the job deadline capped by the
/// per-attempt watchdog, when one is armed), and an observer feeding the
/// bounded progress buffer. The observer stamps each event with the
/// device the job is bound to (if any) — bound before the solver is
/// built, so the stamp is identical on every event and deterministic
/// across worker counts. The observer also stamps the submit→first-event
/// latency (once, on the first event) into the scheduler histogram and
/// the job's trace — pure recording, so it cannot perturb the event
/// sequence.
///
/// With [`EngineConfig::dynamics`] armed the ctx carries the config (so
/// colonies measure and the driver attaches [`aco_obs::IterationStats`]
/// to each event), and the observer additionally folds the stats into
/// the job's timeline, samples iteration records into the journal, and
/// journals/counts stagnation *onsets* (healthy→stagnant edges) — all
/// write-only.
fn job_ctx(shared: &Shared, id: u64, state: &Arc<JobState>, deadline: Option<Instant>) -> SolveCtx {
    let trace = state.trace.clone();
    let first_event_ms = shared.metrics.first_event_ms.clone();
    let stagnation_metric = shared.metrics.stagnation_events.clone();
    let journal = shared.journal.clone();
    let started = shared.started;
    let was_stagnant = AtomicBool::new(false);
    let obs_state = Arc::clone(state);
    let mut ctx = SolveCtx::new().with_cancel(state.cancel.clone()).with_observer(move |mut ev| {
        if !obs_state.first_event.swap(true, Ordering::Relaxed) {
            let ms = obs_state.submitted.elapsed().as_secs_f64() * 1e3;
            first_event_ms.observe(ms);
            if let Some(trace) = &obs_state.trace {
                trace.record_first_event_ms(ms);
            }
        }
        ev.device = obs_state.device_id().map(|d| d.0);
        // Healthy → stagnant edges count once per entry (the detector
        // state lives here, per attempt, not in the colony).
        let mut onset = false;
        if let Some(stats) = ev.stats {
            if let Some(trace) = &obs_state.trace {
                trace.record_dynamics(ev.iteration, ev.best_so_far, &stats);
            }
            let prev = was_stagnant.swap(stats.stagnant, Ordering::Relaxed);
            onset = stats.stagnant && !prev;
            if onset {
                stagnation_metric.inc();
            }
        }
        if let Some(j) = &journal {
            let ts = started.elapsed().as_secs_f64() * 1e3;
            if ev.iteration % j.sample_every() == 0 {
                // Iteration samples are journaled with or without
                // dynamics; the stats fields simply stay absent.
                j.record_iteration(
                    ts,
                    id,
                    ev.iteration,
                    ev.iter_best,
                    ev.best_so_far,
                    ev.stats.as_ref(),
                );
            }
            if let (true, Some(stats)) = (onset, ev.stats) {
                j.record_stagnation(ts, id, ev.iteration, stats.stagnant_iterations, stats.entropy);
            }
        }
        obs_state.progress.push(ev);
    });
    if let Some(cfg) = shared.dynamics {
        ctx = ctx.with_dynamics(cfg);
    }
    if let Some(d) = deadline {
        ctx = ctx.with_deadline(d);
    }
    if let Some(trace) = trace {
        ctx = ctx.with_trace(trace);
    }
    ctx
}

/// The CPU backend jobs degrade to when [`Failover::CpuFallback`] runs
/// out of healthy devices: the workspace's reference solver, which
/// depends on no device at all.
fn cpu_fallback_backend() -> Backend {
    Backend::CpuSequential { policy: TourPolicy::NearestNeighborList }
}

/// Label of the backend an attempt runs (the request's own, or the CPU
/// fallback when the supervisor degraded the job).
fn attempt_backend_label(req: &SolveRequest, force_cpu: bool) -> String {
    if force_cpu {
        cpu_fallback_backend().label()
    } else {
        req.backend.label()
    }
}

/// Run one attempt of a job: resolve the backend, bind a device, build
/// the solver and drive it under `ctx` — delivering this attempt's
/// injected fault, if the engine's plan schedules one.
fn run_attempt(
    shared: &Shared,
    id: u64,
    state: &JobState,
    req: &SolveRequest,
    ctx: &SolveCtx,
    attempt: u32,
    force_cpu: bool,
) -> Result<SolveReport, EngineError> {
    let inst = &*req.instance;
    let seed = req.effective_seed();
    let params = req.params.clone().seed(seed);
    let (artifacts, built_here) = shared.cache.artifacts_with_origin(inst, params.nn_size);
    if let Some(trace) = &state.trace {
        trace.record_cache(!built_here);
    }
    let backend = if force_cpu {
        cpu_fallback_backend()
    } else {
        auto::resolve(
            &req.backend,
            inst,
            &params,
            &artifacts,
            &shared.cache,
            &shared.pool,
            req.affinity,
            req.local_search,
            req.ls_scope,
        )
    };
    // Bind the job to a pool device. Explicitly-GPU jobs were placed at
    // submit time (affinity-aware, least-loaded); an auto job that just
    // resolved to a GPU backend rotates over the compatible devices as a
    // pure function of its id, so the binding — like everything else
    // about the job — cannot depend on execution order. The device's
    // resident-job slot budget applies either way: the auto path waits
    // for a free slot here (staying responsive to cancel/deadline),
    // mirroring what a device-queued entry does in `pop_device_queue`.
    let device = match state.device_id() {
        Some(d) => Some(d),
        None => match backend.required_model() {
            Some(model) => {
                let d = shared.pool.rotate_avoiding(model, req.affinity, id, state.qmask)?;
                while !shared.pool.try_admit_unqueued(d) {
                    if let Some(reason) = ctx.stop_reason() {
                        return Err(match reason {
                            aco_core::lifecycle::StopReason::Cancelled => EngineError::Cancelled,
                            aco_core::lifecycle::StopReason::DeadlineExpired => {
                                EngineError::DeadlineExpired
                            }
                        });
                    }
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                // The worker loop releases via `state.device_id()`, so
                // the id is only published once the slot is held.
                state.set_device(d);
                Some(d)
            }
            None => None,
        },
    };
    let gpu = device.and_then(|d| {
        Some(GpuBinding {
            spec: shared.pool.spec(d)?.clone(),
            exec_threads: shared.pool.profile(d)?.exec_threads,
            donated: shared.donate.then(|| Arc::clone(&shared.donated)),
        })
    });
    if let Some(trace) = &state.trace {
        trace.set_backend(&backend.label());
        if let Some(d) = device {
            trace.set_device(d.0);
        }
    }
    // Route this thread's simulated-kernel launches (the colony's and any
    // nested auto-probe's) into the job's trace and the engine profiler
    // for the duration of the solve. Nothing is installed with
    // observability off, so the launch path pays one thread-local read.
    let _kernel_scope = shared.obs.is_enabled().then(|| {
        aco_obs::install(KernelSink {
            trace: state.trace.clone(),
            profiler: Some(Arc::clone(shared.obs.profiler())),
        })
    });
    let mut solver =
        build_solver(&backend, inst, &params, &artifacts, gpu, req.local_search, req.ls_scope);
    // Deliver this attempt's injected fault, if the plan schedules one —
    // a pure function of (job, device, attempt), so the same attempt
    // faults identically at any worker count. Armed only now, *after*
    // backend resolution and solver construction, so auto-probe kernel
    // launches never trip a fault meant for the solve itself.
    let _fault_scope = match shared.injector.fault_for(id, device.map(|d| d.0), attempt) {
        Some(FaultKind::Hang) => {
            // A hung device: burn wall time (bounded by the plan's hang
            // cap, and interruptible by cancel/deadline) and then surface
            // the retryable device-fault class. The error message carries
            // no timing, so reports stay bit-identical across runs.
            let cap =
                Duration::from_millis(shared.injector.plan().map(|p| p.hang_cap_ms()).unwrap_or(0));
            let hung_at = Instant::now();
            while hung_at.elapsed() < cap && ctx.stop_reason().is_none() {
                std::thread::sleep(Duration::from_millis(1));
            }
            return Err(EngineError::Simt(SimtError::DeviceFault(format!(
                "injected hang (job {id}, attempt {attempt})"
            ))));
        }
        Some(FaultKind::KernelPanic) => match device {
            // GPU attempts panic from inside the kernel launch path (the
            // hook in `aco_simt::launch_threads`), exercising the same
            // unwind the real failure would take.
            Some(_) => Some(aco_faults::launch::arm(aco_faults::launch::LaunchFault::Panic(
                format!("injected kernel panic (job {id}, attempt {attempt})"),
            ))),
            None => panic!("injected solver panic (job {id}, attempt {attempt})"),
        },
        Some(FaultKind::TransientError) => match device {
            Some(_) => Some(aco_faults::launch::arm(aco_faults::launch::LaunchFault::Transient(
                format!("injected transient device error (job {id}, attempt {attempt})"),
            ))),
            None => {
                return Err(EngineError::Simt(SimtError::DeviceFault(format!(
                    "injected transient device error (job {id}, attempt {attempt})"
                ))))
            }
        },
        None => None,
    };
    let mut report = solver.solve(req.iterations, seed, ctx)?;
    report.instance = inst.name().to_string();
    report.n = inst.n();
    report.device = device;
    if req.local_search.is_post_pass()
        && report.outcome == JobOutcome::Completed
        && ctx.stop_reason().is_none()
    {
        // Host-side 2-opt post-pass (the paper's named hybridisation);
        // strictly non-worsening, pinned by tests/lifecycle.rs. Skipped
        // for cancelled/expired jobs — and when the deadline elapsed (or
        // a cancel arrived) during the final iteration, where the
        // outcome is still Completed: an unbounded local search after
        // the budget is spent would break the prompt-cancel and
        // wall-clock-budget guarantees.
        let mut scratch = aco_localsearch::LsScratch::new();
        let post_t0 = Instant::now();
        // One pass stops at a don't-look-bit fixpoint, which can fall
        // short of 2-opt local optimality; iterate fresh passes until
        // the move stream dries up, matching the pre-LocalSearch
        // post-pass (run-to-optimality) behaviour.
        loop {
            let gain = req.local_search.improve(
                &mut report.best_tour,
                inst.matrix(),
                &artifacts.nn,
                &mut scratch,
            );
            report.best_len -= gain;
            report.local_search_improvement += gain;
            if gain == 0 {
                break;
            }
        }
        debug_assert_eq!(report.best_len, report.best_tour.length(inst.matrix()));
        if let Some(trace) = &state.trace {
            trace.record_post_pass_ms(post_t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Retry supervision

/// Where the supervisor runs a job's next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptTarget {
    /// Re-run exactly as submitted (CPU jobs retry their own backend).
    Resubmit,
    /// Run on this pool device.
    Gpu(DeviceId),
    /// Degrade to the CPU reference backend.
    Cpu,
}

/// The pure failover function: where attempt `attempt` of job `job` runs
/// after the previous attempt failed on `failed`. A pure function of its
/// arguments — no live health, no wall clock — shared by the submit-time
/// supervision preview and the run-time supervisor, which is what makes
/// retry placements bit-identical at any worker count. Returns `None`
/// when no target remains (the job fails with its last error).
#[allow(clippy::too_many_arguments)]
fn next_attempt_device(
    pool: &DevicePool,
    model: DeviceModel,
    affinity: DeviceAffinity,
    job: u64,
    attempt: u32,
    avoid: u64,
    qmask: u64,
    failover: Failover,
    failed: DeviceId,
) -> Option<AttemptTarget> {
    if failover == Failover::Same {
        return Some(AttemptTarget::Gpu(failed));
    }
    if let DeviceAffinity::Pinned(d) = affinity {
        // A pin is a contract: retries never move to another device. With
        // a CPU fallback the first pin failure degrades immediately —
        // there is no other device the pin would allow.
        return match failover {
            Failover::CpuFallback => Some(AttemptTarget::Cpu),
            _ => Some(AttemptTarget::Gpu(d)),
        };
    }
    let masked = |d: &DeviceId, mask: u64| d.0 < 64 && (mask >> d.0) & 1 == 1;
    let compatible = pool.devices_of(model);
    let fresh: Vec<DeviceId> =
        compatible.iter().copied().filter(|d| !masked(d, avoid) && !masked(d, qmask)).collect();
    let pick = |set: &[DeviceId]| set[((job + attempt as u64) % set.len() as u64) as usize];
    if !fresh.is_empty() {
        return Some(AttemptTarget::Gpu(pick(&fresh)));
    }
    match failover {
        Failover::CpuFallback => Some(AttemptTarget::Cpu),
        _ => {
            // Every compatible device already failed or is quarantined:
            // wrap back to the already-failed ones (a transient fault may
            // have cleared) rather than fail outright — but never to a
            // quarantined device.
            let open: Vec<DeviceId> =
                compatible.iter().copied().filter(|d| !masked(d, qmask)).collect();
            (!open.is_empty()).then(|| AttemptTarget::Gpu(pick(&open)))
        }
    }
}

/// Predict an explicit-GPU job's attempt trajectory at submit time and
/// charge the predicted outcomes to the pool's health ledger. Because
/// injected faults and failover targets are pure functions of
/// `(job, device, attempt)`, this preview reaches the same verdicts the
/// run-time supervisor will — so the health ledger (and with it every
/// subsequent placement) advances in the submission sequence, never on
/// execution timing. Run-time attempts therefore charge *nothing*:
/// genuine (non-injected) faults only feed a telemetry counter.
fn preview_attempts(
    pool: &DevicePool,
    injector: &FaultInjector,
    id: u64,
    req: &SolveRequest,
    first: DeviceId,
    model: DeviceModel,
    qmask: u64,
) {
    let max = req.retry.attempts();
    let mut avoid = 0u64;
    let mut device = first;
    for attempt in 1..=max {
        let ok = injector.fault_for(id, Some(device.0), attempt).is_none();
        pool.note_outcome(device, ok);
        if ok || attempt >= max {
            return;
        }
        if device.0 < 64 {
            avoid |= 1 << device.0;
        }
        match next_attempt_device(
            pool,
            model,
            req.affinity,
            id,
            attempt + 1,
            avoid,
            qmask,
            req.retry.failover,
            device,
        ) {
            Some(AttemptTarget::Gpu(d)) => device = d,
            // Degraded to CPU (or out of targets): no further device
            // outcomes to charge.
            Some(AttemptTarget::Cpu) | Some(AttemptTarget::Resubmit) | None => return,
        }
    }
}

/// Is this error the retryable class (a panic or a transient device
/// fault), as opposed to a verdict no retry can change?
fn is_retryable(err: &EngineError) -> bool {
    matches!(err, EngineError::Failed { .. } | EngineError::Simt(SimtError::DeviceFault(_)))
}

/// Drive one job to a terminal outcome under its [`RetryPolicy`]:
/// run attempts, catch panics, reclassify watchdog expiries, release the
/// device slot after every attempt, and re-place retries via the pure
/// failover function. The default policy (`max_attempts = 1`, no
/// watchdog) makes this exactly one `run_attempt` with the job's own
/// deadline — the unsupervised engine.
fn run_supervised(
    shared: &Shared,
    id: u64,
    state: &Arc<JobState>,
    req: &SolveRequest,
) -> Result<SolveReport, EngineError> {
    let policy = req.retry;
    let max_attempts = policy.attempts();
    let mut faults: Vec<AttemptFault> = Vec::new();
    let mut avoid = 0u64;
    let mut force_cpu = state.degraded;
    let mut attempt: u32 = 1;
    loop {
        let attempt_start = Instant::now();
        let attempt_deadline = match (state.deadline, policy.watchdog) {
            (Some(job), Some(dog)) => Some(job.min(attempt_start + dog)),
            (Some(job), None) => Some(job),
            (None, Some(dog)) => Some(attempt_start + dog),
            (None, None) => None,
        };
        let ctx = job_ctx(shared, id, state, attempt_deadline);
        let entered_with = state.device_id();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(shared, id, state, req, &ctx, attempt, force_cpu)
        }))
        .unwrap_or_else(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".into());
            Err(EngineError::Failed {
                job: id,
                backend: attempt_backend_label(req, force_cpu),
                device: state.device_id(),
                message,
            })
        });
        // The attempt may have bound a device mid-run (auto resolution):
        // capture it before releasing, then release whatever slot this
        // attempt held — entered with (device-queue admission) or
        // acquired itself — so slot accounting balances per attempt even
        // across panics.
        let device = state.device_id().or(entered_with);
        if let Some(d) = state.device_id() {
            shared.pool.release(d, attempt_start.elapsed());
        }
        state.clear_device();

        // Watchdog reclassification: an attempt stopped by the *watchdog*
        // deadline (not the job's own, which is terminal) is a hung
        // attempt — retryable, partial result discarded.
        let dogged = |stopped_early: bool| {
            policy.watchdog.is_some()
                && stopped_early
                && !state.cancel.is_cancelled()
                && state.deadline.is_none_or(|d| Instant::now() < d)
        };
        let watchdog_failed = |message: String| EngineError::Failed {
            job: id,
            backend: attempt_backend_label(req, force_cpu),
            device,
            message,
        };
        let result = match result {
            Ok(report) if dogged(report.outcome == JobOutcome::DeadlineExpired) => {
                shared.metrics.watchdog_trips.inc();
                Err(watchdog_failed(format!("attempt {attempt} exceeded its execution watchdog")))
            }
            Err(EngineError::DeadlineExpired) if dogged(true) => {
                shared.metrics.watchdog_trips.inc();
                Err(watchdog_failed(format!(
                    "attempt {attempt} exceeded its execution watchdog before any result"
                )))
            }
            other => other,
        };

        let err = match result {
            Ok(mut report) => {
                report.attempts = attempt;
                report.faults = faults;
                return Ok(report);
            }
            Err(err) => err,
        };
        if !is_retryable(&err) {
            return Err(err);
        }

        // Record the failed attempt (report, trace, metrics). `injected`
        // is recomputed from the pure plan rather than threaded through
        // the error path — same inputs, same verdict.
        let injected = shared.injector.fault_for(id, device.map(|d| d.0), attempt);
        if injected.is_some() {
            shared.metrics.faults_injected.inc();
        } else if let Some(d) = device {
            // A genuine fault: telemetry only, never the health ledger
            // (which advances via the deterministic submit-time preview).
            shared.pool.note_fault_observed(d);
        }
        let error = err.to_string();
        if let Some(trace) = &state.trace {
            trace.record_attempt(attempt, device.map(|d| d.0), &error);
        }
        if let Some(journal) = &shared.journal {
            journal.record_attempt(
                shared.journal_ts_ms(),
                id,
                attempt,
                device.map(|d| d.0),
                &error,
            );
        }
        faults.push(AttemptFault {
            attempt,
            device,
            backend: attempt_backend_label(req, force_cpu),
            error,
            injected,
        });

        // Retry budget: attempts, cancellation, and the deadline-aware
        // check that another attempt could still start in time.
        if attempt >= max_attempts || state.cancel.is_cancelled() {
            return Err(err);
        }
        if let Some(deadline) = state.deadline {
            if Instant::now() + policy.backoff >= deadline {
                return Err(err);
            }
        }

        // Re-place via the pure failover function (the same one the
        // submit-time preview walked).
        if let Some(d) = device {
            if d.0 < 64 {
                avoid |= 1 << d.0;
            }
        }
        let target = match device {
            // CPU attempts retry as they ran (the request's own CPU
            // backend, or the fallback once degraded).
            _ if force_cpu => Some(AttemptTarget::Resubmit),
            None => Some(AttemptTarget::Resubmit),
            Some(failed) => match shared.pool.profile(failed).map(|p| p.model) {
                Some(model) => next_attempt_device(
                    &shared.pool,
                    model,
                    req.affinity,
                    id,
                    attempt + 1,
                    avoid,
                    state.qmask,
                    policy.failover,
                    failed,
                ),
                None => None,
            },
        };
        let Some(target) = target else {
            return Err(err);
        };
        shared.metrics.retries.inc();

        // Cancel-aware backoff.
        if policy.backoff > Duration::ZERO {
            let until = Instant::now() + policy.backoff;
            while Instant::now() < until {
                if state.cancel.is_cancelled() {
                    return Err(err);
                }
                std::thread::sleep(Duration::from_millis(1).min(policy.backoff));
            }
        }

        match target {
            AttemptTarget::Resubmit => {}
            AttemptTarget::Cpu => {
                shared.metrics.cpu_fallbacks.inc();
                force_cpu = true;
            }
            AttemptTarget::Gpu(d) => {
                if Some(d) != device {
                    shared.metrics.failovers.inc();
                }
                // Admit a slot on the retry's device (the same gate every
                // other execution path respects), staying responsive to
                // cancellation and the job deadline.
                while !shared.pool.try_admit_unqueued(d) {
                    if state.cancel.is_cancelled()
                        || state.deadline.is_some_and(|dl| Instant::now() >= dl)
                    {
                        return Err(err);
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                state.set_device(d);
            }
        }
        attempt += 1;
    }
}

/// The stable journal spelling of a [`JobOutcome`].
fn outcome_label(outcome: &JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Completed => "completed",
        JobOutcome::Cancelled => "cancelled",
        JobOutcome::DeadlineExpired => "deadline-expired",
    }
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    while let Some(QueueEntry { id, state, req, .. }) = shared.next_job(worker) {
        shared.metrics.queue_depth.dec();
        // A device-queued entry arrives holding one admitted slot on its
        // placed device (granted in `pop_device_queue`).
        let admitted = match state.queue {
            QueueSlot::Device(d) => Some(DeviceId(d as u32)),
            _ => None,
        };
        // Only a QUEUED job may start running; an eager cancel that
        // already finalised the slot wins this race and the entry is a
        // no-op (its reservation was consumed by the pop above).
        if state
            .phase
            .compare_exchange(PHASE_QUEUED, PHASE_RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            if let Some(d) = admitted {
                shared.pool.cancel_admit(d);
            }
            continue;
        }
        let queue_wait_ms = state.submitted.elapsed().as_secs_f64() * 1e3;
        shared.metrics.queue_wait_ms.observe(queue_wait_ms);
        if let Some(trace) = &state.trace {
            trace.record_queue_wait_ms(queue_wait_ms);
        }
        // Drop cancelled / already-expired jobs before execution: no
        // solver is built and no cache entry is touched.
        let mut solve_wall_ms = 0.0;
        let mut cache_hit = None;
        let outcome = if state.cancel.is_cancelled() {
            if let Some(d) = admitted {
                shared.pool.cancel_admit(d);
            }
            Err(EngineError::Cancelled)
        } else if state.deadline.is_some_and(|d| Instant::now() >= d) {
            if let Some(d) = admitted {
                shared.pool.cancel_admit(d);
            }
            Err(EngineError::DeadlineExpired)
        } else {
            shared.metrics.jobs_running.inc();
            let t0 = Instant::now();
            // The supervisor owns attempt execution, panic capture,
            // watchdog reclassification, per-attempt slot release, and
            // retry/failover re-placement.
            let result = run_supervised(&shared, id, &state, &req);
            let wall = t0.elapsed();
            solve_wall_ms = wall.as_secs_f64() * 1e3;
            shared.metrics.solve_wall_ms.observe(solve_wall_ms);
            shared.metrics.jobs_running.dec();
            if let Some(trace) = &state.trace {
                trace.record_solve_wall_ms(wall.as_secs_f64() * 1e3);
                // The job ran (even if it failed mid-run): its timeline
                // goes to the engine-wide ring. Never-ran jobs (eager
                // cancel/expiry) have no spans worth keeping.
                let snapshot = trace.snapshot();
                cache_hit = snapshot.artifact_cache_hit;
                shared.obs.sink().push(snapshot);
            }
            result
        };
        match &outcome {
            Ok(report) => {
                shared.metrics.jobs_completed.inc();
                shared.metrics.restarts.add(report.restarts);
            }
            Err(_) => shared.metrics.jobs_failed.inc(),
        }
        if let Some(journal) = &shared.journal {
            let ts = shared.journal_ts_ms();
            match &outcome {
                Ok(report) => journal.record_complete(
                    ts,
                    id,
                    outcome_label(&report.outcome),
                    &report.backend.label(),
                    report.device.map(|d| d.0),
                    report.best_len,
                    report.iterations,
                    queue_wait_ms,
                    solve_wall_ms,
                    cache_hit,
                    report.attempts,
                    report.restarts,
                ),
                Err(_) => journal.record_complete(
                    ts,
                    id,
                    "failed",
                    &req.backend.label(),
                    state.device_id().map(|d| d.0),
                    0,
                    0,
                    queue_wait_ms,
                    solve_wall_ms,
                    cache_hit,
                    0,
                    0,
                ),
            }
        }
        shared.post(id, &state, outcome);
    }
}

// ---------------------------------------------------------------------------
// JobHandle

/// The lifecycle surface of one submitted job, returned by
/// [`Engine::submit`]. Clonable; clones address the same job (the result
/// is still claimed exactly once, by whichever `poll`/`wait` gets there
/// first).
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    shared: Arc<Shared>,
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("status", &self.status())
            .field("priority", &self.priority())
            .finish()
    }
}

impl JobHandle {
    /// The engine-issued id (usable with [`Engine::wait`] for
    /// out-of-order claiming by id).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Finalise this job as deadline-expired if its deadline has passed
    /// while no worker started it (the eager-cancel pattern, for
    /// deadlines): without this, a queued job behind a long-running
    /// blocker would only be expired when a worker eventually popped it.
    fn expire_if_overdue(&self) {
        let overdue = self.state.deadline.is_some_and(|d| Instant::now() >= d);
        if overdue
            && self
                .state
                .phase
                .compare_exchange(PHASE_QUEUED, PHASE_FINISHED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.shared.post(self.id.0, &self.state, Err(EngineError::DeadlineExpired));
        }
    }

    /// Non-blocking result claim: `None` while the job is queued or
    /// running; `Some(result)` exactly once when it is done (a later call
    /// returns `Some(Err(UnknownJob))`, like a second `wait`).
    pub fn poll(&self) -> Option<Result<SolveReport, EngineError>> {
        self.expire_if_overdue();
        self.shared.claim_nonblocking(self.id.0, true)
    }

    /// Block until the job finishes and claim its result (exactly once).
    /// A job with a deadline is claimed no later than (shortly after) the
    /// deadline: a still-queued job is finalised as `DeadlineExpired`
    /// right when it passes, and a running colony stops at its next
    /// iteration boundary.
    pub fn wait(&self) -> Result<SolveReport, EngineError> {
        if let Some(deadline) = self.state.deadline {
            // Phase 1: wait until the job is done or the deadline
            // passes, under one continuous board-lock critical section —
            // a check/park gap here would let a post() slip through
            // unobserved and oversleep the whole timeout.
            let mut board = self.shared.board.lock().expect("board lock");
            while matches!(board.jobs.get(&self.id.0), Some(JobSlot::Pending)) {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let (b, res) =
                    self.shared.results_cv.wait_timeout(board, left).expect("results wait");
                board = b;
                if res.timed_out() {
                    break;
                }
            }
            drop(board);
            // Phase 2: expire a job no worker ever started; a running
            // colony ends at its next iteration-boundary check, which
            // the plain blocking claim below observes race-free.
            self.expire_if_overdue();
        }
        self.shared.claim_blocking(self.id.0, true)
    }

    /// The job's bounded progress stream (one [`IterationEvent`] per
    /// completed colony iteration). Consume via the blocking [`Iterator`]
    /// impl or [`ProgressStream::try_next`].
    pub fn progress(&self) -> ProgressStream {
        ProgressStream { shared: Arc::clone(&self.state.progress) }
    }

    /// Events dropped (oldest-first) from this job's progress buffer so
    /// far because the consumer fell behind its bound — the per-job view
    /// of the backpressure contract (see the module docs; the engine-wide
    /// total is `aco_engine_progress_dropped_total`). Zero means the
    /// stream delivered (or still holds) every event.
    pub fn progress_dropped(&self) -> u64 {
        self.state.progress.dropped()
    }

    /// Snapshot of the job's span timeline so far: queue wait, placement,
    /// per-iteration construction/local-search/pheromone spans, kernel
    /// totals. `None` when the engine runs with observability off.
    /// Callable at any point in the job's life; after `wait` returns, the
    /// timeline is complete.
    pub fn timeline(&self) -> Option<JobTimeline> {
        self.state.trace.as_ref().map(|t| t.snapshot())
    }

    /// Coarse lifecycle phase right now.
    pub fn status(&self) -> JobStatus {
        match self.state.phase.load(Ordering::Acquire) {
            PHASE_QUEUED => JobStatus::Queued,
            PHASE_RUNNING => JobStatus::Running,
            _ => {
                let board = self.shared.board.lock().expect("board lock");
                if board.jobs.contains_key(&self.id.0) {
                    JobStatus::Finished
                } else {
                    JobStatus::Claimed
                }
            }
        }
    }

    /// Current scheduling priority.
    pub fn priority(&self) -> Priority {
        Priority::from_u8(self.state.priority.load(Ordering::Acquire))
    }

    /// Re-prioritise the job. Takes effect immediately for queued jobs:
    /// the job's heap entry is restamped in place (and the heap
    /// reordered); a running or finished job just records the new value.
    /// The pop path additionally reconciles any stamp this restamp raced
    /// with, so a stale entry can never run ahead of its class.
    pub fn set_priority(&self, priority: Priority) {
        self.state.priority.store(priority.as_u8(), Ordering::Release);
        let heap = match self.state.queue {
            QueueSlot::Worker(i) => &self.shared.queues[i],
            QueueSlot::Device(d) => &self.shared.device_queues[d],
            QueueSlot::Unqueued => return, // rejected at submit; nothing to restamp
        };
        let mut q = heap.lock().expect("queue lock");
        if q.iter().any(|e| e.id == self.id.0) {
            let mut entries: Vec<QueueEntry> = std::mem::take(&mut *q).into_vec();
            for e in &mut entries {
                if e.id == self.id.0 {
                    e.prio = priority.as_u8();
                }
            }
            *q = BinaryHeap::from(entries);
        }
    }

    /// Request cancellation; never blocks. A job that has not started is
    /// finalised immediately (its `wait` returns
    /// [`EngineError::Cancelled`] right away); a running colony observes
    /// the token at its next iteration boundary and reports its partial
    /// best with a `Cancelled` outcome.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
        // Try to finalise a still-queued job eagerly. The CAS races the
        // worker's QUEUED→RUNNING transition: exactly one side wins, so
        // the result is still delivered exactly once.
        if self
            .state
            .phase
            .compare_exchange(PHASE_QUEUED, PHASE_FINISHED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.shared.post(self.id.0, &self.state, Err(EngineError::Cancelled));
        }
    }
}

// ---------------------------------------------------------------------------
// Engine

/// The concurrent batch-solve engine.
///
/// ```
/// use std::sync::Arc;
/// use aco_engine::{Backend, Engine, EngineConfig, SolveRequest};
/// use aco_core::AcoParams;
///
/// let engine = Engine::new(EngineConfig::with_workers(2));
/// let inst = Arc::new(aco_tsp::uniform_random("demo", 40, 600.0, 1));
/// let handles: Vec<_> = (0..4)
///     .map(|s| {
///         engine.submit(
///             SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10))
///                 .backend(Backend::Auto)
///                 .iterations(5)
///                 .seed(s),
///         )
///     })
///     .collect();
/// for h in handles {
///     let report = h.wait().expect("job succeeds");
///     assert!(report.best_tour.is_valid());
/// }
/// ```
pub struct Engine {
    pub(crate) shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Spin up the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let pool = Arc::new(DevicePool::with_health(
            config.devices.clone(),
            config.placement,
            config.health,
        ));
        let obs = Obs::new(config.observability, config.trace_capacity);
        let metrics = SchedMetrics::new(obs.metrics());
        let injector = config
            .fault_plan
            .clone()
            .map(FaultInjector::new)
            .unwrap_or_else(FaultInjector::disabled);
        let windows = config.windows.map(|wcfg| {
            let clock: Arc<dyn Clock> =
                config.clock.clone().unwrap_or_else(|| Arc::new(MonotonicClock::new()));
            let specs = if config.slos.is_empty() { default_slos() } else { config.slos.clone() };
            WindowState {
                clock,
                window: RollingWindow::new(wcfg),
                slos: Mutex::new(SloBoard::new(specs)),
            }
        });
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            device_queues: (0..pool.len()).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            pool,
            ready: Mutex::new(0),
            ready_cv: Condvar::new(),
            board: Mutex::new(Board::default()),
            results_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: ArtifactCache::with_capacity(config.cache_entries),
            obs,
            metrics,
            injector,
            started: Instant::now(),
            donated: Arc::new(AtomicUsize::new(0)),
            donate: config.donate_idle_threads,
            dynamics: config.dynamics,
            journal: config.journal.map(|mut cfg| {
                // Anchor the journal to the wall clock once, here at
                // construction — never per event in the hot path — so
                // exports from different runs can be time-aligned.
                if cfg.epoch_ms.is_none() {
                    cfg.epoch_ms = Some(
                        std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_millis() as u64)
                            .unwrap_or(0),
                    );
                }
                Arc::new(aco_obs::Journal::new(cfg))
            }),
            windows,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aco-engine-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn worker")
            })
            .collect();
        Engine { shared, handles, next_id: AtomicU64::new(0) }
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Decide where `req` queues — and, for explicitly-GPU jobs, *place*
    /// it on a pool device. Placement errors are typed and final: the
    /// job never queues, never runs, and never touches any cache.
    fn place(&self, req: &SolveRequest) -> Result<Option<Placement>, PlacementError> {
        if let Some(model) = req.backend.required_model() {
            let n = req.instance.n();
            let m = req.params.ants_for(n);
            return self.shared.pool.place(model, req.affinity, n, m, req.iterations).map(Some);
        }
        match (&req.backend, req.affinity) {
            // Auto jobs may still resolve onto a device; the pinned id
            // must at least exist (its model constrains resolution).
            (Backend::Auto, _) => self.shared.pool.check_affinity(req.affinity).map(|_| None),
            // A CPU backend can never honour a pin.
            (_, DeviceAffinity::Pinned(d)) => Err(PlacementError::NotADeviceJob { device: d }),
            _ => Ok(None),
        }
    }

    /// Queue a job; returns its [`JobHandle`] immediately. A job whose
    /// placement is rejected (see [`SolveRequest::affinity`]) is
    /// finalised on the spot: its handle's `wait`/`poll` return
    /// [`EngineError::Placement`] without the job ever queueing.
    pub fn submit(&self, req: SolveRequest) -> JobHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.jobs_submitted.inc();
        let place_t0 = Instant::now();
        let placement = self.place(&req);
        let placement_ms = place_t0.elapsed().as_secs_f64() * 1e3;
        self.shared.metrics.placement_ms.observe(placement_ms);
        // Submit-time graceful degradation: a GPU job refused *only*
        // because its targets are quarantined queues as a CPU job when
        // its retry policy allows the CPU fallback.
        let degraded = matches!(
            &placement,
            Err(PlacementError::DeviceQuarantined { .. }
                | PlacementError::AllDevicesQuarantined { .. })
        ) && req.backend.required_model().is_some()
            && req.retry.failover == Failover::CpuFallback;
        let placement = if degraded {
            self.shared.metrics.cpu_fallbacks.inc();
            Ok(None)
        } else {
            placement
        };
        // Quarantine mask as of this submission — captured after this
        // job's placement but before its supervision preview, so run-time
        // device choices replay exactly what submit saw.
        let qmask =
            if self.shared.injector.is_armed() { self.shared.pool.quarantine_mask() } else { 0 };
        // Submit-time supervision preview: charge the health ledger with
        // this job's predicted attempt outcomes (pure in (job, device,
        // attempt)), so health advances in submission order, never on
        // execution timing.
        if self.shared.injector.is_armed() && !degraded {
            if let (Ok(Some(p)), Some(model)) = (&placement, req.backend.required_model()) {
                preview_attempts(
                    &self.shared.pool,
                    &self.shared.injector,
                    id,
                    &req,
                    p.device,
                    model,
                    qmask,
                );
            }
        }
        let queue = match &placement {
            Ok(Some(p)) => QueueSlot::Device(p.device.0 as usize),
            Ok(None) => QueueSlot::Worker(id as usize % self.shared.queues.len()),
            Err(_) => QueueSlot::Unqueued,
        };
        let trace = self.shared.obs.job_trace(id);
        if let Some(trace) = &trace {
            trace.record_placement_ms(placement_ms);
        }
        if let Some(journal) = &self.shared.journal {
            let ts = self.shared.journal_ts_ms();
            journal.record_submit(
                ts,
                id,
                &req.backend.label(),
                req.instance.name(),
                req.instance.n(),
                req.iterations,
                req.effective_seed(),
            );
            if let Ok(Some(p)) = &placement {
                let name = self
                    .shared
                    .pool
                    .profile(p.device)
                    .map(|prof| prof.name.clone())
                    .unwrap_or_default();
                journal.record_placement(ts, id, p.device.0, &name);
            }
        }
        let submitted = Instant::now();
        let state = Arc::new(JobState {
            cancel: CancelToken::new(),
            priority: AtomicU8::new(req.priority.as_u8()),
            phase: AtomicU8::new(PHASE_QUEUED),
            progress: Arc::new(ProgressShared::new(
                req.progress_events,
                self.shared.metrics.progress_dropped.clone(),
            )),
            deadline: req.timeout.map(|t| submitted + t),
            queue,
            submitted,
            trace,
            first_event: AtomicBool::new(false),
            device: AtomicU32::new(match &placement {
                Ok(Some(p)) => p.device.0,
                _ => NO_DEVICE,
            }),
            qmask,
            degraded,
        });
        // Create the result slot before the job becomes runnable, so a
        // fast worker can never post into a missing slot.
        self.shared.board.lock().expect("board lock").jobs.insert(id, JobSlot::Pending);
        match placement {
            Err(e) => {
                self.shared.post(id, &state, Err(EngineError::Placement(e)));
                return JobHandle { id: JobId(id), shared: Arc::clone(&self.shared), state };
            }
            Ok(_) => {
                self.shared.metrics.queue_depth.inc();
                let prio = req.priority.as_u8();
                let entry = QueueEntry { prio, id, state: Arc::clone(&state), req };
                match queue {
                    QueueSlot::Worker(w) => {
                        self.shared.queues[w].lock().expect("queue lock").push(entry);
                    }
                    QueueSlot::Device(d) => {
                        self.shared.pool.note_queued(DeviceId(d as u32));
                        self.shared.device_queues[d].lock().expect("device queue lock").push(entry);
                    }
                    QueueSlot::Unqueued => unreachable!("Ok placement always queues"),
                }
            }
        }
        let mut ready = self.shared.ready.lock().expect("ready lock");
        *ready += 1;
        drop(ready);
        self.shared.ready_cv.notify_one();
        JobHandle { id: JobId(id), shared: Arc::clone(&self.shared), state }
    }

    /// Block until `job` finishes and claim its result by id. Each result
    /// can be claimed once (by this or [`JobHandle::wait`]/`poll`); a
    /// second claim — or a wait on an id this engine never issued —
    /// returns [`EngineError::UnknownJob`] instead of blocking. Claiming
    /// removes the job's slot entirely, so the engine holds no per-job
    /// state after delivery.
    pub fn wait(&self, job: JobId) -> Result<SolveReport, EngineError> {
        self.shared.claim_blocking(job.0, job.0 < self.next_id.load(Ordering::Relaxed))
    }

    /// Number of jobs submitted but not yet claimed (the engine's entire
    /// per-job memory footprint — pinned by the board-growth test).
    pub fn outstanding(&self) -> usize {
        self.shared.board.lock().expect("board lock").jobs.len()
    }

    /// Submit a whole batch and collect results in submission order.
    pub fn run_batch(
        &self,
        reqs: impl IntoIterator<Item = SolveRequest>,
    ) -> Vec<Result<SolveReport, EngineError>> {
        let handles: Vec<JobHandle> = reqs.into_iter().map(|r| self.submit(r)).collect();
        handles.into_iter().map(|h| h.wait()).collect()
    }

    /// Snapshot of the artifact/decision cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The simulated device pool this engine schedules GPU jobs onto.
    pub fn pool(&self) -> &DevicePool {
        &self.shared.pool
    }

    /// Point-in-time telemetry of every pool device (queue depth,
    /// occupancy, completions, busy time, assigned backlog).
    pub fn device_stats(&self) -> Vec<DeviceSnapshot> {
        self.shared.pool.snapshot()
    }

    /// Whether this engine records metrics, traces and kernel profiles.
    pub fn observability_enabled(&self) -> bool {
        self.shared.obs.is_enabled()
    }

    /// Point-in-time snapshot of every engine metric — scheduler
    /// counters/gauges/latency histograms, per-device and cache gauges
    /// (bridged from their native counters here, at snapshot time, so
    /// neither subsystem depends on the metrics registry), and per-family
    /// kernel profiles. Export via [`MetricsSnapshot::to_prometheus`] or
    /// [`MetricsSnapshot::to_json`]. Empty when observability is off.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.bridged_snapshot()
    }

    /// The most recent completed-job timelines (bounded ring of
    /// [`EngineConfig::trace_capacity`] entries, oldest evicted first).
    /// Jobs that never ran — eagerly cancelled or expired while queued —
    /// are not recorded. Empty when observability is off.
    pub fn recent_timelines(&self) -> Vec<Arc<JobTimeline>> {
        self.shared.obs.sink().recent()
    }

    /// Timelines evicted from the [`Engine::recent_timelines`] ring so
    /// far (how much history the bound has discarded).
    pub fn timelines_evicted(&self) -> u64 {
        self.shared.obs.sink().evicted()
    }

    /// The engine's event journal, when [`EngineConfig::journal`]
    /// configured one.
    pub fn journal(&self) -> Option<&aco_obs::Journal> {
        self.shared.journal.as_deref()
    }

    /// The retained journal as one JSONL document (oldest line first),
    /// or `None` when no journal is configured. Feed one job's worth to
    /// [`aco_obs::replay_timeline`] to reconstruct its timeline offline.
    pub fn journal_export(&self) -> Option<String> {
        self.shared.journal.as_ref().map(|j| j.export())
    }

    /// A textual live view of the engine: one row per pool device
    /// (queue depth, running jobs, utilisation, health) and one row per
    /// recent job with a best-so-far convergence sparkline and the final
    /// dynamics numbers. Purely observational — rendering reads the same
    /// snapshots the metrics export does.
    pub fn render_dashboard(&self) -> String {
        self.shared.render_dashboard()
    }

    /// Record one window frame (the bridged metrics snapshot at the
    /// configured clock's current time) and evaluate every SLO against
    /// it, returning the board's worst [`AlertState`]. `None` when
    /// [`EngineConfig::windows`] is off. The
    /// [`Engine::serve_observability`] sampler calls this on a cadence;
    /// tests drive it manually under an [`aco_obs::ManualClock`].
    pub fn tick_windows(&self) -> Option<AlertState> {
        self.shared.tick_windows()
    }

    /// The rolling serving summary for the last `window_ms` milliseconds
    /// (throughput, failure rate, latency quantiles, per-device
    /// utilisation/fault rates). `None` when the window layer is off or
    /// fewer than two frames have been recorded.
    pub fn window_stats(&self, window_ms: u64) -> Option<WindowStats> {
        self.shared.window_stats(window_ms)
    }

    /// Current status of every configured SLO (state, burn rates, cause,
    /// transition timeline). Empty when the window layer is off.
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        self.shared.slo_statuses()
    }

    /// The aggregated health document served at `/healthz` (engine
    /// uptime/queue state, per-device health, worst alert state).
    pub fn healthz_json(&self) -> String {
        self.shared.healthz_json()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Set the flag and notify *while holding the ready mutex*: a
        // worker between its shutdown check and `wait()` still holds the
        // lock, so we cannot fire the notification into that window — it
        // either sees the flag on its next loop or is already waiting and
        // gets woken.
        {
            let _ready = self.shared.ready.lock().expect("ready lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.ready_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Backend;
    use aco_core::{AcoParams, TourPolicy};
    use std::sync::Arc;

    fn small_batch(inst: &Arc<aco_tsp::TspInstance>) -> Vec<SolveRequest> {
        let params = AcoParams::default().nn(8).ants(10);
        vec![
            SolveRequest::new(Arc::clone(inst), params.clone())
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(4)
                .seed(1),
            SolveRequest::new(Arc::clone(inst), params.clone())
                .backend(Backend::CpuParallel {
                    policy: TourPolicy::NearestNeighborList,
                    threads: 3,
                })
                .iterations(4)
                .seed(2),
            SolveRequest::new(Arc::clone(inst), params)
                .backend(Backend::Auto)
                .iterations(3)
                .seed(3),
        ]
    }

    #[test]
    fn engine_results_do_not_depend_on_worker_count() {
        let inst = Arc::new(aco_tsp::uniform_random("sched", 30, 500.0, 11));
        let serial = Engine::new(EngineConfig::with_workers(1)).run_batch(small_batch(&inst));
        let parallel = Engine::new(EngineConfig::with_workers(4)).run_batch(small_batch(&inst));
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let inst = Arc::new(aco_tsp::uniform_random("sched2", 25, 400.0, 5));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let reports = engine.run_batch(small_batch(&inst));
        assert!(reports.iter().all(|r| r.is_ok()));
        let stats = engine.cache_stats();
        assert_eq!(stats.artifact_misses, 1, "one build for the shared instance");
        assert!(stats.artifact_hits >= 2, "subsequent jobs reuse it: {stats:?}");
    }

    #[test]
    fn out_of_order_wait_works() {
        let inst = Arc::new(aco_tsp::uniform_random("sched3", 20, 300.0, 9));
        let engine = Engine::new(EngineConfig::with_workers(2));
        let ids: Vec<JobId> =
            small_batch(&inst).into_iter().map(|r| engine.submit(r).id()).collect();
        for id in ids.iter().rev() {
            assert!(engine.wait(*id).is_ok());
        }
    }

    #[test]
    fn waiting_twice_or_on_a_foreign_id_fails_fast() {
        use crate::solver::EngineError;
        let inst = Arc::new(aco_tsp::uniform_random("sched5", 18, 300.0, 6));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let h = engine.submit(
            SolveRequest::new(inst, AcoParams::default().nn(5).ants(6))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(1),
        );
        assert!(h.wait().is_ok());
        assert_eq!(h.wait(), Err(EngineError::UnknownJob), "double claim");
        assert_eq!(h.poll(), Some(Err(EngineError::UnknownJob)), "claimed poll");
        assert_eq!(h.status(), JobStatus::Claimed);
        let never_issued = JobId(999);
        assert_eq!(engine.wait(never_issued), Err(EngineError::UnknownJob), "foreign id");
    }

    #[test]
    fn poll_claims_exactly_once_after_completion() {
        let inst = Arc::new(aco_tsp::uniform_random("sched7", 18, 300.0, 3));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let h = engine.submit(
            SolveRequest::new(inst, AcoParams::default().nn(5).ants(6))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(4),
        );
        // Spin on poll until the job lands (bounded by the test timeout).
        let report = loop {
            match h.poll() {
                Some(r) => break r,
                None => std::thread::yield_now(),
            }
        };
        assert!(report.is_ok());
        assert_eq!(h.poll(), Some(Err(EngineError::UnknownJob)));
    }

    #[test]
    fn result_board_does_not_grow_over_engine_lifetime() {
        let inst = Arc::new(aco_tsp::uniform_random("sched6", 20, 300.0, 4));
        let engine = Engine::new(EngineConfig::with_workers(2));
        // Several full submit/claim generations: after each, the board
        // must be empty again (no tombstones, no drained reports).
        for gen in 0..3 {
            let handles: Vec<JobHandle> = (0..6)
                .map(|j| {
                    engine.submit(
                        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(6).ants(5))
                            .backend(Backend::CpuSequential {
                                policy: TourPolicy::NearestNeighborList,
                            })
                            .iterations(2)
                            .seed(gen * 100 + j),
                    )
                })
                .collect();
            for h in handles {
                assert!(h.wait().is_ok());
            }
            assert_eq!(engine.outstanding(), 0, "board must be empty after generation {gen}");
        }
    }

    #[test]
    fn cache_is_lru_bounded() {
        let inst_a = Arc::new(aco_tsp::uniform_random("lru-a", 16, 300.0, 1));
        let inst_b = Arc::new(aco_tsp::uniform_random("lru-b", 16, 300.0, 2));
        let inst_c = Arc::new(aco_tsp::uniform_random("lru-c", 16, 300.0, 3));
        let engine = Engine::new(EngineConfig::with_workers(1).cache_entries(2));
        let req = |inst: &Arc<aco_tsp::TspInstance>, seed| {
            SolveRequest::new(Arc::clone(inst), AcoParams::default().nn(5).ants(4))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(1)
                .seed(seed)
        };
        // Three distinct instances through a 2-entry cache: at least one
        // eviction must fire, and re-touching the evicted instance
        // rebuilds (a miss, not a hit).
        for (i, inst) in [&inst_a, &inst_b, &inst_c].into_iter().enumerate() {
            engine.submit(req(inst, i as u64)).wait().unwrap();
        }
        let s1 = engine.cache_stats();
        assert!(s1.artifact_evictions >= 1, "third instance must evict: {s1:?}");
        assert_eq!(s1.artifact_misses, 3);
        engine.submit(req(&inst_a, 9)).wait().unwrap();
        let s2 = engine.cache_stats();
        assert_eq!(s2.artifact_misses, 4, "evicted artifacts rebuild on reuse");
    }

    #[test]
    fn zero_iterations_is_reported_as_no_solution() {
        let inst = Arc::new(aco_tsp::uniform_random("sched4", 15, 300.0, 2));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let req = SolveRequest::new(inst, AcoParams::default().nn(5))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(0);
        let h = engine.submit(req);
        assert_eq!(h.wait(), Err(EngineError::NoSolution));
    }
}
