//! The batch engine: a priority-aware, device-aware work-stealing worker
//! pool over solve jobs with full lifecycle control.
//!
//! CPU jobs are distributed round-robin over per-worker **priority
//! queues** at submission; GPU jobs are *placed* onto a simulated device
//! of the engine's [`DevicePool`] at submit time (affinity-aware,
//! least-loaded by predicted completion — see [`aco_devices`]) and queue
//! on that device's own priority run queue. A worker pops the
//! highest-priority (then oldest) job from its own queue, then services
//! the device queues (admission gated by each device's resident-job slot
//! budget), then steals from its peers — so a long simulation on one
//! worker never starves the rest of the batch, and GPU work only ever
//! executes on the device it was placed on.
//! [`Engine::submit`] returns a [`JobHandle`] carrying the job's whole
//! lifecycle surface: non-blocking [`JobHandle::poll`], blocking
//! [`JobHandle::wait`], a bounded [`JobHandle::progress`] event stream,
//! [`JobHandle::cancel`], and [`JobHandle::set_priority`].
//!
//! **Cancellation.** A cancelled job that has not started is finalised
//! immediately (its queue entry becomes a no-op when popped); a running
//! job observes the token at its colony's next iteration boundary and
//! reports its partial best with a `Cancelled` outcome. Either way the
//! result slot is delivered exactly once and the artifact cache is left
//! untouched — cache cells are only ever filled with completed values.
//!
//! **Re-prioritisation.** `set_priority` updates the job's priority
//! atomically and restamps its entry in the owning heap (an O(queue)
//! rebuild — re-prioritisation is rare, pops are not). The pop path
//! additionally reconciles any stale stamp it sees, but that is only a
//! backstop for the store/restamp race: lazy reconciliation alone could
//! never raise a buried low-stamped entry to the top.
//!
//! **Backpressure.** Each job's progress buffer is bounded
//! (`SolveRequest::progress_events`): the solving worker never blocks on
//! a slow consumer — once the buffer is full, the *oldest* event is
//! dropped and counted, and the newest kept, so a late reader always
//! sees the most recent convergence state. The running drop count is
//! observable per job via [`JobHandle::progress_dropped`] (equivalently
//! [`ProgressStream::dropped`]) and engine-wide via the
//! `aco_engine_progress_dropped_total` counter. Consumers that need the
//! *complete* sequence must size the buffer to the iteration count (or
//! drain concurrently); a dropped event is gone — the stream trades
//! completeness for a never-blocking solver.
//!
//! **Observability.** With [`EngineConfig::observability`] on (the
//! default), the engine owns an [`aco_obs::Obs`] hub: scheduler counters
//! and latency histograms (queue depth, steal counts, admission-wait
//! bouts, submit→start and submit→first-event), a per-job
//! [`aco_obs::JobTrace`] threaded through the solve (retrievable live or
//! finished via [`JobHandle::timeline`], retained in a bounded sink via
//! [`Engine::recent_timelines`]), and the SIMT kernel-profiling hook
//! installed around every job so GPU kernel families report invocation
//! counts and modeled ms. Export everything with [`Engine::metrics`].
//! Instrumentation is write-only: it never feeds back into scheduling or
//! solving, so obs-on/off runs are bit-identical (see below); disabled,
//! every handle is an unarmed branch and no trace is allocated.
//!
//! **Determinism.** Scheduling affects only *where* and *when* a job
//! runs, never its inputs: every job derives its RNG streams from its own
//! request seed, the artifact cache stores values that are pure functions
//! of the instance, `auto` decisions are deterministic in the instance,
//! parameters and allowed candidate set, and device placement is decided
//! in the submission sequence (explicit GPU jobs) or as a pure function
//! of the job id (auto-resolved GPU jobs) — never from completion timing.
//! Consequently an uncancelled batch produces bit-identical
//! [`SolveReport`]s — including device assignments — and bit-identical
//! progress event sequences for any worker count *and either
//! observability setting*; pinned by the
//! `engine_results_do_not_depend_on_worker_count`, `tests/lifecycle.rs`,
//! `tests/devices.rs` and `tests/observability.rs` suites.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use aco_core::lifecycle::{CancelToken, IterationEvent, SolveCtx};
use aco_devices::{
    DeviceAffinity, DeviceId, DevicePool, DeviceProfile, DeviceSnapshot, Placement, PlacementError,
    PlacementStrategy,
};
use aco_obs::{
    Counter, Gauge, Histogram, JobTimeline, JobTrace, KernelSink, MetricsSnapshot, Obs,
    LATENCY_BUCKETS_MS,
};

use crate::auto;
use crate::cache::{ArtifactCache, CacheStats};
use crate::solver::{
    build_solver, Backend, EngineError, GpuBinding, JobOutcome, Priority, SolveReport, SolveRequest,
};

/// The pool an [`EngineConfig`] builds by default: one unmodified device
/// of each Table-I model, which reproduces the pre-pool engine exactly
/// (every `Backend::Gpu { device, .. }` job lands on the single device of
/// that model, with the preset spec).
pub fn default_devices() -> Vec<DeviceProfile> {
    vec![DeviceProfile::tesla_c1060("gpu0"), DeviceProfile::tesla_m2050("gpu1")]
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Results never depend on this; throughput does.
    pub workers: usize,
    /// LRU entry bound for each artifact-cache map (see
    /// [`crate::cache::ArtifactCache`]).
    pub cache_entries: usize,
    /// The simulated devices this engine schedules GPU jobs onto (see
    /// [`default_devices`]). An empty vector makes a CPU-only engine:
    /// GPU submissions fail with a typed [`EngineError::Placement`] and
    /// `auto` restricts itself to CPU candidates.
    pub devices: Vec<DeviceProfile>,
    /// Placement policy for jobs without a pinned device.
    pub placement: PlacementStrategy,
    /// Record metrics, per-job timelines and kernel profiles (default
    /// `true`). Never affects results — only whether the engine can
    /// answer "where did the milliseconds go" afterwards. Disabled, all
    /// instrumentation degrades to unarmed branches ([`aco_obs`]).
    pub observability: bool,
    /// Completed [`JobTimeline`]s retained for [`Engine::recent_timelines`]
    /// (oldest evicted first).
    pub trace_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
        EngineConfig {
            workers,
            cache_entries: crate::cache::DEFAULT_CACHE_ENTRIES,
            devices: default_devices(),
            placement: PlacementStrategy::default(),
            observability: true,
            trace_capacity: aco_obs::DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers: workers.max(1), ..Default::default() }
    }

    /// Builder: LRU entry bound for the artifact/decision caches.
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }

    /// Builder: the simulated device pool.
    pub fn devices(mut self, devices: Vec<DeviceProfile>) -> Self {
        self.devices = devices;
        self
    }

    /// Builder: placement strategy.
    pub fn placement(mut self, strategy: PlacementStrategy) -> Self {
        self.placement = strategy;
        self
    }

    /// Builder: enable or disable observability (see
    /// [`EngineConfig::observability`]).
    pub fn observe(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Builder: retained completed-timeline count (clamped to ≥ 1).
    pub fn trace_capacity(mut self, timelines: usize) -> Self {
        self.trace_capacity = timelines.max(1);
        self
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// The raw engine-issued id (what a [`aco_obs::JobTimeline`] records
    /// as its `job` field).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Coarse lifecycle phase of a job (see [`JobHandle::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Submitted; no worker has started it.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; its result waits to be claimed by `poll`/`wait`.
    Finished,
    /// Finished and its result already claimed.
    Claimed,
}

const PHASE_QUEUED: u8 = 0;
const PHASE_RUNNING: u8 = 1;
const PHASE_FINISHED: u8 = 2;

// ---------------------------------------------------------------------------
// Progress streams

struct ProgressInner {
    events: VecDeque<IterationEvent>,
    dropped: u64,
    closed: bool,
}

/// The bounded per-job event buffer shared by the solving worker (push
/// side, via the job's `SolveCtx` observer) and any [`ProgressStream`]s.
struct ProgressShared {
    inner: Mutex<ProgressInner>,
    cv: Condvar,
    capacity: usize,
    /// Engine-wide `aco_engine_progress_dropped_total` bridge (no-op
    /// when observability is off).
    dropped_metric: Counter,
}

impl ProgressShared {
    fn new(capacity: usize, dropped_metric: Counter) -> Self {
        ProgressShared {
            inner: Mutex::new(ProgressInner { events: VecDeque::new(), dropped: 0, closed: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            dropped_metric,
        }
    }

    /// Push one event, dropping (and counting) the oldest past the bound
    /// so the solver never blocks on a slow consumer.
    fn push(&self, ev: IterationEvent) {
        let mut inner = self.inner.lock().expect("progress lock");
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
            self.dropped_metric.inc();
        }
        inner.events.push_back(ev);
        drop(inner);
        self.cv.notify_all();
    }

    /// Events dropped so far (see the module's backpressure contract).
    fn dropped(&self) -> u64 {
        self.inner.lock().expect("progress lock").dropped
    }

    /// Mark the stream finished (no further events will arrive).
    fn close(&self) {
        self.inner.lock().expect("progress lock").closed = true;
        self.cv.notify_all();
    }
}

/// A consuming view of a job's progress events, obtained from
/// [`JobHandle::progress`]. Iteration blocks until the next event or the
/// end of the job; [`ProgressStream::try_next`] never blocks. Events are
/// *consumed*: two streams over the same job split them between
/// themselves, so use one consumer per job.
///
/// For an uncancelled job whose event count stays within the request's
/// `progress_events` bound, the consumed sequence is bit-identical at any
/// engine worker count.
pub struct ProgressStream {
    shared: Arc<ProgressShared>,
}

impl ProgressStream {
    /// Next event if one is buffered (never blocks). `None` means "none
    /// right now" — the job may still be running; use the blocking
    /// iterator to distinguish end-of-stream.
    pub fn try_next(&mut self) -> Option<IterationEvent> {
        self.shared.inner.lock().expect("progress lock").events.pop_front()
    }

    /// Events dropped so far because the buffer was full (the oldest go
    /// first — see the module docs on backpressure).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped()
    }
}

impl Iterator for ProgressStream {
    type Item = IterationEvent;

    /// Block until the next event, or `None` once the job has finished
    /// and every buffered event was consumed.
    fn next(&mut self) -> Option<IterationEvent> {
        let mut inner = self.shared.inner.lock().expect("progress lock");
        loop {
            if let Some(ev) = inner.events.pop_front() {
                return Some(ev);
            }
            if inner.closed {
                return None;
            }
            inner = self.shared.cv.wait(inner).expect("progress wait");
        }
    }
}

// ---------------------------------------------------------------------------
// Job state and queues

/// Which run queue a job's entry lives in (entries never migrate;
/// stealing pops directly from the owner's heap), so `set_priority`
/// knows which heap to restamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueSlot {
    /// Never enqueued (placement was rejected at submit).
    Unqueued,
    /// A per-worker CPU queue.
    Worker(usize),
    /// A per-device run queue.
    Device(usize),
}

/// `JobState::device` sentinel: no device bound (yet).
const NO_DEVICE: u32 = u32::MAX;

/// Shared per-job lifecycle state (held by the board, the queue entry and
/// every [`JobHandle`] clone).
struct JobState {
    cancel: CancelToken,
    priority: AtomicU8,
    phase: AtomicU8,
    progress: Arc<ProgressShared>,
    deadline: Option<Instant>,
    queue: QueueSlot,
    /// When `submit` accepted the job (the zero point of its queue-wait
    /// and first-event latencies).
    submitted: Instant,
    /// The job's span recorder (`None` with observability off).
    trace: Option<Arc<JobTrace>>,
    /// Has the first progress event been stamped with its latency?
    first_event: AtomicBool,
    /// The pool device the job is bound to (`NO_DEVICE` = none). Set at
    /// submit for explicitly-GPU jobs; set during `run_job` (before the
    /// solver is built, so before any progress event) when an auto job
    /// resolves to a GPU backend. Read by the progress observer to stamp
    /// events and by the worker loop to release the device afterwards.
    device: AtomicU32,
}

impl JobState {
    fn device_id(&self) -> Option<DeviceId> {
        match self.device.load(Ordering::Acquire) {
            NO_DEVICE => None,
            d => Some(DeviceId(d)),
        }
    }

    fn set_device(&self, d: DeviceId) {
        self.device.store(d.0, Ordering::Release);
    }
}

/// One queued job. Ordered by `(priority, submission order)`; the `prio`
/// stamp is a snapshot reconciled lazily against `state.priority` at pop.
struct QueueEntry {
    prio: u8,
    id: u64,
    state: Arc<JobState>,
    req: SolveRequest,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.id == other.id
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier submission.
        self.prio.cmp(&other.prio).then_with(|| other.id.cmp(&self.id))
    }
}

/// Lifecycle of one submitted job's result slot.
enum JobSlot {
    /// Submitted; no result yet.
    Pending,
    /// Finished; result waiting to be claimed.
    Done(Result<SolveReport, EngineError>),
}

/// In-flight result slots. A slot is created at submission and **removed
/// at claim**, so the board's size is bounded by the number of
/// outstanding jobs — no claimed-id tombstones and no drained-report
/// accumulation over the engine's lifetime. A claim on an issued id whose
/// slot is gone means "already claimed" and fails fast.
#[derive(Default)]
struct Board {
    jobs: HashMap<u64, JobSlot>,
}

struct Shared {
    queues: Vec<Mutex<BinaryHeap<QueueEntry>>>,
    /// One run queue per pool device; GPU jobs wait here for their
    /// placed device's slot budget.
    device_queues: Vec<Mutex<BinaryHeap<QueueEntry>>>,
    pool: Arc<DevicePool>,
    /// Count of queued-but-unclaimed jobs; the condvar predicate.
    ready: Mutex<usize>,
    ready_cv: Condvar,
    board: Mutex<Board>,
    results_cv: Condvar,
    shutdown: AtomicBool,
    cache: ArtifactCache,
    /// The engine's observability hub (metrics registry, timeline sink,
    /// kernel profiler). Always present; disabled it records nothing.
    obs: Obs,
    /// Pre-registered scheduler metric handles (all no-ops when
    /// observability is off, so the hot path pays one branch each).
    metrics: SchedMetrics,
    /// Engine construction time (denominator of device utilization).
    started: Instant,
}

/// The scheduler's own metric handles, registered once at engine
/// construction (names are the export surface — see `Engine::metrics`).
struct SchedMetrics {
    jobs_submitted: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    /// Pops served from a *peer's* queue (work stealing).
    steals: Counter,
    /// Back-off bouts workers spent with every runnable job gated on a
    /// saturated device (scheduler-side admission waiting; the pool
    /// counts per-device rejections separately).
    admission_wait_bouts: Counter,
    progress_dropped: Counter,
    /// Entries resident in run queues (decremented when a worker pops
    /// the entry, so eagerly-finalised jobs leave the gauge only when
    /// their dead entry is reaped).
    queue_depth: Gauge,
    jobs_running: Gauge,
    queue_wait_ms: Histogram,
    first_event_ms: Histogram,
    placement_ms: Histogram,
}

impl SchedMetrics {
    fn new(reg: &aco_obs::MetricsRegistry) -> Self {
        SchedMetrics {
            jobs_submitted: reg.counter("aco_engine_jobs_submitted_total"),
            jobs_completed: reg.counter("aco_engine_jobs_completed_total"),
            jobs_failed: reg.counter("aco_engine_jobs_failed_total"),
            steals: reg.counter("aco_engine_steals_total"),
            admission_wait_bouts: reg.counter("aco_engine_admission_wait_bouts_total"),
            progress_dropped: reg.counter("aco_engine_progress_dropped_total"),
            queue_depth: reg.gauge("aco_engine_queue_depth"),
            jobs_running: reg.gauge("aco_engine_jobs_running"),
            queue_wait_ms: reg.histogram("aco_engine_queue_wait_ms", &LATENCY_BUCKETS_MS),
            first_event_ms: reg.histogram("aco_engine_first_event_ms", &LATENCY_BUCKETS_MS),
            placement_ms: reg.histogram("aco_engine_placement_ms", &LATENCY_BUCKETS_MS),
        }
    }
}

/// Pop the best entry of a locked heap, reconciling stale priority
/// stamps: an entry whose stamp disagrees with the job's current
/// priority is re-pushed under the current one and the pop retried. This
/// backstops the `set_priority` heap restamp against the race where the
/// atomic is updated while a pop is in flight.
fn pop_reconciled(q: &mut BinaryHeap<QueueEntry>) -> Option<QueueEntry> {
    loop {
        let mut e = q.pop()?;
        let current = e.state.priority.load(Ordering::Acquire);
        if e.prio == current {
            return Some(e);
        }
        e.prio = current;
        q.push(e);
    }
}

impl Shared {
    /// Pop the best runnable entry of worker queue `qi`.
    fn pop_queue(&self, qi: usize) -> Option<QueueEntry> {
        pop_reconciled(&mut self.queues[qi].lock().expect("queue lock"))
    }

    /// Pop the best runnable entry of device queue `d`, admission-gated
    /// by the device's resident-job slot budget. The admission happens
    /// under the queue lock, so it always corresponds to the entry
    /// popped here (released by the worker loop when the job finishes,
    /// or immediately if the entry turns out to be finalised already).
    /// A queue with entries but no free slot sets `saturated` so the
    /// scan loop can tell "wait for a slot" from a transient pop race.
    fn pop_device_queue(&self, d: usize, saturated: &mut bool) -> Option<QueueEntry> {
        let mut q = self.device_queues[d].lock().expect("device queue lock");
        if q.is_empty() {
            return None;
        }
        if !self.pool.try_admit(DeviceId(d as u32)) {
            *saturated = true;
            return None;
        }
        let entry = pop_reconciled(&mut q).expect("non-empty heap under lock");
        Some(entry)
    }

    /// Claim a job: block until one is queued (or shutdown), then scan —
    /// own queue first, then the device queues (offset by the worker
    /// index so workers fan out over devices), then peers (stealing
    /// takes the peer's best entry, so high-priority work migrates
    /// first). GPU entries are only taken when their device has a free
    /// slot; when every remaining job sits on a saturated device the
    /// worker waits for a slot to free.
    fn next_job(&self, worker: usize) -> Option<QueueEntry> {
        {
            let mut ready = self.ready.lock().expect("ready lock");
            loop {
                if *ready > 0 {
                    *ready -= 1; // reserve one job; a matching pop must succeed below
                    break;
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                ready = self.ready_cv.wait(ready).expect("ready wait");
            }
        }
        let k = self.queues.len();
        let dcount = self.device_queues.len();
        loop {
            if let Some(job) = self.pop_queue(worker) {
                return Some(job);
            }
            let mut saturated = false;
            for i in 0..dcount {
                if let Some(job) = self.pop_device_queue((worker + i) % dcount, &mut saturated) {
                    return Some(job);
                }
            }
            for peer in 1..k {
                if let Some(job) = self.pop_queue((worker + peer) % k) {
                    self.metrics.steals.inc();
                    return Some(job);
                }
            }
            if saturated {
                // The only queued jobs sit on devices whose slots are all
                // busy; their runners will release them in milliseconds,
                // not nanoseconds — sleep instead of burning the core the
                // runner needs.
                self.metrics.admission_wait_bouts.inc();
                std::thread::sleep(std::time::Duration::from_micros(100));
            } else {
                // Another reserving worker holds "our" job only
                // transiently (between its reservation and pop); re-scan.
                std::thread::yield_now();
            }
        }
    }

    /// Finalise a job: close its progress stream, mark it finished, and
    /// fill its result slot (a no-op if the slot was already claimed).
    fn post(&self, id: u64, state: &JobState, result: Result<SolveReport, EngineError>) {
        state.progress.close();
        state.phase.store(PHASE_FINISHED, Ordering::Release);
        let mut board = self.board.lock().expect("board lock");
        if let Some(slot) = board.jobs.get_mut(&id) {
            *slot = JobSlot::Done(result);
        }
        drop(board);
        self.results_cv.notify_all();
    }

    /// Blocking claim of `id`'s result (exactly once).
    fn claim_blocking(&self, id: u64, issued: bool) -> Result<SolveReport, EngineError> {
        if !issued {
            return Err(EngineError::UnknownJob);
        }
        let mut board = self.board.lock().expect("board lock");
        loop {
            match board.jobs.get(&id) {
                // Issued id without a slot: already claimed.
                None => return Err(EngineError::UnknownJob),
                Some(JobSlot::Done(_)) => {
                    let Some(JobSlot::Done(r)) = board.jobs.remove(&id) else {
                        unreachable!("matched Done above")
                    };
                    return r;
                }
                Some(JobSlot::Pending) => {
                    board = self.results_cv.wait(board).expect("results wait");
                }
            }
        }
    }

    /// Non-blocking claim: `None` while the job is still in flight.
    fn claim_nonblocking(&self, id: u64, issued: bool) -> Option<Result<SolveReport, EngineError>> {
        if !issued {
            return Some(Err(EngineError::UnknownJob));
        }
        let mut board = self.board.lock().expect("board lock");
        match board.jobs.get(&id) {
            None => Some(Err(EngineError::UnknownJob)),
            Some(JobSlot::Done(_)) => {
                let Some(JobSlot::Done(r)) = board.jobs.remove(&id) else {
                    unreachable!("matched Done above")
                };
                Some(r)
            }
            Some(JobSlot::Pending) => None,
        }
    }
}

/// The [`SolveCtx`] a job runs under: its cancel token, its deadline, and
/// an observer feeding the bounded progress buffer. The observer stamps
/// each event with the device the job is bound to (if any) — bound
/// before the solver is built, so the stamp is identical on every event
/// and deterministic across worker counts. The observer also stamps the
/// submit→first-event latency (once, on the first event) into the
/// scheduler histogram and the job's trace — pure recording, so it
/// cannot perturb the event sequence.
fn job_ctx(shared: &Shared, state: &Arc<JobState>) -> SolveCtx {
    let deadline = state.deadline;
    let trace = state.trace.clone();
    let first_event_ms = shared.metrics.first_event_ms.clone();
    let obs_state = Arc::clone(state);
    let mut ctx = SolveCtx::new().with_cancel(state.cancel.clone()).with_observer(move |mut ev| {
        if !obs_state.first_event.swap(true, Ordering::Relaxed) {
            let ms = obs_state.submitted.elapsed().as_secs_f64() * 1e3;
            first_event_ms.observe(ms);
            if let Some(trace) = &obs_state.trace {
                trace.record_first_event_ms(ms);
            }
        }
        ev.device = obs_state.device_id().map(|d| d.0);
        obs_state.progress.push(ev);
    });
    if let Some(d) = deadline {
        ctx = ctx.with_deadline(d);
    }
    if let Some(trace) = trace {
        ctx = ctx.with_trace(trace);
    }
    ctx
}

fn run_job(
    shared: &Shared,
    id: u64,
    state: &JobState,
    req: &SolveRequest,
    ctx: &SolveCtx,
) -> Result<SolveReport, EngineError> {
    let inst = &*req.instance;
    let seed = req.effective_seed();
    let params = req.params.clone().seed(seed);
    let (artifacts, built_here) = shared.cache.artifacts_with_origin(inst, params.nn_size);
    if let Some(trace) = &state.trace {
        trace.record_cache(!built_here);
    }
    let backend = auto::resolve(
        &req.backend,
        inst,
        &params,
        &artifacts,
        &shared.cache,
        &shared.pool,
        req.affinity,
        req.local_search,
        req.ls_scope,
    );
    // Bind the job to a pool device. Explicitly-GPU jobs were placed at
    // submit time (affinity-aware, least-loaded); an auto job that just
    // resolved to a GPU backend rotates over the compatible devices as a
    // pure function of its id, so the binding — like everything else
    // about the job — cannot depend on execution order. The device's
    // resident-job slot budget applies either way: the auto path waits
    // for a free slot here (staying responsive to cancel/deadline),
    // mirroring what a device-queued entry does in `pop_device_queue`.
    let device = match state.device_id() {
        Some(d) => Some(d),
        None => match backend.required_model() {
            Some(model) => {
                let d = shared.pool.rotate(model, req.affinity, id)?;
                while !shared.pool.try_admit_unqueued(d) {
                    if let Some(reason) = ctx.stop_reason() {
                        return Err(match reason {
                            aco_core::lifecycle::StopReason::Cancelled => EngineError::Cancelled,
                            aco_core::lifecycle::StopReason::DeadlineExpired => {
                                EngineError::DeadlineExpired
                            }
                        });
                    }
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                // The worker loop releases via `state.device_id()`, so
                // the id is only published once the slot is held.
                state.set_device(d);
                Some(d)
            }
            None => None,
        },
    };
    let gpu = device.and_then(|d| {
        Some(GpuBinding {
            spec: shared.pool.spec(d)?.clone(),
            exec_threads: shared.pool.profile(d)?.exec_threads,
        })
    });
    if let Some(trace) = &state.trace {
        trace.set_backend(&backend.label());
        if let Some(d) = device {
            trace.set_device(d.0);
        }
    }
    // Route this thread's simulated-kernel launches (the colony's and any
    // nested auto-probe's) into the job's trace and the engine profiler
    // for the duration of the solve. Nothing is installed with
    // observability off, so the launch path pays one thread-local read.
    let _kernel_scope = shared.obs.is_enabled().then(|| {
        aco_obs::install(KernelSink {
            trace: state.trace.clone(),
            profiler: Some(Arc::clone(shared.obs.profiler())),
        })
    });
    let mut solver =
        build_solver(&backend, inst, &params, &artifacts, gpu, req.local_search, req.ls_scope);
    let mut report = solver.solve(req.iterations, seed, ctx)?;
    report.instance = inst.name().to_string();
    report.n = inst.n();
    report.device = device;
    if req.local_search.is_post_pass()
        && report.outcome == JobOutcome::Completed
        && ctx.stop_reason().is_none()
    {
        // Host-side 2-opt post-pass (the paper's named hybridisation);
        // strictly non-worsening, pinned by tests/lifecycle.rs. Skipped
        // for cancelled/expired jobs — and when the deadline elapsed (or
        // a cancel arrived) during the final iteration, where the
        // outcome is still Completed: an unbounded local search after
        // the budget is spent would break the prompt-cancel and
        // wall-clock-budget guarantees.
        let mut scratch = aco_localsearch::LsScratch::new();
        let post_t0 = Instant::now();
        // One pass stops at a don't-look-bit fixpoint, which can fall
        // short of 2-opt local optimality; iterate fresh passes until
        // the move stream dries up, matching the pre-LocalSearch
        // post-pass (run-to-optimality) behaviour.
        loop {
            let gain = req.local_search.improve(
                &mut report.best_tour,
                inst.matrix(),
                &artifacts.nn,
                &mut scratch,
            );
            report.best_len -= gain;
            report.local_search_improvement += gain;
            if gain == 0 {
                break;
            }
        }
        debug_assert_eq!(report.best_len, report.best_tour.length(inst.matrix()));
        if let Some(trace) = &state.trace {
            trace.record_post_pass_ms(post_t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    Ok(report)
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    while let Some(QueueEntry { id, state, req, .. }) = shared.next_job(worker) {
        shared.metrics.queue_depth.dec();
        // A device-queued entry arrives holding one admitted slot on its
        // placed device (granted in `pop_device_queue`).
        let admitted = match state.queue {
            QueueSlot::Device(d) => Some(DeviceId(d as u32)),
            _ => None,
        };
        // Only a QUEUED job may start running; an eager cancel that
        // already finalised the slot wins this race and the entry is a
        // no-op (its reservation was consumed by the pop above).
        if state
            .phase
            .compare_exchange(PHASE_QUEUED, PHASE_RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            if let Some(d) = admitted {
                shared.pool.cancel_admit(d);
            }
            continue;
        }
        let queue_wait_ms = state.submitted.elapsed().as_secs_f64() * 1e3;
        shared.metrics.queue_wait_ms.observe(queue_wait_ms);
        if let Some(trace) = &state.trace {
            trace.record_queue_wait_ms(queue_wait_ms);
        }
        // Drop cancelled / already-expired jobs before execution: no
        // solver is built and no cache entry is touched.
        let outcome = if state.cancel.is_cancelled() {
            if let Some(d) = admitted {
                shared.pool.cancel_admit(d);
            }
            Err(EngineError::Cancelled)
        } else if state.deadline.is_some_and(|d| Instant::now() >= d) {
            if let Some(d) = admitted {
                shared.pool.cancel_admit(d);
            }
            Err(EngineError::DeadlineExpired)
        } else {
            shared.metrics.jobs_running.inc();
            let ctx = job_ctx(&shared, &state);
            let t0 = Instant::now();
            let result =
                catch_unwind(AssertUnwindSafe(|| run_job(&shared, id, &state, &req, &ctx)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "job panicked".into());
                        Err(EngineError::Failed(msg))
                    });
            let wall = t0.elapsed();
            shared.metrics.jobs_running.dec();
            if let Some(trace) = &state.trace {
                trace.record_solve_wall_ms(wall.as_secs_f64() * 1e3);
                // The job ran (even if it failed mid-run): its timeline
                // goes to the engine-wide ring. Never-ran jobs (eager
                // cancel/expiry) have no spans worth keeping.
                shared.obs.sink().push(trace.snapshot());
            }
            // Release whichever device actually executed the job: the
            // one admitted at pop, or the one an auto job bound itself
            // to mid-run (accounted via `admit_unbudgeted`).
            if let Some(d) = state.device_id() {
                shared.pool.release(d, wall);
            }
            result
        };
        match &outcome {
            Ok(_) => shared.metrics.jobs_completed.inc(),
            Err(_) => shared.metrics.jobs_failed.inc(),
        }
        shared.post(id, &state, outcome);
    }
}

// ---------------------------------------------------------------------------
// JobHandle

/// The lifecycle surface of one submitted job, returned by
/// [`Engine::submit`]. Clonable; clones address the same job (the result
/// is still claimed exactly once, by whichever `poll`/`wait` gets there
/// first).
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    shared: Arc<Shared>,
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("status", &self.status())
            .field("priority", &self.priority())
            .finish()
    }
}

impl JobHandle {
    /// The engine-issued id (usable with [`Engine::wait`] for
    /// out-of-order claiming by id).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Finalise this job as deadline-expired if its deadline has passed
    /// while no worker started it (the eager-cancel pattern, for
    /// deadlines): without this, a queued job behind a long-running
    /// blocker would only be expired when a worker eventually popped it.
    fn expire_if_overdue(&self) {
        let overdue = self.state.deadline.is_some_and(|d| Instant::now() >= d);
        if overdue
            && self
                .state
                .phase
                .compare_exchange(PHASE_QUEUED, PHASE_FINISHED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.shared.post(self.id.0, &self.state, Err(EngineError::DeadlineExpired));
        }
    }

    /// Non-blocking result claim: `None` while the job is queued or
    /// running; `Some(result)` exactly once when it is done (a later call
    /// returns `Some(Err(UnknownJob))`, like a second `wait`).
    pub fn poll(&self) -> Option<Result<SolveReport, EngineError>> {
        self.expire_if_overdue();
        self.shared.claim_nonblocking(self.id.0, true)
    }

    /// Block until the job finishes and claim its result (exactly once).
    /// A job with a deadline is claimed no later than (shortly after) the
    /// deadline: a still-queued job is finalised as `DeadlineExpired`
    /// right when it passes, and a running colony stops at its next
    /// iteration boundary.
    pub fn wait(&self) -> Result<SolveReport, EngineError> {
        if let Some(deadline) = self.state.deadline {
            // Phase 1: wait until the job is done or the deadline
            // passes, under one continuous board-lock critical section —
            // a check/park gap here would let a post() slip through
            // unobserved and oversleep the whole timeout.
            let mut board = self.shared.board.lock().expect("board lock");
            while matches!(board.jobs.get(&self.id.0), Some(JobSlot::Pending)) {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let (b, res) =
                    self.shared.results_cv.wait_timeout(board, left).expect("results wait");
                board = b;
                if res.timed_out() {
                    break;
                }
            }
            drop(board);
            // Phase 2: expire a job no worker ever started; a running
            // colony ends at its next iteration-boundary check, which
            // the plain blocking claim below observes race-free.
            self.expire_if_overdue();
        }
        self.shared.claim_blocking(self.id.0, true)
    }

    /// The job's bounded progress stream (one [`IterationEvent`] per
    /// completed colony iteration). Consume via the blocking [`Iterator`]
    /// impl or [`ProgressStream::try_next`].
    pub fn progress(&self) -> ProgressStream {
        ProgressStream { shared: Arc::clone(&self.state.progress) }
    }

    /// Events dropped (oldest-first) from this job's progress buffer so
    /// far because the consumer fell behind its bound — the per-job view
    /// of the backpressure contract (see the module docs; the engine-wide
    /// total is `aco_engine_progress_dropped_total`). Zero means the
    /// stream delivered (or still holds) every event.
    pub fn progress_dropped(&self) -> u64 {
        self.state.progress.dropped()
    }

    /// Snapshot of the job's span timeline so far: queue wait, placement,
    /// per-iteration construction/local-search/pheromone spans, kernel
    /// totals. `None` when the engine runs with observability off.
    /// Callable at any point in the job's life; after `wait` returns, the
    /// timeline is complete.
    pub fn timeline(&self) -> Option<JobTimeline> {
        self.state.trace.as_ref().map(|t| t.snapshot())
    }

    /// Coarse lifecycle phase right now.
    pub fn status(&self) -> JobStatus {
        match self.state.phase.load(Ordering::Acquire) {
            PHASE_QUEUED => JobStatus::Queued,
            PHASE_RUNNING => JobStatus::Running,
            _ => {
                let board = self.shared.board.lock().expect("board lock");
                if board.jobs.contains_key(&self.id.0) {
                    JobStatus::Finished
                } else {
                    JobStatus::Claimed
                }
            }
        }
    }

    /// Current scheduling priority.
    pub fn priority(&self) -> Priority {
        Priority::from_u8(self.state.priority.load(Ordering::Acquire))
    }

    /// Re-prioritise the job. Takes effect immediately for queued jobs:
    /// the job's heap entry is restamped in place (and the heap
    /// reordered); a running or finished job just records the new value.
    /// The pop path additionally reconciles any stamp this restamp raced
    /// with, so a stale entry can never run ahead of its class.
    pub fn set_priority(&self, priority: Priority) {
        self.state.priority.store(priority.as_u8(), Ordering::Release);
        let heap = match self.state.queue {
            QueueSlot::Worker(i) => &self.shared.queues[i],
            QueueSlot::Device(d) => &self.shared.device_queues[d],
            QueueSlot::Unqueued => return, // rejected at submit; nothing to restamp
        };
        let mut q = heap.lock().expect("queue lock");
        if q.iter().any(|e| e.id == self.id.0) {
            let mut entries: Vec<QueueEntry> = std::mem::take(&mut *q).into_vec();
            for e in &mut entries {
                if e.id == self.id.0 {
                    e.prio = priority.as_u8();
                }
            }
            *q = BinaryHeap::from(entries);
        }
    }

    /// Request cancellation; never blocks. A job that has not started is
    /// finalised immediately (its `wait` returns
    /// [`EngineError::Cancelled`] right away); a running colony observes
    /// the token at its next iteration boundary and reports its partial
    /// best with a `Cancelled` outcome.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
        // Try to finalise a still-queued job eagerly. The CAS races the
        // worker's QUEUED→RUNNING transition: exactly one side wins, so
        // the result is still delivered exactly once.
        if self
            .state
            .phase
            .compare_exchange(PHASE_QUEUED, PHASE_FINISHED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.shared.post(self.id.0, &self.state, Err(EngineError::Cancelled));
        }
    }
}

// ---------------------------------------------------------------------------
// Engine

/// The concurrent batch-solve engine.
///
/// ```
/// use std::sync::Arc;
/// use aco_engine::{Backend, Engine, EngineConfig, SolveRequest};
/// use aco_core::AcoParams;
///
/// let engine = Engine::new(EngineConfig::with_workers(2));
/// let inst = Arc::new(aco_tsp::uniform_random("demo", 40, 600.0, 1));
/// let handles: Vec<_> = (0..4)
///     .map(|s| {
///         engine.submit(
///             SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10))
///                 .backend(Backend::Auto)
///                 .iterations(5)
///                 .seed(s),
///         )
///     })
///     .collect();
/// for h in handles {
///     let report = h.wait().expect("job succeeds");
///     assert!(report.best_tour.is_valid());
/// }
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Spin up the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let pool = Arc::new(DevicePool::new(config.devices.clone(), config.placement));
        let obs = Obs::new(config.observability, config.trace_capacity);
        let metrics = SchedMetrics::new(obs.metrics());
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            device_queues: (0..pool.len()).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            pool,
            ready: Mutex::new(0),
            ready_cv: Condvar::new(),
            board: Mutex::new(Board::default()),
            results_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: ArtifactCache::with_capacity(config.cache_entries),
            obs,
            metrics,
            started: Instant::now(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aco-engine-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn worker")
            })
            .collect();
        Engine { shared, handles, next_id: AtomicU64::new(0) }
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Decide where `req` queues — and, for explicitly-GPU jobs, *place*
    /// it on a pool device. Placement errors are typed and final: the
    /// job never queues, never runs, and never touches any cache.
    fn place(&self, req: &SolveRequest) -> Result<Option<Placement>, PlacementError> {
        if let Some(model) = req.backend.required_model() {
            let n = req.instance.n();
            let m = req.params.ants_for(n);
            return self.shared.pool.place(model, req.affinity, n, m, req.iterations).map(Some);
        }
        match (&req.backend, req.affinity) {
            // Auto jobs may still resolve onto a device; the pinned id
            // must at least exist (its model constrains resolution).
            (Backend::Auto, _) => self.shared.pool.check_affinity(req.affinity).map(|_| None),
            // A CPU backend can never honour a pin.
            (_, DeviceAffinity::Pinned(d)) => Err(PlacementError::NotADeviceJob { device: d }),
            _ => Ok(None),
        }
    }

    /// Queue a job; returns its [`JobHandle`] immediately. A job whose
    /// placement is rejected (see [`SolveRequest::affinity`]) is
    /// finalised on the spot: its handle's `wait`/`poll` return
    /// [`EngineError::Placement`] without the job ever queueing.
    pub fn submit(&self, req: SolveRequest) -> JobHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.jobs_submitted.inc();
        let place_t0 = Instant::now();
        let placement = self.place(&req);
        let placement_ms = place_t0.elapsed().as_secs_f64() * 1e3;
        self.shared.metrics.placement_ms.observe(placement_ms);
        let queue = match &placement {
            Ok(Some(p)) => QueueSlot::Device(p.device.0 as usize),
            Ok(None) => QueueSlot::Worker(id as usize % self.shared.queues.len()),
            Err(_) => QueueSlot::Unqueued,
        };
        let trace = self.shared.obs.job_trace(id);
        if let Some(trace) = &trace {
            trace.record_placement_ms(placement_ms);
        }
        let submitted = Instant::now();
        let state = Arc::new(JobState {
            cancel: CancelToken::new(),
            priority: AtomicU8::new(req.priority.as_u8()),
            phase: AtomicU8::new(PHASE_QUEUED),
            progress: Arc::new(ProgressShared::new(
                req.progress_events,
                self.shared.metrics.progress_dropped.clone(),
            )),
            deadline: req.timeout.map(|t| submitted + t),
            queue,
            submitted,
            trace,
            first_event: AtomicBool::new(false),
            device: AtomicU32::new(match &placement {
                Ok(Some(p)) => p.device.0,
                _ => NO_DEVICE,
            }),
        });
        // Create the result slot before the job becomes runnable, so a
        // fast worker can never post into a missing slot.
        self.shared.board.lock().expect("board lock").jobs.insert(id, JobSlot::Pending);
        match placement {
            Err(e) => {
                self.shared.post(id, &state, Err(EngineError::Placement(e)));
                return JobHandle { id: JobId(id), shared: Arc::clone(&self.shared), state };
            }
            Ok(_) => {
                self.shared.metrics.queue_depth.inc();
                let prio = req.priority.as_u8();
                let entry = QueueEntry { prio, id, state: Arc::clone(&state), req };
                match queue {
                    QueueSlot::Worker(w) => {
                        self.shared.queues[w].lock().expect("queue lock").push(entry);
                    }
                    QueueSlot::Device(d) => {
                        self.shared.pool.note_queued(DeviceId(d as u32));
                        self.shared.device_queues[d].lock().expect("device queue lock").push(entry);
                    }
                    QueueSlot::Unqueued => unreachable!("Ok placement always queues"),
                }
            }
        }
        let mut ready = self.shared.ready.lock().expect("ready lock");
        *ready += 1;
        drop(ready);
        self.shared.ready_cv.notify_one();
        JobHandle { id: JobId(id), shared: Arc::clone(&self.shared), state }
    }

    /// Block until `job` finishes and claim its result by id. Each result
    /// can be claimed once (by this or [`JobHandle::wait`]/`poll`); a
    /// second claim — or a wait on an id this engine never issued —
    /// returns [`EngineError::UnknownJob`] instead of blocking. Claiming
    /// removes the job's slot entirely, so the engine holds no per-job
    /// state after delivery.
    pub fn wait(&self, job: JobId) -> Result<SolveReport, EngineError> {
        self.shared.claim_blocking(job.0, job.0 < self.next_id.load(Ordering::Relaxed))
    }

    /// Number of jobs submitted but not yet claimed (the engine's entire
    /// per-job memory footprint — pinned by the board-growth test).
    pub fn outstanding(&self) -> usize {
        self.shared.board.lock().expect("board lock").jobs.len()
    }

    /// Submit a whole batch and collect results in submission order.
    pub fn run_batch(
        &self,
        reqs: impl IntoIterator<Item = SolveRequest>,
    ) -> Vec<Result<SolveReport, EngineError>> {
        let handles: Vec<JobHandle> = reqs.into_iter().map(|r| self.submit(r)).collect();
        handles.into_iter().map(|h| h.wait()).collect()
    }

    /// Snapshot of the artifact/decision cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The simulated device pool this engine schedules GPU jobs onto.
    pub fn pool(&self) -> &DevicePool {
        &self.shared.pool
    }

    /// Point-in-time telemetry of every pool device (queue depth,
    /// occupancy, completions, busy time, assigned backlog).
    pub fn device_stats(&self) -> Vec<DeviceSnapshot> {
        self.shared.pool.snapshot()
    }

    /// Whether this engine records metrics, traces and kernel profiles.
    pub fn observability_enabled(&self) -> bool {
        self.shared.obs.is_enabled()
    }

    /// Point-in-time snapshot of every engine metric — scheduler
    /// counters/gauges/latency histograms, per-device and cache gauges
    /// (bridged from their native counters here, at snapshot time, so
    /// neither subsystem depends on the metrics registry), and per-family
    /// kernel profiles. Export via [`MetricsSnapshot::to_prometheus`] or
    /// [`MetricsSnapshot::to_json`]. Empty when observability is off.
    pub fn metrics(&self) -> MetricsSnapshot {
        let reg = self.shared.obs.metrics();
        if self.shared.obs.is_enabled() {
            let elapsed = self.shared.started.elapsed().as_secs_f64();
            for d in self.shared.pool.snapshot() {
                let name = &d.name;
                reg.gauge(&format!("aco_device_queued{{device=\"{name}\"}}")).set(d.queued as i64);
                reg.gauge(&format!("aco_device_running{{device=\"{name}\"}}"))
                    .set(d.running as i64);
                reg.counter(&format!("aco_device_completed_total{{device=\"{name}\"}}"))
                    .set(d.completed);
                reg.counter(&format!("aco_device_admission_waits_total{{device=\"{name}\"}}"))
                    .set(d.admission_waits);
                reg.gauge(&format!("aco_device_busy_ms{{device=\"{name}\"}}"))
                    .set(d.busy_ms as i64);
                reg.gauge(&format!("aco_device_assigned_ms{{device=\"{name}\"}}"))
                    .set(d.assigned_ms as i64);
                // Utilization in basis points (gauges are integers):
                // busy wall time over the engine's lifetime so far.
                let util_bp = if elapsed > 0.0 {
                    (d.busy_ms / (elapsed * 1e3) * 1e4).round() as i64
                } else {
                    0
                };
                reg.gauge(&format!("aco_device_utilization_bp{{device=\"{name}\"}}")).set(util_bp);
            }
            let cs = self.shared.cache.stats();
            reg.counter("aco_cache_artifact_hits_total").set(cs.artifact_hits);
            reg.counter("aco_cache_artifact_misses_total").set(cs.artifact_misses);
            reg.counter("aco_cache_decision_hits_total").set(cs.decision_hits);
            reg.counter("aco_cache_decision_misses_total").set(cs.decision_misses);
            reg.counter("aco_cache_evictions_total")
                .set(cs.artifact_evictions + cs.decision_evictions);
        }
        self.shared.obs.snapshot()
    }

    /// The most recent completed-job timelines (bounded ring of
    /// [`EngineConfig::trace_capacity`] entries, oldest evicted first).
    /// Jobs that never ran — eagerly cancelled or expired while queued —
    /// are not recorded. Empty when observability is off.
    pub fn recent_timelines(&self) -> Vec<Arc<JobTimeline>> {
        self.shared.obs.sink().recent()
    }

    /// Timelines evicted from the [`Engine::recent_timelines`] ring so
    /// far (how much history the bound has discarded).
    pub fn timelines_evicted(&self) -> u64 {
        self.shared.obs.sink().evicted()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Set the flag and notify *while holding the ready mutex*: a
        // worker between its shutdown check and `wait()` still holds the
        // lock, so we cannot fire the notification into that window — it
        // either sees the flag on its next loop or is already waiting and
        // gets woken.
        {
            let _ready = self.shared.ready.lock().expect("ready lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.ready_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Backend;
    use aco_core::{AcoParams, TourPolicy};
    use std::sync::Arc;

    fn small_batch(inst: &Arc<aco_tsp::TspInstance>) -> Vec<SolveRequest> {
        let params = AcoParams::default().nn(8).ants(10);
        vec![
            SolveRequest::new(Arc::clone(inst), params.clone())
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(4)
                .seed(1),
            SolveRequest::new(Arc::clone(inst), params.clone())
                .backend(Backend::CpuParallel {
                    policy: TourPolicy::NearestNeighborList,
                    threads: 3,
                })
                .iterations(4)
                .seed(2),
            SolveRequest::new(Arc::clone(inst), params)
                .backend(Backend::Auto)
                .iterations(3)
                .seed(3),
        ]
    }

    #[test]
    fn engine_results_do_not_depend_on_worker_count() {
        let inst = Arc::new(aco_tsp::uniform_random("sched", 30, 500.0, 11));
        let serial = Engine::new(EngineConfig::with_workers(1)).run_batch(small_batch(&inst));
        let parallel = Engine::new(EngineConfig::with_workers(4)).run_batch(small_batch(&inst));
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let inst = Arc::new(aco_tsp::uniform_random("sched2", 25, 400.0, 5));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let reports = engine.run_batch(small_batch(&inst));
        assert!(reports.iter().all(|r| r.is_ok()));
        let stats = engine.cache_stats();
        assert_eq!(stats.artifact_misses, 1, "one build for the shared instance");
        assert!(stats.artifact_hits >= 2, "subsequent jobs reuse it: {stats:?}");
    }

    #[test]
    fn out_of_order_wait_works() {
        let inst = Arc::new(aco_tsp::uniform_random("sched3", 20, 300.0, 9));
        let engine = Engine::new(EngineConfig::with_workers(2));
        let ids: Vec<JobId> =
            small_batch(&inst).into_iter().map(|r| engine.submit(r).id()).collect();
        for id in ids.iter().rev() {
            assert!(engine.wait(*id).is_ok());
        }
    }

    #[test]
    fn waiting_twice_or_on_a_foreign_id_fails_fast() {
        use crate::solver::EngineError;
        let inst = Arc::new(aco_tsp::uniform_random("sched5", 18, 300.0, 6));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let h = engine.submit(
            SolveRequest::new(inst, AcoParams::default().nn(5).ants(6))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(1),
        );
        assert!(h.wait().is_ok());
        assert_eq!(h.wait(), Err(EngineError::UnknownJob), "double claim");
        assert_eq!(h.poll(), Some(Err(EngineError::UnknownJob)), "claimed poll");
        assert_eq!(h.status(), JobStatus::Claimed);
        let never_issued = JobId(999);
        assert_eq!(engine.wait(never_issued), Err(EngineError::UnknownJob), "foreign id");
    }

    #[test]
    fn poll_claims_exactly_once_after_completion() {
        let inst = Arc::new(aco_tsp::uniform_random("sched7", 18, 300.0, 3));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let h = engine.submit(
            SolveRequest::new(inst, AcoParams::default().nn(5).ants(6))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(4),
        );
        // Spin on poll until the job lands (bounded by the test timeout).
        let report = loop {
            match h.poll() {
                Some(r) => break r,
                None => std::thread::yield_now(),
            }
        };
        assert!(report.is_ok());
        assert_eq!(h.poll(), Some(Err(EngineError::UnknownJob)));
    }

    #[test]
    fn result_board_does_not_grow_over_engine_lifetime() {
        let inst = Arc::new(aco_tsp::uniform_random("sched6", 20, 300.0, 4));
        let engine = Engine::new(EngineConfig::with_workers(2));
        // Several full submit/claim generations: after each, the board
        // must be empty again (no tombstones, no drained reports).
        for gen in 0..3 {
            let handles: Vec<JobHandle> = (0..6)
                .map(|j| {
                    engine.submit(
                        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(6).ants(5))
                            .backend(Backend::CpuSequential {
                                policy: TourPolicy::NearestNeighborList,
                            })
                            .iterations(2)
                            .seed(gen * 100 + j),
                    )
                })
                .collect();
            for h in handles {
                assert!(h.wait().is_ok());
            }
            assert_eq!(engine.outstanding(), 0, "board must be empty after generation {gen}");
        }
    }

    #[test]
    fn cache_is_lru_bounded() {
        let inst_a = Arc::new(aco_tsp::uniform_random("lru-a", 16, 300.0, 1));
        let inst_b = Arc::new(aco_tsp::uniform_random("lru-b", 16, 300.0, 2));
        let inst_c = Arc::new(aco_tsp::uniform_random("lru-c", 16, 300.0, 3));
        let engine = Engine::new(EngineConfig::with_workers(1).cache_entries(2));
        let req = |inst: &Arc<aco_tsp::TspInstance>, seed| {
            SolveRequest::new(Arc::clone(inst), AcoParams::default().nn(5).ants(4))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(1)
                .seed(seed)
        };
        // Three distinct instances through a 2-entry cache: at least one
        // eviction must fire, and re-touching the evicted instance
        // rebuilds (a miss, not a hit).
        for (i, inst) in [&inst_a, &inst_b, &inst_c].into_iter().enumerate() {
            engine.submit(req(inst, i as u64)).wait().unwrap();
        }
        let s1 = engine.cache_stats();
        assert!(s1.artifact_evictions >= 1, "third instance must evict: {s1:?}");
        assert_eq!(s1.artifact_misses, 3);
        engine.submit(req(&inst_a, 9)).wait().unwrap();
        let s2 = engine.cache_stats();
        assert_eq!(s2.artifact_misses, 4, "evicted artifacts rebuild on reuse");
    }

    #[test]
    fn zero_iterations_is_reported_as_no_solution() {
        let inst = Arc::new(aco_tsp::uniform_random("sched4", 15, 300.0, 2));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let req = SolveRequest::new(inst, AcoParams::default().nn(5))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(0);
        let h = engine.submit(req);
        assert_eq!(h.wait(), Err(EngineError::NoSolution));
    }
}
