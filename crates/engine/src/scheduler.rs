//! The batch engine: a work-stealing worker pool over solve jobs.
//!
//! Jobs are distributed round-robin over per-worker deques at submission;
//! a worker pops its own deque from the front and steals from the back of
//! its peers when idle, so a long GPU simulation on one worker never
//! starves the rest of the batch. Results land in a shared map keyed by
//! [`JobId`] and are claimed with [`Engine::wait`].
//!
//! **Determinism.** Scheduling affects only *where* and *when* a job runs,
//! never its inputs: every job derives its RNG streams from its own
//! request seed, the artifact cache stores values that are pure functions
//! of the instance, and `auto` decisions are deterministic in the
//! instance and parameters. Consequently a batch produces bit-identical
//! [`SolveReport`]s for any worker count — pinned by the
//! `engine_results_do_not_depend_on_worker_count` tests.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::auto;
use crate::cache::{ArtifactCache, CacheStats};
use crate::solver::{build_solver, EngineError, SolveReport, SolveRequest};

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Results never depend on this; throughput does.
    pub workers: usize,
    /// LRU entry bound for each artifact-cache map (see
    /// [`crate::cache::ArtifactCache`]).
    pub cache_entries: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
        EngineConfig { workers, cache_entries: crate::cache::DEFAULT_CACHE_ENTRIES }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers: workers.max(1), ..Default::default() }
    }

    /// Builder: LRU entry bound for the artifact/decision caches.
    pub fn cache_entries(mut self, entries: usize) -> Self {
        self.cache_entries = entries.max(1);
        self
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

struct Job {
    id: u64,
    req: SolveRequest,
}

/// Lifecycle of one submitted job's result slot.
enum JobSlot {
    /// Submitted; no result yet.
    Pending,
    /// Finished; result waiting to be claimed.
    Done(Result<SolveReport, EngineError>),
}

/// In-flight result slots. A slot is created at submission and **removed
/// at claim**, so the board's size is bounded by the number of
/// outstanding jobs — no claimed-id tombstones and no drained-report
/// accumulation over the engine's lifetime. A `wait` on an issued id
/// whose slot is gone means "already claimed" and fails fast.
#[derive(Default)]
struct ResultBoard {
    jobs: HashMap<u64, JobSlot>,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Count of queued-but-unclaimed jobs; the condvar predicate.
    ready: Mutex<usize>,
    ready_cv: Condvar,
    results: Mutex<ResultBoard>,
    results_cv: Condvar,
    shutdown: AtomicBool,
    cache: ArtifactCache,
}

impl Shared {
    /// Claim a job: block until one is queued (or shutdown), then scan —
    /// own deque front first, peers' backs second.
    fn next_job(&self, worker: usize) -> Option<Job> {
        {
            let mut ready = self.ready.lock().expect("ready lock");
            loop {
                if *ready > 0 {
                    *ready -= 1; // reserve one job; a matching pop must succeed below
                    break;
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                ready = self.ready_cv.wait(ready).expect("ready wait");
            }
        }
        let k = self.queues.len();
        loop {
            if let Some(job) = self.queues[worker].lock().expect("own queue").pop_front() {
                return Some(job);
            }
            for peer in 1..k {
                let victim = (worker + peer) % k;
                if let Some(job) = self.queues[victim].lock().expect("peer queue").pop_back() {
                    return Some(job);
                }
            }
            // Another reserving worker holds "our" job only transiently
            // (between its reservation and pop); re-scan.
            std::thread::yield_now();
        }
    }

    fn post(&self, id: u64, result: Result<SolveReport, EngineError>) {
        self.results.lock().expect("results lock").jobs.insert(id, JobSlot::Done(result));
        self.results_cv.notify_all();
    }
}

fn run_job(cache: &ArtifactCache, req: &SolveRequest) -> Result<SolveReport, EngineError> {
    let inst = &*req.instance;
    let seed = req.effective_seed();
    let params = req.params.clone().seed(seed);
    let artifacts = cache.artifacts(inst, params.nn_size);
    let backend = auto::resolve(&req.backend, inst, &params, &artifacts, cache);
    let mut solver = build_solver(&backend, inst, &params, &artifacts);
    let mut report = solver.solve(req.iterations, seed)?;
    report.instance = inst.name().to_string();
    report.n = inst.n();
    Ok(report)
}

fn worker_loop(shared: Arc<Shared>, worker: usize) {
    while let Some(job) = shared.next_job(worker) {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&shared.cache, &job.req)))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".into());
                Err(EngineError::Failed(msg))
            });
        shared.post(job.id, outcome);
    }
}

/// The concurrent batch-solve engine.
///
/// ```
/// use std::sync::Arc;
/// use aco_engine::{Backend, Engine, EngineConfig, SolveRequest};
/// use aco_core::AcoParams;
///
/// let engine = Engine::new(EngineConfig::with_workers(2));
/// let inst = Arc::new(aco_tsp::uniform_random("demo", 40, 600.0, 1));
/// let jobs: Vec<_> = (0..4)
///     .map(|s| {
///         engine.submit(
///             SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(10))
///                 .backend(Backend::Auto)
///                 .iterations(5)
///                 .seed(s),
///         )
///     })
///     .collect();
/// for id in jobs {
///     let report = engine.wait(id).expect("job succeeds");
///     assert!(report.best_tour.is_valid());
/// }
/// ```
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Spin up the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            ready: Mutex::new(0),
            ready_cv: Condvar::new(),
            results: Mutex::new(ResultBoard::default()),
            results_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: ArtifactCache::with_capacity(config.cache_entries),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aco-engine-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn worker")
            })
            .collect();
        Engine { shared, handles, next_id: AtomicU64::new(0) }
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queue a job; returns immediately.
    pub fn submit(&self, req: SolveRequest) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Create the result slot before the job becomes runnable, so a
        // fast worker can never post into a missing slot.
        self.shared.results.lock().expect("results lock").jobs.insert(id, JobSlot::Pending);
        let slot = id as usize % self.shared.queues.len();
        self.shared.queues[slot].lock().expect("queue lock").push_back(Job { id, req });
        let mut ready = self.shared.ready.lock().expect("ready lock");
        *ready += 1;
        drop(ready);
        self.shared.ready_cv.notify_one();
        JobId(id)
    }

    /// Block until `job` finishes and claim its result. Each result can be
    /// claimed once; a second `wait` on the same id — or a wait on an id
    /// this engine never issued — returns [`EngineError::UnknownJob`]
    /// instead of blocking. Claiming removes the job's slot entirely, so
    /// the engine holds no per-job state after delivery.
    pub fn wait(&self, job: JobId) -> Result<SolveReport, EngineError> {
        if job.0 >= self.next_id.load(Ordering::Relaxed) {
            return Err(EngineError::UnknownJob);
        }
        let mut results = self.shared.results.lock().expect("results lock");
        loop {
            match results.jobs.get(&job.0) {
                // Issued id without a slot: already claimed.
                None => return Err(EngineError::UnknownJob),
                Some(JobSlot::Done(_)) => {
                    let Some(JobSlot::Done(r)) = results.jobs.remove(&job.0) else {
                        unreachable!("matched Done above")
                    };
                    return r;
                }
                Some(JobSlot::Pending) => {
                    results = self.shared.results_cv.wait(results).expect("results wait");
                }
            }
        }
    }

    /// Number of jobs submitted but not yet claimed (the engine's entire
    /// per-job memory footprint — pinned by the board-growth test).
    pub fn outstanding(&self) -> usize {
        self.shared.results.lock().expect("results lock").jobs.len()
    }

    /// Submit a whole batch and collect results in submission order.
    pub fn run_batch(
        &self,
        reqs: impl IntoIterator<Item = SolveRequest>,
    ) -> Vec<Result<SolveReport, EngineError>> {
        let ids: Vec<JobId> = reqs.into_iter().map(|r| self.submit(r)).collect();
        ids.into_iter().map(|id| self.wait(id)).collect()
    }

    /// Snapshot of the artifact/decision cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Set the flag and notify *while holding the ready mutex*: a
        // worker between its shutdown check and `wait()` still holds the
        // lock, so we cannot fire the notification into that window — it
        // either sees the flag on its next loop or is already waiting and
        // gets woken.
        {
            let _ready = self.shared.ready.lock().expect("ready lock");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.ready_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Backend;
    use aco_core::{AcoParams, TourPolicy};
    use std::sync::Arc;

    fn small_batch(inst: &Arc<aco_tsp::TspInstance>) -> Vec<SolveRequest> {
        let params = AcoParams::default().nn(8).ants(10);
        vec![
            SolveRequest::new(Arc::clone(inst), params.clone())
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(4)
                .seed(1),
            SolveRequest::new(Arc::clone(inst), params.clone())
                .backend(Backend::CpuParallel {
                    policy: TourPolicy::NearestNeighborList,
                    threads: 3,
                })
                .iterations(4)
                .seed(2),
            SolveRequest::new(Arc::clone(inst), params)
                .backend(Backend::Auto)
                .iterations(3)
                .seed(3),
        ]
    }

    #[test]
    fn engine_results_do_not_depend_on_worker_count() {
        let inst = Arc::new(aco_tsp::uniform_random("sched", 30, 500.0, 11));
        let serial = Engine::new(EngineConfig::with_workers(1)).run_batch(small_batch(&inst));
        let parallel = Engine::new(EngineConfig::with_workers(4)).run_batch(small_batch(&inst));
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn cache_is_shared_across_jobs() {
        let inst = Arc::new(aco_tsp::uniform_random("sched2", 25, 400.0, 5));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let reports = engine.run_batch(small_batch(&inst));
        assert!(reports.iter().all(|r| r.is_ok()));
        let stats = engine.cache_stats();
        assert_eq!(stats.artifact_misses, 1, "one build for the shared instance");
        assert!(stats.artifact_hits >= 2, "subsequent jobs reuse it: {stats:?}");
    }

    #[test]
    fn out_of_order_wait_works() {
        let inst = Arc::new(aco_tsp::uniform_random("sched3", 20, 300.0, 9));
        let engine = Engine::new(EngineConfig::with_workers(2));
        let ids: Vec<JobId> = small_batch(&inst).into_iter().map(|r| engine.submit(r)).collect();
        for id in ids.iter().rev() {
            assert!(engine.wait(*id).is_ok());
        }
    }

    #[test]
    fn waiting_twice_or_on_a_foreign_id_fails_fast() {
        use crate::solver::EngineError;
        let inst = Arc::new(aco_tsp::uniform_random("sched5", 18, 300.0, 6));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let id = engine.submit(
            SolveRequest::new(inst, AcoParams::default().nn(5).ants(6))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(2)
                .seed(1),
        );
        assert!(engine.wait(id).is_ok());
        assert_eq!(engine.wait(id), Err(EngineError::UnknownJob), "double claim");
        let never_issued = JobId(999);
        assert_eq!(engine.wait(never_issued), Err(EngineError::UnknownJob), "foreign id");
    }

    #[test]
    fn result_board_does_not_grow_over_engine_lifetime() {
        let inst = Arc::new(aco_tsp::uniform_random("sched6", 20, 300.0, 4));
        let engine = Engine::new(EngineConfig::with_workers(2));
        // Several full submit/claim generations: after each, the board
        // must be empty again (no tombstones, no drained reports).
        for gen in 0..3 {
            let ids: Vec<JobId> = (0..6)
                .map(|j| {
                    engine.submit(
                        SolveRequest::new(Arc::clone(&inst), AcoParams::default().nn(6).ants(5))
                            .backend(Backend::CpuSequential {
                                policy: TourPolicy::NearestNeighborList,
                            })
                            .iterations(2)
                            .seed(gen * 100 + j),
                    )
                })
                .collect();
            for id in ids {
                assert!(engine.wait(id).is_ok());
            }
            assert_eq!(engine.outstanding(), 0, "board must be empty after generation {gen}");
        }
    }

    #[test]
    fn cache_is_lru_bounded() {
        let inst_a = Arc::new(aco_tsp::uniform_random("lru-a", 16, 300.0, 1));
        let inst_b = Arc::new(aco_tsp::uniform_random("lru-b", 16, 300.0, 2));
        let inst_c = Arc::new(aco_tsp::uniform_random("lru-c", 16, 300.0, 3));
        let engine = Engine::new(EngineConfig::with_workers(1).cache_entries(2));
        let req = |inst: &Arc<aco_tsp::TspInstance>, seed| {
            SolveRequest::new(Arc::clone(inst), AcoParams::default().nn(5).ants(4))
                .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
                .iterations(1)
                .seed(seed)
        };
        // Three distinct instances through a 2-entry cache: at least one
        // eviction must fire, and re-touching the evicted instance
        // rebuilds (a miss, not a hit).
        for (i, inst) in [&inst_a, &inst_b, &inst_c].into_iter().enumerate() {
            engine.wait(engine.submit(req(inst, i as u64))).unwrap();
        }
        let s1 = engine.cache_stats();
        assert!(s1.artifact_evictions >= 1, "third instance must evict: {s1:?}");
        assert_eq!(s1.artifact_misses, 3);
        engine.wait(engine.submit(req(&inst_a, 9))).unwrap();
        let s2 = engine.cache_stats();
        assert_eq!(s2.artifact_misses, 4, "evicted artifacts rebuild on reuse");
    }

    #[test]
    fn zero_iterations_is_reported_as_no_solution() {
        let inst = Arc::new(aco_tsp::uniform_random("sched4", 15, 300.0, 2));
        let engine = Engine::new(EngineConfig::with_workers(1));
        let req = SolveRequest::new(inst, AcoParams::default().nn(5))
            .backend(Backend::CpuSequential { policy: TourPolicy::NearestNeighborList })
            .iterations(0);
        let id = engine.submit(req);
        assert_eq!(engine.wait(id), Err(EngineError::NoSolution));
    }
}
