//! The engine's HTTP observability endpoint:
//! [`Engine::serve_observability`] mounts the read-side surface —
//! metrics, health, SLOs, dashboard, journal stream — on the std-only
//! [`aco_obs::HttpServer`].
//!
//! Routes:
//!
//! | Path            | Body |
//! |-----------------|------|
//! | `/metrics`      | Prometheus text exposition (full bridged snapshot) |
//! | `/metrics.json` | The same snapshot as JSON (float gauges at full precision) |
//! | `/healthz`      | Aggregated engine + device health + alert states (JSON) |
//! | `/slo`          | SLO board: states, burn rates, causes, transition timelines (JSON) |
//! | `/dashboard`    | The textual live dashboard (`Engine::render_dashboard`) |
//! | `/events`       | Journal as Server-Sent Events; resume with `Last-Event-ID` or `?from=` |
//!
//! Serving is strictly read-only: handlers touch only the same
//! snapshots the in-process accessors do, so results, placements and
//! progress streams are bit-identical with serving on or off (pinned by
//! `tests/obs_serve.rs`). The returned [`ObsServer`] holds its own
//! `Arc` of the engine's shared state, so it may outlive the `Engine`
//! value itself — it just keeps serving the final telemetry.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use aco_obs::{EventSource, HttpServer, Journal, ObsHandler, Reply, Request};

use crate::scheduler::{Engine, Shared};

/// Acceptor threads the endpoint serves with (bounds concurrent
/// connections; telemetry clients are few).
const HTTP_THREADS: usize = 2;

/// Sampler cadence ceiling: ticks never sleep longer than this, so
/// shutdown latency stays bounded even with very wide window buckets.
const MAX_SAMPLE_SLEEP: Duration = Duration::from_millis(200);

/// The `/events` feed over the engine journal: sequence numbers are the
/// journal's own (monotone across ring eviction), so a resume cursor is
/// exact for every line still retained.
struct JournalSource(Arc<Journal>);

impl EventSource for JournalSource {
    fn events_from(&self, from_seq: u64) -> Vec<(u64, String)> {
        self.0.export_from(from_seq)
    }
}

/// Routes requests against the engine's shared state (read-only).
struct EngineHandler {
    shared: Arc<Shared>,
}

impl ObsHandler for EngineHandler {
    fn handle(&self, req: &Request) -> Reply {
        match req.path.as_str() {
            "/" => Reply::text(
                "aco-engine observability\n\
                 /metrics       Prometheus text exposition\n\
                 /metrics.json  metrics snapshot as JSON\n\
                 /healthz       engine + device health + alerts (JSON)\n\
                 /slo           SLO board (JSON)\n\
                 /dashboard     textual live dashboard\n\
                 /events        journal as SSE (Last-Event-ID / ?from= resume)\n",
            ),
            "/metrics" => Reply::prometheus(self.shared.bridged_snapshot().to_prometheus()),
            "/metrics.json" => Reply::json(self.shared.bridged_snapshot().to_json()),
            "/healthz" => Reply::json(self.shared.healthz_json()),
            "/slo" => Reply::json(self.shared.slo_json()),
            "/dashboard" => Reply::text(self.shared.render_dashboard()),
            "/events" => match self.shared.journal_arc() {
                Some(journal) => {
                    let from = req
                        .query_param("from")
                        .and_then(|v| v.parse().ok())
                        .or_else(|| {
                            req.header("Last-Event-ID")
                                .and_then(|v| v.parse::<u64>().ok())
                                .map(|id| id + 1)
                        })
                        .unwrap_or(0);
                    let max = req.query_param("max").and_then(|v| v.parse().ok());
                    Reply::Events {
                        from_seq: from,
                        max_events: max,
                        source: Arc::new(JournalSource(journal)),
                    }
                }
                None => Reply::not_found("no journal configured (EngineConfig::journal)"),
            },
            other => Reply::not_found(other),
        }
    }
}

/// A running observability endpoint (HTTP server + window sampler).
/// Dropping it — or calling [`ObsServer::shutdown`] — stops both
/// gracefully; the engine itself is unaffected either way.
pub struct ObsServer {
    http: HttpServer,
    stop: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.http.local_addr())
            .field("sampler", &self.sampler.is_some())
            .finish()
    }
}

impl ObsServer {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// Graceful shutdown: stop the sampler, then the HTTP server (flag,
    /// wake, join — no leaked threads). Also performed on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.sampler.take() {
            let _ = t.join();
        }
        self.http.shutdown();
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Engine {
    /// Serve this engine's observability surface on `addr` (use port 0
    /// for an ephemeral port; read it back with
    /// [`ObsServer::local_addr`]). When [`super::EngineConfig::windows`]
    /// is armed, a sampler thread also ticks the rolling-window/SLO
    /// layer at the window's bucket cadence, so `/healthz` and `/slo`
    /// stay current without any in-process driver.
    ///
    /// Strictly read-only — serving cannot change results, placements or
    /// progress. Call it any number of times for multiple endpoints.
    pub fn serve_observability(&self, addr: impl ToSocketAddrs) -> io::Result<ObsServer> {
        let handler = Arc::new(EngineHandler { shared: Arc::clone(&self.shared) });
        let http = HttpServer::bind(addr, handler, HTTP_THREADS)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = if self.shared.has_windows() {
            let shared = Arc::clone(&self.shared);
            let stop = Arc::clone(&stop);
            let tick = shared
                .window_bucket_ms()
                .map_or(MAX_SAMPLE_SLEEP, |ms| Duration::from_millis(ms).min(MAX_SAMPLE_SLEEP));
            Some(std::thread::Builder::new().name("aco-obs-sampler".to_string()).spawn(
                move || {
                    while !stop.load(Ordering::Acquire) {
                        shared.tick_windows();
                        std::thread::sleep(tick);
                    }
                },
            )?)
        } else {
            None
        };
        Ok(ObsServer { http, stop, sampler })
    }
}
