//! Instance-artifact cache.
//!
//! Batch workloads hit the same instance repeatedly (parameter sweeps,
//! seed studies, strategy shoot-outs). The expensive host-side
//! preprocessing — `O(n² log n)` nearest-neighbour list construction, the
//! greedy tour that seeds `τ₀`, and the cost-model backend decision — is
//! identical across those jobs, so the engine computes each once per
//! `(instance content hash, parameter slice)` and shares it.
//!
//! Keys use [`TspInstance::content_hash`]: the *problem* identity, not the
//! allocation, so renamed or re-parsed copies of an instance share entries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use aco_tsp::{nearest_neighbor_tour, NearestNeighborLists, TspInstance};

use crate::solver::Backend;

/// Precomputed host-side artifacts for one `(instance, nn depth)` pair.
#[derive(Debug, Clone)]
pub struct InstanceArtifacts {
    /// Content hash of the instance these artifacts belong to.
    pub content_hash: u64,
    /// Nearest-neighbour candidate lists at the requested depth, shared
    /// (`Arc`) so every colony in a batch borrows one allocation.
    pub nn: Arc<NearestNeighborLists>,
    /// Length of the greedy nearest-neighbour tour from city 0 (`C_nn`,
    /// which seeds `τ₀ = m / C_nn`).
    pub c_nn: u64,
}

/// Monotonic cache counters (snapshot via [`ArtifactCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifact lookups served from the cache.
    pub artifact_hits: u64,
    /// Artifact lookups that had to build NN lists + greedy tour.
    pub artifact_misses: u64,
    /// `auto` backend decisions served from the cache.
    pub decision_hits: u64,
    /// `auto` backend decisions that had to run the cost models.
    pub decision_misses: u64,
    /// Artifact entries evicted by the LRU bound.
    pub artifact_evictions: u64,
    /// Decision entries evicted by the LRU bound.
    pub decision_evictions: u64,
}

/// Decision-cache key: instance content plus every parameter the probe
/// timings depend on — candidate depth, colony size, and the `(α, β, ρ)`
/// bit patterns (they steer the simulated kernels' control flow) — plus
/// the allowed-candidate mask (which device models the engine's pool
/// offers this job, and whether the CPU is allowed; see
/// `auto::resolve`) and the per-iteration local-search discriminant
/// (local search is priced into every candidate, so jobs with different
/// strategies on one instance never share a decision). The job seed is
/// deliberately excluded: probes run under a canonical seed (see
/// `auto::PROBE_SEED`), so the decision is a pure function of this key
/// and cannot vary with which job of a batch populates the cache.
pub(crate) type DecisionKey = (u64, usize, usize, u32, u32, u32, u8, u8);

/// One exactly-once cache slot (see [`ArtifactCache`] on contention).
type Slot<T> = Arc<OnceLock<T>>;

/// A slot plus its last-touched stamp (for LRU eviction).
#[derive(Debug)]
struct Entry<T> {
    slot: Slot<T>,
    last_used: u64,
}

/// Artifact store: `(content hash, nn depth)` → shared build-once slot.
type ArtifactMap = HashMap<(u64, usize), Entry<Arc<InstanceArtifacts>>>;

/// Default LRU bound for each of the two maps (entries, not bytes; an
/// artifact entry is `O(n · nn)` words).
pub const DEFAULT_CACHE_ENTRIES: usize = 256;

/// Shared, thread-safe artifact store.
///
/// Each key maps to a [`OnceLock`] cell, so concurrent workers racing on
/// the same key compute the value exactly once (the laggards block on the
/// cell, not on a map-wide lock); workers on different keys never
/// serialize behind a build.
///
/// Both maps are bounded: inserting past the capacity evicts the
/// least-recently-used entry, so a long-lived engine's memory stays
/// `O(capacity)` no matter how many distinct instances pass through.
/// Eviction only drops the map's reference — jobs already holding the
/// `Arc` (or mid-build on the cell) are unaffected.
#[derive(Debug)]
pub struct ArtifactCache {
    artifacts: Mutex<ArtifactMap>,
    decisions: Mutex<HashMap<DecisionKey, Entry<Backend>>>,
    capacity: usize,
    tick: AtomicU64,
    artifact_hits: AtomicU64,
    artifact_misses: AtomicU64,
    decision_hits: AtomicU64,
    decision_misses: AtomicU64,
    artifact_evictions: AtomicU64,
    decision_evictions: AtomicU64,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_ENTRIES)
    }
}

/// Touch `key` in `map` (stamping it `tick`) and return its slot,
/// inserting — and evicting the LRU entry beyond `capacity` — if absent.
/// Returns `(slot, evicted)`. Callers must draw `tick` *while holding
/// the map lock*, so stamps are monotone with insertion order and the
/// eviction minimum is genuinely least-recently-used.
fn touch<K: std::hash::Hash + Eq + Copy, T>(
    map: &mut HashMap<K, Entry<T>>,
    key: K,
    tick: u64,
    capacity: usize,
) -> (Slot<T>, bool) {
    if let Some(e) = map.get_mut(&key) {
        e.last_used = tick;
        return (Arc::clone(&e.slot), false);
    }
    let mut evicted = false;
    if map.len() >= capacity.max(1) {
        // The fresh key carries the newest stamp, so the minimum is
        // always some older entry.
        if let Some(&lru) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k) {
            map.remove(&lru);
            evicted = true;
        }
    }
    let slot: Slot<T> = Arc::default();
    map.insert(key, Entry { slot: Arc::clone(&slot), last_used: tick });
    (slot, evicted)
}

impl ArtifactCache {
    /// Cache with the default entry bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache bounded to `capacity` entries per map (artifacts and
    /// decisions each; a zero capacity is treated as 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ArtifactCache {
            artifacts: Mutex::new(HashMap::new()),
            decisions: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            artifact_hits: AtomicU64::new(0),
            artifact_misses: AtomicU64::new(0),
            decision_hits: AtomicU64::new(0),
            decision_misses: AtomicU64::new(0),
            artifact_evictions: AtomicU64::new(0),
            decision_evictions: AtomicU64::new(0),
        }
    }

    /// The configured per-map entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch (or build exactly once and insert) the artifacts for `inst`
    /// at candidate depth `nn_size`. The depth is clamped to `n - 1`
    /// before keying (list construction clamps the same way), so
    /// equivalent requested depths on small instances share one entry.
    pub fn artifacts(&self, inst: &TspInstance, nn_size: usize) -> Arc<InstanceArtifacts> {
        self.artifacts_with_origin(inst, nn_size).0
    }

    /// [`ArtifactCache::artifacts`] plus whether *this call* built the
    /// value (`true` = miss). What per-job traces record as their cache
    /// outcome — the aggregate counters cannot attribute a hit to a job.
    pub fn artifacts_with_origin(
        &self,
        inst: &TspInstance,
        nn_size: usize,
    ) -> (Arc<InstanceArtifacts>, bool) {
        let nn_size = Self::effective_depth(inst, nn_size);
        let hash = inst.content_hash();
        let (cell, evicted) = {
            let mut map = self.artifacts.lock().expect("artifact map");
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            touch(&mut map, (hash, nn_size), tick, self.capacity)
        };
        if evicted {
            self.artifact_evictions.fetch_add(1, Ordering::Relaxed);
        }
        let mut built_here = false;
        let value = Arc::clone(cell.get_or_init(|| {
            built_here = true;
            Arc::new(InstanceArtifacts {
                content_hash: hash,
                nn: Arc::new(
                    NearestNeighborLists::build(inst.matrix(), nn_size)
                        .expect("instance has >= 2 cities"),
                ),
                c_nn: nearest_neighbor_tour(inst.matrix(), 0).length(inst.matrix()),
            })
        }));
        if built_here {
            self.artifact_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.artifact_hits.fetch_add(1, Ordering::Relaxed);
        }
        (value, built_here)
    }

    /// Fetch a cached `auto` decision, or compute one with `decide`
    /// (exactly once per key, even under contention) and remember it.
    pub(crate) fn decision(&self, key: DecisionKey, decide: impl FnOnce() -> Backend) -> Backend {
        let (cell, evicted) = {
            let mut map = self.decisions.lock().expect("decision map");
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            touch(&mut map, key, tick, self.capacity)
        };
        if evicted {
            self.decision_evictions.fetch_add(1, Ordering::Relaxed);
        }
        let mut decided_here = false;
        let value = cell
            .get_or_init(|| {
                decided_here = true;
                decide()
            })
            .clone();
        if decided_here {
            self.decision_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.decision_hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// The candidate-list depth actually built for `inst` when `nn_size`
    /// is requested (what both cache key families use).
    pub fn effective_depth(inst: &TspInstance, nn_size: usize) -> usize {
        nn_size.min(inst.n().saturating_sub(1)).max(1)
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            artifact_misses: self.artifact_misses.load(Ordering::Relaxed),
            decision_hits: self.decision_hits.load(Ordering::Relaxed),
            decision_misses: self.decision_misses.load(Ordering::Relaxed),
            artifact_evictions: self.artifact_evictions.load(Ordering::Relaxed),
            decision_evictions: self.decision_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::uniform_random;

    #[test]
    fn second_lookup_hits() {
        let cache = ArtifactCache::new();
        let inst = uniform_random("c", 30, 400.0, 1);
        let a = cache.artifacts(&inst, 10);
        let b = cache.artifacts(&inst, 10);
        assert!(Arc::ptr_eq(&a, &b), "same Arc must be shared");
        let s = cache.stats();
        assert_eq!(s.artifact_misses, 1);
        assert_eq!(s.artifact_hits, 1);
    }

    #[test]
    fn depth_is_part_of_the_key() {
        let cache = ArtifactCache::new();
        let inst = uniform_random("c", 30, 400.0, 1);
        let a = cache.artifacts(&inst, 10);
        let b = cache.artifacts(&inst, 15);
        assert_eq!(a.content_hash, b.content_hash);
        assert_ne!(a.nn.depth(), b.nn.depth());
        assert_eq!(cache.stats().artifact_misses, 2);
    }

    #[test]
    fn renamed_instance_shares_artifacts() {
        let cache = ArtifactCache::new();
        let inst = uniform_random("orig", 25, 400.0, 2);
        let renamed =
            aco_tsp::TspInstance::from_matrix("other-name", inst.matrix().clone()).unwrap();
        cache.artifacts(&inst, 8);
        cache.artifacts(&renamed, 8);
        let s = cache.stats();
        assert_eq!((s.artifact_misses, s.artifact_hits), (1, 1));
    }
}
