//! The unified [`Solver`] trait and its adapters over every backend the
//! workspace implements.
//!
//! The paper benchmarks each parallelisation strategy in isolation; a
//! production engine needs them interchangeable. One [`SolveRequest`] names
//! an instance, parameters and a [`Backend`]; [`build_solver`] turns the
//! resolved backend into a boxed [`Solver`] driven under a
//! [`SolveCtx`](aco_core::lifecycle::SolveCtx): every adapter delegates its
//! iteration loop to the colony's own ctx-driven `run_ctx`, so cancellation
//! and deadlines are checked — and iteration-best events emitted — at every
//! iteration boundary *inside* each CPU and GPU colony, and `modeled_ms`
//! accumulates alongside.
//!
//! All adapters are deterministic in the request seed: given the same
//! `SolveRequest`, an uncancelled `solve` produces a bit-identical
//! [`SolveReport`] — and an identical iteration-event sequence — no matter
//! which engine worker runs it or how many workers exist.

use std::sync::Arc;
use std::time::Duration;

use aco_core::cpu::ant_system::model as cpu_model;
use aco_core::cpu::{run_parallel_ctx, AcsParams, AntColonySystem, MaxMinAntSystem, MmasParams};
use aco_core::gpu::{GpuAntColonySystem, GpuAntSystem, PheromoneStrategy, TourStrategy};
use aco_core::lifecycle::{RunOutcome, SolveCtx, StopReason};
use aco_core::{AcoParams, AntSystem, CpuModel, TourPolicy};
use aco_devices::{DeviceAffinity, DeviceId, DeviceModel, PlacementError};
use aco_localsearch::{LocalSearch, LsScope};
use aco_simt::{DeviceSpec, SimtError};
use aco_tsp::{Tour, TspInstance};

use crate::cache::InstanceArtifacts;

/// Errors a solve job can end with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The simulated device rejected a kernel launch.
    Simt(SimtError),
    /// The device pool rejected the job's placement at submit time
    /// (unknown / incompatible pinned device, or no compatible device in
    /// the pool). The job never queues and never touches any cache.
    Placement(PlacementError),
    /// The job produced no solution (e.g. zero iterations requested).
    NoSolution,
    /// The job was cancelled before it produced any result (while queued,
    /// or before its first iteration completed). A job cancelled *after*
    /// at least one iteration instead reports `Ok` with
    /// [`JobOutcome::Cancelled`] and its partial best.
    Cancelled,
    /// The job's deadline expired before it produced any result; after at
    /// least one iteration it reports [`JobOutcome::DeadlineExpired`].
    DeadlineExpired,
    /// The job panicked or exhausted its retry budget; the payload
    /// carries the failing attempt's context so batch logs are
    /// actionable without a timeline lookup.
    Failed {
        /// The failing job's id.
        job: u64,
        /// Label of the backend the failing attempt ran.
        backend: String,
        /// The device the failing attempt ran on (None for CPU).
        device: Option<DeviceId>,
        /// The panic payload or terminal error message.
        message: String,
    },
    /// `Engine::wait` was given an id this engine never issued, or one
    /// whose result was already claimed by an earlier `wait`.
    UnknownJob,
}

impl From<SimtError> for EngineError {
    fn from(e: SimtError) -> Self {
        EngineError::Simt(e)
    }
}

impl From<PlacementError> for EngineError {
    fn from(e: PlacementError) -> Self {
        EngineError::Placement(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Simt(e) => write!(f, "device error: {e}"),
            EngineError::Placement(e) => write!(f, "placement rejected: {e}"),
            EngineError::NoSolution => write!(f, "job finished without a solution"),
            EngineError::Cancelled => write!(f, "job cancelled before any result"),
            EngineError::DeadlineExpired => write!(f, "job deadline expired before any result"),
            EngineError::Failed { job, backend, device, message } => match device {
                Some(d) => write!(f, "job {job} failed on {backend} ({d}): {message}"),
                None => write!(f, "job {job} failed on {backend}: {message}"),
            },
            EngineError::UnknownJob => write!(f, "unknown or already-claimed job id"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The simulated devices a GPU backend can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuDevice {
    /// Tesla C1060 (CC 1.3, the paper's primary device).
    TeslaC1060,
    /// Tesla M2050 (Fermi, CC 2.0).
    TeslaM2050,
}

impl GpuDevice {
    /// Both devices, in the paper's order.
    pub const ALL: [GpuDevice; 2] = [GpuDevice::TeslaC1060, GpuDevice::TeslaM2050];

    /// The full device model.
    pub fn spec(self) -> DeviceSpec {
        match self {
            GpuDevice::TeslaC1060 => DeviceSpec::tesla_c1060(),
            GpuDevice::TeslaM2050 => DeviceSpec::tesla_m2050(),
        }
    }

    /// The pool-level hardware generation this names.
    pub fn model(self) -> DeviceModel {
        match self {
            GpuDevice::TeslaC1060 => DeviceModel::TeslaC1060,
            GpuDevice::TeslaM2050 => DeviceModel::TeslaM2050,
        }
    }

    /// The [`GpuDevice`] naming a pool model (the enums are isomorphic;
    /// `GpuDevice` is the backend-facing name, `DeviceModel` the
    /// pool-facing one).
    pub fn from_model(model: DeviceModel) -> GpuDevice {
        match model {
            DeviceModel::TeslaC1060 => GpuDevice::TeslaC1060,
            DeviceModel::TeslaM2050 => GpuDevice::TeslaM2050,
        }
    }

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            GpuDevice::TeslaC1060 => "c1060",
            GpuDevice::TeslaM2050 => "m2050",
        }
    }
}

/// Which solver implementation a job runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// The sequential ACOTSP-style Ant System (the paper's baseline).
    CpuSequential {
        /// Construction rule.
        policy: TourPolicy,
    },
    /// The multi-threaded CPU colony (per-ant decorrelated streams;
    /// results are independent of `threads`).
    CpuParallel {
        /// Construction rule.
        policy: TourPolicy,
        /// Worker threads for construction.
        threads: usize,
    },
    /// Ant Colony System on the CPU.
    CpuAcs(AcsParams),
    /// MAX-MIN Ant System on the CPU.
    CpuMmas(MmasParams),
    /// Both ACO phases on a simulated GPU, any Table II × Table III/IV
    /// strategy combination.
    Gpu {
        /// Target device.
        device: GpuDevice,
        /// Tour-construction kernel (Table II row).
        tour: TourStrategy,
        /// Pheromone-update kernel (Table III/IV row).
        pheromone: PheromoneStrategy,
    },
    /// Ant Colony System on a simulated GPU.
    GpuAcs {
        /// Target device.
        device: GpuDevice,
        /// ACS-specific knobs.
        acs: AcsParams,
    },
    /// Let the engine pick the fastest backend for this instance using the
    /// analytic cost models (see [`crate::auto`]).
    Auto,
}

impl Backend {
    /// The device model this backend must be placed on, or `None` for
    /// CPU backends and for [`Backend::Auto`] (whose need is only known
    /// once resolved).
    pub fn required_model(&self) -> Option<DeviceModel> {
        match self {
            Backend::Gpu { device, .. } | Backend::GpuAcs { device, .. } => Some(device.model()),
            _ => None,
        }
    }

    /// Human-readable label (stable; used in reports and benchmarks).
    pub fn label(&self) -> String {
        match self {
            Backend::CpuSequential { policy } => format!("cpu-seq/{policy:?}"),
            Backend::CpuParallel { policy, threads } => format!("cpu-par{threads}/{policy:?}"),
            Backend::CpuAcs(_) => "cpu-acs".into(),
            Backend::CpuMmas(_) => "cpu-mmas".into(),
            Backend::Gpu { device, tour, pheromone } => {
                format!("gpu-{}/{tour:?}+{pheromone:?}", device.label())
            }
            Backend::GpuAcs { device, .. } => format!("gpu-acs-{}", device.label()),
            Backend::Auto => "auto".into(),
        }
    }
}

/// Scheduling priority of a job. Higher priorities are popped first;
/// within a priority class jobs run in submission order. Queued jobs can
/// be re-prioritised mid-flight via `JobHandle::set_priority`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: runs when nothing more urgent is queued.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Jumps ahead of every queued `Normal`/`Low` job.
    High,
}

impl Priority {
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Priority {
        match v {
            0 => Priority::Low,
            2 => Priority::High,
            _ => Priority::Normal,
        }
    }
}

/// Default bound of a job's progress-event buffer (events, not bytes).
pub const DEFAULT_PROGRESS_EVENTS: usize = 1024;

/// Where a failed attempt's retry is allowed to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Failover {
    /// Retry on the device the failed attempt used (or the same CPU
    /// backend). The conservative choice for debugging a flaky kernel.
    Same,
    /// Re-place each retry onto a compatible device *other than* the ones
    /// that already failed this job (wrapping back to them only when no
    /// alternative exists). Pinned jobs never move — a pin is a contract,
    /// so their retries stay in place.
    #[default]
    HealthyDevice,
    /// Like `HealthyDevice`, but when no healthy compatible device
    /// remains (or a pinned device failed), degrade gracefully to the CPU
    /// reference backend instead of failing the job.
    CpuFallback,
}

/// Supervised-retry policy of one job. The default (`max_attempts = 1`)
/// is exactly the pre-retry engine: one attempt, no watchdog, failures
/// surface immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first run included; clamped to ≥ 1). Retries stop
    /// early when the remaining deadline budget cannot fit another
    /// attempt.
    pub max_attempts: u32,
    /// Pause between attempts. Deadline-aware: a retry that could not
    /// start before the job deadline is not attempted.
    pub backoff: Duration,
    /// Where retries run.
    pub failover: Failover,
    /// Per-attempt execution watchdog, measured from the attempt's start
    /// (distinct from the job deadline, which is measured from
    /// submission): an attempt exceeding it is treated as a hung device
    /// and retried. `None` disables the watchdog.
    pub watchdog: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No supervision: one attempt, failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            failover: Failover::HealthyDevice,
            watchdog: None,
        }
    }

    /// `retries` retries on top of the first attempt, no backoff, default
    /// failover.
    pub fn retries(retries: u32) -> Self {
        RetryPolicy { max_attempts: retries.saturating_add(1), ..RetryPolicy::none() }
    }

    /// Builder: pause between attempts.
    pub fn backoff(mut self, pause: Duration) -> Self {
        self.backoff = pause;
        self
    }

    /// Builder: where retries run.
    pub fn failover(mut self, f: Failover) -> Self {
        self.failover = f;
        self
    }

    /// Builder: per-attempt execution watchdog.
    pub fn watchdog(mut self, budget: Duration) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// The attempt budget with the ≥ 1 clamp applied.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// One failed attempt of a supervised job, as recorded in
/// [`SolveReport::faults`] (and in the observability timeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptFault {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The device the attempt ran on (`None` for CPU).
    pub device: Option<DeviceId>,
    /// Label of the backend the attempt ran.
    pub backend: String,
    /// The error that ended the attempt.
    pub error: String,
    /// The fault the injection plan scheduled for this attempt, if fault
    /// injection is armed (genuine faults leave this `None`).
    pub injected: Option<aco_faults::FaultKind>,
}

/// One solve job.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// The instance to solve (shared, immutable).
    pub instance: Arc<TspInstance>,
    /// ACO parameters (α, β, ρ, m, NN depth, seed).
    pub params: AcoParams,
    /// Backend to run, or [`Backend::Auto`].
    pub backend: Backend,
    /// Iterations to run.
    pub iterations: usize,
    /// Optional seed override; when set it replaces `params.seed`, so one
    /// request template can fan out over seeds.
    pub seed: Option<u64>,
    /// Initial scheduling priority.
    pub priority: Priority,
    /// Local search for this job: a per-iteration strategy every colony
    /// runs at its iteration boundaries (GPU colonies execute
    /// [`LocalSearch::TwoOptNn`] as a simulated kernel family), or
    /// [`LocalSearch::PostPass`] for the legacy end-of-run polish.
    /// Deterministic and never worsening either way.
    pub local_search: LocalSearch,
    /// Which tours the per-iteration strategy improves (iteration-best
    /// by default; [`LsScope::AllAnts`] for the full ACOTSP hybrid).
    pub ls_scope: LsScope,
    /// Optional wall-clock budget, measured from submission (queue time
    /// included). An expired job stops at its next iteration boundary and
    /// reports [`JobOutcome::DeadlineExpired`].
    pub timeout: Option<Duration>,
    /// Bound of this job's progress-event buffer; once full, the oldest
    /// events are dropped (and counted) so the solver never blocks on a
    /// slow consumer.
    pub progress_events: usize,
    /// Where in the device pool the job may run. `Any` (the default)
    /// lets the pool pick the least-loaded compatible device; `Pinned`
    /// is honoured exactly or rejected at submit with
    /// [`EngineError::Placement`]. Ignored by CPU backends except that a
    /// pinned affinity on a CPU job is a typed error (the job will never
    /// run on a device).
    pub affinity: DeviceAffinity,
    /// Supervised-retry policy. The default ([`RetryPolicy::none`]) is
    /// one attempt with no watchdog — exactly the unsupervised engine.
    pub retry: RetryPolicy,
}

impl SolveRequest {
    /// A request with library defaults: auto backend, 10 iterations,
    /// normal priority, no local search, no deadline.
    pub fn new(instance: Arc<TspInstance>, params: AcoParams) -> Self {
        SolveRequest {
            instance,
            params,
            backend: Backend::Auto,
            iterations: 10,
            seed: None,
            priority: Priority::Normal,
            local_search: LocalSearch::None,
            ls_scope: LsScope::IterationBest,
            timeout: None,
            progress_events: DEFAULT_PROGRESS_EVENTS,
            affinity: DeviceAffinity::Any,
            retry: RetryPolicy::none(),
        }
    }

    /// Builder: backend.
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Builder: iteration count.
    pub fn iterations(mut self, iters: usize) -> Self {
        self.iterations = iters;
        self
    }

    /// Builder: seed override.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = Some(s);
        self
    }

    /// Builder: initial scheduling priority.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Builder: local-search strategy.
    pub fn local_search(mut self, ls: LocalSearch) -> Self {
        self.local_search = ls;
        self
    }

    /// Builder: which tours the per-iteration strategy improves.
    pub fn local_search_scope(mut self, scope: LsScope) -> Self {
        self.ls_scope = scope;
        self
    }

    /// Builder: wall-clock budget from submission.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Builder: progress-event buffer bound (clamped to ≥ 1).
    pub fn progress_events(mut self, events: usize) -> Self {
        self.progress_events = events.max(1);
        self
    }

    /// Builder: device affinity.
    pub fn affinity(mut self, affinity: DeviceAffinity) -> Self {
        self.affinity = affinity;
        self
    }

    /// Builder: supervised-retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// The seed this request actually runs with.
    pub fn effective_seed(&self) -> u64 {
        self.seed.unwrap_or(self.params.seed)
    }
}

/// How a job's lifecycle ended (recorded in every [`SolveReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobOutcome {
    /// Every requested iteration ran.
    Completed,
    /// Cancelled mid-flight; `best_tour`/`iterations` reflect the work
    /// done before the cancellation check stopped the colony.
    Cancelled,
    /// The deadline expired mid-flight; partial results as above.
    DeadlineExpired,
}

impl From<Option<StopReason>> for JobOutcome {
    fn from(stopped: Option<StopReason>) -> Self {
        match stopped {
            None => JobOutcome::Completed,
            Some(StopReason::Cancelled) => JobOutcome::Cancelled,
            Some(StopReason::DeadlineExpired) => JobOutcome::DeadlineExpired,
        }
    }
}

/// The outcome of one solve job.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Instance name.
    pub instance: String,
    /// Instance size.
    pub n: usize,
    /// The backend that actually ran (never [`Backend::Auto`]).
    pub backend: Backend,
    /// Best tour found.
    pub best_tour: Tour,
    /// Exact integer length of `best_tour`.
    pub best_len: u64,
    /// Iterations executed.
    pub iterations: usize,
    /// Modeled milliseconds the run would have cost on the target hardware
    /// (CPU cost model or the simulator's kernel-time estimates — the same
    /// clocks the paper's speed-up figures use).
    pub modeled_ms: f64,
    /// The seed the job ran with.
    pub seed: u64,
    /// How the job's lifecycle ended; anything but
    /// [`JobOutcome::Completed`] means `iterations` is a partial count.
    pub outcome: JobOutcome,
    /// Pool id of the simulated device the job ran on (`None` for CPU
    /// backends). Deterministic: a fixed batch on a fixed pool reports
    /// identical device ids at any worker count.
    pub device: Option<DeviceId>,
    /// Total tour-length reduction attributable to local search — the
    /// per-iteration passes inside the colony plus the engine's
    /// [`LocalSearch::PostPass`] polish. 0 when no local search ran.
    pub local_search_improvement: u64,
    /// Stagnation restarts the colony fired during the run (trail
    /// re-initialisations after `restart_after` unimproved iterations).
    /// Only MMAS restarts today; every other backend reports 0.
    pub restarts: u64,
    /// Attempts the supervisor ran to produce this report (1 without
    /// retries: the unsupervised engine reports exactly 1).
    pub attempts: u32,
    /// The failed attempts that preceded this result, oldest first
    /// (empty when the first attempt succeeded).
    pub faults: Vec<AttemptFault>,
}

/// A backend adapter: a ctx-driven iteration loop over one colony.
pub trait Solver {
    /// Stable label of the concrete backend.
    fn backend(&self) -> Backend;

    /// Run up to `iterations` iterations under `ctx`. Every adapter
    /// delegates to the colony's own `run_ctx`, so cancellation/deadline
    /// checks and iteration-best events happen inside the colony loop.
    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError>;

    /// Best tour found so far.
    fn best(&self) -> Option<(Tour, u64)>;

    /// Modeled milliseconds accumulated so far.
    fn modeled_ms(&self) -> f64;

    /// Tour-length reduction the colony's per-iteration local search has
    /// contributed so far (0 for colonies without one).
    fn local_search_improvement(&self) -> u64 {
        0
    }

    /// Stagnation restarts the colony has fired so far (0 for colonies
    /// without a restart mechanism; MMAS overrides).
    fn restarts(&self) -> u64 {
        0
    }

    /// Drive the run and assemble the report. A run stopped before its
    /// first completed iteration has no solution to report and fails with
    /// [`EngineError::Cancelled`] / [`EngineError::DeadlineExpired`]
    /// (or [`EngineError::NoSolution`] for a zero-iteration request);
    /// otherwise the partial best is reported with the matching
    /// [`JobOutcome`].
    fn solve(
        &mut self,
        iterations: usize,
        seed: u64,
        ctx: &SolveCtx,
    ) -> Result<SolveReport, EngineError> {
        let outcome = self.run(iterations, ctx)?;
        let Some((best_tour, best_len)) = self.best() else {
            return Err(match outcome.stopped {
                Some(StopReason::Cancelled) => EngineError::Cancelled,
                Some(StopReason::DeadlineExpired) => EngineError::DeadlineExpired,
                None => EngineError::NoSolution,
            });
        };
        Ok(SolveReport {
            instance: String::new(), // filled by the caller, which owns the instance
            n: best_tour.n(),
            backend: self.backend(),
            best_tour,
            best_len,
            iterations: outcome.iterations,
            modeled_ms: self.modeled_ms(),
            seed,
            outcome: outcome.stopped.into(),
            device: None, // filled by the scheduler, which owns the placement
            local_search_improvement: self.local_search_improvement(),
            restarts: self.restarts(),
            attempts: 1, // the supervisor overwrites this on retried jobs
            faults: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// CPU sequential

struct CpuSequentialSolver<'a> {
    aco: AntSystem<'a>,
    policy: TourPolicy,
    model: CpuModel,
    /// Analytic per-iteration cost of the configured local search.
    ls_iter_ms: f64,
    ms: f64,
}

impl Solver for CpuSequentialSolver<'_> {
    fn backend(&self) -> Backend {
        Backend::CpuSequential { policy: self.policy }
    }

    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError> {
        let CpuSequentialSolver { aco, policy, model, ls_iter_ms, ms } = self;
        let trace = ctx.trace().map(std::sync::Arc::clone);
        let mut k = 0u64;
        Ok(aco.run_ctx(*policy, iterations, ctx, |rep| {
            // CPU phases priced from the measured counters: choice-table
            // refresh + tour construction make the construction span,
            // the pheromone update its own, local search analytic.
            let construct = model.time_ms(&rep.counters.choice) + model.time_ms(&rep.counters.tour);
            let update = model.time_ms(&rep.counters.update);
            if let Some(trace) = &trace {
                trace.record_iteration(k, construct, *ls_iter_ms, update);
            }
            k += 1;
            *ms += construct + update + *ls_iter_ms;
        }))
    }

    fn best(&self) -> Option<(Tour, u64)> {
        self.aco.best().map(|(t, l)| (t.clone(), l))
    }

    fn modeled_ms(&self) -> f64 {
        self.ms
    }

    fn local_search_improvement(&self) -> u64 {
        self.aco.local_search_improvement()
    }
}

// ---------------------------------------------------------------------------
// CPU parallel colony

struct CpuParallelSolver<'a> {
    aco: AntSystem<'a>,
    policy: TourPolicy,
    threads: usize,
    iteration: u64,
    best: Option<(Tour, u64)>,
    model: CpuModel,
    /// Analytic per-iteration cost of the configured local search (the
    /// pass runs on the fan-in thread, so it is not divided by
    /// `threads`).
    ls_iter_ms: f64,
    ms: f64,
}

impl Solver for CpuParallelSolver<'_> {
    fn backend(&self) -> Backend {
        Backend::CpuParallel { policy: self.policy, threads: self.threads }
    }

    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError> {
        let CpuParallelSolver { aco, policy, threads, iteration, best, model, ls_iter_ms, ms } =
            self;
        // Construction fans out over `threads`; choice refresh and the
        // pheromone update stay sequential (memory-bound, as measured by
        // the per-iteration counters below). Model accordingly.
        let n = aco.n();
        let m = aco.m();
        let tour_counters = match policy {
            TourPolicy::FullProbabilistic => cpu_model::full_tour_counters(n, m),
            TourPolicy::NearestNeighborList => {
                cpu_model::nn_tour_counters(n, m, aco.params().nn_size.min(n - 1))
            }
        };
        let tour_ms = model.time_ms(&tour_counters) / (*threads).max(1) as f64;
        let trace = ctx.trace().map(std::sync::Arc::clone);
        let base = *iteration;
        let mut k = 0u64;
        let outcome =
            run_parallel_ctx(aco, *policy, *threads, iterations, *iteration, ctx, best, |c| {
                // The fan-in counters measure choice refresh + pheromone
                // update together; the trace lumps both under the
                // pheromone span, construction is the fanned-out tour.
                let update = model.time_ms(c);
                if let Some(trace) = &trace {
                    trace.record_iteration(base + k, tour_ms, *ls_iter_ms, update);
                }
                k += 1;
                *ms += update + tour_ms + *ls_iter_ms;
            });
        *iteration += outcome.iterations as u64;
        Ok(outcome)
    }

    fn best(&self) -> Option<(Tour, u64)> {
        self.best.clone()
    }

    fn modeled_ms(&self) -> f64 {
        self.ms
    }

    fn local_search_improvement(&self) -> u64 {
        self.aco.local_search_improvement()
    }
}

// ---------------------------------------------------------------------------
// CPU ACS / MMAS

struct CpuAcsSolver<'a> {
    acs: AntColonySystem<'a>,
    acs_params: AcsParams,
    per_iter_ms: f64,
    /// Analytic `(choice, tour, update)` split of `per_iter_ms` minus
    /// local search (the ACS clock is analytic, so the trace spans are
    /// the same for every iteration).
    phase_ms: (f64, f64, f64),
    ls_iter_ms: f64,
    iters: u64,
}

impl Solver for CpuAcsSolver<'_> {
    fn backend(&self) -> Backend {
        Backend::CpuAcs(self.acs_params)
    }

    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError> {
        let base = self.iters;
        let outcome = self.acs.run_ctx(iterations, ctx);
        self.iters += outcome.iterations as u64;
        if let Some(trace) = ctx.trace() {
            let (choice, tour, update) = self.phase_ms;
            for k in 0..outcome.iterations as u64 {
                trace.record_iteration(base + k, choice + tour, self.ls_iter_ms, update);
            }
        }
        Ok(outcome)
    }

    fn best(&self) -> Option<(Tour, u64)> {
        self.acs.best().map(|(t, l)| (t.clone(), l))
    }

    fn modeled_ms(&self) -> f64 {
        self.per_iter_ms * self.iters as f64
    }

    fn local_search_improvement(&self) -> u64 {
        self.acs.local_search_improvement()
    }
}

struct CpuMmasSolver<'a> {
    mmas: MaxMinAntSystem<'a>,
    mmas_params: MmasParams,
    per_iter_ms: f64,
    /// Analytic `(choice, tour, update)` split, as in [`CpuAcsSolver`].
    phase_ms: (f64, f64, f64),
    ls_iter_ms: f64,
    iters: u64,
}

impl Solver for CpuMmasSolver<'_> {
    fn backend(&self) -> Backend {
        Backend::CpuMmas(self.mmas_params)
    }

    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError> {
        let base = self.iters;
        let outcome = self.mmas.run_ctx(iterations, ctx);
        self.iters += outcome.iterations as u64;
        if let Some(trace) = ctx.trace() {
            let (choice, tour, update) = self.phase_ms;
            for k in 0..outcome.iterations as u64 {
                trace.record_iteration(base + k, choice + tour, self.ls_iter_ms, update);
            }
        }
        Ok(outcome)
    }

    fn best(&self) -> Option<(Tour, u64)> {
        self.mmas.best().map(|(t, l)| (t.clone(), l))
    }

    fn modeled_ms(&self) -> f64 {
        self.per_iter_ms * self.iters as f64
    }

    fn local_search_improvement(&self) -> u64 {
        self.mmas.local_search_improvement()
    }

    fn restarts(&self) -> u64 {
        self.mmas.restarts()
    }
}

// ---------------------------------------------------------------------------
// GPU Ant System / ACS

struct GpuSolver<'a> {
    sys: GpuAntSystem<'a>,
    device: GpuDevice,
    tour: TourStrategy,
    pheromone: PheromoneStrategy,
    ms: f64,
}

impl Solver for GpuSolver<'_> {
    fn backend(&self) -> Backend {
        Backend::Gpu { device: self.device, tour: self.tour, pheromone: self.pheromone }
    }

    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError> {
        let GpuSolver { sys, ms, .. } = self;
        Ok(sys.run_ctx(iterations, ctx, |rep| *ms += rep.tour_ms + rep.pheromone_ms + rep.ls_ms)?)
    }

    fn best(&self) -> Option<(Tour, u64)> {
        self.sys.best().map(|(t, l)| (t.clone(), l))
    }

    fn modeled_ms(&self) -> f64 {
        self.ms
    }

    fn local_search_improvement(&self) -> u64 {
        self.sys.local_search_improvement()
    }
}

struct GpuAcsSolver<'a> {
    sys: GpuAntColonySystem<'a>,
    device: GpuDevice,
    acs: AcsParams,
    ms: f64,
}

impl Solver for GpuAcsSolver<'_> {
    fn backend(&self) -> Backend {
        Backend::GpuAcs { device: self.device, acs: self.acs }
    }

    fn run(&mut self, iterations: usize, ctx: &SolveCtx) -> Result<RunOutcome, EngineError> {
        let GpuAcsSolver { sys, ms, .. } = self;
        Ok(sys.run_ctx(iterations, ctx, |tour_ms, update_ms, ls_ms| {
            *ms += tour_ms + update_ms + ls_ms
        })?)
    }

    fn best(&self) -> Option<(Tour, u64)> {
        self.sys.best().map(|(t, l)| (t.clone(), l))
    }

    fn modeled_ms(&self) -> f64 {
        self.ms
    }

    fn local_search_improvement(&self) -> u64 {
        self.sys.local_search_improvement()
    }
}

/// Analytic `(choice, tour, update)` per-iteration milliseconds of a
/// candidate-list CPU colony — the single pricing formula shared by the
/// ACS/MMAS report clocks and the `auto` cost model (`crate::auto`).
pub(crate) fn cpu_phase_ms(n: usize, m: usize, nn: usize, model: &CpuModel) -> (f64, f64, f64) {
    let nn = nn.min(n.saturating_sub(1)).max(1);
    (
        model.time_ms(&cpu_model::choice_counters(n)),
        model.time_ms(&cpu_model::nn_tour_counters(n, m, nn)),
        model.time_ms(&cpu_model::update_counters(n, m)),
    )
}

/// Rounds the analytic local-search model assumes per iteration-best
/// pass: candidate scans repeat until the move stream dries up, and a
/// handful of best-improvement rounds is what construction-quality tours
/// take in practice (the GPU side prices the same constant against a
/// probed kernel round — see `crate::auto`).
pub(crate) const LS_ROUNDS_EST: u64 = 6;

/// Analytic per-iteration cost of a host-side local-search pass: one
/// candidate evaluation is ~6 loads + 6 flops + 3 branches + 4 ALU ops,
/// and a round evaluates every city's candidate set (both directions for
/// 2-opt, three segment lengths for Or-opt). Used by the report clocks
/// and the `auto` cost model, so enabling local search genuinely moves
/// backend selection.
pub(crate) fn cpu_ls_iter_ms(ls: LocalSearch, n: usize, nn: usize, model: &CpuModel) -> f64 {
    let per_city = match ls.per_iteration() {
        LocalSearch::None | LocalSearch::PostPass => return 0.0,
        LocalSearch::TwoOpt => 2 * n.saturating_sub(1),
        LocalSearch::TwoOptNn => 2 * nn,
        LocalSearch::OrOpt => 3 * nn,
    } as u64;
    let evals = LS_ROUNDS_EST * n as u64 * per_city;
    let c = aco_core::OpCounter {
        loads: 6 * evals,
        flops: 6 * evals,
        branches: 3 * evals,
        alu: 4 * evals,
        ..Default::default()
    };
    model.time_ms(&c)
}

/// How a GPU solver is bound to a concrete pool device: the profile's
/// derived spec (which may rescale the Table-I preset) and its
/// exec-thread budget. Without a binding, GPU backends fall back to the
/// model's unmodified preset on one exec thread — the pre-pool behaviour,
/// kept for standalone `build_solver` use.
#[derive(Debug, Clone)]
pub struct GpuBinding {
    /// The spec the colony executes with.
    pub spec: DeviceSpec,
    /// Host threads donated to block-level simulation.
    pub exec_threads: usize,
    /// Live count of idle engine workers parked on the ready condvar
    /// (present when `EngineConfig::donate_idle_threads` is on). The
    /// colony adds `min(count, MAX_DONATED_THREADS)` threads to each
    /// launch while peers are idle; simulator results are thread-count
    /// invariant, so reports stay bit-identical either way.
    pub donated: Option<std::sync::Arc<std::sync::atomic::AtomicUsize>>,
}

/// Build a concrete solver for a **resolved** backend (callers resolve
/// [`Backend::Auto`] first — see [`crate::auto::resolve`]), optionally
/// bound to a pool device profile, with `local_search` configured into
/// the colony's iteration loop (`scope` picks the tours it improves;
/// [`LocalSearch::PostPass`] is applied by the engine after the run, not
/// here).
///
/// # Panics
/// Panics if `backend` is [`Backend::Auto`].
pub fn build_solver<'a>(
    backend: &Backend,
    inst: &'a TspInstance,
    params: &AcoParams,
    artifacts: &InstanceArtifacts,
    gpu: Option<GpuBinding>,
    local_search: LocalSearch,
    scope: LsScope,
) -> Box<dyn Solver + 'a> {
    let model = CpuModel::default();
    let eff_nn = artifacts.nn.depth();
    // Per-iteration local-search clock: one pass (iteration best) or one
    // per ant — with each backend's *own* colony size (ACS runs
    // `num_ants.unwrap_or(10)` ants, not `ants_for`).
    let ls_ms_for = |colony_m: usize| {
        let passes = match scope {
            LsScope::IterationBest => 1,
            LsScope::AllAnts => colony_m.max(1),
        };
        cpu_ls_iter_ms(local_search, inst.n(), eff_nn, &model) * passes as f64
    };
    let ls_iter_ms = ls_ms_for(params.ants_for(inst.n()));
    match backend {
        Backend::CpuSequential { policy } => {
            let mut aco = AntSystem::with_artifacts(
                inst,
                params.clone(),
                Arc::clone(&artifacts.nn),
                artifacts.c_nn,
            );
            aco.set_local_search(local_search, scope);
            Box::new(CpuSequentialSolver { aco, policy: *policy, model, ls_iter_ms, ms: 0.0 })
        }
        Backend::CpuParallel { policy, threads } => {
            let mut aco = AntSystem::with_artifacts(
                inst,
                params.clone(),
                Arc::clone(&artifacts.nn),
                artifacts.c_nn,
            );
            aco.set_local_search(local_search, scope);
            Box::new(CpuParallelSolver {
                aco,
                policy: *policy,
                threads: (*threads).max(1),
                iteration: 0,
                best: None,
                model,
                ls_iter_ms,
                ms: 0.0,
            })
        }
        Backend::CpuAcs(acs) => {
            let m = params.num_ants.unwrap_or(10);
            let mut colony = AntColonySystem::with_artifacts(
                inst,
                params.clone(),
                *acs,
                Arc::clone(&artifacts.nn),
                artifacts.c_nn,
            );
            colony.set_local_search(local_search, scope);
            let phase_ms = cpu_phase_ms(inst.n(), m, params.nn_size, &model);
            let ls = ls_ms_for(m);
            Box::new(CpuAcsSolver {
                acs: colony,
                acs_params: *acs,
                per_iter_ms: phase_ms.0 + phase_ms.1 + phase_ms.2 + ls,
                phase_ms,
                ls_iter_ms: ls,
                iters: 0,
            })
        }
        Backend::CpuMmas(mmas) => {
            let mut colony = MaxMinAntSystem::with_artifacts(
                inst,
                params.clone(),
                *mmas,
                Arc::clone(&artifacts.nn),
                artifacts.c_nn,
            );
            colony.set_local_search(local_search, scope);
            let phase_ms =
                cpu_phase_ms(inst.n(), params.ants_for(inst.n()), params.nn_size, &model);
            Box::new(CpuMmasSolver {
                mmas: colony,
                mmas_params: *mmas,
                per_iter_ms: phase_ms.0 + phase_ms.1 + phase_ms.2 + ls_iter_ms,
                phase_ms,
                ls_iter_ms,
                iters: 0,
            })
        }
        Backend::Gpu { device, tour, pheromone } => {
            let binding = gpu.unwrap_or_else(|| GpuBinding {
                spec: device.spec(),
                exec_threads: 1,
                donated: None,
            });
            let mut sys = GpuAntSystem::with_artifacts(
                inst,
                params.clone(),
                binding.spec,
                *tour,
                *pheromone,
                &artifacts.nn,
                artifacts.c_nn,
            );
            sys.set_exec_threads(binding.exec_threads);
            if let Some(donor) = binding.donated {
                sys.set_thread_donor(donor);
            }
            sys.set_local_search(local_search, scope);
            Box::new(GpuSolver {
                sys,
                device: *device,
                tour: *tour,
                pheromone: *pheromone,
                ms: 0.0,
            })
        }
        Backend::GpuAcs { device, acs } => {
            let binding = gpu.unwrap_or_else(|| GpuBinding {
                spec: device.spec(),
                exec_threads: 1,
                donated: None,
            });
            let mut sys = GpuAntColonySystem::with_artifacts(
                inst,
                params.clone(),
                *acs,
                binding.spec,
                &artifacts.nn,
                artifacts.c_nn,
            );
            sys.set_exec_threads(binding.exec_threads);
            if let Some(donor) = binding.donated {
                sys.set_thread_donor(donor);
            }
            sys.set_local_search(local_search, scope);
            Box::new(GpuAcsSolver { sys, device: *device, acs: *acs, ms: 0.0 })
        }
        Backend::Auto => panic!("Backend::Auto must be resolved before build_solver"),
    }
}
