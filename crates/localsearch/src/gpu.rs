//! The simulated-device `two_opt` kernel family.
//!
//! GPU colonies run the [`crate::LocalSearch::TwoOptNn`] pass *on the
//! device*, as the strongest GPU-ACO systems do (Skinderowicz 2016,
//! 2020), instead of round-tripping tours to the host. One improvement
//! **round** is four launches driven by [`run_two_opt`]:
//!
//! 1. [`TwoOptPosKernel`] — scatter `pos[city] = index` for the ant's
//!    tour and refresh the θ-padding (positions `n..stride` repeat the
//!    possibly-new start city).
//! 2. [`TwoOptProposeKernel`] — **one proposed swap per thread**: thread
//!    `c` scans its city's nearest-neighbour candidates in both tour
//!    directions (distances through the texture cache, exactly like the
//!    paper's `*Tex` tour kernels), keeps its best improving move, sets
//!    the city's *don't-look bit* when nothing improves, and the block
//!    reduces `(gain, city)` pairs through shared memory to a per-block
//!    best (ties → lowest city).
//! 3. [`TwoOptSelectKernel`] — a single block folds the per-block bests
//!    into the chosen move of the round (same tie-break).
//! 4. [`TwoOptApplyKernel`] — reverse the shorter side of the chosen
//!    segment (strided swaps, disjoint pairs), subtract the gain from the
//!    ant's device length, and clear the don't-look bits of the four
//!    cities whose edges changed.
//!
//! The host reads back one word per round (the chosen gain) to decide
//! termination — the same single-`cudaMemcpy` loop a real implementation
//! uses.
//!
//! **CPU equivalence.** The family executes exactly the round algorithm
//! of [`crate::cpu::two_opt_nn`]: identical candidate sets, identical
//! `f32` gain expression `(removed₁ + removed₂) - (added₁ + added₂)`,
//! identical strict-`>` scan order, identical `(gain, city)` reduction
//! tie-break, identical shorter-side reversal and don't-look updates.
//! On the same input tour both sides therefore produce the **same order
//! array**, pinned by the cross-crate equivalence tests. And because
//! every launch goes through [`aco_simt::launch_threads`], counters,
//! modeled times and memory are bit-identical at any host `exec_threads`
//! count.

use aco_simt::prelude::*;
use aco_simt::SimtError;

/// Threads per block for every kernel of the family.
pub const LS_BLOCK: u32 = 128;

/// Device state of the 2-opt family: the colony buffers it reads
/// (distances, tours, lengths, candidate lists) plus the family's own
/// scratch (position index, don't-look bits, reduction buffers).
/// `Copy` so kernels capture it like `ColonyBuffers`.
#[derive(Debug, Clone, Copy)]
pub struct TwoOptDev {
    /// Cities.
    pub n: u32,
    /// Candidate-list depth.
    pub nn: u32,
    /// Row stride of the per-ant tour array.
    pub stride: u32,
    /// `n x n` distances, f32.
    pub dist: DevicePtr<f32>,
    /// `m x stride` tours (improved in place).
    pub tours: DevicePtr<u32>,
    /// `m` tour lengths, f32 (gain-adjusted in place).
    pub lengths: DevicePtr<f32>,
    /// `n x nn` nearest-neighbour lists.
    pub nn_list: DevicePtr<u32>,
    /// `n` positions: `pos[city] = index` in the current order.
    pub pos: DevicePtr<u32>,
    /// `n` don't-look bits (0 = awake).
    pub dont_look: DevicePtr<u32>,
    /// Per-block best gain (`grid` entries).
    pub block_gain: DevicePtr<f32>,
    /// Per-block best move `a` (reverse starts after `a`).
    pub block_a: DevicePtr<u32>,
    /// Per-block best move `b` (reverse ends at `b`).
    pub block_b: DevicePtr<u32>,
    /// Per-block proposing city (the reduction tie-break key).
    pub block_city: DevicePtr<u32>,
    /// The round's chosen gain (1 entry; the host's termination read).
    pub chosen_gain: DevicePtr<f32>,
    /// The round's chosen `a` (1 entry).
    pub chosen_a: DevicePtr<u32>,
    /// The round's chosen `b` (1 entry).
    pub chosen_b: DevicePtr<u32>,
}

impl TwoOptDev {
    /// Allocate the family's scratch next to an existing colony's
    /// buffers (distances / tours / lengths / candidate lists are
    /// borrowed from the colony, not copied).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate(
        gm: &mut GlobalMem,
        n: u32,
        nn: u32,
        stride: u32,
        dist: DevicePtr<f32>,
        tours: DevicePtr<u32>,
        lengths: DevicePtr<f32>,
        nn_list: DevicePtr<u32>,
    ) -> Self {
        let grid = n.div_ceil(LS_BLOCK) as usize;
        TwoOptDev {
            n,
            nn,
            stride,
            dist,
            tours,
            lengths,
            nn_list,
            pos: gm.alloc_u32(n as usize),
            dont_look: gm.alloc_u32(n as usize),
            block_gain: gm.alloc_f32(grid),
            block_a: gm.alloc_u32(grid),
            block_b: gm.alloc_u32(grid),
            block_city: gm.alloc_u32(grid),
            chosen_gain: gm.alloc_f32(1),
            chosen_a: gm.alloc_u32(1),
            chosen_b: gm.alloc_u32(1),
        }
    }

    /// Blocks of the propose grid (one thread per city).
    pub fn grid(&self) -> u32 {
        self.n.div_ceil(LS_BLOCK)
    }
}

/// Position scatter + padding refresh for one ant's tour row.
pub struct TwoOptPosKernel {
    /// Family buffers.
    pub bufs: TwoOptDev,
    /// The ant whose row is being improved.
    pub ant: u32,
}

impl TwoOptPosKernel {
    /// One thread per padded tour cell.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.stride.div_ceil(LS_BLOCK), LS_BLOCK).regs(10)
    }
}

impl Kernel for TwoOptPosKernel {
    fn name(&self) -> &'static str {
        "two_opt_pos"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let base = self.ant * self.bufs.stride;
        let idx = ctx.global_thread_idx();
        let n_reg = ctx.splat_u32(n);
        let in_n = ctx.ult(&idx, &n_reg);
        let base_reg = ctx.splat_u32(base);
        let g_idx = ctx.iadd(&base_reg, &idx);
        ctx.if_then(gm, &in_n, |ctx, gm| {
            let city = ctx.ld_global_u32(gm, self.bufs.tours, &g_idx);
            ctx.st_global_u32(gm, self.bufs.pos, &city, &idx);
        });
        // Padding cells repeat the (possibly new) start city, so the
        // pheromone kernels keep seeing their harmless diagonal edges.
        let stride_reg = ctx.splat_u32(self.bufs.stride);
        let in_pad = ctx.ult(&idx, &stride_reg).and(&in_n.not());
        ctx.if_then(gm, &in_pad, |ctx, gm| {
            let start_idx = ctx.splat_u32(base);
            let start = ctx.ld_global_u32(gm, self.bufs.tours, &start_idx);
            ctx.st_global_u32(gm, self.bufs.tours, &g_idx, &start);
        });
    }
}

/// Per-city move proposal + per-block best-improvement reduction.
pub struct TwoOptProposeKernel {
    /// Family buffers.
    pub bufs: TwoOptDev,
    /// The ant whose row is being improved.
    pub ant: u32,
}

impl TwoOptProposeKernel {
    /// One thread per city; shared memory holds the four reduction
    /// arrays (gain, a, b, proposing city).
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.grid(), LS_BLOCK).regs(30).shared(4 * LS_BLOCK * 4)
    }
}

impl Kernel for TwoOptProposeKernel {
    fn name(&self) -> &'static str {
        "two_opt_propose"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let nn = self.bufs.nn;
        let base = self.ant * self.bufs.stride;
        let tid = ctx.global_thread_idx();
        let n_reg = ctx.splat_u32(n);
        let zero_f = ctx.splat_f32(0.0);
        let zero_u = ctx.splat_u32(0);
        let one_u = ctx.splat_u32(1);
        let base_reg = ctx.splat_u32(base);
        let nm1 = ctx.splat_u32(n - 1);

        // Per-lane best move; lanes out of range or asleep keep the
        // sentinel (gain 0) and lose every reduction comparison.
        let mut best_g = ctx.splat_f32(0.0);
        let mut best_a = ctx.splat_u32(0);
        let mut best_b = ctx.splat_u32(0);

        let in_range = ctx.ult(&tid, &n_reg);
        ctx.if_then(gm, &in_range, |ctx, gm| {
            let look = ctx.ld_global_u32(gm, self.bufs.dont_look, &tid);
            let awake = ctx.ueq(&look, &zero_u);
            ctx.branch(&awake);
            ctx.with_mask(gm, &awake, |ctx, gm| {
                // succ(c) / pred(c) positions via the scattered index.
                let my_pos = ctx.ld_global_u32(gm, self.bufs.pos, &tid);
                let p_plus = ctx.iadd(&my_pos, &one_u);
                let wrap_s = ctx.ueq(&p_plus, &n_reg);
                let sp = ctx.select_u32(&wrap_s, &zero_u, &p_plus);
                let sp_g = ctx.iadd(&base_reg, &sp);
                let s1 = ctx.ld_global_u32(gm, self.bufs.tours, &sp_g);
                let wrap_p = ctx.ueq(&my_pos, &zero_u);
                let p_minus = ctx.isub(&my_pos, &one_u);
                let pp = ctx.select_u32(&wrap_p, &nm1, &p_minus);
                let pp_g = ctx.iadd(&base_reg, &pp);
                let p1 = ctx.ld_global_u32(gm, self.bufs.tours, &pp_g);

                let row = ctx.imul(&tid, &n_reg);
                let nn_reg = ctx.splat_u32(nn);
                let nn_row = ctx.imul(&tid, &nn_reg);

                // Forward edge (c1, succ c1): removed length d1.
                let s1_idx = ctx.iadd(&row, &s1);
                let d1 = ctx.ld_tex_f32(gm, self.bufs.dist, &s1_idx);
                // Backward edge (pred c1, c1): removed length d1p.
                let p1_row = ctx.imul(&p1, &n_reg);
                let p1_idx = ctx.iadd(&p1_row, &tid);
                let d1p = ctx.ld_tex_f32(gm, self.bufs.dist, &p1_idx);

                // Scan order matters for exact CPU equivalence: ALL
                // forward moves first, then all backward moves — the
                // order `cpu::best_move_for_city` evaluates — so a
                // forward/backward move with exactly equal f32 gain
                // resolves to the same winner on both sides (strict `>`
                // keeps the earlier candidate).
                for k in 0..nn {
                    // Forward move: remove (c1, s1) and (c2, s2), add
                    // (c1, c2) and (s1, s2) — reverse after a = c1 up to
                    // b = c2.
                    let k_reg = ctx.splat_u32(k);
                    let l_idx = ctx.iadd(&nn_row, &k_reg);
                    let c2 = ctx.ld_global_u32(gm, self.bufs.nn_list, &l_idx);
                    let cc_idx = ctx.iadd(&row, &c2);
                    let dcc = ctx.ld_tex_f32(gm, self.bufs.dist, &cc_idx);
                    let c2_pos = ctx.ld_global_u32(gm, self.bufs.pos, &c2);
                    let c2p1 = ctx.iadd(&c2_pos, &one_u);
                    let wrap = ctx.ueq(&c2p1, &n_reg);
                    let sp2 = ctx.select_u32(&wrap, &zero_u, &c2p1);
                    let sp2_g = ctx.iadd(&base_reg, &sp2);
                    let s2 = ctx.ld_global_u32(gm, self.bufs.tours, &sp2_g);
                    let c2_row = ctx.imul(&c2, &n_reg);
                    let rem2_idx = ctx.iadd(&c2_row, &s2);
                    let rem2 = ctx.ld_tex_f32(gm, self.bufs.dist, &rem2_idx);
                    let s1_row = ctx.imul(&s1, &n_reg);
                    let add2_idx = ctx.iadd(&s1_row, &s2);
                    let add2 = ctx.ld_tex_f32(gm, self.bufs.dist, &add2_idx);
                    let removed = ctx.fadd(&d1, &rem2);
                    let added = ctx.fadd(&dcc, &add2);
                    let g = ctx.fsub(&removed, &added);
                    let closer = ctx.flt(&dcc, &d1);
                    let ok1 = ctx.une(&s2, &tid);
                    let ok2 = ctx.une(&c2, &s1);
                    let better = ctx.fgt(&g, &best_g);
                    let valid = closer.and(&ok1).and(&ok2).and(&better);
                    let ng = ctx.select_f32(&valid, &g, &best_g);
                    ctx.assign_f32(&mut best_g, &ng);
                    let na = ctx.select_u32(&valid, &tid, &best_a);
                    ctx.assign_u32(&mut best_a, &na);
                    let nb = ctx.select_u32(&valid, &c2, &best_b);
                    ctx.assign_u32(&mut best_b, &nb);
                }

                for k in 0..nn {
                    // Backward move: remove (p1, c1) and (p2, c2), add
                    // (c1, c2) and (p1, p2) — reverse after a = p1 up to
                    // b = p2.
                    let k_reg = ctx.splat_u32(k);
                    let l_idx = ctx.iadd(&nn_row, &k_reg);
                    let c2 = ctx.ld_global_u32(gm, self.bufs.nn_list, &l_idx);
                    let cc_idx = ctx.iadd(&row, &c2);
                    let dcc = ctx.ld_tex_f32(gm, self.bufs.dist, &cc_idx);
                    let c2_pos = ctx.ld_global_u32(gm, self.bufs.pos, &c2);
                    let wrap = ctx.ueq(&c2_pos, &zero_u);
                    let c2m1 = ctx.isub(&c2_pos, &one_u);
                    let ppos2 = ctx.select_u32(&wrap, &nm1, &c2m1);
                    let pp2_g = ctx.iadd(&base_reg, &ppos2);
                    let p2 = ctx.ld_global_u32(gm, self.bufs.tours, &pp2_g);
                    let p2_row = ctx.imul(&p2, &n_reg);
                    let rem2_idx = ctx.iadd(&p2_row, &c2);
                    let rem2 = ctx.ld_tex_f32(gm, self.bufs.dist, &rem2_idx);
                    let p1_row2 = ctx.imul(&p1, &n_reg);
                    let add2_idx = ctx.iadd(&p1_row2, &p2);
                    let add2 = ctx.ld_tex_f32(gm, self.bufs.dist, &add2_idx);
                    let removed = ctx.fadd(&d1p, &rem2);
                    let added = ctx.fadd(&dcc, &add2);
                    let g = ctx.fsub(&removed, &added);
                    let closer = ctx.flt(&dcc, &d1p);
                    let ok1 = ctx.une(&p2, &tid);
                    let ok2 = ctx.une(&c2, &p1);
                    let better = ctx.fgt(&g, &best_g);
                    let valid = closer.and(&ok1).and(&ok2).and(&better);
                    let ng = ctx.select_f32(&valid, &g, &best_g);
                    ctx.assign_f32(&mut best_g, &ng);
                    let na = ctx.select_u32(&valid, &p1, &best_a);
                    ctx.assign_u32(&mut best_a, &na);
                    let nb = ctx.select_u32(&valid, &p2, &best_b);
                    ctx.assign_u32(&mut best_b, &nb);
                }

                // Cities with nothing to propose go to sleep until a
                // neighbouring edge changes.
                let stale = ctx.fle(&best_g, &zero_f);
                ctx.if_then(gm, &stale, |ctx, gm| {
                    ctx.st_global_u32(gm, self.bufs.dont_look, &tid, &one_u);
                });
            });
        });

        // Reduction key: (gain, proposing city); sentinel city = MAX so
        // idle lanes lose ties too.
        let improved = ctx.fgt(&best_g, &zero_f);
        let max_u = ctx.splat_u32(u32::MAX);
        let best_city = ctx.select_u32(&improved, &tid, &max_u);

        block_reduce_best(ctx, gm, &best_g, &best_a, &best_b, &best_city, |ctx, gm, g, a, b, c| {
            let bidx = ctx.splat_u32(ctx.block_idx);
            ctx.st_global_f32(gm, self.bufs.block_gain, &bidx, g);
            ctx.st_global_u32(gm, self.bufs.block_a, &bidx, a);
            ctx.st_global_u32(gm, self.bufs.block_b, &bidx, b);
            ctx.st_global_u32(gm, self.bufs.block_city, &bidx, c);
        });
    }
}

/// Shared-memory tree reduction of `(gain, a, b, city)` down to lane 0,
/// preferring higher gain, then lower proposing city — the block-level
/// half of the family's canonical move order. `emit` runs under the
/// lane-0 mask with the winning values.
fn block_reduce_best(
    ctx: &mut BlockCtx,
    gm: &mut GlobalMem,
    best_g: &Reg<f32>,
    best_a: &Reg<u32>,
    best_b: &Reg<u32>,
    best_city: &Reg<u32>,
    emit: impl FnOnce(&mut BlockCtx, &mut GlobalMem, &Reg<f32>, &Reg<u32>, &Reg<u32>, &Reg<u32>),
) {
    let lane = ctx.thread_idx();
    let s_g = ctx.shared_alloc_f32(LS_BLOCK as usize);
    let s_a = ctx.shared_alloc_u32(LS_BLOCK as usize);
    let s_b = ctx.shared_alloc_u32(LS_BLOCK as usize);
    let s_c = ctx.shared_alloc_u32(LS_BLOCK as usize);
    ctx.sh_st_f32(s_g, &lane, best_g);
    ctx.sh_st_u32(s_a, &lane, best_a);
    ctx.sh_st_u32(s_b, &lane, best_b);
    ctx.sh_st_u32(s_c, &lane, best_city);
    ctx.sync_threads();
    let mut off = LS_BLOCK / 2;
    while off >= 1 {
        let off_reg = ctx.splat_u32(off);
        let low = ctx.ult(&lane, &off_reg);
        ctx.branch(&low);
        ctx.with_mask(gm, &low, |ctx, _gm| {
            let other = ctx.iadd(&lane, &off_reg);
            let g1 = ctx.sh_ld_f32(s_g, &lane);
            let g2 = ctx.sh_ld_f32(s_g, &other);
            let c1 = ctx.sh_ld_u32(s_c, &lane);
            let c2 = ctx.sh_ld_u32(s_c, &other);
            let gt = ctx.fgt(&g2, &g1);
            let ge = ctx.fge(&g2, &g1);
            let le = ctx.fle(&g2, &g1);
            let eq = ge.and(&le);
            let lower = ctx.ult(&c2, &c1);
            let better = gt.or(&eq.and(&lower));
            let a1 = ctx.sh_ld_u32(s_a, &lane);
            let a2 = ctx.sh_ld_u32(s_a, &other);
            let b1 = ctx.sh_ld_u32(s_b, &lane);
            let b2 = ctx.sh_ld_u32(s_b, &other);
            let ng = ctx.select_f32(&better, &g2, &g1);
            let na = ctx.select_u32(&better, &a2, &a1);
            let nb = ctx.select_u32(&better, &b2, &b1);
            let nc = ctx.select_u32(&better, &c2, &c1);
            ctx.sh_st_f32(s_g, &lane, &ng);
            ctx.sh_st_u32(s_a, &lane, &na);
            ctx.sh_st_u32(s_b, &lane, &nb);
            ctx.sh_st_u32(s_c, &lane, &nc);
        });
        ctx.sync_threads();
        off /= 2;
    }
    let lane0 = ctx.lane_mask(0);
    ctx.if_then(gm, &lane0, |ctx, gm| {
        let zero = ctx.splat_u32(0);
        let g = ctx.sh_ld_f32(s_g, &zero);
        let a = ctx.sh_ld_u32(s_a, &zero);
        let b = ctx.sh_ld_u32(s_b, &zero);
        let c = ctx.sh_ld_u32(s_c, &zero);
        emit(ctx, gm, &g, &a, &b, &c);
    });
}

/// Fold the per-block bests into the round's chosen move.
pub struct TwoOptSelectKernel {
    /// Family buffers.
    pub bufs: TwoOptDev,
}

impl TwoOptSelectKernel {
    /// One block; threads stride over the per-block entries.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(1, LS_BLOCK).regs(18).shared(4 * LS_BLOCK * 4)
    }
}

impl Kernel for TwoOptSelectKernel {
    fn name(&self) -> &'static str {
        "two_opt_select"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let entries = self.bufs.grid();
        let lane = ctx.thread_idx();
        let e_reg = ctx.splat_u32(entries);
        let step = ctx.splat_u32(LS_BLOCK);
        let max_u = ctx.splat_u32(u32::MAX);
        let mut fold_g = ctx.splat_f32(0.0);
        let mut fold_a = ctx.splat_u32(0);
        let mut fold_b = ctx.splat_u32(0);
        let mut fold_c = max_u.clone();
        let mut idx = lane.clone();
        for _ in 0..entries.div_ceil(LS_BLOCK) {
            let in_range = ctx.ult(&idx, &e_reg);
            ctx.branch(&in_range);
            ctx.with_mask(gm, &in_range, |ctx, gm| {
                let g2 = ctx.ld_global_f32(gm, self.bufs.block_gain, &idx);
                let c2 = ctx.ld_global_u32(gm, self.bufs.block_city, &idx);
                let a2 = ctx.ld_global_u32(gm, self.bufs.block_a, &idx);
                let b2 = ctx.ld_global_u32(gm, self.bufs.block_b, &idx);
                let gt = ctx.fgt(&g2, &fold_g);
                let ge = ctx.fge(&g2, &fold_g);
                let le = ctx.fle(&g2, &fold_g);
                let eq = ge.and(&le);
                let lower = ctx.ult(&c2, &fold_c);
                let better = gt.or(&eq.and(&lower));
                let ng = ctx.select_f32(&better, &g2, &fold_g);
                ctx.assign_f32(&mut fold_g, &ng);
                let na = ctx.select_u32(&better, &a2, &fold_a);
                ctx.assign_u32(&mut fold_a, &na);
                let nb = ctx.select_u32(&better, &b2, &fold_b);
                ctx.assign_u32(&mut fold_b, &nb);
                let nc = ctx.select_u32(&better, &c2, &fold_c);
                ctx.assign_u32(&mut fold_c, &nc);
            });
            idx = ctx.iadd(&idx, &step);
        }
        block_reduce_best(ctx, gm, &fold_g, &fold_a, &fold_b, &fold_c, |ctx, gm, g, a, b, _c| {
            let zero = ctx.splat_u32(0);
            ctx.st_global_f32(gm, self.bufs.chosen_gain, &zero, g);
            ctx.st_global_u32(gm, self.bufs.chosen_a, &zero, a);
            ctx.st_global_u32(gm, self.bufs.chosen_b, &zero, b);
        });
    }
}

/// Apply the round's chosen move to the ant's tour row.
pub struct TwoOptApplyKernel {
    /// Family buffers.
    pub bufs: TwoOptDev,
    /// The ant whose row is being improved.
    pub ant: u32,
}

impl TwoOptApplyKernel {
    /// One block; threads stride over the (disjoint) swap pairs.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(1, LS_BLOCK).regs(22)
    }
}

impl Kernel for TwoOptApplyKernel {
    fn name(&self) -> &'static str {
        "two_opt_apply"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let base = self.ant * self.bufs.stride;
        let zero_u = ctx.splat_u32(0);
        let one_u = ctx.splat_u32(1);
        let n_reg = ctx.splat_u32(n);
        let base_reg = ctx.splat_u32(base);

        // The chosen move (uniform broadcast loads), and everything that
        // must be read *before* any cell moves: the removed edges'
        // successor cities and the two segment boundaries.
        let gain = ctx.ld_global_f32(gm, self.bufs.chosen_gain, &zero_u);
        let a = ctx.ld_global_u32(gm, self.bufs.chosen_a, &zero_u);
        let b = ctx.ld_global_u32(gm, self.bufs.chosen_b, &zero_u);
        let pa = ctx.ld_global_u32(gm, self.bufs.pos, &a);
        let pb = ctx.ld_global_u32(gm, self.bufs.pos, &b);
        let pa1 = ctx.iadd(&pa, &one_u);
        let wrap_a = ctx.ueq(&pa1, &n_reg);
        let spa = ctx.select_u32(&wrap_a, &zero_u, &pa1);
        let spa_g = ctx.iadd(&base_reg, &spa);
        let sa = ctx.ld_global_u32(gm, self.bufs.tours, &spa_g);
        let pb1 = ctx.iadd(&pb, &one_u);
        let wrap_b = ctx.ueq(&pb1, &n_reg);
        let spb = ctx.select_u32(&wrap_b, &zero_u, &pb1);
        let spb_g = ctx.iadd(&base_reg, &spb);
        let sb = ctx.ld_global_u32(gm, self.bufs.tours, &spb_g);

        // Shorter-side selection: inner = (pb - pa) mod n; reverse the
        // inner segment succ(a)..b when 2*inner <= n, else the
        // complement succ(b)..a — the same rule as the CPU pass.
        let pbn = ctx.iadd(&pb, &n_reg);
        let diff = ctx.isub(&pbn, &pa);
        let over = ctx.ule(&n_reg, &diff);
        let diff_w = ctx.isub(&diff, &n_reg);
        let inner = ctx.select_u32(&over, &diff_w, &diff);
        let two = ctx.splat_u32(2);
        let twice = ctx.imul(&inner, &two);
        let use_inner = ctx.ule(&twice, &n_reg);
        let i0 = ctx.select_u32(&use_inner, &spa, &spb);
        let j0 = ctx.select_u32(&use_inner, &pb, &pa);
        let j0n = ctx.iadd(&j0, &n_reg);
        let span = ctx.isub(&j0n, &i0);
        let span_over = ctx.ule(&n_reg, &span);
        let span_w = ctx.isub(&span, &n_reg);
        let seg_m1 = ctx.select_u32(&span_over, &span_w, &span);
        let seg = ctx.iadd(&seg_m1, &one_u);
        let half = ctx.ishr(&seg, &one_u);

        // Strided swap loop: pair t swaps positions (i0 + t) and
        // (j0 - t); pairs are disjoint, and all boundary reads above
        // happened before the first store.
        let mut t = ctx.thread_idx();
        let step = ctx.splat_u32(LS_BLOCK);
        ctx.loop_while(gm, |ctx, gm| {
            let cont = ctx.ult(&t, &half);
            ctx.with_mask(gm, &cont, |ctx, gm| {
                let li_raw = ctx.iadd(&i0, &t);
                let li_over = ctx.ule(&n_reg, &li_raw);
                let li_w = ctx.isub(&li_raw, &n_reg);
                let li = ctx.select_u32(&li_over, &li_w, &li_raw);
                let rj_raw = ctx.isub(&j0n, &t);
                let rj_over = ctx.ule(&n_reg, &rj_raw);
                let rj_w = ctx.isub(&rj_raw, &n_reg);
                let rj = ctx.select_u32(&rj_over, &rj_w, &rj_raw);
                let li_g = ctx.iadd(&base_reg, &li);
                let rj_g = ctx.iadd(&base_reg, &rj);
                let cl = ctx.ld_global_u32(gm, self.bufs.tours, &li_g);
                let cr = ctx.ld_global_u32(gm, self.bufs.tours, &rj_g);
                ctx.st_global_u32(gm, self.bufs.tours, &li_g, &cr);
                ctx.st_global_u32(gm, self.bufs.tours, &rj_g, &cl);
            });
            t = ctx.iadd(&t, &step);
            cont
        });

        // Lane 0: wake the four cities whose edges changed and settle
        // the ant's device-side length.
        let lane0 = ctx.lane_mask(0);
        ctx.if_then(gm, &lane0, |ctx, gm| {
            for city in [&a, &sa, &b, &sb] {
                ctx.st_global_u32(gm, self.bufs.dont_look, city, &zero_u);
            }
            let ant_reg = ctx.splat_u32(self.ant);
            let len = ctx.ld_global_f32(gm, self.bufs.lengths, &ant_reg);
            let new_len = ctx.fsub(&len, &gain);
            ctx.st_global_f32(gm, self.bufs.lengths, &ant_reg, &new_len);
        });
    }
}

/// Outcome of one device 2-opt pass over a single ant's tour.
#[derive(Debug, Clone)]
pub struct TwoOptRun {
    /// Proposal rounds executed (the final round finds no move).
    pub rounds: u32,
    /// Improving moves applied.
    pub moves: u32,
    /// Total modeled milliseconds across every launch of the pass.
    pub ms: f64,
    /// Merged counters of every launch.
    pub stats: KernelStats,
}

/// Run the 2-opt kernel family on `ant`'s tour row until no candidate
/// move improves it. Each round launches position-scatter, propose,
/// select and (when a move was found) apply; the host reads back one
/// gain word per round. Launches execute across up to `threads` host
/// threads with bit-identical results at any count.
pub fn run_two_opt(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: TwoOptDev,
    ant: u32,
    threads: usize,
) -> Result<TwoOptRun, SimtError> {
    // cudaMemset of the don't-look bits: a pass starts with every city
    // awake.
    gm.u32_mut(bufs.dont_look).fill(0);
    let mut ms = 0.0;
    let mut stats = KernelStats::for_sms(dev.sm_count as usize);
    let mut rounds = 0u32;
    let mut moves = 0u32;
    loop {
        let pk = TwoOptPosKernel { bufs, ant };
        let r = launch_threads(dev, &pk.config(), &pk, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        let prk = TwoOptProposeKernel { bufs, ant };
        let r = launch_threads(dev, &prk.config(), &prk, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        let sk = TwoOptSelectKernel { bufs };
        let r = launch_threads(dev, &sk.config(), &sk, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        rounds += 1;
        if gm.f32(bufs.chosen_gain)[0] <= 0.0 {
            break;
        }
        let ak = TwoOptApplyKernel { bufs, ant };
        let r = launch_threads(dev, &ak.config(), &ak, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        moves += 1;
    }
    Ok(TwoOptRun { rounds, moves, ms, stats })
}

/// Price one proposal round (position-scatter + propose + select) at the
/// given fidelity without mutating the tour — the engine's cost model
/// uses this to fold the per-iteration local-search kernel into backend
/// selection. Deterministic in the inputs.
pub fn probe_round_ms(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: TwoOptDev,
    ant: u32,
    mode: SimMode,
) -> Result<f64, SimtError> {
    gm.u32_mut(bufs.dont_look).fill(0);
    let mut ms = 0.0;
    let pk = TwoOptPosKernel { bufs, ant };
    ms += launch_threads(dev, &pk.config(), &pk, gm, mode, 1)?.time.total_ms;
    let prk = TwoOptProposeKernel { bufs, ant };
    ms += launch_threads(dev, &prk.config(), &prk, gm, mode, 1)?.time.total_ms;
    let sk = TwoOptSelectKernel { bufs };
    ms += launch_threads(dev, &sk.config(), &sk, gm, mode, 1)?.time.total_ms;
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{two_opt_nn, LsScratch};
    use aco_tsp::{uniform_random, NearestNeighborLists, Tour, TspInstance};
    use rand::SeedableRng;

    /// Minimal device setup mirroring a colony's buffers: distances,
    /// one-ant tour row (padded), length, candidate lists.
    fn device_setup(
        inst: &TspInstance,
        nn: &NearestNeighborLists,
        tours: &[Tour],
        stride: u32,
    ) -> (GlobalMem, TwoOptDev) {
        let n = inst.n();
        let mut gm = GlobalMem::new();
        let dist = gm.alloc_f32(n * n);
        let host: Vec<f32> = inst.matrix().as_flat().iter().map(|&d| d as f32).collect();
        gm.write_f32(dist, &host);
        let tbuf = gm.alloc_u32(tours.len() * stride as usize);
        {
            let cells = gm.u32_mut(tbuf);
            for (a, t) in tours.iter().enumerate() {
                let row = &mut cells[a * stride as usize..(a + 1) * stride as usize];
                row[..n].copy_from_slice(t.order());
                for c in row[n..].iter_mut() {
                    *c = t.order()[0];
                }
            }
        }
        let lengths = gm.alloc_f32(tours.len());
        let lens: Vec<f32> = tours.iter().map(|t| t.length(inst.matrix()) as f32).collect();
        gm.write_f32(lengths, &lens);
        let nn_buf = gm.alloc_u32(n * nn.depth());
        gm.write_u32(nn_buf, nn.as_flat());
        let bufs = TwoOptDev::allocate(
            &mut gm,
            n as u32,
            nn.depth() as u32,
            stride,
            dist,
            tbuf,
            lengths,
            nn_buf,
        );
        (gm, bufs)
    }

    #[test]
    fn kernel_family_matches_cpu_two_opt_nn_exactly() {
        for (n, seed, depth) in [(32usize, 7u64, 8usize), (61, 21, 12), (96, 3, 16)] {
            let inst = uniform_random("ls-gpu", n, 1000.0, seed);
            let nn = NearestNeighborLists::build(inst.matrix(), depth).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA5);
            let tour = Tour::random(n, &mut rng);
            let stride = ((n + 1) as u32).next_multiple_of(256);
            let (mut gm, bufs) = device_setup(&inst, &nn, std::slice::from_ref(&tour), stride);

            let run = run_two_opt(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 0, 1).unwrap();
            let device_order = gm.u32(bufs.tours)[..n].to_vec();

            let mut host = tour.clone();
            let mut scratch = LsScratch::new();
            let moves = two_opt_nn(&mut host, inst.matrix(), &nn, &mut scratch);

            assert_eq!(
                device_order,
                host.order().to_vec(),
                "n={n} seed={seed}: device and host tours must be identical"
            );
            assert_eq!(run.moves as usize, moves, "n={n}: same move count");
            assert!(run.moves > 0, "a random tour on {n} cities must improve");
            // The device-side f32 length tracks the exact improvement.
            let exact = host.length(inst.matrix()) as f32;
            let dev_len = gm.f32(bufs.lengths)[0];
            assert!(
                (dev_len - exact).abs() <= exact * 1e-5,
                "device length {dev_len} vs exact {exact}"
            );
        }
    }

    #[test]
    fn kernel_family_is_bit_identical_at_any_exec_thread_count() {
        let n = 48usize;
        let inst = uniform_random("ls-thr", n, 900.0, 5);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tour = Tour::random(n, &mut rng);
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let dev = DeviceSpec::tesla_c1060();

        let (mut gm1, b1) = device_setup(&inst, &nn, std::slice::from_ref(&tour), stride);
        let serial = run_two_opt(&dev, &mut gm1, b1, 0, 1).unwrap();
        for threads in [2, 4, 16] {
            let (mut gm2, b2) = device_setup(&inst, &nn, std::slice::from_ref(&tour), stride);
            let parallel = run_two_opt(&dev, &mut gm2, b2, 0, threads).unwrap();
            assert_eq!(serial.rounds, parallel.rounds, "{threads} threads");
            assert_eq!(serial.moves, parallel.moves, "{threads} threads");
            assert_eq!(serial.stats, parallel.stats, "{threads} threads: counters");
            assert_eq!(serial.ms.to_bits(), parallel.ms.to_bits(), "{threads} threads: time");
            assert_eq!(gm1.u32(b1.tours), gm2.u32(b2.tours), "{threads} threads: memory");
        }
    }

    #[test]
    fn pass_leaves_local_optima_untouched_and_prices_time() {
        let n = 40usize;
        let inst = uniform_random("ls-idem", n, 800.0, 2);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut tour = Tour::random(n, &mut rng);
        let mut scratch = LsScratch::new();
        // One pass ends at a don't-look-bit fixpoint, not necessarily a
        // full local optimum (sleeping cities can still own moves), so
        // iterate fresh passes until none finds anything.
        while two_opt_nn(&mut tour, inst.matrix(), &nn, &mut scratch) > 0 {}
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let (mut gm, bufs) = device_setup(&inst, &nn, std::slice::from_ref(&tour), stride);
        let dev = DeviceSpec::tesla_m2050();
        let run = run_two_opt(&dev, &mut gm, bufs, 0, 1).unwrap();
        assert_eq!(run.moves, 0, "a host local optimum admits no device move");
        assert_eq!(run.rounds, 1);
        assert!(run.ms > 0.0, "even an empty pass costs kernel time");
        assert_eq!(gm.u32(bufs.tours)[..n], *tour.order());
        // The probe prices a round without touching the tour.
        let before = gm.u32(bufs.tours).to_vec();
        let ms = probe_round_ms(&dev, &mut gm, bufs, 0, SimMode::Full).unwrap();
        assert!(ms > 0.0);
        assert_eq!(gm.u32(bufs.tours).to_vec(), before);
    }
}
