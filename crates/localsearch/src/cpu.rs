//! Host-side local-search passes.
//!
//! All passes are deterministic, allocation-free when warm (state lives
//! in a reusable [`LsScratch`]) and strictly non-worsening.
//!
//! **The shared round algorithm.** [`two_opt_nn`] runs *best-improvement
//! rounds*: each round scans every awake city's candidate moves (both
//! tour directions, partners restricted to the city's nearest-neighbour
//! list), applies the single best improving move of the whole round, and
//! wakes the four cities whose incident edges changed. A city whose scan
//! finds nothing improving sets its *don't-look bit* and is skipped until
//! woken. Gains are evaluated in `f32` with a fixed operation order —
//! `(removed₁ + removed₂) - (added₁ + added₂)` — and ties break toward
//! the lowest proposing city, then the earliest candidate within the
//! city's scan. These choices are not incidental: the GPU kernel family
//! in [`crate::gpu`] executes exactly this algorithm (one city per
//! thread, block-level best reduction with the same tie-break), so the
//! two sides produce **identical tours** on identical inputs — pinned by
//! the cross-crate equivalence tests. The gains are exactly the integer
//! gains as long as every *pairwise distance sum* stays below 2²⁴,
//! i.e. individual distances below 2²³ (all TSPLIB instances and this
//! repo's generators are far below that); beyond it the f32 rounding
//! could accept a neutral move and the two sides would still agree with
//! each other, but not with the integer arithmetic.
//!
//! [`two_opt_full`] is the same loop over the full `n - 1` partner set;
//! [`or_opt`] relocates 1–3-city segments next to near neighbours.

use aco_tsp::{DistanceMatrix, NearestNeighborLists, Tour};

/// Reusable local-search state: position index, don't-look bits and the
/// segment-splice buffers Or-opt uses. One scratch serves any number of
/// passes; each pass resizes (never shrinks) the buffers, so a warm
/// scratch allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct LsScratch {
    /// `pos[c]` = index of city `c` in the order.
    pos: Vec<u32>,
    /// Cities whose last scan found no improving move.
    dont_look: Vec<bool>,
    /// Or-opt: the segment being relocated.
    seg: Vec<u32>,
    /// Or-opt: the rebuilt visiting order.
    build: Vec<u32>,
}

impl LsScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.pos.clear();
        self.pos.resize(n, 0);
        self.dont_look.clear();
        self.dont_look.resize(n, false);
    }

    fn index(&mut self, order: &[u32]) {
        for (i, &c) in order.iter().enumerate() {
            self.pos[c as usize] = i as u32;
        }
    }
}

#[inline]
fn d32(m: &DistanceMatrix, i: u32, j: u32) -> f32 {
    m.dist(i as usize, j as usize) as f32
}

/// The best improving move proposed by `c1` over `cands`, as
/// `(gain, a, b)` — meaning: remove edges `(a, succ a)` and `(b, succ
/// b)`, add `(a, b)` and `(succ a, succ b)` (i.e. reverse the segment
/// after `a` up to `b`). `gain <= 0` means no improving move. The scan
/// order (forward candidates, then backward) and the strict-`>`
/// comparisons define the canonical tie-break the GPU kernel replicates.
fn best_move_for_city(
    order: &[u32],
    pos: &[u32],
    m: &DistanceMatrix,
    c1: u32,
    cands: &mut dyn Iterator<Item = u32>,
    backward: &mut dyn Iterator<Item = u32>,
) -> (f32, u32, u32) {
    let n = order.len();
    let succ = |c: u32| {
        let p = pos[c as usize] as usize;
        order[if p + 1 == n { 0 } else { p + 1 }]
    };
    let pred = |c: u32| {
        let p = pos[c as usize] as usize;
        order[if p == 0 { n - 1 } else { p - 1 }]
    };
    let mut best = (0.0f32, 0u32, 0u32);

    // Moves replacing the forward edge (c1, succ c1): the added edge
    // (c1, c2) must be shorter than the removed one (sorted candidate
    // lists make this the classic early-out; as a mask it is the same
    // set, which is how the lockstep kernel evaluates it).
    let s1 = succ(c1);
    let d1 = d32(m, c1, s1);
    for c2 in cands {
        let dcc = d32(m, c1, c2);
        let s2 = succ(c2);
        let g = (d1 + d32(m, c2, s2)) - (dcc + d32(m, s1, s2));
        if dcc < d1 && s2 != c1 && c2 != s1 && g > best.0 {
            best = (g, c1, c2);
        }
    }

    // Moves replacing the backward edge (pred c1, c1).
    let p1 = pred(c1);
    let d1p = d32(m, p1, c1);
    for c2 in backward {
        let dcc = d32(m, c1, c2);
        let p2 = pred(c2);
        let g = (d1p + d32(m, p2, c2)) - (dcc + d32(m, p1, p2));
        if dcc < d1p && p2 != c1 && c2 != p1 && g > best.0 {
            best = (g, p1, p2);
        }
    }
    best
}

/// Apply the 2-opt move `(a, b)`: reverse the segment strictly after `a`
/// up to and including `b`, keeping `pos` consistent. Always reverses
/// the shorter side (`2·inner <= n` picks the inner segment) — the exact
/// rule the GPU apply kernel uses, so the resulting *order arrays* (not
/// just the cycles) agree.
fn apply_2opt(order: &mut [u32], pos: &mut [u32], a: u32, b: u32) {
    let n = order.len();
    let pa = pos[a as usize] as usize;
    let pb = pos[b as usize] as usize;
    let inner = (pb + n - pa) % n;
    let (mut i, mut j) = if 2 * inner <= n { ((pa + 1) % n, pb) } else { ((pb + 1) % n, pa) };
    let seg_len = (j + n - i) % n + 1;
    for _ in 0..seg_len / 2 {
        order.swap(i, j);
        pos[order[i] as usize] = i as u32;
        pos[order[j] as usize] = j as u32;
        i = (i + 1) % n;
        j = (j + n - 1) % n;
    }
}

/// One best-improvement round over the awake cities. Returns the round's
/// winning move, or `None` when no awake city can improve (every scanned
/// city's don't-look bit is set on the way).
fn propose_round(
    order: &[u32],
    pos: &[u32],
    dont_look: &mut [bool],
    m: &DistanceMatrix,
    nn: Option<&NearestNeighborLists>,
) -> Option<(u32, u32)> {
    let n = order.len();
    let mut best = (0.0f32, 0u32, 0u32);
    for c1 in 0..n as u32 {
        if dont_look[c1 as usize] {
            continue;
        }
        let mv = match nn {
            Some(lists) => {
                let fwd = &mut lists.neighbors(c1 as usize).iter().copied();
                let bwd = &mut lists.neighbors(c1 as usize).iter().copied();
                best_move_for_city(order, pos, m, c1, fwd, bwd)
            }
            None => {
                let fwd = &mut (0..n as u32).filter(|&j| j != c1);
                let bwd = &mut (0..n as u32).filter(|&j| j != c1);
                best_move_for_city(order, pos, m, c1, fwd, bwd)
            }
        };
        if mv.0 <= 0.0 {
            dont_look[c1 as usize] = true;
        } else if mv.0 > best.0 {
            // Strict > on an ascending city scan: ties keep the lowest
            // proposing city, matching the kernel's reduction tie-break.
            best = mv;
        }
    }
    (best.0 > 0.0).then_some((best.1, best.2))
}

fn two_opt_rounds(
    tour: &mut Tour,
    m: &DistanceMatrix,
    nn: Option<&NearestNeighborLists>,
    scratch: &mut LsScratch,
) -> usize {
    let n = tour.n();
    if n < 4 {
        return 0;
    }
    scratch.reset(n);
    scratch.index(tour.order());
    let LsScratch { pos, dont_look, .. } = scratch;
    let mut moves = 0usize;
    while let Some((a, b)) = propose_round(tour.order(), pos, dont_look, m, nn) {
        // Wake the endpoints of the two edges the move removes (their
        // neighbourhood is about to change); computed before the
        // reversal, exactly as the apply kernel does.
        let (sa, sb) = {
            let order = tour.order();
            let pa = pos[a as usize] as usize;
            let pb = pos[b as usize] as usize;
            (order[(pa + 1) % n], order[(pb + 1) % n])
        };
        apply_2opt(tour.order_mut(), pos, a, b);
        for c in [a, sa, b, sb] {
            dont_look[c as usize] = false;
        }
        moves += 1;
    }
    moves
}

/// Nearest-neighbour-restricted 2-opt (the [`crate::LocalSearch::TwoOptNn`]
/// pass): best-improvement rounds with don't-look bits over the NN
/// candidate lists. Returns the number of moves applied. This is the
/// *reference semantics* of the GPU kernel family — [`crate::gpu::run_two_opt`]
/// on the same input produces the identical order array.
pub fn two_opt_nn(
    tour: &mut Tour,
    m: &DistanceMatrix,
    nn: &NearestNeighborLists,
    scratch: &mut LsScratch,
) -> usize {
    two_opt_rounds(tour, m, Some(nn), scratch)
}

/// Full-neighbourhood 2-opt (the [`crate::LocalSearch::TwoOpt`] pass):
/// the same round loop with every other city as a candidate. `O(n²)` per
/// round; an *awake* city cannot miss an improving move (for any such
/// move, one added edge is shorter than an adjacent removed edge, so
/// the forward/backward scans with the shorter-added-edge filter find
/// it), but like every don't-look pass the loop stops at a *fixpoint of
/// the bits*, which can fall short of a true 2-opt optimum — iterate
/// fresh passes until no move remains when full optimality is needed
/// (as the engine's post-pass does).
pub fn two_opt_full(tour: &mut Tour, m: &DistanceMatrix, scratch: &mut LsScratch) -> usize {
    two_opt_rounds(tour, m, None, scratch)
}

/// Or-opt (the [`crate::LocalSearch::OrOpt`] pass): relocate segments of
/// 1–3 consecutive cities, forward or reversed, to directly follow a
/// nearest neighbour of the segment head. First-improvement sweeps until
/// a full sweep finds nothing; every applied move strictly shortens the
/// tour, so the pass terminates. Returns the number of moves applied.
pub fn or_opt(
    tour: &mut Tour,
    m: &DistanceMatrix,
    nn: &NearestNeighborLists,
    scratch: &mut LsScratch,
) -> usize {
    let n = tour.n();
    if n < 5 {
        return 0;
    }
    let du = |i: u32, j: u32| m.dist(i as usize, j as usize) as i64;
    let mut moves = 0usize;
    loop {
        scratch.reset(n);
        scratch.index(tour.order());
        let mut action: Option<(usize, usize, u32, bool)> = None;
        'scan: for seg_len in 1..=3usize.min(n - 4) {
            for p in 0..=n - seg_len {
                let order = tour.order();
                let first = order[p];
                let last = order[p + seg_len - 1];
                let prev = order[(p + n - 1) % n];
                let next = order[(p + seg_len) % n];
                let removal = du(prev, first) + du(last, next) - du(prev, next);
                if removal <= 0 {
                    continue; // reinsertion cost is never negative
                }
                for &c in nn.neighbors(first as usize) {
                    let cp = scratch.pos[c as usize] as usize;
                    let in_seg = cp >= p && cp < p + seg_len;
                    if in_seg || c == prev {
                        continue;
                    }
                    let c_next = order[(cp + 1) % n];
                    let base = du(c, c_next);
                    let fwd = du(c, first) + du(last, c_next) - base;
                    let rev = du(c, last) + du(first, c_next) - base;
                    let (cost, reversed) = if fwd <= rev { (fwd, false) } else { (rev, true) };
                    if removal - cost > 0 {
                        action = Some((p, seg_len, c, reversed));
                        break 'scan;
                    }
                }
            }
        }
        match action {
            Some((p, seg_len, c, reversed)) => {
                splice_segment(tour, scratch, p, seg_len, c, reversed);
                moves += 1;
            }
            None => break,
        }
    }
    moves
}

/// Remove the segment at positions `p .. p + seg_len` and reinsert it
/// (optionally reversed) directly after city `c`, rebuilding the order
/// through the scratch buffers.
fn splice_segment(
    tour: &mut Tour,
    scratch: &mut LsScratch,
    p: usize,
    seg_len: usize,
    c: u32,
    reversed: bool,
) {
    let LsScratch { seg, build, .. } = scratch;
    seg.clear();
    // The remaining cycle, starting just past the removed segment.
    seg.extend_from_slice(&tour.order()[p + seg_len..]);
    seg.extend_from_slice(&tour.order()[..p]);
    let ci = seg.iter().position(|&x| x == c).expect("c is outside the segment");
    build.clear();
    build.extend_from_slice(&seg[..=ci]);
    if reversed {
        build.extend(tour.order()[p..p + seg_len].iter().rev());
    } else {
        build.extend_from_slice(&tour.order()[p..p + seg_len]);
    }
    build.extend_from_slice(&seg[ci + 1..]);
    tour.order_mut().copy_from_slice(build);
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::{nearest_neighbor_tour, uniform_random};
    use rand::SeedableRng;

    #[test]
    fn nn_rounds_reach_a_local_optimum() {
        let inst = uniform_random("ls-cpu", 64, 1000.0, 3);
        let nn = NearestNeighborLists::build(inst.matrix(), 16).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut tour = Tour::random(64, &mut rng);
        let before = tour.length(inst.matrix());
        let mut scratch = LsScratch::new();
        let moves = two_opt_nn(&mut tour, inst.matrix(), &nn, &mut scratch);
        assert!(moves > 0);
        assert!(tour.is_valid());
        let mid = tour.length(inst.matrix());
        assert!(mid < before);
        // Re-running finds nothing: local optimality w.r.t. the lists.
        assert_eq!(two_opt_nn(&mut tour, inst.matrix(), &nn, &mut scratch), 0);
        assert_eq!(tour.length(inst.matrix()), mid);
    }

    #[test]
    fn full_matches_or_beats_nn_quality() {
        let inst = uniform_random("ls-cpu2", 48, 800.0, 9);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let mut scratch = LsScratch::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let seed_tour = Tour::random(48, &mut rng);
        let mut a = seed_tour.clone();
        two_opt_nn(&mut a, inst.matrix(), &nn, &mut scratch);
        let mut b = seed_tour;
        two_opt_full(&mut b, inst.matrix(), &mut scratch);
        assert!(b.length(inst.matrix()) <= a.length(inst.matrix()));
    }

    #[test]
    fn two_opt_untangles_a_crossing() {
        let inst = aco_tsp::grid("sq", 2, 2, 10.0);
        let nn = NearestNeighborLists::build(inst.matrix(), 3).unwrap();
        let mut tour = Tour::new(vec![0, 3, 1, 2]).unwrap();
        let mut scratch = LsScratch::new();
        two_opt_nn(&mut tour, inst.matrix(), &nn, &mut scratch);
        assert_eq!(tour.length(inst.matrix()), 40);
    }

    #[test]
    fn or_opt_improves_greedy_tours_and_terminates() {
        let inst = uniform_random("ls-oropt", 80, 1000.0, 13);
        let nn = NearestNeighborLists::build(inst.matrix(), 12).unwrap();
        let mut tour = nearest_neighbor_tour(inst.matrix(), 0);
        let before = tour.length(inst.matrix());
        let mut scratch = LsScratch::new();
        let moves = or_opt(&mut tour, inst.matrix(), &nn, &mut scratch);
        assert!(tour.is_valid());
        assert!(tour.length(inst.matrix()) <= before);
        // A greedy tour on 80 random cities nearly always has a
        // relocatable city; if not, the pass must simply terminate.
        let _ = moves;
    }

    #[test]
    fn tiny_instances_are_no_ops() {
        let inst = uniform_random("ls-tiny", 4, 100.0, 1);
        let nn = NearestNeighborLists::build(inst.matrix(), 3).unwrap();
        let mut tour = Tour::identity(4);
        let mut scratch = LsScratch::new();
        assert_eq!(or_opt(&mut tour, inst.matrix(), &nn, &mut scratch), 0);
        let mut t3 = Tour::identity(3);
        assert_eq!(two_opt_nn(&mut t3, inst.matrix(), &nn, &mut scratch), 0);
    }
}
