//! Batched all-ants variants of the `two_opt` kernel family.
//!
//! The per-ant family in [`crate::gpu`] launches four kernels per round
//! *per ant*, so an all-ants pass costs `O(m · rounds)` launches per
//! iteration. The paper's central lesson — and Skinderowicz's GPU-ACS —
//! is that GPU ACO wins by restructuring work into few, wide launches.
//! These variants process **every ant's tour in one launch per phase**
//! (ant-major layout: one slice of position index, don't-look bits and
//! reduction scratch per ant), driven by [`run_two_opt_all`], so an
//! iteration costs `O(rounds)` launches no matter how many ants run.
//!
//! **Equivalence.** Per ant, each batched round executes exactly the
//! per-ant round: same candidate scan, same `f32` gain expression, same
//! `(gain, city)` reduction tie-break, same shorter-side reversal and
//! don't-look updates. The batch keeps rounding until *no* ant proposes
//! an improving move; an ant whose own move stream dried up has every
//! city asleep, so the extra rounds are exact no-ops for it. Tours are
//! therefore bit-identical to running [`crate::gpu::run_two_opt`] (or
//! the CPU rounds) ant by ant — pinned by the tests below and the
//! cross-crate suite.

use aco_simt::prelude::*;
use aco_simt::SimtError;

use crate::gpu::{block_reduce_best, TwoOptRun, LS_BLOCK};

/// Device state of the batched family: the colony buffers it reads plus
/// per-ant slices of the 2-opt scratch. `Copy` so kernels capture it
/// like `ColonyBuffers`.
#[derive(Debug, Clone, Copy)]
pub struct TwoOptBatchDev {
    /// Cities.
    pub n: u32,
    /// Ant count (tour rows).
    pub ants: u32,
    /// Candidate-list depth.
    pub nn: u32,
    /// Row stride of the per-ant tour array.
    pub stride: u32,
    /// `n x n` distances, f32.
    pub dist: DevicePtr<f32>,
    /// `m x stride` tours (improved in place).
    pub tours: DevicePtr<u32>,
    /// `m` tour lengths, f32 (gain-adjusted in place).
    pub lengths: DevicePtr<f32>,
    /// `n x nn` nearest-neighbour lists.
    pub nn_list: DevicePtr<u32>,
    /// `m x n` positions: `pos[ant*n + city] = index` in the ant's order.
    pub pos: DevicePtr<u32>,
    /// `m x n` don't-look bits (0 = awake).
    pub dont_look: DevicePtr<u32>,
    /// Per-block best gain (`m x pgrid` entries, ant-major).
    pub block_gain: DevicePtr<f32>,
    /// Per-block best move `a`.
    pub block_a: DevicePtr<u32>,
    /// Per-block best move `b`.
    pub block_b: DevicePtr<u32>,
    /// Per-block proposing city (the reduction tie-break key).
    pub block_city: DevicePtr<u32>,
    /// Each ant's chosen gain this round (`m` entries; the host's
    /// termination read).
    pub chosen_gain: DevicePtr<f32>,
    /// Each ant's chosen `a`.
    pub chosen_a: DevicePtr<u32>,
    /// Each ant's chosen `b`.
    pub chosen_b: DevicePtr<u32>,
}

impl TwoOptBatchDev {
    /// Allocate the batched scratch next to an existing colony's buffers
    /// (distances / tours / lengths / candidate lists are borrowed from
    /// the colony, not copied).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate(
        gm: &mut GlobalMem,
        n: u32,
        ants: u32,
        nn: u32,
        stride: u32,
        dist: DevicePtr<f32>,
        tours: DevicePtr<u32>,
        lengths: DevicePtr<f32>,
        nn_list: DevicePtr<u32>,
    ) -> Self {
        let pgrid = n.div_ceil(LS_BLOCK) as usize;
        let m = ants as usize;
        TwoOptBatchDev {
            n,
            ants,
            nn,
            stride,
            dist,
            tours,
            lengths,
            nn_list,
            pos: gm.alloc_u32(m * n as usize),
            dont_look: gm.alloc_u32(m * n as usize),
            block_gain: gm.alloc_f32(m * pgrid),
            block_a: gm.alloc_u32(m * pgrid),
            block_b: gm.alloc_u32(m * pgrid),
            block_city: gm.alloc_u32(m * pgrid),
            chosen_gain: gm.alloc_f32(m),
            chosen_a: gm.alloc_u32(m),
            chosen_b: gm.alloc_u32(m),
        }
    }

    /// Propose blocks per ant (one thread per city).
    pub fn pgrid(&self) -> u32 {
        self.n.div_ceil(LS_BLOCK)
    }

    /// Position-scatter blocks per ant (one thread per padded cell).
    fn posgrid(&self) -> u32 {
        self.stride.div_ceil(LS_BLOCK)
    }
}

/// Position scatter + padding refresh for **every** ant's tour row in
/// one launch: blocks are ant-major, `posgrid` blocks per ant.
pub struct TwoOptPosAllKernel {
    /// Family buffers.
    pub bufs: TwoOptBatchDev,
}

impl TwoOptPosAllKernel {
    /// One thread per padded tour cell, all ants.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.ants * self.bufs.posgrid(), LS_BLOCK).regs(10)
    }
}

impl Kernel for TwoOptPosAllKernel {
    fn name(&self) -> &'static str {
        "two_opt_pos_all"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let per_ant = self.bufs.posgrid();
        let ant = ctx.block_idx / per_ant;
        let blk = ctx.block_idx % per_ant;
        let base = ant * self.bufs.stride;
        let row = ant * n; // this ant's pos slice
        let off = ctx.splat_u32(blk * LS_BLOCK);
        let lane = ctx.thread_idx();
        let idx = ctx.iadd(&off, &lane);
        let n_reg = ctx.splat_u32(n);
        let in_n = ctx.ult(&idx, &n_reg);
        let base_reg = ctx.splat_u32(base);
        let row_reg = ctx.splat_u32(row);
        let g_idx = ctx.iadd(&base_reg, &idx);
        ctx.if_then(gm, &in_n, |ctx, gm| {
            let city = ctx.ld_global_u32(gm, self.bufs.tours, &g_idx);
            let p_idx = ctx.iadd(&row_reg, &city);
            ctx.st_global_u32(gm, self.bufs.pos, &p_idx, &idx);
        });
        // Padding cells repeat the (possibly new) start city, exactly as
        // the per-ant kernel does.
        let stride_reg = ctx.splat_u32(self.bufs.stride);
        let in_pad = ctx.ult(&idx, &stride_reg).and(&in_n.not());
        ctx.if_then(gm, &in_pad, |ctx, gm| {
            let start_idx = ctx.splat_u32(base);
            let start = ctx.ld_global_u32(gm, self.bufs.tours, &start_idx);
            ctx.st_global_u32(gm, self.bufs.tours, &g_idx, &start);
        });
    }
}

/// Per-city move proposal + per-block best-improvement reduction for
/// every ant in one launch (`pgrid` blocks per ant, ant-major).
pub struct TwoOptProposeAllKernel {
    /// Family buffers.
    pub bufs: TwoOptBatchDev,
}

impl TwoOptProposeAllKernel {
    /// One thread per city per ant; shared memory holds the four
    /// reduction arrays (gain, a, b, proposing city).
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.ants * self.bufs.pgrid(), LS_BLOCK)
            .regs(30)
            .shared(4 * LS_BLOCK * 4)
    }
}

impl Kernel for TwoOptProposeAllKernel {
    fn name(&self) -> &'static str {
        "two_opt_propose_all"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let nn = self.bufs.nn;
        let per_ant = self.bufs.pgrid();
        let ant = ctx.block_idx / per_ant;
        let blk = ctx.block_idx % per_ant;
        let base = ant * self.bufs.stride;
        let prow = ant * n; // this ant's pos / don't-look slice
        let off = ctx.splat_u32(blk * LS_BLOCK);
        let lane = ctx.thread_idx();
        let tid = ctx.iadd(&off, &lane);
        let n_reg = ctx.splat_u32(n);
        let zero_f = ctx.splat_f32(0.0);
        let zero_u = ctx.splat_u32(0);
        let one_u = ctx.splat_u32(1);
        let base_reg = ctx.splat_u32(base);
        let prow_reg = ctx.splat_u32(prow);
        let nm1 = ctx.splat_u32(n - 1);

        // Per-lane best move; lanes out of range or asleep keep the
        // sentinel (gain 0) and lose every reduction comparison.
        let mut best_g = ctx.splat_f32(0.0);
        let mut best_a = ctx.splat_u32(0);
        let mut best_b = ctx.splat_u32(0);

        let in_range = ctx.ult(&tid, &n_reg);
        ctx.if_then(gm, &in_range, |ctx, gm| {
            let dl_idx = ctx.iadd(&prow_reg, &tid);
            let look = ctx.ld_global_u32(gm, self.bufs.dont_look, &dl_idx);
            let awake = ctx.ueq(&look, &zero_u);
            ctx.branch(&awake);
            ctx.with_mask(gm, &awake, |ctx, gm| {
                // succ(c) / pred(c) positions via the scattered index.
                let mp_idx = ctx.iadd(&prow_reg, &tid);
                let my_pos = ctx.ld_global_u32(gm, self.bufs.pos, &mp_idx);
                let p_plus = ctx.iadd(&my_pos, &one_u);
                let wrap_s = ctx.ueq(&p_plus, &n_reg);
                let sp = ctx.select_u32(&wrap_s, &zero_u, &p_plus);
                let sp_g = ctx.iadd(&base_reg, &sp);
                let s1 = ctx.ld_global_u32(gm, self.bufs.tours, &sp_g);
                let wrap_p = ctx.ueq(&my_pos, &zero_u);
                let p_minus = ctx.isub(&my_pos, &one_u);
                let pp = ctx.select_u32(&wrap_p, &nm1, &p_minus);
                let pp_g = ctx.iadd(&base_reg, &pp);
                let p1 = ctx.ld_global_u32(gm, self.bufs.tours, &pp_g);

                let row = ctx.imul(&tid, &n_reg);
                let nn_reg = ctx.splat_u32(nn);
                let nn_row = ctx.imul(&tid, &nn_reg);

                // Forward edge (c1, succ c1): removed length d1.
                let s1_idx = ctx.iadd(&row, &s1);
                let d1 = ctx.ld_tex_f32(gm, self.bufs.dist, &s1_idx);
                // Backward edge (pred c1, c1): removed length d1p.
                let p1_row = ctx.imul(&p1, &n_reg);
                let p1_idx = ctx.iadd(&p1_row, &tid);
                let d1p = ctx.ld_tex_f32(gm, self.bufs.dist, &p1_idx);

                // Forward moves first, then backward — the scan order of
                // `cpu::best_move_for_city`, kept for exact equivalence.
                for k in 0..nn {
                    let k_reg = ctx.splat_u32(k);
                    let l_idx = ctx.iadd(&nn_row, &k_reg);
                    let c2 = ctx.ld_global_u32(gm, self.bufs.nn_list, &l_idx);
                    let cc_idx = ctx.iadd(&row, &c2);
                    let dcc = ctx.ld_tex_f32(gm, self.bufs.dist, &cc_idx);
                    let c2p_idx = ctx.iadd(&prow_reg, &c2);
                    let c2_pos = ctx.ld_global_u32(gm, self.bufs.pos, &c2p_idx);
                    let c2p1 = ctx.iadd(&c2_pos, &one_u);
                    let wrap = ctx.ueq(&c2p1, &n_reg);
                    let sp2 = ctx.select_u32(&wrap, &zero_u, &c2p1);
                    let sp2_g = ctx.iadd(&base_reg, &sp2);
                    let s2 = ctx.ld_global_u32(gm, self.bufs.tours, &sp2_g);
                    let c2_row = ctx.imul(&c2, &n_reg);
                    let rem2_idx = ctx.iadd(&c2_row, &s2);
                    let rem2 = ctx.ld_tex_f32(gm, self.bufs.dist, &rem2_idx);
                    let s1_row = ctx.imul(&s1, &n_reg);
                    let add2_idx = ctx.iadd(&s1_row, &s2);
                    let add2 = ctx.ld_tex_f32(gm, self.bufs.dist, &add2_idx);
                    let removed = ctx.fadd(&d1, &rem2);
                    let added = ctx.fadd(&dcc, &add2);
                    let g = ctx.fsub(&removed, &added);
                    let closer = ctx.flt(&dcc, &d1);
                    let ok1 = ctx.une(&s2, &tid);
                    let ok2 = ctx.une(&c2, &s1);
                    let better = ctx.fgt(&g, &best_g);
                    let valid = closer.and(&ok1).and(&ok2).and(&better);
                    let ng = ctx.select_f32(&valid, &g, &best_g);
                    ctx.assign_f32(&mut best_g, &ng);
                    let na = ctx.select_u32(&valid, &tid, &best_a);
                    ctx.assign_u32(&mut best_a, &na);
                    let nb = ctx.select_u32(&valid, &c2, &best_b);
                    ctx.assign_u32(&mut best_b, &nb);
                }

                for k in 0..nn {
                    let k_reg = ctx.splat_u32(k);
                    let l_idx = ctx.iadd(&nn_row, &k_reg);
                    let c2 = ctx.ld_global_u32(gm, self.bufs.nn_list, &l_idx);
                    let cc_idx = ctx.iadd(&row, &c2);
                    let dcc = ctx.ld_tex_f32(gm, self.bufs.dist, &cc_idx);
                    let c2p_idx = ctx.iadd(&prow_reg, &c2);
                    let c2_pos = ctx.ld_global_u32(gm, self.bufs.pos, &c2p_idx);
                    let wrap = ctx.ueq(&c2_pos, &zero_u);
                    let c2m1 = ctx.isub(&c2_pos, &one_u);
                    let ppos2 = ctx.select_u32(&wrap, &nm1, &c2m1);
                    let pp2_g = ctx.iadd(&base_reg, &ppos2);
                    let p2 = ctx.ld_global_u32(gm, self.bufs.tours, &pp2_g);
                    let p2_row = ctx.imul(&p2, &n_reg);
                    let rem2_idx = ctx.iadd(&p2_row, &c2);
                    let rem2 = ctx.ld_tex_f32(gm, self.bufs.dist, &rem2_idx);
                    let p1_row2 = ctx.imul(&p1, &n_reg);
                    let add2_idx = ctx.iadd(&p1_row2, &p2);
                    let add2 = ctx.ld_tex_f32(gm, self.bufs.dist, &add2_idx);
                    let removed = ctx.fadd(&d1p, &rem2);
                    let added = ctx.fadd(&dcc, &add2);
                    let g = ctx.fsub(&removed, &added);
                    let closer = ctx.flt(&dcc, &d1p);
                    let ok1 = ctx.une(&p2, &tid);
                    let ok2 = ctx.une(&c2, &p1);
                    let better = ctx.fgt(&g, &best_g);
                    let valid = closer.and(&ok1).and(&ok2).and(&better);
                    let ng = ctx.select_f32(&valid, &g, &best_g);
                    ctx.assign_f32(&mut best_g, &ng);
                    let na = ctx.select_u32(&valid, &p1, &best_a);
                    ctx.assign_u32(&mut best_a, &na);
                    let nb = ctx.select_u32(&valid, &p2, &best_b);
                    ctx.assign_u32(&mut best_b, &nb);
                }

                // Cities with nothing to propose go to sleep until a
                // neighbouring edge changes.
                let stale = ctx.fle(&best_g, &zero_f);
                ctx.if_then(gm, &stale, |ctx, gm| {
                    ctx.st_global_u32(gm, self.bufs.dont_look, &dl_idx, &one_u);
                });
            });
        });

        // Reduction key: (gain, proposing city); sentinel city = MAX so
        // idle lanes lose ties too.
        let improved = ctx.fgt(&best_g, &zero_f);
        let max_u = ctx.splat_u32(u32::MAX);
        let best_city = ctx.select_u32(&improved, &tid, &max_u);

        let entry = ant * per_ant + blk;
        block_reduce_best(ctx, gm, &best_g, &best_a, &best_b, &best_city, |ctx, gm, g, a, b, c| {
            let eidx = ctx.splat_u32(entry);
            ctx.st_global_f32(gm, self.bufs.block_gain, &eidx, g);
            ctx.st_global_u32(gm, self.bufs.block_a, &eidx, a);
            ctx.st_global_u32(gm, self.bufs.block_b, &eidx, b);
            ctx.st_global_u32(gm, self.bufs.block_city, &eidx, c);
        });
    }
}

/// Fold each ant's per-block bests into its chosen move — one block per
/// ant, all ants in one launch.
pub struct TwoOptSelectAllKernel {
    /// Family buffers.
    pub bufs: TwoOptBatchDev,
}

impl TwoOptSelectAllKernel {
    /// One block per ant; threads stride over the ant's entries.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.ants, LS_BLOCK).regs(18).shared(4 * LS_BLOCK * 4)
    }
}

impl Kernel for TwoOptSelectAllKernel {
    fn name(&self) -> &'static str {
        "two_opt_select_all"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let entries = self.bufs.pgrid();
        let ant = ctx.block_idx;
        let ebase = ctx.splat_u32(ant * entries);
        let lane = ctx.thread_idx();
        let e_reg = ctx.splat_u32(entries);
        let step = ctx.splat_u32(LS_BLOCK);
        let max_u = ctx.splat_u32(u32::MAX);
        let mut fold_g = ctx.splat_f32(0.0);
        let mut fold_a = ctx.splat_u32(0);
        let mut fold_b = ctx.splat_u32(0);
        let mut fold_c = max_u.clone();
        let mut idx = lane.clone();
        for _ in 0..entries.div_ceil(LS_BLOCK) {
            let in_range = ctx.ult(&idx, &e_reg);
            ctx.branch(&in_range);
            ctx.with_mask(gm, &in_range, |ctx, gm| {
                let g_idx = ctx.iadd(&ebase, &idx);
                let g2 = ctx.ld_global_f32(gm, self.bufs.block_gain, &g_idx);
                let c2 = ctx.ld_global_u32(gm, self.bufs.block_city, &g_idx);
                let a2 = ctx.ld_global_u32(gm, self.bufs.block_a, &g_idx);
                let b2 = ctx.ld_global_u32(gm, self.bufs.block_b, &g_idx);
                let gt = ctx.fgt(&g2, &fold_g);
                let ge = ctx.fge(&g2, &fold_g);
                let le = ctx.fle(&g2, &fold_g);
                let eq = ge.and(&le);
                let lower = ctx.ult(&c2, &fold_c);
                let better = gt.or(&eq.and(&lower));
                let ng = ctx.select_f32(&better, &g2, &fold_g);
                ctx.assign_f32(&mut fold_g, &ng);
                let na = ctx.select_u32(&better, &a2, &fold_a);
                ctx.assign_u32(&mut fold_a, &na);
                let nb = ctx.select_u32(&better, &b2, &fold_b);
                ctx.assign_u32(&mut fold_b, &nb);
                let nc = ctx.select_u32(&better, &c2, &fold_c);
                ctx.assign_u32(&mut fold_c, &nc);
            });
            idx = ctx.iadd(&idx, &step);
        }
        block_reduce_best(ctx, gm, &fold_g, &fold_a, &fold_b, &fold_c, |ctx, gm, g, a, b, _c| {
            let aidx = ctx.splat_u32(ant);
            ctx.st_global_f32(gm, self.bufs.chosen_gain, &aidx, g);
            ctx.st_global_u32(gm, self.bufs.chosen_a, &aidx, a);
            ctx.st_global_u32(gm, self.bufs.chosen_b, &aidx, b);
        });
    }
}

/// Apply each ant's chosen move — one block per ant, all ants in one
/// launch. Blocks write only their own ant's rows (tours, don't-look,
/// length), so the launch satisfies the execution-model rule. An ant
/// whose round found no improving move (chosen gain ≤ 0) is an exact
/// no-op: its swap span is forced to zero and its wake/length section
/// is masked off.
pub struct TwoOptApplyAllKernel {
    /// Family buffers.
    pub bufs: TwoOptBatchDev,
}

impl TwoOptApplyAllKernel {
    /// One block per ant; threads stride over the (disjoint) swap pairs.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::new(self.bufs.ants, LS_BLOCK).regs(22)
    }
}

impl Kernel for TwoOptApplyAllKernel {
    fn name(&self) -> &'static str {
        "two_opt_apply_all"
    }

    fn run_block(&self, ctx: &mut BlockCtx, gm: &mut GlobalMem) {
        let n = self.bufs.n;
        let ant = ctx.block_idx;
        let base = ant * self.bufs.stride;
        let prow = ant * n;
        let zero_u = ctx.splat_u32(0);
        let zero_f = ctx.splat_f32(0.0);
        let one_u = ctx.splat_u32(1);
        let n_reg = ctx.splat_u32(n);
        let base_reg = ctx.splat_u32(base);
        let prow_reg = ctx.splat_u32(prow);
        let ant_reg = ctx.splat_u32(ant);

        // The ant's chosen move (uniform broadcast loads), and everything
        // that must be read *before* any cell moves. A non-improving ant
        // holds the select fold's defaults (gain 0, a = b = 0), so the
        // reads below stay in range and the move is neutralised by the
        // `active` mask.
        let gain = ctx.ld_global_f32(gm, self.bufs.chosen_gain, &ant_reg);
        let active = ctx.fgt(&gain, &zero_f);
        let a = ctx.ld_global_u32(gm, self.bufs.chosen_a, &ant_reg);
        let b = ctx.ld_global_u32(gm, self.bufs.chosen_b, &ant_reg);
        let pa_idx = ctx.iadd(&prow_reg, &a);
        let pa = ctx.ld_global_u32(gm, self.bufs.pos, &pa_idx);
        let pb_idx = ctx.iadd(&prow_reg, &b);
        let pb = ctx.ld_global_u32(gm, self.bufs.pos, &pb_idx);
        let pa1 = ctx.iadd(&pa, &one_u);
        let wrap_a = ctx.ueq(&pa1, &n_reg);
        let spa = ctx.select_u32(&wrap_a, &zero_u, &pa1);
        let spa_g = ctx.iadd(&base_reg, &spa);
        let sa = ctx.ld_global_u32(gm, self.bufs.tours, &spa_g);
        let pb1 = ctx.iadd(&pb, &one_u);
        let wrap_b = ctx.ueq(&pb1, &n_reg);
        let spb = ctx.select_u32(&wrap_b, &zero_u, &pb1);
        let spb_g = ctx.iadd(&base_reg, &spb);
        let sb = ctx.ld_global_u32(gm, self.bufs.tours, &spb_g);

        // Shorter-side selection, as in the per-ant apply.
        let pbn = ctx.iadd(&pb, &n_reg);
        let diff = ctx.isub(&pbn, &pa);
        let over = ctx.ule(&n_reg, &diff);
        let diff_w = ctx.isub(&diff, &n_reg);
        let inner = ctx.select_u32(&over, &diff_w, &diff);
        let two = ctx.splat_u32(2);
        let twice = ctx.imul(&inner, &two);
        let use_inner = ctx.ule(&twice, &n_reg);
        let i0 = ctx.select_u32(&use_inner, &spa, &spb);
        let j0 = ctx.select_u32(&use_inner, &pb, &pa);
        let j0n = ctx.iadd(&j0, &n_reg);
        let span = ctx.isub(&j0n, &i0);
        let span_over = ctx.ule(&n_reg, &span);
        let span_w = ctx.isub(&span, &n_reg);
        let seg_m1 = ctx.select_u32(&span_over, &span_w, &span);
        let seg = ctx.iadd(&seg_m1, &one_u);
        let half_raw = ctx.ishr(&seg, &one_u);
        // Inactive ants swap nothing: zero-length span.
        let half = ctx.select_u32(&active, &half_raw, &zero_u);

        // Strided swap loop over this ant's row only (disjoint pairs; all
        // boundary reads above happened before the first store).
        let mut t = ctx.thread_idx();
        let step = ctx.splat_u32(LS_BLOCK);
        ctx.loop_while(gm, |ctx, gm| {
            let cont = ctx.ult(&t, &half);
            ctx.with_mask(gm, &cont, |ctx, gm| {
                let li_raw = ctx.iadd(&i0, &t);
                let li_over = ctx.ule(&n_reg, &li_raw);
                let li_w = ctx.isub(&li_raw, &n_reg);
                let li = ctx.select_u32(&li_over, &li_w, &li_raw);
                let rj_raw = ctx.isub(&j0n, &t);
                let rj_over = ctx.ule(&n_reg, &rj_raw);
                let rj_w = ctx.isub(&rj_raw, &n_reg);
                let rj = ctx.select_u32(&rj_over, &rj_w, &rj_raw);
                let li_g = ctx.iadd(&base_reg, &li);
                let rj_g = ctx.iadd(&base_reg, &rj);
                let cl = ctx.ld_global_u32(gm, self.bufs.tours, &li_g);
                let cr = ctx.ld_global_u32(gm, self.bufs.tours, &rj_g);
                ctx.st_global_u32(gm, self.bufs.tours, &li_g, &cr);
                ctx.st_global_u32(gm, self.bufs.tours, &rj_g, &cl);
            });
            t = ctx.iadd(&t, &step);
            cont
        });

        // Lane 0 of an active ant: wake the four cities whose edges
        // changed and settle the ant's device-side length.
        let lane0 = ctx.lane_mask(0).and(&active);
        ctx.if_then(gm, &lane0, |ctx, gm| {
            for city in [&a, &sa, &b, &sb] {
                let dl_idx = ctx.iadd(&prow_reg, city);
                ctx.st_global_u32(gm, self.bufs.dont_look, &dl_idx, &zero_u);
            }
            let len = ctx.ld_global_f32(gm, self.bufs.lengths, &ant_reg);
            let new_len = ctx.fsub(&len, &gain);
            ctx.st_global_f32(gm, self.bufs.lengths, &ant_reg, &new_len);
        });
    }
}

/// Run the batched 2-opt family over **every** ant's tour row until no
/// ant proposes an improving move. Each round is one launch per phase —
/// position-scatter, propose, select and (when any ant found a move)
/// apply — so the pass costs `O(rounds)` launches independent of the
/// ant count. The host reads back `m` gain words per round. Results are
/// bit-identical to running [`crate::gpu::run_two_opt`] ant by ant, at
/// any host `threads` count.
pub fn run_two_opt_all(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: TwoOptBatchDev,
    threads: usize,
) -> Result<TwoOptRun, SimtError> {
    // cudaMemset of every ant's don't-look bits: all cities awake.
    gm.u32_mut(bufs.dont_look).fill(0);
    let mut ms = 0.0;
    let mut stats = KernelStats::for_sms(dev.sm_count as usize);
    let mut rounds = 0u32;
    let mut moves = 0u32;
    loop {
        let pk = TwoOptPosAllKernel { bufs };
        let r = launch_threads(dev, &pk.config(), &pk, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        let prk = TwoOptProposeAllKernel { bufs };
        let r = launch_threads(dev, &prk.config(), &prk, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        let sk = TwoOptSelectAllKernel { bufs };
        let r = launch_threads(dev, &sk.config(), &sk, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        rounds += 1;
        let improving = gm.f32(bufs.chosen_gain).iter().filter(|&&g| g > 0.0).count() as u32;
        if improving == 0 {
            break;
        }
        let ak = TwoOptApplyAllKernel { bufs };
        let r = launch_threads(dev, &ak.config(), &ak, gm, SimMode::Full, threads)?;
        ms += r.time.total_ms;
        stats.merge(&r.stats);
        moves += improving;
    }
    Ok(TwoOptRun { rounds, moves, ms, stats })
}

/// Price one batched proposal round (position-scatter + propose +
/// select over all ants) at the given fidelity without mutating any
/// tour — the engine's cost model prices all-ants local search off this
/// instead of `m ×` the per-ant round. Deterministic in the inputs.
pub fn probe_all_round_ms(
    dev: &DeviceSpec,
    gm: &mut GlobalMem,
    bufs: TwoOptBatchDev,
    mode: SimMode,
) -> Result<f64, SimtError> {
    gm.u32_mut(bufs.dont_look).fill(0);
    let mut ms = 0.0;
    let pk = TwoOptPosAllKernel { bufs };
    ms += launch_threads(dev, &pk.config(), &pk, gm, mode, 1)?.time.total_ms;
    let prk = TwoOptProposeAllKernel { bufs };
    ms += launch_threads(dev, &prk.config(), &prk, gm, mode, 1)?.time.total_ms;
    let sk = TwoOptSelectAllKernel { bufs };
    ms += launch_threads(dev, &sk.config(), &sk, gm, mode, 1)?.time.total_ms;
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{two_opt_nn, LsScratch};
    use aco_tsp::{uniform_random, NearestNeighborLists, Tour, TspInstance};
    use rand::SeedableRng;

    /// Device setup mirroring a colony's buffers for `m` ant rows.
    fn device_setup(
        inst: &TspInstance,
        nn: &NearestNeighborLists,
        tours: &[Tour],
        stride: u32,
    ) -> (GlobalMem, TwoOptBatchDev) {
        let n = inst.n();
        let mut gm = GlobalMem::new();
        let dist = gm.alloc_f32(n * n);
        let host: Vec<f32> = inst.matrix().as_flat().iter().map(|&d| d as f32).collect();
        gm.write_f32(dist, &host);
        let tbuf = gm.alloc_u32(tours.len() * stride as usize);
        {
            let cells = gm.u32_mut(tbuf);
            for (a, t) in tours.iter().enumerate() {
                let row = &mut cells[a * stride as usize..(a + 1) * stride as usize];
                row[..n].copy_from_slice(t.order());
                for c in row[n..].iter_mut() {
                    *c = t.order()[0];
                }
            }
        }
        let lengths = gm.alloc_f32(tours.len());
        let lens: Vec<f32> = tours.iter().map(|t| t.length(inst.matrix()) as f32).collect();
        gm.write_f32(lengths, &lens);
        let nn_buf = gm.alloc_u32(n * nn.depth());
        gm.write_u32(nn_buf, nn.as_flat());
        let bufs = TwoOptBatchDev::allocate(
            &mut gm,
            n as u32,
            tours.len() as u32,
            nn.depth() as u32,
            stride,
            dist,
            tbuf,
            lengths,
            nn_buf,
        );
        (gm, bufs)
    }

    fn random_tours(n: usize, m: usize, seed: u64) -> Vec<Tour> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..m).map(|_| Tour::random(n, &mut rng)).collect()
    }

    #[test]
    fn batched_family_matches_cpu_rounds_per_ant_exactly() {
        for (n, seed, depth, m) in
            [(32usize, 7u64, 8usize, 4usize), (61, 21, 12, 6), (96, 3, 16, 3)]
        {
            let inst = uniform_random("ls-batch", n, 1000.0, seed);
            let nn = NearestNeighborLists::build(inst.matrix(), depth).unwrap();
            let tours = random_tours(n, m, seed ^ 0xA5);
            let stride = ((n + 1) as u32).next_multiple_of(256);
            let (mut gm, bufs) = device_setup(&inst, &nn, &tours, stride);

            let run = run_two_opt_all(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 1).unwrap();

            let mut total_moves = 0usize;
            for (a, t) in tours.iter().enumerate() {
                let mut host = t.clone();
                let mut scratch = LsScratch::new();
                total_moves += two_opt_nn(&mut host, inst.matrix(), &nn, &mut scratch);
                let row = &gm.u32(bufs.tours)[a * stride as usize..a * stride as usize + n];
                assert_eq!(
                    row,
                    host.order(),
                    "n={n} seed={seed} ant={a}: batched and host tours must be identical"
                );
                let exact = host.length(inst.matrix()) as f32;
                let dev_len = gm.f32(bufs.lengths)[a];
                assert!(
                    (dev_len - exact).abs() <= exact * 1e-5,
                    "ant {a}: device length {dev_len} vs exact {exact}"
                );
            }
            assert_eq!(run.moves as usize, total_moves, "n={n}: same total move count");
            assert!(run.moves > 0, "random tours on {n} cities must improve");
        }
    }

    #[test]
    fn batched_family_is_bit_identical_at_any_exec_thread_count() {
        let n = 48usize;
        let m = 5usize;
        let inst = uniform_random("ls-batch-thr", n, 900.0, 5);
        let nn = NearestNeighborLists::build(inst.matrix(), 10).unwrap();
        let tours = random_tours(n, m, 9);
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let dev = DeviceSpec::tesla_c1060();

        let (mut gm1, b1) = device_setup(&inst, &nn, &tours, stride);
        let serial = run_two_opt_all(&dev, &mut gm1, b1, 1).unwrap();
        for threads in [2, 4, 16] {
            let (mut gm2, b2) = device_setup(&inst, &nn, &tours, stride);
            let parallel = run_two_opt_all(&dev, &mut gm2, b2, threads).unwrap();
            assert_eq!(serial.rounds, parallel.rounds, "{threads} threads");
            assert_eq!(serial.moves, parallel.moves, "{threads} threads");
            assert_eq!(serial.stats, parallel.stats, "{threads} threads: counters");
            assert_eq!(serial.ms.to_bits(), parallel.ms.to_bits(), "{threads} threads: time");
            assert_eq!(gm1.u32(b1.tours), gm2.u32(b2.tours), "{threads} threads: memory");
            assert_eq!(gm1.f32(b1.lengths), gm2.f32(b2.lengths), "{threads} threads: lengths");
        }
    }

    #[test]
    fn batched_launch_count_is_o_rounds_not_o_ants() {
        let n = 40usize;
        let m = 8usize;
        let inst = uniform_random("ls-batch-launch", n, 800.0, 11);
        let nn = NearestNeighborLists::build(inst.matrix(), 8).unwrap();
        let tours = random_tours(n, m, 13);
        let stride = ((n + 1) as u32).next_multiple_of(256);
        let (mut gm, bufs) = device_setup(&inst, &nn, &tours, stride);
        let run = run_two_opt_all(&DeviceSpec::tesla_m2050(), &mut gm, bufs, 1).unwrap();
        // 3 phase launches per round + at most one apply per improving
        // round: the O(rounds) bound, with no m factor.
        assert!(run.rounds >= 2, "random tours must take several rounds");

        // The probe prices a batched round without touching any tour.
        let before = gm.u32(bufs.tours).to_vec();
        let ms =
            probe_all_round_ms(&DeviceSpec::tesla_m2050(), &mut gm, bufs, SimMode::Full).unwrap();
        assert!(ms > 0.0);
        assert_eq!(gm.u32(bufs.tours).to_vec(), before);
    }
}
