//! `aco-localsearch` — per-iteration local search for ACO colonies.
//!
//! The paper's construction/pheromone kernels reproduce tour *building*;
//! ACOTSP-grade solvers interleave an improvement step inside every
//! iteration, and the strongest GPU-ACO systems (Skinderowicz 2016, 2020)
//! run that step on the device next to construction. This crate is that
//! subsystem:
//!
//! * [`LocalSearch`] — the strategy the colonies run at each iteration
//!   boundary: [`LocalSearch::TwoOpt`] (full neighbourhood),
//!   [`LocalSearch::TwoOptNn`] (nearest-neighbour-restricted with
//!   don't-look bits, zero-alloc via a reusable [`LsScratch`]),
//!   [`LocalSearch::OrOpt`] (segment relocation), or
//!   [`LocalSearch::PostPass`] (the legacy end-of-run 2-opt polish).
//! * [`LsScope`] — which tours each iteration improves: the
//!   iteration-best ant (default) or the whole colony.
//! * [`cpu`] — the host passes. `TwoOptNn` is implemented as
//!   *best-improvement rounds*: every round scans all awake cities'
//!   candidate moves, applies the single best, and re-activates the four
//!   cities whose edges changed. That round structure is deliberately the
//!   same algorithm the GPU kernels execute, so the two produce
//!   **identical tours** on identical inputs.
//! * [`gpu`] — the simulated-device `two_opt` kernel family
//!   ([`gpu::TwoOptPosKernel`] → [`gpu::TwoOptProposeKernel`] →
//!   [`gpu::TwoOptSelectKernel`] → [`gpu::TwoOptApplyKernel`], driven by
//!   [`gpu::run_two_opt`]): one proposed swap per thread, texture-cached
//!   distance reads, shared-memory best-improvement reduction per block.
//!   Counters, modeled times and memory are bit-identical at any host
//!   `exec_threads` count ([`aco_simt::launch_threads`]).
//! * [`gpu_batch`] — batched all-ants variants of the same family
//!   (driven by [`run_two_opt_all`]): every ant's tour in **one launch
//!   per phase**, so an all-ants pass costs `O(rounds)` launches instead
//!   of `O(m · rounds)`, with tours bit-identical per ant.
//! * [`oropt`] — the device `or_opt` kernel family (same
//!   Propose/Select/Apply shape, first-improvement key reduction),
//!   replacing the old host-fallback + write-back path on GPU backends.
//!
//! Every pass is deterministic (no RNG) and never worsens a tour, so
//! colonies that apply one keep their bit-identical-at-any-worker-count
//! reporting contracts.

pub mod cpu;
pub mod gpu;
pub mod gpu_batch;
pub mod oropt;

pub use cpu::LsScratch;
pub use gpu::{probe_round_ms, run_two_opt, TwoOptDev, TwoOptRun};
pub use gpu_batch::{probe_all_round_ms, run_two_opt_all, TwoOptBatchDev};
pub use oropt::{probe_or_round_ms, run_or_opt, OrOptDev, OrOptRun};

use aco_tsp::{DistanceMatrix, NearestNeighborLists, Tour};

/// A local-search strategy. `Default` is [`LocalSearch::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalSearch {
    /// No local search (the paper's original colonies).
    #[default]
    None,
    /// Full-neighbourhood 2-opt: every round scans all `n - 1` partners
    /// of every awake city. Exhaustive but `O(n²)` per round; host-only
    /// (GPU colonies fall back to a host pass with a device write-back).
    TwoOpt,
    /// Nearest-neighbour-restricted 2-opt with don't-look bits — the
    /// ACOTSP default, and the variant the GPU kernel family executes.
    /// Candidate moves are limited to each city's NN list, so a round is
    /// `O(n · nn)`; reuses [`LsScratch`], allocating nothing when warm.
    TwoOptNn,
    /// Or-opt: relocate segments of 1–3 cities (forward or reversed)
    /// next to a nearest neighbour of the segment head. Catches moves
    /// 2-opt cannot express. GPU colonies run it on the device as the
    /// `or_opt` kernel family ([`oropt`]).
    OrOpt,
    /// No per-iteration work; one `TwoOptNn` polish of the final best
    /// tour, applied by the engine after the run. Select it via
    /// `SolveRequest::local_search`.
    PostPass,
}

impl LocalSearch {
    /// Every variant, in display order.
    pub const ALL: [LocalSearch; 5] = [
        LocalSearch::None,
        LocalSearch::TwoOpt,
        LocalSearch::TwoOptNn,
        LocalSearch::OrOpt,
        LocalSearch::PostPass,
    ];

    /// The strategy a colony runs *inside* its iteration loop.
    /// [`LocalSearch::PostPass`] does no per-iteration work, so it maps
    /// to [`LocalSearch::None`] here; the engine applies its polish after
    /// the run completes.
    pub fn per_iteration(self) -> LocalSearch {
        match self {
            LocalSearch::PostPass => LocalSearch::None,
            other => other,
        }
    }

    /// Does this strategy run only as an end-of-run polish?
    pub fn is_post_pass(self) -> bool {
        matches!(self, LocalSearch::PostPass)
    }

    /// Does this strategy do work at iteration boundaries?
    pub fn runs_per_iteration(self) -> bool {
        !matches!(self.per_iteration(), LocalSearch::None)
    }

    /// Stable label for reports and benchmarks.
    pub fn label(self) -> &'static str {
        match self {
            LocalSearch::None => "none",
            LocalSearch::TwoOpt => "2opt",
            LocalSearch::TwoOptNn => "2opt-nn",
            LocalSearch::OrOpt => "or-opt",
            LocalSearch::PostPass => "2opt-post",
        }
    }

    /// Stable discriminant for cache keys (the engine's decision cache
    /// keys on the per-iteration strategy).
    pub fn discriminant(self) -> u8 {
        match self {
            LocalSearch::None => 0,
            LocalSearch::TwoOpt => 1,
            LocalSearch::TwoOptNn => 2,
            LocalSearch::OrOpt => 3,
            LocalSearch::PostPass => 4,
        }
    }

    /// Improve `tour` in place and return the exact length reduction
    /// (`0` for [`LocalSearch::None`]). [`LocalSearch::PostPass`] runs
    /// the `TwoOptNn` pass — this is the entry point the engine's
    /// end-of-run polish calls. Never worsens; preserves the permutation
    /// property.
    pub fn improve(
        self,
        tour: &mut Tour,
        matrix: &DistanceMatrix,
        nn: &NearestNeighborLists,
        scratch: &mut LsScratch,
    ) -> u64 {
        let before = tour.length(matrix);
        match self {
            LocalSearch::None => return 0,
            LocalSearch::TwoOpt => {
                cpu::two_opt_full(tour, matrix, scratch);
            }
            LocalSearch::TwoOptNn | LocalSearch::PostPass => {
                cpu::two_opt_nn(tour, matrix, nn, scratch);
            }
            LocalSearch::OrOpt => {
                cpu::or_opt(tour, matrix, nn, scratch);
            }
        }
        let after = tour.length(matrix);
        debug_assert!(tour.is_valid());
        debug_assert!(after <= before, "local search must never worsen");
        before.saturating_sub(after)
    }
}

impl std::fmt::Display for LocalSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which tours a per-iteration strategy improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LsScope {
    /// Only the iteration-best ant's tour (ACOTSP's cheap default: the
    /// improved tour still steers the pheromone update).
    #[default]
    IterationBest,
    /// Every ant's tour — the full ACOTSP hybrid. `m×` the cost.
    AllAnts,
}

impl LsScope {
    /// Stable label for reports and benchmarks.
    pub fn label(self) -> &'static str {
        match self {
            LsScope::IterationBest => "iter-best",
            LsScope::AllAnts => "all-ants",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aco_tsp::uniform_random;
    use rand::SeedableRng;

    #[test]
    fn every_variant_never_worsens_and_stays_valid() {
        let inst = uniform_random("ls", 48, 900.0, 7);
        let nn = NearestNeighborLists::build(inst.matrix(), 12).unwrap();
        let mut scratch = LsScratch::new();
        for ls in LocalSearch::ALL {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            let mut tour = Tour::random(48, &mut rng);
            let before = tour.length(inst.matrix());
            let gain = ls.improve(&mut tour, inst.matrix(), &nn, &mut scratch);
            assert!(tour.is_valid(), "{ls}: permutation broken");
            assert_eq!(tour.length(inst.matrix()), before - gain, "{ls}: gain must be exact");
            if ls != LocalSearch::None {
                assert!(gain > 0, "{ls}: a random 48-city tour must be improvable");
            }
        }
    }

    #[test]
    fn per_iteration_mapping_and_labels() {
        assert_eq!(LocalSearch::PostPass.per_iteration(), LocalSearch::None);
        assert_eq!(LocalSearch::TwoOptNn.per_iteration(), LocalSearch::TwoOptNn);
        assert!(LocalSearch::PostPass.is_post_pass());
        assert!(!LocalSearch::PostPass.runs_per_iteration());
        assert!(LocalSearch::OrOpt.runs_per_iteration());
        let mut seen = std::collections::HashSet::new();
        for ls in LocalSearch::ALL {
            assert!(seen.insert(ls.discriminant()), "discriminants must be distinct");
            assert!(!ls.label().is_empty());
        }
        assert_eq!(LsScope::default(), LsScope::IterationBest);
    }
}
